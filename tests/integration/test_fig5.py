"""Integration: the complete Fig. 5 derivation, machine-checked.

The derivation in :mod:`repro.logic.fig5` reproduces the paper's Fig. 5
proof outline (two workers put into a shared map; only the key set is
low) through the actual proof rules with all side conditions checked and
entailments discharged on probe states."""

from fractions import Fraction

import pytest

from repro.heap.extheap import ExtendedHeap
from repro.heap.guards import SharedGuard
from repro.heap.multiset import Multiset
from repro.logic import ProofError
from repro.logic.fig5 import CONTEXT, PUT, figure5_outline, figure5_proof, worker_proof
from repro.logic.outline import rules_used, validate_structure
from repro.logic.rules import cons_rule


@pytest.fixture(scope="module")
def proof():
    return figure5_proof()


class TestFigure5Derivation:
    def test_builds(self, proof):
        assert proof.rule == "Share"

    def test_conclusion_under_bot(self, proof):
        assert proof.judgment.context is None

    def test_conclusion_exposes_low_abstraction(self, proof):
        assert "Low(alpha_MapKeySet(x))" in str(proof.judgment.pre)
        assert "Low(alpha_MapKeySet(x_prime))" in str(proof.judgment.post)

    def test_uses_all_fig5_ingredients(self, proof):
        counts = rules_used(proof)
        assert counts["Share"] == 1
        assert counts["Par"] == 1
        assert counts["AtomicShr"] == 2
        assert counts["Read"] == 2
        assert counts["Write"] == 2
        assert counts["Cons"] >= 3  # split, per-worker contracts, merge

    def test_structurally_valid(self, proof):
        assert validate_structure(proof) == []

    def test_workers_proved_under_gamma(self, proof):
        premise = proof.premises[0]
        assert premise.judgment.context == CONTEXT

    def test_size(self, proof):
        assert proof.size() >= 15


class TestFigure5Outline:
    def test_renders_key_lines(self, proof):
        text = figure5_outline().render()
        assert "// share" in text
        assert "// unshare" in text
        assert "sguard(1/2" in text  # the guard split
        assert "PRE_Put" in text  # the retroactive precondition
        assert "||" in text

    def test_outline_has_both_workers(self):
        text = figure5_outline().render()
        assert "m1 := [m]" in text
        assert "m2 := [m]" in text


class TestWorkerContract:
    def test_worker_postcondition_is_the_fig5_invariant(self):
        node = worker_proof(1)
        post = str(node.judgment.post)
        assert post == "(∃s_w. (sguard(1/2, s_w) ∗ PRE_Put(s_w)))"

    def test_worker_needs_only_half_guard(self):
        node = worker_proof(1)
        assert "sguard(1/2" in str(node.judgment.pre)


class TestEntailmentsAreReal:
    """The probe-discharged entailments genuinely reject wrong proofs."""

    def test_merge_fails_on_key_mismatch(self):
        # A probe where the two executions recorded DIFFERENT keys cannot
        # satisfy PRE_Put (no bijection with equal keys exists), so using it
        # as a *model* of the premise and asking for the PRE conclusion must
        # fail the Cons entailment.
        from repro.assertions.ast import Exists, PreShared, SepConj, SGuardAssert
        from repro.lang.ast import Lit, Var
        from repro.logic.rules import entails

        premise = SGuardAssert(Fraction(1), Lit(Multiset([(1, 10)])))
        conclusion = Exists(
            "x_s", SepConj(SGuardAssert(Fraction(1), Var("x_s")), PreShared(PUT, Var("x_s")))
        )
        bad_probe = (
            {},
            ExtendedHeap.guard_only(SharedGuard(Fraction(1), Multiset([(1, 10)]))),
            {},
            ExtendedHeap.guard_only(SharedGuard(Fraction(1), Multiset([(2, 10)]))),
        )
        # premise holds only if Lit evaluates equal... the literal multiset
        # matches only the first state; with mismatched guards the premise
        # fails on this pair, so the entailment is vacuous there.  Use a
        # variable-args premise to actually exercise the conclusion:
        premise_var = Exists("x_s", SGuardAssert(Fraction(1), Var("x_s")))
        assert entails(premise_var, premise_var, [bad_probe])
        assert not entails(premise_var, conclusion, [bad_probe])

    def test_worker_with_wrong_fraction_rejected_at_merge(self):
        # Re-doing the merge with a 1/3 fraction probe cannot produce the
        # full guard; the Share rule's premise shape then cannot be met.
        node = worker_proof(1)
        with pytest.raises(ProofError):
            cons_rule(
                node,
                node.judgment.pre,
                node.judgment.pre,  # bogus: post must entail pre — it doesn't
                probes=[
                    (
                        {},
                        ExtendedHeap.guard_only(SharedGuard(Fraction(1, 2), Multiset([(1, 10)]))),
                        {},
                        ExtendedHeap.guard_only(SharedGuard(Fraction(1, 2), Multiset([(1, 10)]))),
                    )
                ],
            )
