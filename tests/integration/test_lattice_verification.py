"""Integration: multi-level verification via per-element reduction
(Sec. 2.1 footnote 1).

A three-level payroll program: the number of employees is *public*, the
bonus amounts are *internal*, and the performance data (which only
affects timing) is *secret*.  Workers add bonuses to a shared counter;
the total goes to the ``internal_report`` channel and the head count to
the ``public_report`` channel.  The program must verify at every lattice
level: a public observer learns only the head count; an internal observer
additionally learns the bonus total."""

import pytest

from repro.casestudies.base import make_instances
from repro.lang import parse_program
from repro.security.lattice import linear, verify_lattice
from repro.spec.library import integer_add_spec
from repro.verifier import ResourceDecl

LATTICE = linear(["public", "internal", "secret"])

_PAYROLL_SRC = """
// Multi-level payroll: add internal bonuses on a shared counter while
// secret performance data affects only timing.
c := alloc(0)
share IntegerAdd
{
    i1 := 0
    while (i1 < n / 2) {
        b1 := at(bonuses, i1)
        d1 := at(perf, i1)
        k1 := 0
        while (k1 < d1) { k1 := k1 + 1 }
        atomic [Add(b1)] { v1 := [c]; [c] := v1 + b1 }
        i1 := i1 + 1
    }
} || {
    i2 := n / 2
    while (i2 < n) {
        b2 := at(bonuses, i2)
        d2 := at(perf, i2)
        k2 := 0
        while (k2 < d2) { k2 := k2 + 1 }
        atomic [Add(b2)] { v2 := [c]; [c] := v2 + b2 }
        i2 := i2 + 1
    }
}
unshare IntegerAdd
total := [c]
print(n, public_report)
print(total, internal_report)
"""

INPUT_LABELS = {"n": "public", "bonuses": "internal", "perf": "secret"}
CHANNEL_LABELS = {"public_report": "public", "internal_report": "internal"}


def _instances_for(level):
    """Bounded instances per observer level: stores agree on ⊑-level
    inputs and vary the rest."""
    if level == "public":
        return make_instances(
            {"n": 4},
            [
                {"bonuses": (1, 2, 3, 4), "perf": (0, 1, 0, 2)},
                {"bonuses": (9, 9, 9, 9), "perf": (2, 0, 1, 0)},
            ],
        )
    return make_instances(
        {"n": 4, "bonuses": (1, 2, 3, 4)},
        [{"perf": (0, 1, 0, 2)}, {"perf": (2, 0, 1, 0)}],
    )


@pytest.fixture(scope="module")
def lattice_result():
    program = parse_program(_PAYROLL_SRC)
    resources = (ResourceDecl("IntegerAdd", integer_add_spec(), "c"),)
    return verify_lattice(
        "payroll",
        program,
        resources,
        INPUT_LABELS,
        CHANNEL_LABELS,
        LATTICE,
        bounded_instances=_instances_for,
    )


class TestPayrollLattice:
    def test_verifies_at_every_level(self, lattice_result):
        assert lattice_result.verified, lattice_result.summary()

    def test_skips_top_level(self, lattice_result):
        levels = [entry.level for entry in lattice_result.levels]
        assert "secret" not in levels
        assert levels == ["public", "internal"]

    def test_public_level_sees_only_public_channel(self, lattice_result):
        public = next(entry for entry in lattice_result.levels if entry.level == "public")
        assert public.low_channels == frozenset({"public_report"})
        assert public.low_inputs == frozenset({"n"})

    def test_internal_level_sees_both_channels(self, lattice_result):
        internal = next(entry for entry in lattice_result.levels if entry.level == "internal")
        assert internal.low_channels == frozenset({"public_report", "internal_report"})
        assert internal.low_inputs == frozenset({"n", "bonuses"})

    def test_summary_mentions_levels(self, lattice_result):
        text = lattice_result.summary()
        assert "public" in text and "internal" in text


class TestLeakyLattice:
    def test_internal_data_on_public_channel_rejected(self):
        # Print the bonus total on the PUBLIC channel: fails at the public
        # level (bonuses are high there) but verifies at internal.
        source = _PAYROLL_SRC.replace(
            "print(total, internal_report)", "print(total, public_report)"
        )
        program = parse_program(source)
        resources = (ResourceDecl("IntegerAdd", integer_add_spec(), "c"),)
        result = verify_lattice(
            "payroll-leaky",
            program,
            resources,
            INPUT_LABELS,
            CHANNEL_LABELS,
            LATTICE,
            bounded_instances=_instances_for,
        )
        assert not result.verified
        assert result.failing_levels() == ("public",)
