"""Integration: the differential oracle, the shrinker, and the campaign.

The load-bearing test here is the injected-unsoundness drill: install a
hook that forces ``verified`` on every mutated case, run a campaign, and
require that the oracle catches the lie, classifies it as a soundness
failure, and the shrinker minimizes the witness program to at most 10
statements with a repro file that still reproduces.  If that drill stops
working, a *real* soundness bug could sail through a fuzz run unnoticed.
"""

import json

import pytest

from repro.fuzz import (
    FuzzConfig,
    check_case,
    emit_repro,
    failure_kind,
    generate_case,
    generate_corpus,
    install_unsound_hook,
    load_repro,
    run_campaign,
    shrink_case,
    statement_count,
)
from repro.smt.session import SolverSession


@pytest.fixture(autouse=True)
def _no_leftover_hook():
    yield
    install_unsound_hook(None)


@pytest.fixture(scope="module")
def session():
    return SolverSession()


def test_small_campaign_is_clean():
    """No soundness failures, no prepass disagreements, no crashes on a
    fixed-seed campaign (the CI smoke job runs the same check at x10)."""
    report = run_campaign(FuzzConfig(seed=0, count=20, shrink=False))
    assert report["ok"], json.dumps(report, indent=2, default=str)[:2000]
    assert report["generated"] == 20
    counters = report["counters"]
    assert counters["verified"] + counters["rejected"] == 20
    # both empirical modes and both verdicts must actually occur
    assert counters["exhaustive"] > 0 or counters["sampled"] > 0
    assert counters["rejected"] > 0
    assert counters["leaks_observed"] > 0


def test_mutants_leak_and_are_rejected(session):
    """Across a fixed window, at least one mutant is both rejected by the
    verifier and observed leaking empirically — the oracle's two sides
    agree on real insecurity, not just on silence."""
    hits = 0
    for index in range(40):
        case = generate_case(1, index)
        if case.mutation is None:
            continue
        outcome = check_case(case, session=session, schedules=6)
        assert failure_kind(outcome) is None, (case.name, outcome)
        if not outcome.verified and outcome.empirical_secure is False:
            hits += 1
            if outcome.leak_bits is not None:
                assert outcome.leak_bits >= 0.0
    assert hits > 0


def test_injected_unsoundness_is_caught_and_shrunk(tmp_path, session):
    """The acceptance drill: force-verify mutants, catch the soundness
    failure, shrink to ≤10 statements, and round-trip the repro file."""
    install_unsound_hook(lambda case: case.mutation is not None)
    caught = None
    for index in range(30):
        case = generate_case(3, index)
        if case.mutation is None:
            continue
        outcome = check_case(case, session=session, schedules=8)
        if outcome.soundness_failure:
            caught = outcome
            break
    assert caught is not None, "no injected soundness failure caught in 30 cases"

    def still_fails(candidate):
        probe = check_case(candidate, session=session, schedules=8)
        return failure_kind(probe) == "soundness"

    shrunk = shrink_case(caught.case, still_fails)
    assert statement_count(shrunk.program) <= 10
    assert statement_count(shrunk.program) <= statement_count(caught.case.program)

    path = tmp_path / f"{shrunk.name}.prog"
    emit_repro(shrunk, "soundness", path)
    loaded, recorded_kind = load_repro(path)
    assert recorded_kind == "soundness"
    assert loaded.program == shrunk.program
    assert loaded.groups == shrunk.groups
    replayed = check_case(loaded, session=session, schedules=8)
    assert failure_kind(replayed) == "soundness"


def test_campaign_reports_and_shrinks_injected_failures(tmp_path):
    """End to end through run_campaign: the report flags the campaign as
    failed, carries shrunk statement counts, and writes repro files."""
    install_unsound_hook(lambda case: case.mutation is not None)
    report = run_campaign(
        FuzzConfig(seed=3, count=8, shrink=True, repro_dir=str(tmp_path))
    )
    assert not report["ok"]
    assert report["soundness_failures"]
    for entry in report["soundness_failures"]:
        assert entry["shrunk_statements"] <= entry["statements"]
        loaded, kind = load_repro(entry["repro"])
        assert kind == "soundness"


def test_budget_stops_generation():
    report = run_campaign(FuzzConfig(seed=0, count=10_000, budget=3.0, shrink=False))
    assert report["budget_exhausted"]
    assert report["generated"] < 10_000


def test_oracle_outcome_fields_are_coherent(session):
    for index in range(10):
        outcome = check_case(generate_case(5, index), session=session, schedules=5)
        if outcome.runtime_error is None:
            assert outcome.empirical_secure is not None
            assert outcome.empirical_mode in ("exhaustive", "sampled")
            assert outcome.executions > 0
        if outcome.prepass == "secure":
            assert outcome.verified_no_prepass is not None
        if outcome.witness is None:
            assert outcome.empirical_secure is not False
