"""Integration tests for the fork/join case studies (Sec. 5 / App. E)."""

import pytest

from repro.casestudies import (
    THREADED_CASES,
    figure2_forkjoin,
    figure3_forkjoin,
    forkjoin_high_key,
)
from repro.lang import RandomScheduler


class TestVerdicts:
    @pytest.mark.parametrize("case", THREADED_CASES, ids=lambda c: c.name)
    def test_expected_verdict(self, case):
        result = case.verify()
        assert result.verified == case.expected_verified, result.summary()

    def test_high_key_rejection_mentions_leak(self):
        result = forkjoin_high_key.verify()
        assert not result.verified
        assert result.errors


class TestRuntimeBehaviour:
    def test_figure2_forkjoin_counts_targets(self):
        inputs = {"n": 4, "targets": (2, 0, 1, 3), "hcollisions": (0, 5, 1, 2)}
        for seed in range(6):
            result = figure2_forkjoin.run(inputs, scheduler=RandomScheduler(seed))
            assert result.output == (6,)

    def test_figure3_forkjoin_key_set_schedule_independent(self):
        inputs = {"n": 4, "addrs": (1, 2, 1, 3), "reasons": (9, 8, 7, 6)}
        outputs = {
            figure3_forkjoin.run(inputs, scheduler=RandomScheduler(seed)).output
            for seed in range(8)
        }
        assert outputs == {((1, 2, 3),)}

    def test_figure3_forkjoin_values_do_race(self):
        # The map values (reasons) may differ between schedules — only the
        # key set is schedule-independent.  Run with two colliding keys.
        inputs = {"n": 2, "addrs": (5, 5), "reasons": (100, 200)}
        outputs = {
            figure3_forkjoin.run(inputs, scheduler=RandomScheduler(seed)).output
            for seed in range(12)
        }
        assert outputs == {((5,),)}

    def test_high_key_program_actually_leaks(self):
        # The negative control is genuinely insecure: differing secrets give
        # differing public outputs.
        low = {"n": 2}
        out1 = forkjoin_high_key.run({**low, "secrets": (1, 2)}).output
        out2 = forkjoin_high_key.run({**low, "secrets": (3, 4)}).output
        assert out1 != out2


class TestDesugaredEquivalence:
    """The desugared structured program and the thread machine agree."""

    @pytest.mark.parametrize(
        "case,inputs",
        [
            (figure2_forkjoin, {"n": 2, "targets": (2, 3), "hcollisions": (1, 0)}),
            (figure3_forkjoin, {"n": 2, "addrs": (1, 2), "reasons": (7, 8)}),
        ],
        ids=lambda value: getattr(value, "name", "inputs"),
    )
    def test_final_outputs_agree(self, case, inputs):
        from repro.lang import run
        from repro.lang.desugar import threaded_equivalent

        structured = threaded_equivalent(case.program())
        structured_output = run(structured, inputs=dict(inputs)).output
        threaded_output = case.run(dict(inputs)).output
        assert structured_output == threaded_output
