"""Integration: the looped Fig. 5 worker derivation (While1 + Exists)."""

from fractions import Fraction

import pytest

from repro.assertions.ast import BoolAssert, Conj, Exists, Low, SGuardAssert
from repro.assertions.classify import is_unambiguous
from repro.lang.ast import BinOp, Lit, Var, While
from repro.logic import ProofError
from repro.logic.fig5_loop import (
    CONDITION,
    loop_invariant,
    worker_loop_contract,
    worker_loop_proof,
)
from repro.logic.outline import rules_used, to_outline, validate_structure


@pytest.fixture(scope="module")
def loop_proof():
    return worker_loop_proof()


@pytest.fixture(scope="module")
def contract():
    return worker_loop_contract()


class TestLoopDerivation:
    def test_concluded_by_while1(self, loop_proof):
        assert loop_proof.rule == "While1"

    def test_command_is_the_fig3_loop(self, loop_proof):
        command = loop_proof.judgment.command
        assert isinstance(command, While)
        assert command.condition == CONDITION
        text = str(command)
        assert "at(addrs, i)" in text and "atomic [Put(pair(adr, rsn))]" in text

    def test_invariant_is_the_fig5_line7_shape(self, loop_proof):
        pre = loop_proof.judgment.pre
        assert isinstance(pre, Conj)
        assert pre.right == Low(CONDITION)
        assert pre.left == loop_invariant()
        assert "∃s_p. (sguard(1/2, s_p) ∗ PRE_Put(s_p))" in str(pre)

    def test_postcondition_negates_the_condition(self, loop_proof):
        post = loop_proof.judgment.post
        assert "!(i < t)" in str(post)

    def test_rules_used(self, loop_proof):
        counts = rules_used(loop_proof)
        assert counts["While1"] == 1
        assert counts["Exists"] == 1  # closing the s_w existential
        assert counts["AtomicShr"] == 1
        assert counts["Assign"] == 3  # adr, rsn, i := i + 1
        assert counts["Frame"] >= 1

    def test_structurally_valid(self, loop_proof):
        assert validate_structure(loop_proof) == []

    def test_outline_renders(self, loop_proof):
        text = to_outline(loop_proof).render()
        assert "While1" in text


class TestContract:
    def test_starts_from_empty_history(self, contract):
        pre = str(contract.judgment.pre)
        assert "sguard(1/2, Multiset({}))" in pre
        assert "Low(f)" in pre

    def test_ends_with_the_invariant_and_exit_condition(self, contract):
        post = str(contract.judgment.post)
        assert "PRE_Put(s_p)" in post
        assert "!(i < t)" in post

    def test_size(self, contract):
        assert contract.size() >= 19


class TestGuardUnambiguity:
    """The Def. B.1 extension that licenses closing the existential."""

    def test_sguard_with_variable_args_is_unambiguous(self):
        assertion = SGuardAssert(Fraction(1, 2), Var("s"))
        assert is_unambiguous(assertion, "s")

    def test_sguard_with_other_variable_is_not(self):
        assertion = SGuardAssert(Fraction(1, 2), Var("s"))
        assert not is_unambiguous(assertion, "x")

    def test_sguard_with_compound_args_is_not(self):
        from repro.lang.ast import Call

        assertion = SGuardAssert(Fraction(1, 2), Call("msAdd", (Var("s"), Lit(1))))
        assert not is_unambiguous(assertion, "s")


class TestNegative:
    def test_while1_rejects_mismatched_invariant(self, loop_proof):
        # Re-running While1 on a premise whose postcondition is not
        # Conj(base, Low(b)) must fail.
        from repro.logic.rules import cons_rule, while_low_rule

        (premise,) = loop_proof.premises
        broken = cons_rule(
            premise,
            premise.judgment.pre,
            premise.judgment.pre,  # wrong post shape
            trusted=True,
        )
        with pytest.raises(ProofError):
            while_low_rule(CONDITION, broken)

    def test_high_condition_needs_unary_invariant(self):
        # While2 with the relational invariant must be rejected: the
        # invariant contains Low/PRE, which is not unary.
        from repro.logic.rules import while_high_rule

        loop = worker_loop_proof()
        (premise,) = loop.premises
        # Rejected on shape (the body's postcondition carries Low(b), which
        # While2's unary invariant could never contain).
        with pytest.raises(ProofError):
            while_high_rule(CONDITION, premise)


class TestFullFigure3:
    """The whole Fig. 3 program: Share around two looped workers."""

    @pytest.fixture(scope="class")
    def full(self):
        from repro.logic.fig5_loop import figure3_full_proof

        return figure3_full_proof()

    def test_concluded_by_share_under_bot(self, full):
        assert full.rule == "Share"
        assert full.judgment.context is None

    def test_conclusion_exposes_low_abstraction(self, full):
        assert "Low(alpha_MapKeySet(x))" in str(full.judgment.pre)
        assert "Low(alpha_MapKeySet(x_prime))" in str(full.judgment.post)

    def test_contains_two_looped_workers(self, full):
        counts = rules_used(full)
        assert counts["While1"] == 2
        assert counts["AtomicShr"] == 2
        assert counts["Par"] == 1
        assert counts["Share"] == 1
        assert counts["Exists"] == 2

    def test_size(self, full):
        assert full.size() >= 40

    def test_structurally_valid(self, full):
        assert validate_structure(full) == []

    def test_workers_renamed_apart(self, full):
        text = str(full.judgment.command)
        assert "i1 :=" in text and "i2 :=" in text
        assert "adr1" in text and "adr2" in text


class TestPureConjSemantics:
    """The Fig. 7 ∧ fix: pure conjuncts are footprint-transparent."""

    def test_spatial_and_pure(self):
        from repro.assertions.semantics import satisfies
        from repro.heap.extheap import ExtendedHeap
        from repro.heap.guards import SharedGuard
        from repro.heap.multiset import Multiset

        guard = SGuardAssert(Fraction(1, 2), Var("s"))
        assertion = Conj(guard, Low(Var("x")))
        store = {"s": Multiset([1]), "x": 7}
        gh = ExtendedHeap.guard_only(SharedGuard(Fraction(1, 2), Multiset([1])))
        assert satisfies(store, gh, store, gh, assertion)

    def test_pure_and_spatial_symmetric(self):
        from repro.assertions.semantics import satisfies
        from repro.heap.extheap import ExtendedHeap
        from repro.heap.guards import SharedGuard
        from repro.heap.multiset import Multiset

        guard = SGuardAssert(Fraction(1, 2), Var("s"))
        assertion = Conj(Low(Var("x")), guard)
        store = {"s": Multiset([1]), "x": 7}
        gh = ExtendedHeap.guard_only(SharedGuard(Fraction(1, 2), Multiset([1])))
        assert satisfies(store, gh, store, gh, assertion)
        # and the pure side still has teeth
        store2 = dict(store, x=8)
        assert not satisfies(store, gh, store2, gh, assertion)
