"""The static-prepass differential suite.

The fast path must be *observation-equivalent* to the full pipeline: for
every corpus case (secure and insecure), verification with the prepass
enabled and disabled must agree on the verdict surface ``(name,
verified, errors)``.  (Obligation discharge methods and symbolic
conformance reports legitimately differ — a fast-path run records its
obligations as discharged by the prepass and generates no VCs.)

The one-sidedness property is the hard safety requirement: a program the
full verifier rejects must NEVER be accepted by the fast path.  The
prepass only ever *accepts*; everything it cannot prove falls through to
the full pipeline unchanged.

``Sequential-Tally`` is the corpus witness that the fast path actually
pays: it verifies with zero solver queries, while the full pipeline
needs SMT for its action-conformance VCs.
"""

import json
import os
import tempfile
import threading

import pytest

from repro import api
from repro.analysis import run_prepass
from repro.casestudies import ALL_CASES, case_by_name
from repro.smt import clear_all_caches
from repro.smt.session import SolverSession


def _surface(verdict: api.Verdict):
    return (verdict.name, verdict.verified, verdict.errors)


class TestDifferential:
    @pytest.mark.parametrize("case", ALL_CASES, ids=lambda case: case.name)
    def test_fast_path_on_and_off_agree(self, case):
        clear_all_caches()
        with_prepass = api.execute(api.VerificationRequest(case=case.name))
        clear_all_caches()
        without = api.execute(
            api.VerificationRequest(case=case.name, static_prepass=False)
        )
        assert _surface(with_prepass) == _surface(without)
        assert with_prepass.verified == case.expected_verified

    @pytest.mark.parametrize("case", ALL_CASES, ids=lambda case: case.name)
    def test_prepass_never_accepts_what_the_verifier_rejects(self, case):
        # One-sided soundness: prepass 'secure' implies full-pipeline
        # 'verified'.  A violation here is a hard safety failure.
        report = run_prepass(case.program_spec())
        if report.secure:
            full = api.execute(
                api.VerificationRequest(case=case.name, static_prepass=False)
            )
            assert full.verified, (
                f"{case.name}: static prepass claimed secure but the full "
                f"verifier rejected with {full.errors}"
            )

    def test_insecure_cases_are_still_rejected_with_prepass(self):
        for case in ALL_CASES:
            if case.expected_verified:
                continue
            verdict = api.execute(api.VerificationRequest(case=case.name))
            assert not verdict.verified, case.name
            assert verdict.prepass != "secure", case.name


class TestZeroSmtDischarge:
    def test_sequential_tally_discharges_without_smt(self):
        clear_all_caches()
        session = SolverSession()
        verdict = api.execute(
            api.VerificationRequest(case="Sequential-Tally"), session=session
        )
        assert verdict.verified
        assert verdict.prepass == "secure"
        assert session.stats()["queries"] == 0

    def test_full_pipeline_needs_the_solver(self):
        clear_all_caches()
        session = SolverSession()
        verdict = api.execute(
            api.VerificationRequest(case="Sequential-Tally", static_prepass=False),
            session=session,
        )
        assert verdict.verified
        assert verdict.prepass is None
        assert session.stats()["queries"] > 0

    def test_fast_path_skips_every_downstream_stage(self):
        result = case_by_name("Sequential-Tally").verify()
        assert result.verified
        assert result.prepass is not None and result.prepass.secure
        # The fast path only fires when the taint stage deferred no
        # obligations (deferred obligations encode abstraction
        # observability the flow model does not cover), so a fast-path
        # result carries none — and no conformance work at all.
        assert result.obligations == ()
        assert result.symbolic_conformance == ()
        assert result.conformance_reports == ()

    def test_deferred_obligations_disable_the_fast_path(self):
        # An action under a high branch defers a retroactive-count
        # obligation; without instances the full verifier rejects, so
        # the prepass must not claim the verdict.
        from repro.lang import parse_program
        from repro.spec.library import counter_increment_spec
        from repro.verifier.declarations import ProgramSpec, ResourceDecl
        from repro.verifier.frontend import verify

        decl = ResourceDecl("CounterInc", counter_increment_spec(), "c")
        source = (
            "c := alloc(0)\nshare CounterInc\n"
            "if (h > 0) { atomic [Inc()] { t := [c]; [c] := t + 1 } }\n"
            "unshare CounterInc"
        )
        spec = ProgramSpec(
            "high-count",
            parse_program(source),
            (decl,),
            frozenset(),
            frozenset({"h"}),
        )
        fast = verify(spec, bounded_instances=None)
        slow = verify(spec, bounded_instances=None, static_prepass=False)
        assert not fast.verified
        assert fast.verified == slow.verified
        assert any(not ob.discharged for ob in fast.obligations)

    def test_prepass_field_is_not_part_of_the_observable_surface(self):
        fast = api.execute(api.VerificationRequest(case="Sequential-Tally"))
        slow = api.execute(
            api.VerificationRequest(case="Sequential-Tally", static_prepass=False)
        )
        assert fast.prepass == "secure" and slow.prepass is None
        assert fast.observable()[:3] == slow.observable()[:3]

    def test_request_wire_round_trip_preserves_the_flag(self):
        request = api.VerificationRequest(case="Sequential-Tally", static_prepass=False)
        restored = api.VerificationRequest.from_wire(request.to_wire())
        assert restored.static_prepass is False
        default = api.VerificationRequest(case="Sequential-Tally")
        assert "static_prepass" not in default.to_wire()
        assert api.VerificationRequest.from_wire(default.to_wire()).static_prepass


class TestStaticVerdictApi:
    def test_secure_case(self):
        verdict = api.static_verdict(api.VerificationRequest(case="Sequential-Tally"))
        assert verdict.secure
        assert verdict.verdict == "secure"
        assert api.StaticVerdict.from_wire(verdict.to_wire()) == verdict

    def test_unknown_case_carries_reasons(self):
        verdict = api.static_verdict(api.VerificationRequest(case="Figure 2"))
        assert not verdict.secure
        assert verdict.reasons
        assert api.StaticVerdict.from_wire(verdict.to_wire()) == verdict

    def test_insecure_case_carries_diagnostics(self):
        verdict = api.static_verdict(
            api.VerificationRequest(case="Sales-By-Region (guard split)")
        )
        assert not verdict.secure
        assert any(d.code == "R003" for d in verdict.diagnostics)

    def test_formula_requests_are_unknown(self):
        from repro.smt.sorts import BOOL
        from repro.smt.terms import SymVar

        request = api.VerificationRequest(
            formula=SymVar("p", BOOL), name="raw-validity"
        )
        verdict = api.static_verdict(request)
        assert not verdict.secure


class TestDaemonIntegration:
    @pytest.fixture(scope="class")
    def daemon(self):
        import time

        from repro.client import ServiceClient, ServiceError
        from repro.server import VerificationServer

        tmp = tempfile.mkdtemp(prefix="repro-prepass-")
        socket_path = os.path.join(tmp, "daemon.sock")
        server = VerificationServer(
            socket_path=socket_path,
            timeout=60.0,
            workers=1,
            vc_budget=0,  # everything is over budget: only the prepass admits
        )
        thread = threading.Thread(target=server.run, daemon=True)
        thread.start()
        for _ in range(200):
            if os.path.exists(socket_path):
                break
            time.sleep(0.05)
        else:
            raise RuntimeError("daemon did not come up")
        try:
            yield socket_path, server
        finally:
            try:
                with ServiceClient(socket_path=socket_path) as client:
                    client.shutdown()
            except (ServiceError, OSError):
                pass
            thread.join(timeout=10)

    def test_prepass_admits_over_budget_secure_requests(self, daemon):
        from repro.client import ServiceClient

        socket_path, server = daemon
        with ServiceClient(socket_path=socket_path) as client:
            outcome = client.run_batch(
                [
                    api.VerificationRequest(case="Sequential-Tally"),
                    api.VerificationRequest(case="Figure 2"),
                ]
            )
        # Sequential-Tally: over the (zero) VC budget, but the prepass
        # proves it secure, so it is admitted and verified without SMT.
        assert outcome.verdicts[0].verified
        # Figure 2 stays rejected: the prepass cannot help it.
        assert 1 in outcome.rejections
        assert server.prepass_admissions >= 1
        assert outcome.stats.get("prepass_admissions", 0) >= 1

    def test_disabling_the_prepass_restores_strict_admission(self, daemon):
        from repro.client import ServiceClient

        socket_path, _server = daemon
        with ServiceClient(socket_path=socket_path) as client:
            outcome = client.run_batch(
                [
                    api.VerificationRequest(
                        case="Sequential-Tally", static_prepass=False
                    )
                ]
            )
        assert 0 in outcome.rejections

    def test_lint_op_over_the_wire(self, daemon):
        from repro.client import ServiceClient

        socket_path, _server = daemon
        with ServiceClient(socket_path=socket_path) as client:
            diagnostics = client.lint(
                sources=[
                    ("racy", "c := alloc(0)\n{ [c] := 1 } || { [c] := 2 }"),
                    ("leaky", "print(h)"),
                ],
                high=["h"],
            )
        codes = sorted(d.code for d in diagnostics)
        assert "R001" in codes
        assert "F001" in codes
        # Wire forms are plain JSON: a round trip through the codec is exact.
        for diagnostic in diagnostics:
            assert (
                api.Diagnostic.from_wire(json.loads(json.dumps(diagnostic.to_wire())))
                == diagnostic
            )

    def test_lint_op_with_case_context(self, daemon):
        from repro.client import ServiceClient

        socket_path, _server = daemon
        with ServiceClient(socket_path=socket_path) as client:
            diagnostics = client.lint(cases=["Sales-By-Region (guard split)"])
        assert any(d.code == "R003" for d in diagnostics)

    def test_lint_op_rejects_unknown_cases(self, daemon):
        from repro.client import ServiceClient, ServiceError

        socket_path, _server = daemon
        with ServiceClient(socket_path=socket_path) as client:
            with pytest.raises(ServiceError):
                client.lint(cases=["No-Such-Case"])
