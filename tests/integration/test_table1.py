"""Integration: the full Table-1 evaluation, positive and negative."""

import pytest

from repro.casestudies import EXTRA_SECURE_CASES, INSECURE_CASES, TABLE1_CASES


@pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name)
def test_table1_case_verifies(case):
    result = case.verify()
    assert result.verified, result.summary()


@pytest.mark.parametrize("case", EXTRA_SECURE_CASES, ids=lambda c: c.name)
def test_extra_secure_case_verifies(case):
    result = case.verify()
    assert result.verified, result.summary()


@pytest.mark.parametrize("case", INSECURE_CASES, ids=lambda c: c.name)
def test_insecure_case_rejected(case):
    result = case.verify()
    assert not result.verified, f"{case.name} must be rejected"
    assert result.errors


@pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name)
def test_table1_conformance_exercised(case):
    """Every annotated atomic block must be checked against its action —
    symbolically (VC + solver) or by semantic sampling on at least one
    well-typed sample."""
    result = case.verify()
    assert result.conformance_reports or result.symbolic_conformance
    for report in result.conformance_reports:
        assert report.samples_checked > 0, report
    for action, verdict in result.symbolic_conformance:
        assert verdict in ("proved", "bounded"), (action, verdict)


@pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name)
def test_table1_sampling_only_mode_agrees(case):
    """The pre-VC sampling pipeline reaches the same verdict."""
    result = case.verify(conformance_mode="sampling")
    assert result.verified, result.summary()
    assert result.symbolic_conformance == ()


def test_all_18_rows_present():
    assert len(TABLE1_CASES) == 18
    names = [case.name for case in TABLE1_CASES]
    assert names[0] == "Count-Vaccinated"
    assert names[-1] == "2-Producers-2-Consumers"


def test_paper_rows_attached():
    for case in TABLE1_CASES:
        assert case.paper is not None
        assert case.paper.loc > 0
        assert case.paper.time_seconds > 0


@pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name)
def test_rejection_reasons_are_specific(case):
    """Sanity: verified cases produce empty error lists, and the obligations
    that exist are all discharged."""
    result = case.verify()
    assert result.errors == ()
    for obligation in result.obligations:
        assert obligation.discharged, str(obligation)


class TestRejectionReasons:
    """Each negative control must fail at the *intended* pipeline stage."""

    def _errors(self, name):
        from repro.casestudies import case_by_name

        return case_by_name(name).verify().errors

    def test_invalid_spec_stage(self):
        errors = self._errors("Figure 1 (leaky)")
        assert any("invalid specification" in e for e in errors)

    def test_taint_stage_abstraction(self):
        errors = self._errors("Figure 1 (abstraction leak)")
        assert any("abstract" in e for e in errors)

    def test_taint_stage_values(self):
        errors = self._errors("Figure 3 (value leak)")
        assert any("taint high" in e for e in errors)

    def test_bounded_refutation_stage(self):
        errors = self._errors("Figure 3 (high key)")
        assert any("refuted by bounded checking" in e for e in errors)

    def test_guard_discipline_stage(self):
        errors = self._errors("Sales-By-Region (guard split)")
        assert any("cannot be split" in e for e in errors)

    def test_count_channel_stage(self):
        errors = self._errors("Count-Channel")
        assert any("refuted by bounded checking" in e for e in errors)
