"""Integration tests for the verification daemon (:mod:`repro.server`)
and its client: the full corpus over a unix socket must match fresh
in-process verification verdict-for-verdict, warm batches must reuse
pooled sessions and the validity cache, tenants must be isolated (and
affine to distinct worker processes), and admission control must reject
over-budget work before solving.  Fault-injection scenarios live in
``test_service_faults.py``."""

import json
import os
import shutil
import socket as socket_module
import tempfile
import threading
import time

import pytest

from repro import api
from repro.casestudies import ALL_CASES
from repro.client import BatchOutcome, ServiceClient, ServiceError, requests_for_cases
from repro.server import VerificationServer
from repro.smt import clear_all_caches

ALL_NAMES = [case.name for case in ALL_CASES]

#: Cases whose runtime is dominated by VC discharge (not by the
#: interpreter-sampling conformance fallback) — the ones a warm solver
#: session and validity cache actually accelerate.
SOLVER_BOUND = [
    "Figure 1",
    "Figure 1 (commuting)",
    "Figure 1 (leaky)",
    "Figure 3",
    "Most-Valuable-Purchase",
    "Sales-By-Region (guard split)",
    "Count-Purchases",
    "Mean-Salary",
    "Salary-Histogram",
    "Debt-Sum",
]


def start_daemon(server: VerificationServer) -> threading.Thread:
    """Run ``server`` on a daemon thread; wait for the socket to bind."""
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    for _ in range(200):
        if server.socket_path is not None and os.path.exists(server.socket_path):
            return thread
        time.sleep(0.05)
    raise RuntimeError("daemon did not come up")


def stop_daemon(socket_path, thread: threading.Thread) -> None:
    try:
        with ServiceClient(socket_path=socket_path) as client:
            client.shutdown()
    except (ServiceError, OSError):
        pass
    thread.join(timeout=10)


# ---------------------------------------------------------------------------
# A module-scoped daemon on a unix socket, run on a background thread.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def daemon():
    tmp = tempfile.mkdtemp(prefix="repro-svc-")
    socket_path = os.path.join(tmp, "daemon.sock")
    server = VerificationServer(
        socket_path=socket_path,
        cache_dir=os.path.join(tmp, "cache"),
        batch_limit=32,
        timeout=60.0,
        workers=2,
    )
    thread = start_daemon(server)
    yield server, socket_path
    stop_daemon(socket_path, thread)
    shutil.rmtree(tmp, ignore_errors=True)


def _client(daemon) -> ServiceClient:
    _server, socket_path = daemon
    return ServiceClient(socket_path=socket_path)


# ---------------------------------------------------------------------------
# Protocol basics
# ---------------------------------------------------------------------------


def test_ping_and_stats(daemon):
    with _client(daemon) as client:
        assert client.ping()
        stats = client.stats()
        assert stats["pool"]["max_sessions"] == 8
        assert "cache" in stats and "uptime" in stats
        # the supervised pool: two live workers with distinct real PIDs
        workers = stats["workers"]
        assert len(workers) == 2
        assert all(worker["alive"] for worker in workers)
        pids = [worker["pid"] for worker in workers]
        assert len(set(pids)) == 2
        for pid in pids:
            os.kill(pid, 0)  # raises if the PID does not exist


def test_unknown_op_is_an_error(daemon):
    with _client(daemon) as client:
        with pytest.raises(ServiceError, match="unknown op"):
            client._roundtrip({"op": "frobnicate"}, "never")


def test_malformed_line_gets_an_error_event(daemon):
    _server, socket_path = daemon
    with socket_module.socket(socket_module.AF_UNIX) as raw:
        raw.settimeout(10.0)
        raw.connect(socket_path)
        raw.sendall(b"this is not json\n")
        event = json.loads(raw.makefile("rb").readline())
        assert event["event"] == "error"
        assert "bad JSON" in event["reason"]


# ---------------------------------------------------------------------------
# The differential contract: socket verdicts == fresh in-process verdicts
# ---------------------------------------------------------------------------


def test_corpus_over_socket_matches_in_process_verify(daemon):
    clear_all_caches()
    fresh = {}
    for case in ALL_CASES:
        result = case.verify(use_session=False)
        fresh[case.name] = api.verdict_from_result(
            result, expected=case.expected_verified
        ).observable()

    with _client(daemon) as client:
        outcome = client.run_batch(requests_for_cases(ALL_NAMES), tenant="diff")
    assert outcome.complete, (outcome.rejections, outcome.timeouts, outcome.errors)
    assert len(outcome.verdicts) == len(ALL_CASES)
    for index, name in enumerate(ALL_NAMES):
        assert outcome.verdicts[index].observable() == fresh[name], name
    assert outcome.ok  # every verdict matches the catalogue expectation


def test_warm_second_batch_reuses_sessions_and_cache(daemon):
    with _client(daemon) as client:
        cold = client.run_batch(requests_for_cases(SOLVER_BOUND), tenant="warm")
        reused_before = cold.stats["pool"]["reused"]
        warm = client.run_batch(requests_for_cases(SOLVER_BOUND), tenant="warm")
    assert cold.complete and warm.complete
    assert [v.observable() for v in cold.ordered_verdicts()] == [
        v.observable() for v in warm.ordered_verdicts()
    ]
    # the warm batch reuses the tenant's pooled session (in its affine
    # worker process) on every request
    assert warm.stats["pool"]["reused"] >= reused_before + len(SOLVER_BOUND)
    cache_stats = warm.stats["cache"]
    assert cache_stats["hits"] + cache_stats["persistent_hits"] > 0
    # the acceptance bar: warm verification is at least 3x faster.  The
    # per-verdict elapsed figures measure the verification work itself;
    # batch wall-clock additionally carries constant protocol/IPC
    # overhead that scheduling noise makes too jittery to pin a ratio
    # on, so it only gets a strictly-faster check.
    cold_work = sum(v.elapsed for v in cold.verdicts.values())
    warm_work = sum(v.elapsed for v in warm.verdicts.values())
    assert warm_work * 3 <= cold_work, (cold_work, warm_work)
    assert warm.elapsed < cold.elapsed, (cold.elapsed, warm.elapsed)


def test_concurrent_tenants_are_isolated_and_agree(daemon):
    server, _socket_path = daemon
    names = ALL_NAMES[:6]
    outcomes = {}
    errors = []

    def drive(tenant):
        try:
            with _client(daemon) as client:
                outcomes[tenant] = client.run_batch(
                    requests_for_cases(names), tenant=tenant
                )
        except Exception as error:  # noqa: BLE001 — surfaced via the errors list
            errors.append((tenant, error))

    threads = [
        threading.Thread(target=drive, args=(tenant,))
        for tenant in ("tenant-a", "tenant-b")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors
    a, b = outcomes["tenant-a"], outcomes["tenant-b"]
    assert a.complete and b.complete
    assert a.ok and b.ok
    assert [v.observable() for v in a.ordered_verdicts()] == [
        v.observable() for v in b.ordered_verdicts()
    ]
    # tenant-affine routing put the two tenants on distinct workers
    assert server._affinity["tenant-a"] != server._affinity["tenant-b"]


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="one CPU core: two CPU-bound workers cannot overlap in wall time",
)
def test_two_tenant_batches_overlap_in_wall_time():
    """With --workers 2, two simultaneous single-tenant batches finish in
    ~1x (not ~2x) the solo wall time — they solve in separate processes.
    (``test_service_faults.py`` proves scheduling-level overlap on any
    host via sleep faults; this pins the CPU-level claim where the
    hardware can express it.)"""
    tmp = tempfile.mkdtemp(prefix="repro-conc-")
    socket_path = os.path.join(tmp, "c.sock")
    server = VerificationServer(socket_path=socket_path, workers=2, timeout=120.0)
    thread = start_daemon(server)
    try:
        requests = requests_for_cases(ALL_NAMES)

        def run_one(tenant, results):
            with ServiceClient(socket_path=socket_path) as client:
                start = time.perf_counter()
                outcome = client.run_batch(requests, tenant=tenant)
                results[tenant] = (time.perf_counter() - start, outcome)

        solo = {}
        run_one("solo", solo)
        solo_wall, solo_outcome = solo["solo"]
        assert solo_outcome.complete

        results = {}
        threads = [
            threading.Thread(target=run_one, args=(tenant, results))
            for tenant in ("left", "right")
        ]
        start = time.perf_counter()
        for worker in threads:
            worker.start()
        for worker in threads:
            worker.join(timeout=300)
        wall = time.perf_counter() - start
        for tenant in ("left", "right"):
            _, outcome = results[tenant]
            assert outcome.complete and outcome.ok
        # generous margin: ~1x with room for IPC overhead, far from ~2x
        assert wall <= solo_wall * 1.6, (solo_wall, wall)
    finally:
        stop_daemon(socket_path, thread)
        shutil.rmtree(tmp, ignore_errors=True)


# ---------------------------------------------------------------------------
# Admission control and tenancy policy
# ---------------------------------------------------------------------------


def test_admission_control_rejects_over_budget_requests(daemon):
    with _client(daemon) as client:
        client.configure_tenant("stingy", vc_budget=0)
        outcome = client.run_batch(requests_for_cases(["Figure 3"]), tenant="stingy")
    assert not outcome.verdicts
    assert 0 in outcome.rejections
    assert "admission budget" in outcome.rejections[0]


def test_whole_batch_over_limit_is_refused(daemon):
    # the module daemon runs with batch_limit=32; 33 requests must be
    # refused outright (no accepted/done events)
    requests = [api.VerificationRequest(case="Figure 1")] * 33
    with _client(daemon) as client:
        with pytest.raises(ServiceError, match="exceeds the limit"):
            client.run_batch(requests)


def test_tenant_op_round_trips_policy(daemon):
    with _client(daemon) as client:
        event = client.configure_tenant(
            "policy", namespace="ns-p", vc_budget=7, max_models=123
        )
        assert event["tenant"] == "policy"
        assert event["namespace"] == "ns-p"
        assert event["vc_budget"] == 7
        assert event["max_models"] == 123
        stats = client.stats()
    assert stats["tenants"]["policy"]["namespace"] == "ns-p"


def test_bad_request_in_batch_reports_indexed_error(daemon):
    with _client(daemon) as client:
        outcome = client.run_batch(
            [
                api.VerificationRequest(case="Figure 1"),
                api.VerificationRequest(case="No Such Case"),
            ],
            tenant="mixed",
        )
    assert 0 in outcome.verdicts and outcome.verdicts[0].ok
    assert 1 in outcome.errors
    assert "No Such Case" in outcome.errors[1]


# ---------------------------------------------------------------------------
# Wall-clock budget: a timeout kills the worker, not the daemon
# ---------------------------------------------------------------------------


def test_timeout_kills_worker_and_daemon_stays_serviceable():
    tmp = tempfile.mkdtemp(prefix="repro-to-")
    socket_path = os.path.join(tmp, "t.sock")
    # The budget must be comfortably below the case's runtime (~100ms
    # for the sampling-bound Pipeline case); the kill is a SIGKILL on a
    # separate process, so no GIL cooperation is needed.
    server = VerificationServer(socket_path=socket_path, timeout=0.02, workers=1)
    thread = start_daemon(server)
    try:
        with ServiceClient(socket_path=socket_path) as client:
            doomed_pid = client.stats()["workers"][0]["pid"]
            outcome = client.run_batch(requests_for_cases(["Pipeline"]), tenant="slow")
            assert 0 in outcome.timeouts
            assert "killed" in outcome.timeouts[0]
            assert outcome.stats["tenants"]["slow"]["timeouts"] == 1
            assert outcome.stats["timeouts"] == 1
            # the interruption is real: the worker process is gone...
            with pytest.raises(ProcessLookupError):
                os.kill(doomed_pid, 0)
            # ...a fresh worker took the slot, and the daemon still serves
            stats = client.stats()
            assert stats["workers"][0]["alive"]
            assert stats["workers"][0]["pid"] != doomed_pid
            assert client.ping()
    finally:
        stop_daemon(socket_path, thread)
        shutil.rmtree(tmp, ignore_errors=True)


# ---------------------------------------------------------------------------
# Client-side plumbing
# ---------------------------------------------------------------------------


def test_batch_outcome_to_report_round_trip():
    outcome = BatchOutcome(
        verdicts={1: api.Verdict(name="b", verified=True), 0: api.Verdict(name="a", verified=True)},
        elapsed=0.25,
        stats={"pool": {}},
    )
    report = outcome.to_report()
    assert [v.name for v in report.verdicts] == ["a", "b"]  # index order
    assert outcome.complete and outcome.ok
