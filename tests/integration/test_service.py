"""Integration tests for the verification daemon (:mod:`repro.server`)
and its client: the full corpus over a unix socket must match fresh
in-process verification verdict-for-verdict, warm batches must reuse
pooled sessions and the validity cache, tenants must be isolated, and
admission control must reject over-budget work before solving."""

import json
import os
import shutil
import socket as socket_module
import tempfile
import threading
import time

import pytest

from repro import api
from repro.casestudies import ALL_CASES
from repro.client import BatchOutcome, ServiceClient, ServiceError, requests_for_cases
from repro.server import VerificationServer
from repro.smt import clear_all_caches

ALL_NAMES = [case.name for case in ALL_CASES]

#: Cases whose runtime is dominated by VC discharge (not by the
#: interpreter-sampling conformance fallback) — the ones a warm solver
#: session and validity cache actually accelerate.
SOLVER_BOUND = [
    "Figure 1",
    "Figure 1 (commuting)",
    "Figure 1 (leaky)",
    "Figure 3",
    "Most-Valuable-Purchase",
    "Sales-By-Region (guard split)",
    "Count-Purchases",
    "Mean-Salary",
    "Salary-Histogram",
    "Debt-Sum",
]


# ---------------------------------------------------------------------------
# A module-scoped daemon on a unix socket, run on a background thread.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def daemon():
    tmp = tempfile.mkdtemp(prefix="repro-svc-")
    socket_path = os.path.join(tmp, "daemon.sock")
    server = VerificationServer(
        socket_path=socket_path,
        cache_dir=os.path.join(tmp, "cache"),
        batch_limit=32,
        timeout=60.0,
    )
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    for _ in range(200):
        if os.path.exists(socket_path):
            break
        time.sleep(0.05)
    else:
        raise RuntimeError("daemon did not come up")
    yield server, socket_path
    try:
        with ServiceClient(socket_path=socket_path) as client:
            client.shutdown()
    except (ServiceError, OSError):
        pass
    thread.join(timeout=10)
    shutil.rmtree(tmp, ignore_errors=True)


def _client(daemon) -> ServiceClient:
    _server, socket_path = daemon
    return ServiceClient(socket_path=socket_path)


# ---------------------------------------------------------------------------
# Protocol basics
# ---------------------------------------------------------------------------


def test_ping_and_stats(daemon):
    with _client(daemon) as client:
        assert client.ping()
        stats = client.stats()
        assert stats["pool"]["max_sessions"] == 8
        assert "cache" in stats and "uptime" in stats


def test_unknown_op_is_an_error(daemon):
    with _client(daemon) as client:
        with pytest.raises(ServiceError, match="unknown op"):
            client._roundtrip({"op": "frobnicate"}, "never")


def test_malformed_line_gets_an_error_event(daemon):
    _server, socket_path = daemon
    with socket_module.socket(socket_module.AF_UNIX) as raw:
        raw.settimeout(10.0)
        raw.connect(socket_path)
        raw.sendall(b"this is not json\n")
        event = json.loads(raw.makefile("rb").readline())
        assert event["event"] == "error"
        assert "bad JSON" in event["reason"]


# ---------------------------------------------------------------------------
# The differential contract: socket verdicts == fresh in-process verdicts
# ---------------------------------------------------------------------------


def test_corpus_over_socket_matches_in_process_verify(daemon):
    clear_all_caches()
    fresh = {}
    for case in ALL_CASES:
        result = case.verify(use_session=False)
        fresh[case.name] = api.verdict_from_result(
            result, expected=case.expected_verified
        ).observable()

    with _client(daemon) as client:
        outcome = client.run_batch(requests_for_cases(ALL_NAMES), tenant="diff")
    assert outcome.complete, (outcome.rejections, outcome.timeouts, outcome.errors)
    assert len(outcome.verdicts) == len(ALL_CASES)
    for index, name in enumerate(ALL_NAMES):
        assert outcome.verdicts[index].observable() == fresh[name], name
    assert outcome.ok  # every verdict matches the catalogue expectation


def test_warm_second_batch_reuses_sessions_and_cache(daemon):
    server, _socket_path = daemon
    with _client(daemon) as client:
        cold = client.run_batch(requests_for_cases(SOLVER_BOUND), tenant="warm")
        reused_before = server.pool.stats()["reused"]
        warm = client.run_batch(requests_for_cases(SOLVER_BOUND), tenant="warm")
    assert cold.complete and warm.complete
    assert [v.observable() for v in cold.ordered_verdicts()] == [
        v.observable() for v in warm.ordered_verdicts()
    ]
    # the warm batch reuses the tenant's pooled session on every request
    assert server.pool.stats()["reused"] >= reused_before + len(SOLVER_BOUND)
    cache_stats = warm.stats["cache"]
    assert cache_stats["hits"] + cache_stats["persistent_hits"] > 0
    # the acceptance bar: warm verification is at least 3x faster.  The
    # per-verdict elapsed figures measure the verification work itself;
    # batch wall-clock additionally carries constant protocol/thread-
    # handoff overhead that GIL scheduling makes too noisy to pin a
    # ratio on, so it only gets a strictly-faster check.
    cold_work = sum(v.elapsed for v in cold.verdicts.values())
    warm_work = sum(v.elapsed for v in warm.verdicts.values())
    assert warm_work * 3 <= cold_work, (cold_work, warm_work)
    assert warm.elapsed < cold.elapsed, (cold.elapsed, warm.elapsed)


def test_concurrent_tenants_are_isolated_and_agree(daemon):
    names = ALL_NAMES[:6]
    outcomes = {}
    errors = []

    def drive(tenant):
        try:
            with _client(daemon) as client:
                outcomes[tenant] = client.run_batch(
                    requests_for_cases(names), tenant=tenant
                )
        except Exception as error:  # noqa: BLE001 — surfaced via the errors list
            errors.append((tenant, error))

    threads = [
        threading.Thread(target=drive, args=(tenant,))
        for tenant in ("tenant-a", "tenant-b")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors
    a, b = outcomes["tenant-a"], outcomes["tenant-b"]
    assert a.complete and b.complete
    assert a.ok and b.ok
    assert [v.observable() for v in a.ordered_verdicts()] == [
        v.observable() for v in b.ordered_verdicts()
    ]


# ---------------------------------------------------------------------------
# Admission control and tenancy policy
# ---------------------------------------------------------------------------


def test_admission_control_rejects_over_budget_requests(daemon):
    with _client(daemon) as client:
        client.configure_tenant("stingy", vc_budget=0)
        outcome = client.run_batch(requests_for_cases(["Figure 3"]), tenant="stingy")
    assert not outcome.verdicts
    assert 0 in outcome.rejections
    assert "admission budget" in outcome.rejections[0]


def test_whole_batch_over_limit_is_refused(daemon):
    # the module daemon runs with batch_limit=32; 33 requests must be
    # refused outright (no accepted/done events)
    requests = [api.VerificationRequest(case="Figure 1")] * 33
    with _client(daemon) as client:
        with pytest.raises(ServiceError, match="exceeds the limit"):
            client.run_batch(requests)


def test_tenant_op_round_trips_policy(daemon):
    with _client(daemon) as client:
        event = client.configure_tenant(
            "policy", namespace="ns-p", vc_budget=7, max_models=123
        )
        assert event["tenant"] == "policy"
        assert event["namespace"] == "ns-p"
        assert event["vc_budget"] == 7
        assert event["max_models"] == 123
        stats = client.stats()
    assert stats["tenants"]["policy"]["namespace"] == "ns-p"


def test_bad_request_in_batch_reports_indexed_error(daemon):
    with _client(daemon) as client:
        outcome = client.run_batch(
            [
                api.VerificationRequest(case="Figure 1"),
                api.VerificationRequest(case="No Such Case"),
            ],
            tenant="mixed",
        )
    assert 0 in outcome.verdicts and outcome.verdicts[0].ok
    assert 1 in outcome.errors
    assert "No Such Case" in outcome.errors[1]


# ---------------------------------------------------------------------------
# Wall-clock admission: timeouts retire the tenant's session cleanly
# ---------------------------------------------------------------------------


def test_timeout_emits_event_and_retires_session(tmp_path):
    socket_path = tempfile.mkdtemp(prefix="repro-to-") + "/t.sock"
    # The budget must be comfortably below the case's runtime (~100ms for
    # the sampling-bound Pipeline case) but above the GIL switch interval
    # — the event loop only notices the deadline once the CPU-bound
    # worker yields the GIL.
    server = VerificationServer(socket_path=socket_path, timeout=0.02)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    try:
        for _ in range(200):
            if os.path.exists(socket_path):
                break
            time.sleep(0.05)
        with ServiceClient(socket_path=socket_path) as client:
            outcome = client.run_batch(requests_for_cases(["Pipeline"]), tenant="slow")
            assert 0 in outcome.timeouts
            assert "session retired" in outcome.timeouts[0]
            assert outcome.stats["tenants"]["slow"]["timeouts"] == 1
            # the daemon stays serviceable after abandoning the worker
            assert client.ping()
    finally:
        try:
            with ServiceClient(socket_path=socket_path) as client:
                client.shutdown()
        except (ServiceError, OSError):
            pass
        thread.join(timeout=10)
        shutil.rmtree(os.path.dirname(socket_path), ignore_errors=True)


def test_abandon_worker_replaces_executor_and_retires_session(tmp_path):
    server = VerificationServer(socket_path=tmp_path / "unused.sock")
    server.pool.acquire("t")
    server._abandon_worker("t")
    assert server._executor is not None
    assert "t" not in server.pool
    server._executor.shutdown(wait=False)


# ---------------------------------------------------------------------------
# Client-side plumbing
# ---------------------------------------------------------------------------


def test_batch_outcome_to_report_round_trip():
    outcome = BatchOutcome(
        verdicts={1: api.Verdict(name="b", verified=True), 0: api.Verdict(name="a", verified=True)},
        elapsed=0.25,
        stats={"pool": {}},
    )
    report = outcome.to_report()
    assert [v.name for v in report.verdicts] == ["a", "b"]  # index order
    assert outcome.complete and outcome.ok
