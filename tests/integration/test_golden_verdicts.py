"""Golden-verdict regression: pin every corpus verdict to a catalogue.

``tests/golden/verdicts.json`` records, for each of the corpus case
studies, the full verification verdict *and* the static-prepass verdict
(``secure`` / ``unknown`` / ``null`` when the prepass did not engage).
Any drift — a case flipping verified, or the fast path suddenly
claiming (or no longer claiming) a solver-free proof — fails tier-1
until the catalogue is deliberately regenerated:

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/integration/test_golden_verdicts.py

The point is to make verdict changes *loud*: the fuzzer guards against
unsound verdicts on generated programs, this catalogue guards the
hand-written corpus against silent regressions in either direction.
"""

import json
import os
from pathlib import Path

import pytest

from repro.casestudies import ALL_CASES
from repro.smt.session import SolverSession

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "golden" / "verdicts.json"


def _observed_entry(case, session):
    result = case.verify(session=session)
    return {
        "verified": result.verified,
        "prepass": result.prepass.verdict if result.prepass is not None else None,
    }


@pytest.fixture(scope="module")
def observed():
    session = SolverSession()
    return {case.name: _observed_entry(case, session) for case in ALL_CASES}


def test_catalogue_is_regenerable(observed):
    if os.environ.get("REGEN_GOLDEN") == "1":
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(dict(sorted(observed.items())), indent=2) + "\n"
        )
    assert GOLDEN_PATH.is_file(), (
        f"{GOLDEN_PATH} missing — regenerate with REGEN_GOLDEN=1"
    )


def test_catalogue_covers_exactly_the_corpus(observed):
    golden = json.loads(GOLDEN_PATH.read_text())
    assert set(golden) == set(observed), (
        "corpus and catalogue diverge — regenerate with REGEN_GOLDEN=1; "
        f"missing={sorted(set(observed) - set(golden))} "
        f"stale={sorted(set(golden) - set(observed))}"
    )


@pytest.mark.parametrize("case", ALL_CASES, ids=lambda c: c.name)
def test_verdict_matches_catalogue(case, observed):
    golden = json.loads(GOLDEN_PATH.read_text())
    expected = golden.get(case.name)
    if expected is None:
        pytest.fail(f"{case.name} not in catalogue — REGEN_GOLDEN=1 to add")
    assert observed[case.name] == expected, (
        f"{case.name}: verdict drifted from the golden catalogue "
        f"(got {observed[case.name]}, pinned {expected}); if the change is "
        "intentional, regenerate with REGEN_GOLDEN=1 and review the diff"
    )
