"""The full case-study corpus, discharged fresh-per-VC and through
shared solver sessions (plus a persistent-cache round trip), must agree
verdict-for-verdict — the integration leg of the PR 4 differential
harness."""

import pytest

from repro import api
from repro.casestudies import ALL_CASES
from repro.smt import clear_all_caches
from repro.smt.cache import get_default


def _observe(result):
    """The comparable surface of a VerificationResult."""
    return (
        result.verified,
        result.errors,
        tuple(sorted(result.symbolic_conformance)),
        {name: report.valid for name, report in result.validity_reports.items()},
    )


@pytest.mark.parametrize("case", ALL_CASES, ids=lambda case: case.name)
def test_fresh_and_session_verdicts_agree(case):
    clear_all_caches()
    fresh = case.verify(use_session=False)
    clear_all_caches()  # make the session run actually solve, not hit the cache
    shared = case.verify(use_session=True)
    assert _observe(fresh) == _observe(shared)
    assert fresh.verified == case.expected_verified


def test_corpus_survives_cache_round_trip(tmp_path):
    """Run the corpus once with persistence on, reload the saved store
    cold, re-run: verdicts unchanged and the persistent layer serves a
    non-zero number of hits (the warm-CI contract)."""
    path = tmp_path / "validity_cache.json"
    cache = get_default()
    try:
        cache.forget_persistent()
        clear_all_caches()
        cache.enable_persistence()
        first = [_observe(case.verify()) for case in ALL_CASES]
        saved = cache.save(path)
        assert saved > 0

        cache.forget_persistent()
        clear_all_caches()
        loaded = cache.load(path)
        assert loaded == saved
        second = [_observe(case.verify()) for case in ALL_CASES]
        assert first == second
        assert cache.stats()["persistent_hits"] > 0
    finally:
        cache.forget_persistent()
        clear_all_caches()


@pytest.mark.parametrize("case", ALL_CASES, ids=lambda case: case.name)
def test_api_facade_verdicts_match_fresh_verify(case):
    """The ``repro.api`` leg of the differential harness: executing a
    case request through the facade (what the daemon, CLI and client all
    do) must produce the same observable verdict as a fresh in-process
    :meth:`CaseStudy.verify` run."""
    clear_all_caches()
    fresh = api.verdict_from_result(
        case.verify(use_session=False), expected=case.expected_verified
    )
    clear_all_caches()
    routed = api.execute(api.VerificationRequest(case=case.name))
    assert routed.observable() == fresh.observable()
    assert routed.ok == fresh.ok
    # and the wire encoding is lossless on the observable surface
    assert api.Verdict.from_wire(routed.to_wire()).observable() == routed.observable()


def test_parallel_discharge_matches_sequential():
    """jobs > 1 (process pool where the spec pickles, graceful sequential
    fallback otherwise) must not change any verdict."""
    for case in ALL_CASES[:6]:
        sequential = case.verify(jobs=1)
        parallel = case.verify(jobs=2)
        assert _observe(sequential) == _observe(parallel)
