"""The full case-study corpus, discharged fresh-per-VC and through
shared solver sessions (plus a persistent-cache round trip), must agree
verdict-for-verdict — the integration leg of the PR 4 differential
harness."""

import pytest

from repro.casestudies import ALL_CASES
from repro.smt import clear_all_caches
from repro.smt.cache import GLOBAL


def _observe(result):
    """The comparable surface of a VerificationResult."""
    return (
        result.verified,
        result.errors,
        tuple(sorted(result.symbolic_conformance)),
        {name: report.valid for name, report in result.validity_reports.items()},
    )


@pytest.mark.parametrize("case", ALL_CASES, ids=lambda case: case.name)
def test_fresh_and_session_verdicts_agree(case):
    clear_all_caches()
    fresh = case.verify(use_session=False)
    clear_all_caches()  # make the session run actually solve, not hit the cache
    shared = case.verify(use_session=True)
    assert _observe(fresh) == _observe(shared)
    assert fresh.verified == case.expected_verified


def test_corpus_survives_cache_round_trip(tmp_path):
    """Run the corpus once with persistence on, reload the saved store
    cold, re-run: verdicts unchanged and the persistent layer serves a
    non-zero number of hits (the warm-CI contract)."""
    path = tmp_path / "validity_cache.json"
    try:
        GLOBAL.forget_persistent()
        clear_all_caches()
        GLOBAL.enable_persistence()
        first = [_observe(case.verify()) for case in ALL_CASES]
        saved = GLOBAL.save(path)
        assert saved > 0

        GLOBAL.forget_persistent()
        clear_all_caches()
        loaded = GLOBAL.load(path)
        assert loaded == saved
        second = [_observe(case.verify()) for case in ALL_CASES]
        assert first == second
        assert GLOBAL.stats()["persistent_hits"] > 0
    finally:
        GLOBAL.forget_persistent()
        clear_all_caches()


def test_parallel_discharge_matches_sequential():
    """jobs > 1 (process pool where the spec pickles, graceful sequential
    fallback otherwise) must not change any verdict."""
    for case in ALL_CASES[:6]:
        sequential = case.verify(jobs=1)
        parallel = case.verify(jobs=2)
        assert _observe(sequential) == _observe(parallel)
