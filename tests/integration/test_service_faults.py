"""Fault-injection harness for the verification daemon.

The daemon is booted with ``fault_injection=True``, which honours a
test-only ``_fault`` hook riding next to a batch request::

    {"case": "Figure 3", "_fault": {"kind": "sleep" | "crash" | "oom"
                                           | "corrupt_cache", ...}}

The supervisor strips the hook before parsing the request and forwards
it to the worker, which applies it *before* solving — so tests can
deterministically blow the wall-clock budget (``sleep``), kill a worker
mid-request (``crash``/``oom``) and tear the on-disk cache shard
(``corrupt_cache``).  The assertions here are the service's robustness
contract: the daemon stays serviceable through every fault, the
``stats`` counters (``timeouts``, ``worker_crashes``, ``retries``,
``load_shed``) advance correctly, other tenants' in-flight work is
unaffected, and afterwards all 28 corpus verdicts still match fresh
in-process runs.
"""

import json
import os
import shutil
import tempfile
import threading
import time

import pytest

from repro import api
from repro.casestudies import ALL_CASES
from repro.client import RetryPolicy, ServiceClient, ServiceError, requests_for_cases
from repro.server import VerificationServer

ALL_NAMES = [case.name for case in ALL_CASES]


def start_daemon(server: VerificationServer) -> threading.Thread:
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    for _ in range(200):
        if server.socket_path is not None and os.path.exists(server.socket_path):
            return thread
        time.sleep(0.05)
    raise RuntimeError("daemon did not come up")


def stop_daemon(socket_path, thread: threading.Thread) -> None:
    try:
        with ServiceClient(socket_path=socket_path) as client:
            client.shutdown()
    except (ServiceError, OSError):
        pass
    thread.join(timeout=10)


def faulty_batch(client: ServiceClient, tenant, requests):
    """Send raw wire requests (which may carry ``_fault`` hooks — a
    shape ``VerificationRequest`` deliberately cannot express) and
    collect the event stream through the ``done`` event."""
    client._send({"op": "batch", "tenant": tenant, "requests": list(requests)})
    events = []
    while True:
        event = client._recv()
        events.append(event)
        if event.get("event") == "done":
            return events
        if event.get("event") in ("rejected", "error") and "index" not in event:
            return events


def events_of(events, kind):
    return [event for event in events if event.get("event") == kind]


@pytest.fixture()
def chaos_daemon():
    """A fresh fault-injecting daemon per test: 2 workers, a 1.5s
    wall-clock budget and a 0.4s admission deadline, all short enough to
    exercise every rung of the degradation ladder quickly."""
    tmp = tempfile.mkdtemp(prefix="repro-faults-")
    socket_path = os.path.join(tmp, "chaos.sock")
    server = VerificationServer(
        socket_path=socket_path,
        cache_dir=os.path.join(tmp, "cache"),
        workers=2,
        timeout=1.5,
        queue_deadline=0.4,
        fault_injection=True,
    )
    thread = start_daemon(server)
    yield server, socket_path, tmp
    stop_daemon(socket_path, thread)
    shutil.rmtree(tmp, ignore_errors=True)


# ---------------------------------------------------------------------------
# The degradation ladder, rung by rung
# ---------------------------------------------------------------------------


def test_sleep_fault_times_out_without_hurting_the_bystander(chaos_daemon):
    """Satellite regression for PR 6's ``_abandon_worker`` collateral
    damage: one tenant's timeout used to recycle the *shared* executor,
    abandoning other tenants' in-flight work.  Now only the offending
    worker process is killed: a bystander tenant solving concurrently on
    its own worker finishes normally, on the same worker PID."""
    server, socket_path, _tmp = chaos_daemon
    bystander_outcome = {}

    def bystander():
        with ServiceClient(socket_path=socket_path) as client:
            # repeated solver-bound batches spanning the victim's window
            for _ in range(3):
                outcome = client.run_batch(
                    requests_for_cases(["Figure 3", "Figure 1"]), tenant="bystander"
                )
                bystander_outcome.setdefault("runs", []).append(outcome)

    with ServiceClient(socket_path=socket_path) as victim:
        # pin affinities: victim → worker 0, bystander → worker 1
        victim.configure_tenant("victim")
        victim.configure_tenant("bystander")
        assert server._affinity["victim"] != server._affinity["bystander"]
        bystander_pid = victim.stats()["workers"][server._affinity["bystander"]]["pid"]

        thread = threading.Thread(target=bystander)
        thread.start()
        events = faulty_batch(
            victim, "victim", [{"case": "Figure 3", "_fault": {"kind": "sleep"}}]
        )
        thread.join(timeout=60)

        timeouts = events_of(events, "timeout")
        assert len(timeouts) == 1 and timeouts[0]["index"] == 0
        assert "killed" in timeouts[0]["reason"]
        stats = victim.stats()
    assert stats["timeouts"] == 1
    assert stats["tenants"]["victim"]["timeouts"] == 1
    # the bystander never noticed: every batch complete, worker PID kept
    runs = bystander_outcome["runs"]
    assert len(runs) == 3 and all(run.complete and run.ok for run in runs)
    assert stats["workers"][server._affinity["bystander"]]["pid"] == bystander_pid


@pytest.mark.parametrize("kind", ["crash", "oom"])
def test_crash_fault_is_retried_transparently(chaos_daemon, kind):
    """A worker SIGKILLed mid-request (segfault-grade, or OOM-killed) is
    detected, counted, and the request transparently replayed once on a
    fresh worker — the client sees a normal verdict with attempts=2."""
    server, socket_path, _tmp = chaos_daemon
    with ServiceClient(socket_path=socket_path) as client:
        events = faulty_batch(
            client,
            f"crashy-{kind}",
            [
                {"case": "Figure 3", "_fault": {"kind": kind}},
                {"case": "Figure 1"},
            ],
        )
        verdicts = events_of(events, "verdict")
        assert [event["index"] for event in verdicts] == [0, 1]
        assert verdicts[0]["attempts"] == 2  # one crash, one replay
        assert verdicts[1]["attempts"] == 1
        assert all(
            api.Verdict.from_wire(event["verdict"]).ok for event in verdicts
        )
        stats = client.stats()
        assert stats["worker_crashes"] == 1
        assert stats["retries"] == 1
        assert stats["tenants"][f"crashy-{kind}"]["worker_crashes"] == 1
        assert client.ping()  # no hung connection, daemon serviceable


def test_sticky_crash_gives_up_with_a_structured_event(chaos_daemon):
    """When the replay *also* crashes (sticky fault), the daemon answers
    a structured ``worker_crash`` event after exactly one retry instead
    of looping or hanging, and keeps serving."""
    _server, socket_path, _tmp = chaos_daemon
    with ServiceClient(socket_path=socket_path) as client:
        events = faulty_batch(
            client,
            "doomed",
            [
                {"case": "Figure 3", "_fault": {"kind": "crash", "sticky": True}},
                {"case": "Figure 1"},
            ],
        )
        crashes = events_of(events, "worker_crash")
        assert len(crashes) == 1 and crashes[0]["index"] == 0
        assert crashes[0]["attempts"] == 2  # capped: one retry, then give up
        # the rest of the batch still completes
        verdicts = events_of(events, "verdict")
        assert [event["index"] for event in verdicts] == [1]
        stats = client.stats()
        assert stats["worker_crashes"] == 2
        assert stats["retries"] == 1
        assert client.ping()


def test_corrupt_cache_shard_is_cold_but_correct(chaos_daemon):
    """A shard torn mid-write (the pre-atomic failure mode) must never
    raise: the daemon keeps answering correct verdicts, and the next
    save atomically replaces the garbage with a well-formed store."""
    _server, socket_path, tmp = chaos_daemon
    cache_path = os.path.join(tmp, "cache", api.CACHE_FILENAME)
    with ServiceClient(socket_path=socket_path) as client:
        warmup = client.run_batch(requests_for_cases(["Figure 3"]), tenant="torn")
        assert warmup.complete and os.path.exists(cache_path)
        events = faulty_batch(
            client,
            "torn",
            [{"case": "Figure 1", "_fault": {"kind": "corrupt_cache"}}],
        )
        verdicts = events_of(events, "verdict")
        assert len(verdicts) == 1
        assert api.Verdict.from_wire(verdicts[0]["verdict"]).ok
        # the post-batch save read the torn shard (log-and-skip) and
        # atomically rewrote a well-formed one
        with open(cache_path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        assert isinstance(data.get("entries"), dict) and data["entries"]
        assert client.ping()


def test_load_shed_answers_retry_after_and_client_recovers():
    """With every worker busy past the admission deadline, new requests
    are shed with ``retry_after`` instead of queueing unboundedly — and
    the client's bounded backoff turns the shed into a late verdict."""
    tmp = tempfile.mkdtemp(prefix="repro-shed-")
    socket_path = os.path.join(tmp, "shed.sock")
    server = VerificationServer(
        socket_path=socket_path,
        workers=1,  # one slot: a single sleeper saturates the daemon
        timeout=10.0,
        queue_deadline=0.2,
        fault_injection=True,
    )
    thread = start_daemon(server)
    try:
        def sleeper():
            with ServiceClient(socket_path=socket_path) as client:
                faulty_batch(
                    client,
                    "hog",
                    [{"case": "Figure 3", "_fault": {"kind": "sleep", "seconds": 1.5}}],
                )

        hog = threading.Thread(target=sleeper)
        hog.start()
        time.sleep(0.3)  # let the hog occupy the only worker

        # raw view: the daemon answers retry_after with a delay hint
        with ServiceClient(socket_path=socket_path) as raw:
            events = faulty_batch(raw, "shed-raw", [{"case": "Figure 1"}])
            shed = events_of(events, "retry_after")
            assert len(shed) == 1 and shed[0]["index"] == 0
            assert shed[0]["retry_after"] > 0

        # client view: run_batch retries the shed request and wins once
        # the hog's sleep ends
        policy = RetryPolicy(max_retries=6, base_delay=0.05, max_delay=0.5)
        with ServiceClient(socket_path=socket_path, retry=policy) as client:
            outcome = client.run_batch(
                requests_for_cases(["Figure 1"]), tenant="shed-retry"
            )
        hog.join(timeout=30)
        assert outcome.complete and outcome.ok
        assert outcome.client_retries >= 1
        with ServiceClient(socket_path=socket_path) as client:
            stats = client.stats()
        assert stats["load_shed"] >= 2  # the raw probe plus ≥1 client round
        assert stats["tenants"]["shed-raw"]["load_shed"] == 1
    finally:
        stop_daemon(socket_path, thread)
        shutil.rmtree(tmp, ignore_errors=True)


def test_sleep_faults_overlap_across_workers():
    """Two tenants sleeping 1s each finish in ~1s wall, not ~2s: the
    proof that workers are genuinely separate processes scheduled
    concurrently (valid even on a single-core host, unlike a CPU-bound
    overlap measurement)."""
    tmp = tempfile.mkdtemp(prefix="repro-overlap-")
    socket_path = os.path.join(tmp, "o.sock")
    server = VerificationServer(
        socket_path=socket_path, workers=2, timeout=10.0, fault_injection=True
    )
    thread = start_daemon(server)
    try:
        def sleepy(tenant):
            with ServiceClient(socket_path=socket_path) as client:
                faulty_batch(
                    client,
                    tenant,
                    [{"case": "Figure 3", "_fault": {"kind": "sleep", "seconds": 1.0}}],
                )

        threads = [
            threading.Thread(target=sleepy, args=(tenant,))
            for tenant in ("north", "south")
        ]
        start = time.perf_counter()
        for worker in threads:
            worker.start()
        for worker in threads:
            worker.join(timeout=30)
        wall = time.perf_counter() - start
        assert wall < 1.8, wall  # serialized execution would take >= 2s
    finally:
        stop_daemon(socket_path, thread)
        shutil.rmtree(tmp, ignore_errors=True)


# ---------------------------------------------------------------------------
# After the storm: the differential contract still holds
# ---------------------------------------------------------------------------


def test_corpus_matches_fresh_runs_after_faults(chaos_daemon):
    """Drive every fault kind through the daemon, then verify the whole
    28-case corpus over the socket and pin it verdict-for-verdict to
    fresh in-process runs — chaos must never bend a verdict."""
    _server, socket_path, _tmp = chaos_daemon
    with ServiceClient(socket_path=socket_path) as client:
        faulty_batch(
            client,
            "storm",
            [
                {"case": "Figure 3", "_fault": {"kind": "crash"}},
                {"case": "Figure 1", "_fault": {"kind": "oom"}},
                {"case": "Most-Valuable-Purchase", "_fault": {"kind": "corrupt_cache"}},
                {"case": "Figure 1 (leaky)", "_fault": {"kind": "sleep"}},
            ],
        )
        stats = client.stats()
        assert stats["worker_crashes"] >= 2
        assert stats["retries"] >= 2
        assert stats["timeouts"] >= 1

        outcome = client.run_batch(requests_for_cases(ALL_NAMES), tenant="after")
    assert outcome.complete, (outcome.rejections, outcome.timeouts, outcome.errors)

    fresh = {}
    for case in ALL_CASES:
        result = case.verify(use_session=False)
        fresh[case.name] = api.verdict_from_result(
            result, expected=case.expected_verified
        ).observable()
    for index, name in enumerate(ALL_NAMES):
        assert outcome.verdicts[index].observable() == fresh[name], name
    assert outcome.ok
