"""Integration: a machine-checked CommCSL proof outline (the Fig. 5 pattern).

We derive, through the actual proof rules with all side conditions checked,
the triple

    ⊥ ⊢ {I(x) ∗ Low(α(x)) ∗ emp}  atomic[Inc] {t:=[c]; [c]:=t+1}
        {∃x'. I(x') ∗ Low(α(x')) ∗ emp}

for the shared counter — i.e. the Share rule wrapped around an AtomicShr
use, with the atomic body proved by Read/Write/Frame/Cons.  This is the
single-worker core of the Fig. 5 proof outline; the entailments are
discharged on concrete probe states rather than trusted.
"""

from fractions import Fraction

import pytest

from repro.assertions import (
    BoolAssert,
    Conj,
    Emp,
    Exists,
    Low,
    PointsTo,
    PreShared,
    SGuardAssert,
    SepConj,
    satisfies,
)
from repro.heap import EMPTY_MULTISET, ExtendedHeap, Multiset, PermissionHeap, SharedGuard
from repro.lang.ast import BinOp, Call, Lit, Var
from repro.lang.values import PURE_FUNCTIONS
from repro.logic import (
    ProofError,
    atomic_shared_rule,
    cons_rule,
    frame_rule,
    read_rule,
    seq_rule,
    share_rule,
    write_rule,
)
from repro.spec.library import assign_identity_abstraction_spec, counter_increment_spec
from repro.spec.resource import ResourceContext

SPEC = counter_increment_spec()
CTX = ResourceContext(SPEC, "c")
INC = SPEC.action("Inc")

# Register the action function and abstraction so they can appear in
# assertion expressions before the rules do it themselves.
PURE_FUNCTIONS.setdefault("f_CounterInc_Inc", INC.apply)
PURE_FUNCTIONS.setdefault("alpha_CounterInc", SPEC.abstraction)

I_XV = PointsTo(Var("c"), Var("x_v"), Fraction(1))
APPLIED = Call("f_CounterInc_Inc", (Var("x_v"), Lit(0)))


def heap_probe(counter_value: int, extra_store=None):
    """A probe state pair: c ↦ v with t = x_v = v (the mid-proof shape)."""
    store = {"c": 1, "x_v": counter_value, "t": counter_value}
    store.update(extra_store or {})
    gh = ExtendedHeap(PermissionHeap.singleton(1, counter_value))
    return (dict(store), gh, dict(store), gh)


def guard_probe(fraction, args):
    gh = ExtendedHeap.guard_only(SharedGuard(fraction, Multiset(args)))
    store = {"c": 1}
    return (dict(store), gh, dict(store), gh)


@pytest.fixture(scope="module")
def atomic_proof():
    """Derive Γ ⊢ {emp ∗ sguard(1, ∅)} atomic{...} {emp ∗ sguard(1, {0})}."""
    # 1. {c ↦ x_v} t := [c] {c ↦ x_v ∗ t == x_v}
    read = read_rule(None, "t", Var("c"), Var("x_v"))

    # 2. {c ↦ x_v} [c] := t + 1 {c ↦ t + 1}, framed with t == x_v
    write = write_rule(None, Var("c"), Var("x_v"), BinOp("+", Var("t"), Lit(1)))
    framed_write = frame_rule(write, BoolAssert(BinOp("==", Var("t"), Var("x_v"))))

    # 3. sequence: read's post matches framed write's pre exactly
    body_proof = seq_rule(read, framed_write)

    # 4. reshape with Cons into the AtomicShr premise shape, checking the
    #    entailments on concrete probe states
    probes = [heap_probe(0), heap_probe(1), heap_probe(5)]
    premise = cons_rule(
        body_proof,
        SepConj(Emp(), I_XV),
        SepConj(Emp(), PointsTo(Var("c"), APPLIED, Fraction(1))),
        probes=[
            ({"c": 1, "x_v": v}, ExtendedHeap(PermissionHeap.singleton(1, v)),
             {"c": 1, "x_v": v}, ExtendedHeap(PermissionHeap.singleton(1, v)))
            for v in (0, 1, 5)
        ]
        + [
            ({"c": 1, "x_v": v, "t": v}, ExtendedHeap(PermissionHeap.singleton(1, v + 1)),
             {"c": 1, "x_v": v, "t": v}, ExtendedHeap(PermissionHeap.singleton(1, v + 1)))
            for v in (0, 1, 5)
        ],
    )

    # 5. the AtomicShr rule
    return atomic_shared_rule(
        CTX,
        premise,
        fraction=Fraction(1),
        args_expr=Lit(EMPTY_MULTISET),
        new_arg=Lit(0),
    )


class TestAtomicDerivation:
    def test_conclusion_shape(self, atomic_proof):
        judgment = atomic_proof.judgment
        assert judgment.context == CTX
        assert judgment.pre == SepConj(Emp(), SGuardAssert(Fraction(1), Lit(EMPTY_MULTISET)))

    def test_guard_records_argument(self, atomic_proof):
        post = atomic_proof.judgment.post
        assert isinstance(post.right, SGuardAssert)
        assert post.right.args == Call("msAdd", (Lit(EMPTY_MULTISET), Lit(0)))

    def test_rule_names(self, atomic_proof):
        assert atomic_proof.rule == "AtomicShr"
        rules = set()

        def collect(node):
            rules.add(node.rule)
            for premise in node.premises:
                collect(premise)

        collect(atomic_proof)
        assert {"Read", "Write", "Frame", "Seq", "Cons", "AtomicShr"} <= rules


class TestShareDerivation:
    def _share_premise(self, atomic_proof):
        """Reshape the atomic conclusion into the Share premise shape."""
        expected_pre = SepConj(
            SepConj(Emp(), SGuardAssert(Fraction(1), Lit(EMPTY_MULTISET))), Emp()
        )
        recorded = SGuardAssert(Fraction(1), Var("x_s"))
        expected_post = Exists(
            "x_s",
            SepConj(SepConj(Emp(), SepConj(recorded, PreShared(INC, Var("x_s")))), Emp()),
        )
        probes = [
            guard_probe(Fraction(1), []),
            guard_probe(Fraction(1), [0]),
        ]
        return cons_rule(atomic_proof, expected_pre, expected_post, probes=probes)

    def test_share_rule_succeeds(self, atomic_proof):
        premise = self._share_premise(atomic_proof)
        conclusion = share_rule(CTX, premise)
        assert conclusion.rule == "Share"
        assert conclusion.judgment.context is None  # back to ⊥
        assert "Low" in str(conclusion.judgment.pre)
        assert "∃" in str(conclusion.judgment.post)

    def test_share_rejects_invalid_specification(self, atomic_proof):
        bad_ctx = ResourceContext(assign_identity_abstraction_spec(), "c")
        premise = self._share_premise(atomic_proof)
        with pytest.raises(ProofError, match="invalid"):
            share_rule(bad_ctx, premise)

    def test_share_rejects_wrong_premise_shape(self, atomic_proof):
        with pytest.raises(ProofError, match="premise"):
            share_rule(CTX, atomic_proof)  # missing the UniqueEmpty shape


class TestProbeEntailments:
    """The probe states genuinely distinguish valid from invalid steps."""

    def test_post_entailment_would_fail_with_wrong_argument(self):
        # sguard(1, {0}) does NOT entail ∃x_s. sguard(1, x_s) ∗ PRE with
        # mismatched multiset sizes across executions
        state1 = guard_probe(Fraction(1), [0])
        recorded = SGuardAssert(Fraction(1), Var("x_s"))
        wrong = Exists("x_s", SepConj(recorded, PreShared(INC, Var("x_s"))))
        s1, g1, s2, g2 = state1
        assert satisfies(s1, g1, s2, g2, wrong)  # same states: fine
        # different argument counts across the two executions: no bijection
        _, other, _, _ = guard_probe(Fraction(1), [0, 0])
        assert not satisfies(s1, g1, s2, other, wrong)
