"""Value-dependent sensitivity (Sec. 3.4): ``b ⇒ Low(e)`` end to end."""

import pytest

from repro.assertions.ast import Implies, Low
from repro.assertions.semantics import satisfies
from repro.casestudies import (
    value_dependent,
    value_dependent_leak,
    value_dependent_public_secret,
)
from repro.heap.extheap import ExtendedHeap
from repro.lang import RandomScheduler, Var, run
from repro.spec.inference import infer_preconditions
from repro.spec.library import value_dependent_list_spec
from repro.spec.validity import check_validity


class TestAssertionLevel:
    """The relational implication of Fig. 7: b ⇒ Low(e)."""

    def _states(self, flag, value1, value2):
        store1 = {"flag": flag, "value": value1}
        store2 = {"flag": flag, "value": value2}
        empty = ExtendedHeap.empty() if hasattr(ExtendedHeap, "empty") else ExtendedHeap()
        return store1, empty, store2, empty

    def test_public_flag_requires_equal_values(self):
        assertion = Implies(Var("flag"), Low(Var("value")))
        s1, h1, s2, h2 = self._states(True, 5, 5)
        assert satisfies(s1, h1, s2, h2, assertion)
        s1, h1, s2, h2 = self._states(True, 5, 6)
        assert not satisfies(s1, h1, s2, h2, assertion)

    def test_secret_flag_allows_different_values(self):
        assertion = Implies(Var("flag"), Low(Var("value")))
        s1, h1, s2, h2 = self._states(False, 5, 99)
        assert satisfies(s1, h1, s2, h2, assertion)

    def test_differing_flags_fail_the_implication(self):
        # Fig. 7: the condition itself must be low for b ⇒ P to hold.
        assertion = Implies(Var("flag"), Low(Var("value")))
        store1 = {"flag": True, "value": 5}
        store2 = {"flag": False, "value": 5}
        empty = ExtendedHeap()
        assert not satisfies(store1, empty, store2, empty, assertion)


class TestSpec:
    def test_spec_is_valid(self):
        report = check_validity(value_dependent_list_spec())
        assert report.valid

    def test_precondition_is_genuinely_value_dependent(self):
        action = value_dependent_list_spec().action("AppendLabelled")
        assert action.precondition((True, 5), (True, 5))
        assert not action.precondition((True, 5), (True, 6))
        assert action.precondition((False, 5), (False, 6))
        assert not action.precondition((True, 5), (False, 5))

    def test_projection_inference_cannot_express_it(self):
        # The weakest *projection-only* precondition that validates this
        # abstraction is strictly stronger than the value-dependent one
        # (it must make both components low).  The implication needs the
        # general relational form.
        inference = infer_preconditions(value_dependent_list_spec())
        assert inference.found
        names = inference.projection_names("AppendLabelled")
        assert set(names) == {"fst", "snd"}


class TestVerdicts:
    def test_secure_program_verifies(self):
        result = value_dependent.verify()
        assert result.verified, result.summary()

    def test_relational_obligation_recorded(self):
        result = value_dependent.verify()
        kinds = {obligation.kind for obligation in result.obligations}
        assert "retroactive-relational" in kinds
        assert all(obligation.discharged for obligation in result.obligations)

    def test_full_list_leak_rejected(self):
        result = value_dependent_leak.verify()
        assert not result.verified
        assert any("abstract(ValueDepList)" in error for error in result.errors)

    def test_public_secret_violation_caught_retroactively(self):
        result = value_dependent_public_secret.verify()
        assert not result.verified
        assert any("refuted by bounded checking" in error for error in result.errors)


class TestRuntime:
    INPUTS = {
        "n": 4,
        "flags": (1, 0, 1, 0),
        "vals": (7, 100, 9, 200),
        "delays": (0, 3, 1, 0),
    }

    def test_public_view_is_schedule_independent(self):
        program = value_dependent.program()
        outputs = {
            run(program, dict(self.INPUTS), scheduler=RandomScheduler(seed)).output
            for seed in range(8)
        }
        assert outputs == {((7, 9), 2)}

    def test_secret_values_do_not_reach_the_output(self):
        program = value_dependent.program()
        for secret_vals in ((7, 100, 9, 200), (7, 111, 9, 222)):
            inputs = {**self.INPUTS, "vals": secret_vals}
            output = run(program, inputs).output
            assert output == ((7, 9), 2)
            assert "100" not in str(output) and "111" not in str(output)
