"""Integration: run the case-study programs and check their runtime behavior
matches the paper's claims (schedule-independent low outputs, correct
functional results)."""

import pytest

from repro.casestudies import case_by_name
from repro.lang.interpreter import run
from repro.lang.scheduler import RandomScheduler, RoundRobinScheduler
from repro.lang.values import PMap


def run_all_schedules(case, inputs, schedules=12):
    program = case.program()
    outputs = set()
    outputs.add(run(program, dict(inputs), scheduler=RoundRobinScheduler()).output)
    for seed in range(schedules):
        outputs.add(run(program, dict(inputs), scheduler=RandomScheduler(seed)).output)
    return outputs


class TestFunctionalResults:
    def test_count_vaccinated_counts_correctly(self):
        case = case_by_name("Count-Vaccinated")
        inputs = {"n": 4, "vacc": (1, 0, 1, 1), "hdata": (2, 0, 1, 3)}
        outputs = run_all_schedules(case, inputs)
        assert outputs == {(3,)}

    def test_figure2_sums_targets(self):
        case = case_by_name("Figure 2")
        inputs = {"n": 4, "targets": (2, 0, 1, 3), "hcollisions": (1, 4, 0, 2)}
        outputs = run_all_schedules(case, inputs)
        assert outputs == {(6,)}

    def test_mean_salary_stats(self):
        case = case_by_name("Mean-Salary")
        inputs = {"n": 4, "salaries": (50, 60, 70, 80), "names": (1, 2, 3, 4)}
        outputs = run_all_schedules(case, inputs)
        assert outputs == {((260, 4),)}

    def test_email_metadata_sorted_output(self):
        case = case_by_name("Email-Metadata")
        inputs = {
            "n": 4,
            "senders": (3, 1, 2, 1),
            "stamps": (10, 11, 12, 13),
            "hdelay": (3, 0, 2, 0),
        }
        outputs = run_all_schedules(case, inputs)
        assert outputs == {(((1, 11), (1, 13), (2, 12), (3, 10)),)}

    def test_figure3_key_set(self):
        case = case_by_name("Figure 3")
        inputs = {"n": 4, "addrs": (1, 2, 1, 3), "reasons": (9, 8, 7, 6)}
        outputs = run_all_schedules(case, inputs)
        assert outputs == {((1, 2, 3),)}

    def test_salary_histogram_counts(self):
        case = case_by_name("Salary-Histogram")
        inputs = {"n": 4, "buckets": (1, 2, 1, 1), "hsalary": (1, 0, 2, 0)}
        outputs = run_all_schedules(case, inputs)
        assert outputs == {(PMap({1: 3, 2: 1}),)}

    def test_most_valuable_purchase_keeps_max(self):
        case = case_by_name("Most-Valuable-Purchase")
        inputs = {"n": 4, "users": (1, 2, 1, 2), "prices": (30, 10, 20, 50)}
        outputs = run_all_schedules(case, inputs)
        assert outputs == {(PMap({1: 30, 2: 50}),)}

    def test_producer_consumer_delivers_in_order(self):
        case = case_by_name("1-Producer-1-Consumer")
        inputs = {"n": 3, "items": (5, 6, 7)}
        outputs = run_all_schedules(case, inputs)
        assert outputs == {((5, 6, 7),)}

    def test_pipeline_transforms(self):
        case = case_by_name("Pipeline")
        inputs = {"n": 3, "items": (5, 6, 7)}
        outputs = run_all_schedules(case, inputs, schedules=8)
        assert outputs == {((10, 12, 14),)}

    def test_two_producers_two_consumers_multiset(self):
        case = case_by_name("2-Producers-2-Consumers")
        inputs = {"n": 2, "itemsA": (5, 6), "itemsB": (7, 8)}
        outputs = run_all_schedules(case, inputs, schedules=8)
        assert outputs == {((5, 6, 7, 8),)}


class TestScheduleIndependence:
    """The low output of every verified case study must be identical across
    schedulers AND across high-input variants (the executable form of the
    soundness theorem)."""

    @pytest.mark.parametrize(
        "name",
        [
            "Count-Vaccinated",
            "Figure 2",
            "Count-Sick-Days",
            "Figure 1",
            "Mean-Salary",
            "Email-Metadata",
            "Patient-Statistic",
            "Debt-Sum",
            "Sick-Employee-Names",
            "Website-Visitor-IPs",
            "Figure 3",
            "Sales-By-Region",
            "Salary-Histogram",
            "Count-Purchases",
            "Most-Valuable-Purchase",
            "1-Producer-1-Consumer",
            "Pipeline",
            "2-Producers-2-Consumers",
        ],
    )
    def test_low_output_schedule_and_secret_independent(self, name):
        case = case_by_name(name)
        all_observed = set()
        for group in case.instances():
            for inputs in group:
                all_observed.update(run_all_schedules(case, inputs, schedules=6))
        assert len(all_observed) == 1, f"{name}: observed {all_observed}"


class TestInsecureBehaviour:
    """The negative controls genuinely leak at runtime (the rejections are
    not false positives)."""

    def test_figure1_leaky_output_depends_on_secret(self):
        case = case_by_name("Figure 1 (leaky)")
        low = run_all_schedules(case, {"h": 0}, schedules=4)
        high = run_all_schedules(case, {"h": 150}, schedules=4)
        assert low != high or len(low | high) > 1

    def test_high_key_output_depends_on_secret(self):
        case = case_by_name("Figure 3 (high key)")
        out1 = run_all_schedules(case, {"n": 2, "hkeys": (1, 2)}, schedules=2)
        out2 = run_all_schedules(case, {"n": 2, "hkeys": (3, 4)}, schedules=2)
        assert out1 != out2

    def test_count_channel_output_depends_on_secret(self):
        case = case_by_name("Count-Channel")
        out1 = run_all_schedules(case, {"h": 0}, schedules=2)
        out2 = run_all_schedules(case, {"h": 1}, schedules=2)
        assert out1 != out2
