"""Integration: executable soundness validation.

The paper proves CommCSL sound in Isabelle/HOL (Theorem 4.3); this repo's
substitute is executable: everything the verifier ACCEPTS must satisfy
Def. 2.1 empirically — exhaustively on tiny programs, sampled on the case
studies — and the key soundness lemma (Lemma 4.2) must hold by enumeration
on valid specifications.
"""

import pytest

from repro.casestudies import EXTRA_SECURE_CASES, TABLE1_CASES
from repro.heap.multiset import Multiset
from repro.lang.parser import parse_program
from repro.security import check_exhaustive, check_sampled
from repro.spec import abstractions_of_interleavings, check_validity
from repro.spec.library import VALID_SPECS, producer_consumer_spec
from repro.verifier import ProgramSpec, ResourceDecl, verify
from repro.spec.library import counter_increment_spec, integer_add_spec


SAMPLED_CASES = [case for case in TABLE1_CASES + EXTRA_SECURE_CASES]


@pytest.mark.parametrize("case", SAMPLED_CASES, ids=lambda c: c.name)
def test_accepted_implies_noninterference_sampled(case):
    """verifier-accepted ⇒ Def. 2.1 holds on sampled schedules."""
    result = case.verify()
    assert result.verified
    for group in case.instances():
        report = check_sampled(case.program(), group, schedules=8, seed=99)
        assert report.secure, f"{case.name}: {report.witness}"


class TestExhaustiveTinyPrograms:
    """Straight-line two-thread programs small enough to enumerate every
    interleaving: acceptance must coincide with exhaustive non-interference."""

    def _verify_and_check(self, source, decl, variants, low=frozenset(), high=frozenset()):
        program = parse_program(source)
        spec = ProgramSpec("tiny", program, (decl,), frozenset(low), frozenset(high))
        result = verify(spec, bounded_instances=lambda: [variants], exhaustive_discharge=True)
        ni = check_exhaustive(program, variants)
        return result, ni

    def test_two_increments(self):
        source = (
            "c := alloc(0)\nshare CounterInc\n"
            "{ atomic [Inc()] { t1 := [c]; [c] := t1 + 1 } } || "
            "{ atomic [Inc()] { t2 := [c]; [c] := t2 + 1 } }\n"
            "unshare CounterInc\nout := [c]\nprint(out)"
        )
        decl = ResourceDecl("CounterInc", counter_increment_spec(), "c")
        result, ni = self._verify_and_check(source, decl, [{}])
        assert result.verified and ni.secure

    def test_two_adds_with_high_values_rejected_and_insecure(self):
        source = (
            "c := alloc(0)\nshare IntegerAdd\n"
            "{ atomic [Add(h)] { t1 := [c]; [c] := t1 + h } } || "
            "{ atomic [Add(2)] { t2 := [c]; [c] := t2 + 2 } }\n"
            "unshare IntegerAdd\nout := [c]\nprint(out)"
        )
        decl = ResourceDecl("IntegerAdd", integer_add_spec(), "c")
        result, ni = self._verify_and_check(
            source, decl, [{"h": 0}, {"h": 5}], high={"h"}
        )
        assert not result.verified
        assert not ni.secure

    def test_racing_writes_exhaustive(self):
        """Racing writes with the constant abstraction verify, and the
        exhaustive check confirms the printed constant is invariant."""
        from repro.spec.library import assign_constant_abstraction_spec

        source = (
            "s := alloc(0)\nshare AssignConstantAlpha\n"
            "{ atomic [SetTo(3)] { [s] := 3 } } || { atomic [SetTo(4)] { [s] := 4 } }\n"
            "unshare AssignConstantAlpha\nprint(7)"
        )
        decl = ResourceDecl("AssignConstantAlpha", assign_constant_abstraction_spec(), "s")
        result, ni = self._verify_and_check(source, decl, [{}])
        assert result.verified and ni.secure

    def test_racing_writes_printed_exhaustively_insecure(self):
        from repro.spec.library import assign_constant_abstraction_spec

        source = (
            "s := alloc(0)\nshare AssignConstantAlpha\n"
            "{ atomic [SetTo(3)] { [s] := 3 } } || { atomic [SetTo(4)] { [s] := 4 } }\n"
            "unshare AssignConstantAlpha\nout := [s]\nprint(out)"
        )
        decl = ResourceDecl("AssignConstantAlpha", assign_constant_abstraction_spec(), "s")
        result, ni = self._verify_and_check(source, decl, [{}])
        assert not result.verified  # printing the non-abstract value
        assert not ni.secure  # and it genuinely varies by schedule


class TestLemma42ByEnumeration:
    """For every valid catalogue spec: all interleavings of a recorded
    history yield ONE abstract value (the single-history core of Lemma 4.2)."""

    HISTORIES = {
        "CounterInc": {"shared": [0, 0, 0]},
        "IntegerAdd": {"shared": [1, 2, 3]},
        "AssignConstantAlpha": {"shared": [1, 2]},
        "ListMean": {"shared": [("a", 1), ("b", 2), ("c", 3)]},
        "ListMultiset": {"shared": [("a", 1), ("a", 1), ("b", 2)]},
        "ListLength": {"shared": [("a", 1), ("b", 2)]},
        "ListSum": {"shared": [("a", 5), ("b", 7)]},
        "SetAdd": {"shared": [1, 2, 1]},
        "MapKeySet": {"shared": [(1, 10), (1, 20), (2, 5)]},
        "MapHistogram": {"shared": [1, 1, 2]},
        "MapAddValue": {"shared": [(1, 10), (1, 20)]},
        "MapPutMax": {"shared": [(1, 10), (1, 30), (1, 20)]},
    }

    @pytest.mark.parametrize("name", sorted(HISTORIES))
    def test_single_abstract_value(self, name):
        spec = VALID_SPECS[name]()
        history = self.HISTORIES[name]
        alphas = abstractions_of_interleavings(
            spec, spec.initial_value, Multiset(history["shared"])
        )
        assert len(alphas) == 1, f"{name}: {alphas}"

    def test_unique_streams_interleave_to_single_alpha(self):
        spec = producer_consumer_spec(1, 1)
        alphas = abstractions_of_interleavings(
            spec,
            spec.initial_value,
            unique_args={"Prod": [1, 2, 3], "Cons": [0, 0]},
        )
        assert len(alphas) == 1

    def test_disjoint_puts_single_alpha(self):
        spec = VALID_SPECS["MapDisjointPut"]()
        alphas = abstractions_of_interleavings(
            spec,
            spec.initial_value,
            unique_args={"Put1": [(1, 10), (2, 20)], "Put2": [(3, 30)]},
        )
        assert len(alphas) == 1

    def test_queue_2p2c_single_alpha(self):
        spec = producer_consumer_spec(2, 2)
        alphas = abstractions_of_interleavings(
            spec,
            spec.initial_value,
            Multiset([("prod", 1), ("prod", 2), ("cons", 0)]),
        )
        assert len(alphas) == 1


class TestValiditySoundness:
    """A spec accepted by the validity checker keeps Lemma 4.2 on histories
    drawn from its own argument domains (cross-validation of the checker)."""

    @pytest.mark.parametrize("name", sorted(VALID_SPECS))
    def test_domain_histories_commute(self, name):
        spec = VALID_SPECS[name]()
        assert check_validity(spec).valid
        shared = spec.shared_action
        if shared is None:
            return
        args = spec.arg_domain(shared.name)[:3]
        for initial in spec.value_domain[:2]:
            alphas = abstractions_of_interleavings(spec, initial, Multiset(args))
            assert len(alphas) == 1, f"{name} from {initial!r}: {alphas}"
