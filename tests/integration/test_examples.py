"""Every example script must run to completion (they are documentation)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout  # examples narrate what they do


def test_examples_exist():
    names = {path.stem for path in EXAMPLES}
    assert {"quickstart", "fork_join_workers", "security_lattice", "spec_inference"} <= names
    assert len(EXAMPLES) >= 3
