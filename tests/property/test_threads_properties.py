"""Property-based tests for the fork/join machine and its reduction.

Invariants:

* commutative atomic updates make the final result schedule-independent
  regardless of worker count and amounts (the paper's core insight,
  replayed on dynamically created threads);
* the barrier-structured reduction to ``||`` preserves the set of final
  public outputs (checked exhaustively on small instances);
* worker-local variables never leak into the main thread's store.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import (
    Alloc,
    Atomic,
    BinOp,
    Fork,
    Join,
    Lit,
    Load,
    Print,
    Procedure,
    RandomScheduler,
    Store,
    ThreadedProgram,
    Var,
    enumerate_executions,
    enumerate_threaded_executions,
    forks_to_par,
    run,
    run_threads,
    seq_all,
)
from repro.lang.semantics import Config, State
from repro.lang.threads import MAIN_TID


def _adder(name: str) -> Procedure:
    body = Atomic(
        seq_all(
            Load("tmp", Var("cell")),
            Store(Var("cell"), BinOp("+", Var("tmp"), Var("amount"))),
        )
    )
    return Procedure(name, ("cell", "amount"), body)


def _barrier_program(amounts):
    statements = [Alloc("c", Lit(0))]
    for index, amount in enumerate(amounts):
        statements.append(Fork(f"t{index}", "adder", (Var("c"), Lit(amount))))
    for index in range(len(amounts)):
        statements.append(Join("adder", Var(f"t{index}")))
    statements.append(Load("result", Var("c")))
    statements.append(Print(Var("result")))
    return ThreadedProgram(seq_all(*statements), (_adder("adder"),))


class TestCommutativeForkJoin:
    @given(
        st.lists(st.integers(-5, 5), min_size=1, max_size=4),
        st.integers(0, 50),
    )
    @settings(max_examples=60, deadline=None)
    def test_sum_is_schedule_independent(self, amounts, seed):
        program = _barrier_program(amounts)
        result = run_threads(program, scheduler=RandomScheduler(seed))
        assert result.output == (sum(amounts),)

    @given(st.lists(st.integers(-3, 3), min_size=1, max_size=3))
    @settings(max_examples=30, deadline=None)
    def test_desugared_program_computes_the_same_sum(self, amounts):
        program = _barrier_program(amounts)
        structured = forks_to_par(program)
        assert run(structured).output == (sum(amounts),)

    @given(st.lists(st.integers(-2, 2), min_size=1, max_size=2))
    @settings(max_examples=15, deadline=None)
    def test_exhaustive_output_sets_agree(self, amounts):
        program = _barrier_program(amounts)
        threaded_outputs = set()
        for config in enumerate_threaded_executions(program, max_steps=4_000):
            assert config not in ("abort", "deadlock")
            threaded_outputs.add(config.output)
        structured = forks_to_par(program)
        structured_outputs = set()
        for config in enumerate_executions(Config(structured, State.make()), max_steps=4_000):
            assert config != "abort"
            structured_outputs.add(config.state.output)
        assert threaded_outputs == structured_outputs == {(sum(amounts),)}


class TestIsolation:
    @given(st.lists(st.integers(-3, 3), min_size=1, max_size=3), st.integers(0, 20))
    @settings(max_examples=40, deadline=None)
    def test_worker_locals_never_leak_into_main(self, amounts, seed):
        program = _barrier_program(amounts)
        result = run_threads(program, scheduler=RandomScheduler(seed))
        main_store = result.config.thread(MAIN_TID).store_dict()
        assert "tmp" not in main_store
        assert "amount" not in main_store
        assert "cell" not in main_store

    @given(st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_tokens_are_distinct_positive_ints(self, workers):
        program = _barrier_program([1] * workers)
        # stop right after all forks: run with a scheduler that always
        # picks the main thread first (index 0 is main's step since main
        # is the first thread in tid order)
        from repro.lang.threads import TConfig, tstep

        config = TConfig.make(program)
        # Step the main thread (always listed first) until every fork has
        # executed; each source command takes two small steps (execute +
        # Seq unwrap).
        for _ in range(4 * (1 + workers)):
            tokens_so_far = [
                name
                for name in config.thread(MAIN_TID).store_dict()
                if name.startswith("t")
            ]
            if len(tokens_so_far) == workers:
                break
            steps = tstep(config, program)
            config = steps[0].result
        tokens = [
            value
            for name, value in config.thread(MAIN_TID).store_dict().items()
            if name.startswith("t")
        ]
        assert len(tokens) == workers
        assert len(set(tokens)) == workers
        assert all(isinstance(token, int) and token > 0 for token in tokens)
