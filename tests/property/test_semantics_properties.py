"""Property-based tests of the operational semantics and interpreter."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.ast import Assign, BinOp, If, Lit, Par, Print, Seq, Skip, Var, While
from repro.lang.interpreter import run
from repro.lang.parser import parse_program
from repro.lang.scheduler import FixedScheduler, RandomScheduler
from repro.lang.semantics import evaluate

names = st.sampled_from(["x", "y", "z"])
literals = st.integers(-5, 5).map(Lit)
ops = st.sampled_from(["+", "-", "*"])


@st.composite
def arith_exprs(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        return draw(st.one_of(literals, names.map(Var)))
    return BinOp(draw(ops), draw(arith_exprs(depth=depth - 1)), draw(arith_exprs(depth=depth - 1)))


@st.composite
def straightline_programs(draw):
    statements = [
        Assign(draw(names), draw(arith_exprs())) for _ in range(draw(st.integers(1, 4)))
    ]
    statements.append(Print(draw(arith_exprs())))
    program = statements[-1]
    for statement in reversed(statements[:-1]):
        program = Seq(statement, program)
    return program


class TestExpressionTotality:
    @given(arith_exprs(), st.dictionaries(names, st.integers(-5, 5)))
    def test_evaluation_never_fails(self, expr, store):
        value = evaluate(expr, store)
        assert isinstance(value, int)

    @given(arith_exprs(), st.dictionaries(names, st.integers(-5, 5)))
    def test_evaluation_deterministic(self, expr, store):
        assert evaluate(expr, store) == evaluate(expr, dict(store))


class TestDeterminism:
    @given(straightline_programs(), st.dictionaries(names, st.integers(-3, 3)))
    @settings(max_examples=30, deadline=None)
    def test_sequential_programs_deterministic(self, program, inputs):
        out1 = run(program, dict(inputs)).output
        out2 = run(program, dict(inputs)).output
        assert out1 == out2

    @given(straightline_programs(), straightline_programs(), st.integers(0, 20))
    @settings(max_examples=30, deadline=None)
    def test_fixed_schedule_replays_exactly(self, left, right, seed):
        # Rename right's variables so the threads are interference-free.
        program = Par(left, _rename(right))
        recorded = run(program, scheduler=RandomScheduler(seed))
        choices = [0 if c.startswith("L") or not c else 1 for c in recorded.schedule]
        replayed = run(program, scheduler=FixedScheduler(choices))
        # Same schedule prefix on a deterministic-per-thread program: at
        # minimum the output multiset of the two threads agrees.
        assert sorted(map(repr, recorded.output)) == sorted(map(repr, replayed.output))


def _rename(program):
    mapping = {"x": "x2", "y": "y2", "z": "z2"}

    def rename_expr(expr):
        if isinstance(expr, Var):
            return Var(mapping.get(expr.name, expr.name))
        if isinstance(expr, BinOp):
            return BinOp(expr.op, rename_expr(expr.left), rename_expr(expr.right))
        return expr

    def rename_cmd(cmd):
        if isinstance(cmd, Assign):
            return Assign(mapping.get(cmd.target, cmd.target), rename_expr(cmd.expr))
        if isinstance(cmd, Seq):
            return Seq(rename_cmd(cmd.first), rename_cmd(cmd.second))
        if isinstance(cmd, Print):
            return Print(rename_expr(cmd.expr))
        return cmd

    return rename_cmd(program)


class TestCommutativityAtRuntime:
    """The repo's core claim, exercised on random inputs: programs whose
    shared mutations commute produce schedule-independent outputs."""

    SOURCE = """
c := alloc(0)
share R
{ atomic [Add(a)] { t1 := [c]; [c] := t1 + a } } || { atomic [Add(b)] { t2 := [c]; [c] := t2 + b } }
unshare R
out := [c]
print(out)
"""

    @given(st.integers(-5, 5), st.integers(-5, 5), st.integers(0, 30))
    @settings(max_examples=40, deadline=None)
    def test_adds_schedule_independent(self, a, b, seed):
        program = parse_program(self.SOURCE)
        result = run(program, {"a": a, "b": b}, scheduler=RandomScheduler(seed))
        assert result.output == (a + b,)

    RACY = """
s := alloc(0)
{ atomic [SetTo(1)] { [s] := 1 } } || { atomic [SetTo(2)] { [s] := 2 } }
out := [s]
print(out)
"""

    @given(st.integers(0, 60))
    @settings(max_examples=30, deadline=None)
    def test_racing_writes_end_in_one_of_two_states(self, seed):
        program = parse_program(self.RACY)
        result = run(program, scheduler=RandomScheduler(seed))
        assert result.output in {(1,), (2,)}
