"""Solver conformance suite: the flat-arena CDCL core vs the seed oracle.

The arena rewrite of :class:`repro.smt.dpll.WatchedSolver` re-implements
the soundness-critical hot loop (propagation, conflict analysis, clause
learning) over packed int arrays, and adds three independently toggleable
search features: Luby restarts, LBD-scored reduceDB, and recursive
conflict-clause minimization.  This suite pins the new core to the
retained seed solver (:mod:`repro.smt.reference`) across **every**
on/off combination of those features, on two instance distributions:

* random ≤3-CNF (dense enough to hit both verdicts and to force real
  conflict analysis);
* Tseitin CNFs of random boolean terms (the skeleton distribution the
  verifier actually feeds the solver), checked end-to-end through
  :func:`repro.smt.dpll.sat` / the reference's ``cnf_of_reference``.

Checked contracts, per configuration:

* **verdict agreement** — SAT/UNSAT exactly matches the reference;
* **model validity** — returned (partial) models satisfy every input
  clause, either outright or via an unconstrained variable;
* **learned-clause implication** — every live learned clause, and every
  learned root-level unit, is implied by the input (its negation plus
  the input is UNSAT by a fresh reference solve);
* **database integrity** — :meth:`WatchedSolver.db_check` holds after
  the solve (watch lists, trail reasons, polarity consistency).

A fixed-seed deterministic leg (``TestFixedSeedConformance``) re-runs
the differential on a frozen instance set so the CI tier-1 job exercises
it without hypothesis' randomized exploration.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import reference
from repro.smt.dpll import WatchedSolver, sat
from repro.smt.solver import check_validity
from repro.smt.sorts import BOOL
from repro.smt.terms import App, Const, SymVar

#: Every on/off combination of the three search features; reduce_floor
#: is pinned low so reduceDB actually fires on these small instances.
CONFIGS = [
    {"restarts": restarts, "reduce_db": reduce_db, "minimize": minimize}
    for restarts, reduce_db, minimize in itertools.product(
        (True, False), repeat=3
    )
]


def _config_id(config):
    return "".join(
        ("R" if config["restarts"] else "r")
        + ("D" if config["reduce_db"] else "d")
        + ("M" if config["minimize"] else "m")
    )


def _make_solver(clauses, config):
    kwargs = dict(config)
    if kwargs.get("reduce_db"):
        kwargs["reduce_floor"] = 2  # force reductions on small instances
    return WatchedSolver(clauses, **kwargs)


def _assert_model_valid(clauses, model):
    for clause in clauses:
        satisfied = any(
            model.get(abs(literal), None) == (literal > 0)
            or abs(literal) not in model
            for literal in clause
        )
        assert satisfied, f"clause {clause} unsatisfied by shrunk model {model}"


def _assert_learned_implied(clauses, solver):
    for clause in solver.live_learned_clauses():
        negated_units = [(-literal,) for literal in clause]
        assert (
            reference.dpll_reference(list(clauses) + negated_units) is None
        ), f"learned clause {clause} not implied by {clauses}"
    if not solver._unsat:
        for literal in solver._units:
            assert (
                reference.dpll_reference(list(clauses) + [(-literal,)]) is None
            ), f"learned unit {literal} not implied by {clauses}"


def _differential(clauses, config):
    solver = _make_solver(clauses, config)
    model = solver.solve()
    oracle = reference.dpll_reference([list(c) for c in clauses], {})
    assert (model is None) == (oracle is None), (
        f"verdict drift under {config}: arena "
        f"{'UNSAT' if model is None else 'SAT'}, reference "
        f"{'UNSAT' if oracle is None else 'SAT'} on {clauses}"
    )
    if model is not None:
        _assert_model_valid(clauses, model)
    _assert_learned_implied(clauses, solver)
    solver.db_check()


# ---------------------------------------------------------------------------
# Randomized legs (hypothesis)
# ---------------------------------------------------------------------------


@st.composite
def cnf_instances(draw):
    """Random ≤3-CNF over at most 8 variables (dense enough for UNSAT)."""
    variable_count = draw(st.integers(min_value=1, max_value=8))
    clause_count = draw(st.integers(min_value=1, max_value=28))
    clauses = []
    for _ in range(clause_count):
        width = draw(st.integers(min_value=1, max_value=min(3, variable_count)))
        variables = draw(
            st.lists(
                st.integers(min_value=1, max_value=variable_count),
                min_size=width,
                max_size=width,
                unique=True,
            )
        )
        clauses.append(
            tuple(
                variable if draw(st.booleans()) else -variable
                for variable in variables
            )
        )
    return clauses


@st.composite
def boolean_terms(draw, depth=4):
    """Random boolean terms over a handful of opaque boolean atoms."""
    atoms = [SymVar(name, BOOL) for name in ("p", "q", "r", "s")]
    if depth == 0:
        choice = draw(st.integers(min_value=0, max_value=len(atoms)))
        if choice == len(atoms):
            return Const(draw(st.booleans()))
        return atoms[choice]
    op = draw(st.sampled_from(("and", "or", "not", "implies", "atom")))
    if op == "atom":
        return atoms[draw(st.integers(min_value=0, max_value=len(atoms) - 1))]
    if op == "not":
        return App("not", (draw(boolean_terms(depth=depth - 1)),))
    arity = 2 if op in ("implies",) else draw(st.integers(2, 3))
    return App(
        op, tuple(draw(boolean_terms(depth=depth - 1)) for _ in range(arity))
    )


@pytest.mark.parametrize("config", CONFIGS, ids=_config_id)
class TestRandomCNFConformance:
    @given(cnf_instances())
    @settings(max_examples=40, deadline=None)
    def test_agrees_with_reference(self, config, clauses):
        _differential(clauses, config)


@pytest.mark.parametrize("config", CONFIGS, ids=_config_id)
class TestTseitinConformance:
    @given(boolean_terms())
    @settings(max_examples=25, deadline=None)
    def test_sat_of_random_terms(self, config, term):
        """End-to-end through Tseitin: `sat` verdict vs the reference's
        cnf + recursive DPLL, under every feature combination (the
        configured solver is driven on the reference's clause set so the
        encodings are comparable clause-for-clause)."""
        clauses, _table, root = reference.tseitin_reference(term)
        full = list(clauses) + [(root,)]
        _differential(full, config)
        # And the production entry point (polarity-aware encoding) must
        # agree on satisfiability with the reference encoding.
        model = sat(term)
        oracle = reference.dpll_reference([list(c) for c in full], {})
        assert (model is None) == (oracle is None)


# ---------------------------------------------------------------------------
# Fixed-seed deterministic leg (wired into CI tier-1)
# ---------------------------------------------------------------------------


def _random_cnf(rng, variable_count, clause_count):
    clauses = []
    for _ in range(clause_count):
        width = rng.randint(1, 3)
        variables = rng.sample(
            range(1, variable_count + 1), min(width, variable_count)
        )
        clauses.append(
            tuple(v if rng.random() < 0.5 else -v for v in variables)
        )
    return clauses


def _fixed_instances():
    """A frozen instance set: seeded random CNFs plus crafted corners
    (pigeonholes for real conflict-analysis depth, chains for long
    propagation, an empty-ish and a unit-heavy instance)."""
    rng = random.Random(20260808)
    instances = [
        _random_cnf(rng, rng.randint(2, 9), rng.randint(3, 30))
        for _ in range(30)
    ]

    def pigeonhole(pigeons, holes):
        clauses = [
            tuple(p * holes + h + 1 for h in range(holes))
            for p in range(pigeons)
        ]
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append(
                        (-(p1 * holes + h + 1), -(p2 * holes + h + 1))
                    )
        return clauses

    instances.append(pigeonhole(4, 3))  # UNSAT, needs genuine learning
    instances.append(pigeonhole(4, 4))  # SAT, a perfect matching exists
    instances.append([(i, -(i + 1)) for i in range(1, 40)] + [(40,), (-1,)])
    instances.append([(1,), (-1, 2), (-2, 3), (-3,)])  # unit chain to UNSAT
    return instances


@pytest.mark.parametrize("config", CONFIGS, ids=_config_id)
def test_fixed_seed_conformance(config):
    for clauses in _fixed_instances():
        _differential(clauses, config)


def test_fixed_seed_incremental_conformance():
    """Assumption/retire sequences on a frozen schedule: the incremental
    solver's verdict after each activate/solve/retire step must match a
    fresh reference solve of the live clause set plus assumption units."""
    rng = random.Random(987)
    for config in CONFIGS:
        solver = _make_solver([], config)
        # The oracle solves the clauses *as added* — solver-side
        # introspection would miss root-level contradictions the solver
        # resolves at add time.
        base = _random_cnf(rng, 6, 14)
        for clause in base:
            solver.add_clause(clause)
        for step in range(6):
            activation = 50 + step
            mark = solver.clause_mark()
            guarded = [
                tuple(list(c) + [-activation])
                for c in _random_cnf(rng, 6, rng.randint(1, 6))
            ]
            for clause in guarded:
                solver.add_clause(clause)
            model = solver.solve([activation])
            oracle = reference.dpll_reference(
                [list(c) for c in base]
                + [list(c) for c in guarded]
                + [[activation]]
            )
            assert (model is None) == (oracle is None), (
                f"incremental drift at step {step} under {config}"
            )
            solver.retire(activation, since=mark)
            solver.db_check()
        # After all retirements the original instance's verdict is intact.
        model = solver.solve()
        oracle = reference.dpll_reference([list(c) for c in base])
        assert (model is None) == (oracle is None)


def test_fixed_seed_validity_smoke():
    """A handful of boolean tautologies/non-tautologies through the full
    check_validity pipeline (sanity that the arena core composes)."""
    p, q = SymVar("p", BOOL), SymVar("q", BOOL)
    assert check_validity(App("or", (p, App("not", (p,))))).is_valid()
    assert check_validity(
        App("implies", (App("and", (p, q)), p))
    ).is_valid()
    assert not check_validity(App("implies", (p, q))).is_valid()
