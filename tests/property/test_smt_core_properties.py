"""Property-based validation of the optimized SMT core against the
retained reference implementation (:mod:`repro.smt.reference`).

The optimization contract is *semantic transparency*: hash-consing,
compiled evaluation, the watched-literal search, and memoized
simplification must be observationally identical to the seed algorithms.
Each property below drives both implementations with the same random
input and requires agreement.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import reference
from repro.smt.compile import compile_term
from repro.smt.cnf import cnf_of, to_nnf
from repro.smt.dpll import dpll, dpllt_equality, propositionally_valid, sat
from repro.smt.simplify import simplify
from repro.smt.solver import check_validity
from repro.smt.sorts import BOOL, INT
from repro.smt.terms import App, Const, SymVar, evaluate_term, free_symvars, negate

BOOL_VARS = [SymVar(name, BOOL) for name in ("a", "b", "c", "d")]
INT_VARS = [SymVar(name, INT) for name in ("x", "y", "z")]


@st.composite
def bool_terms(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        return draw(st.sampled_from(BOOL_VARS + [Const(True), Const(False)]))
    op = draw(st.sampled_from(["and", "or", "not", "implies", "ite"]))
    if op == "not":
        return App("not", (draw(bool_terms(depth=depth - 1)),))
    if op == "ite":
        return App(
            "ite",
            (
                draw(bool_terms(depth=depth - 1)),
                draw(bool_terms(depth=depth - 1)),
                draw(bool_terms(depth=depth - 1)),
            ),
        )
    return App(op, (draw(bool_terms(depth=depth - 1)), draw(bool_terms(depth=depth - 1))))


@st.composite
def int_terms(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        return draw(
            st.sampled_from(INT_VARS + [Const(0), Const(1), Const(2), Const(-1)])
        )
    op = draw(st.sampled_from(["+", "-", "*", "/", "%", "neg", "ite"]))
    if op == "neg":
        return App("neg", (draw(int_terms(depth=depth - 1)),))
    if op == "ite":
        return App(
            "ite",
            (
                draw(mixed_formulas(depth=1)),
                draw(int_terms(depth=depth - 1)),
                draw(int_terms(depth=depth - 1)),
            ),
        )
    return App(op, (draw(int_terms(depth=depth - 1)), draw(int_terms(depth=depth - 1))))


@st.composite
def mixed_formulas(draw, depth=2):
    """Boolean formulas over comparison/equality atoms of integer terms."""
    if depth == 0:
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        return App(op, (draw(int_terms(depth=1)), draw(int_terms(depth=1))))
    choice = draw(st.integers(min_value=0, max_value=4))
    if choice == 0:
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        return App(op, (draw(int_terms(depth=2)), draw(int_terms(depth=2))))
    if choice == 1:
        return App("not", (draw(mixed_formulas(depth=depth - 1)),))
    op = draw(st.sampled_from(["and", "or", "implies"]))
    return App(
        op, (draw(mixed_formulas(depth=depth - 1)), draw(mixed_formulas(depth=depth - 1)))
    )


def all_bool_assignments(term):
    names = sorted(v.name for v in free_symvars(term))
    for values in itertools.product([False, True], repeat=len(names)):
        yield dict(zip(names, values))


class TestCompiledEvaluation:
    @given(bool_terms())
    @settings(max_examples=200, deadline=None)
    def test_compiled_matches_reference_on_booleans(self, term):
        compiled = compile_term(term)
        for assignment in all_bool_assignments(term):
            assert bool(compiled(assignment)) == bool(
                reference.evaluate_reference(term, assignment)
            )

    @given(mixed_formulas(), st.lists(st.integers(-3, 3), min_size=3, max_size=3))
    @settings(max_examples=200, deadline=None)
    def test_compiled_matches_reference_on_mixed_terms(self, term, values):
        assignment = dict(zip(("x", "y", "z"), values))
        compiled = compile_term(term)
        try:
            expected = reference.evaluate_reference(term, assignment)
        except Exception as error:  # noqa: BLE001 — exception parity
            try:
                compiled(assignment)
            except Exception as compiled_error:  # noqa: BLE001
                assert type(compiled_error) is type(error)
                return
            raise AssertionError("compiled evaluation missed an exception")
        assert compiled(assignment) == expected


class TestSimplifyAgainstReference:
    @given(mixed_formulas(), st.lists(st.integers(-3, 3), min_size=3, max_size=3))
    @settings(max_examples=200, deadline=None)
    def test_simplification_is_semantics_preserving(self, term, values):
        # The optimized simplifier has *more* rewrites than the seed's,
        # so outputs may differ syntactically — but never semantically.
        assignment = dict(zip(("x", "y", "z"), values))
        simplified = simplify(term)
        try:
            expected = reference.evaluate_reference(term, assignment)
        except Exception:  # noqa: BLE001 — both sides partial: skip
            return
        assert bool(reference.evaluate_reference(simplified, assignment)) == bool(
            expected
        )


class TestWatchedSolverAgainstReference:
    @given(bool_terms())
    @settings(max_examples=300, deadline=None)
    def test_sat_agrees_with_reference(self, term):
        assert (sat(term) is not None) == (reference.sat_reference(term) is not None)

    @given(bool_terms())
    @settings(max_examples=200, deadline=None)
    def test_validity_agrees_with_reference(self, term):
        assert propositionally_valid(term) == reference.propositionally_valid_reference(
            term
        )

    @given(bool_terms())
    @settings(max_examples=150, deadline=None)
    def test_watched_models_satisfy_reference_cnf(self, term):
        clauses, _table = cnf_of(term)
        model = dpll(clauses)
        reference_model = reference.dpll_reference(clauses)
        assert (model is None) == (reference_model is None)
        if model is not None:
            for clause in clauses:
                assert any((lit > 0) == model.get(abs(lit), False) for lit in clause)


@st.composite
def euf_formulas(draw, depth=2):
    """Boolean combinations of equalities over {x, y, z, f(x), f(y), f(z)}."""
    terms = INT_VARS + [App("f", (v,)) for v in INT_VARS]
    if depth == 0:
        op = draw(st.sampled_from(["==", "!="]))
        return App(op, (draw(st.sampled_from(terms)), draw(st.sampled_from(terms))))
    choice = draw(st.integers(min_value=0, max_value=3))
    if choice == 0:
        op = draw(st.sampled_from(["==", "!="]))
        return App(op, (draw(st.sampled_from(terms)), draw(st.sampled_from(terms))))
    if choice == 1:
        return App("not", (draw(euf_formulas(depth=depth - 1)),))
    op = draw(st.sampled_from(["and", "or", "implies"]))
    return App(
        op, (draw(euf_formulas(depth=depth - 1)), draw(euf_formulas(depth=depth - 1)))
    )


class TestDPLLTAgainstReference:
    @given(euf_formulas())
    @settings(max_examples=150, deadline=None)
    def test_dpllt_satisfiability_agrees(self, term):
        new = dpllt_equality(term)
        ref = reference.dpllt_equality_reference(term)
        assert (new is None) == (ref is None)
        if new is not None:
            assert new.satisfiable == ref.satisfiable


class TestValidityVerdictsAgainstReference:
    @given(bool_terms())
    @settings(max_examples=100, deadline=None)
    def test_boolean_validity_verdicts_identical(self, term):
        new = check_validity(term)
        ref = reference.check_validity_reference(term)
        assert new.verdict == ref.verdict

    @given(euf_formulas())
    @settings(max_examples=75, deadline=None)
    def test_euf_validity_verdicts_identical(self, term):
        from repro.smt.solver import Verdict

        new = check_validity(term)
        ref = reference.check_validity_reference(term)
        # The != reflexivity rewrite decides formulas like f(x) != f(x)
        # that the seed's enumerator could not interpret (uninterpreted
        # f) — a sound strengthening.  Everything the seed decided must
        # be byte-identical, and the new core must never be *less*
        # decided than the seed.
        if ref.verdict != Verdict.UNKNOWN:
            assert new.verdict == ref.verdict

    @given(mixed_formulas())
    @settings(max_examples=50, deadline=None)
    def test_mixed_validity_acceptance_identical(self, term):
        # The optimized simplifier carries *more* rewrites (<=/< and !=
        # reflexivity), which can soundly upgrade BOUNDED to PROVED on
        # formulas containing syntactically reflexive atoms.  Acceptance
        # (valid / refuted / unknown) must still agree exactly.
        from repro.smt.solver import Verdict

        new = check_validity(term)
        ref = reference.check_validity_reference(term)
        assert new.is_valid() == ref.is_valid()
        assert (new.verdict == Verdict.REFUTED) == (ref.verdict == Verdict.REFUTED)
        assert (new.verdict == Verdict.UNKNOWN) == (ref.verdict == Verdict.UNKNOWN)

    @given(bool_terms())
    @settings(max_examples=50, deadline=None)
    def test_cached_replay_verdicts_stable(self, term):
        first = check_validity(term)
        again = check_validity(term)
        assert again.verdict == first.verdict


class TestInterningProperties:
    @given(bool_terms())
    @settings(max_examples=150, deadline=None)
    def test_reconstruction_is_canonical(self, term):
        def rebuild(node):
            if isinstance(node, App):
                return App(node.op, tuple(rebuild(arg) for arg in node.args))
            if isinstance(node, SymVar):
                return SymVar(node.name, node.sort)
            return Const(node.value)

        # ``term`` may predate an intern-table clear (other suites clear
        # caches mid-run; cleared terms stay *usable* but stop being
        # canonical).  Canonicalize first, then reconstruction must be
        # identity-stable.
        canonical = rebuild(term)
        assert rebuild(canonical) is canonical
        assert canonical == term

    @given(bool_terms())
    @settings(max_examples=150, deadline=None)
    def test_nnf_is_deterministic_and_shared(self, term):
        assert to_nnf(term) is to_nnf(term)
