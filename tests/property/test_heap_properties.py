"""Property-based tests: algebraic laws of the extended-heap components.

The soundness proof relies on ``⊕`` forming a partial commutative monoid
on extended heaps; these properties pin that down on randomly generated
heaps and guards.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.heap import (
    ExtendedHeap,
    GuardFamily,
    HeapAdditionUndefined,
    Multiset,
    PermissionHeap,
    SharedGuard,
    UniqueGuard,
    add_shared_guards,
)

elements = st.integers(min_value=-3, max_value=3)
multisets = st.lists(elements, max_size=5).map(Multiset)
fractions = st.sampled_from([Fraction(1, 4), Fraction(1, 3), Fraction(1, 2), Fraction(1)])


@st.composite
def perm_heaps(draw):
    cells = {}
    for location in draw(st.lists(st.integers(1, 4), unique=True, max_size=3)):
        cells[location] = (draw(fractions), draw(elements))
    return PermissionHeap(cells)


@st.composite
def shared_guards(draw):
    if draw(st.booleans()):
        return None
    return SharedGuard(draw(fractions), draw(multisets))


@st.composite
def guard_families(draw):
    members = {}
    for index in draw(st.lists(st.sampled_from(["i", "j"]), unique=True, max_size=2)):
        members[index] = UniqueGuard(tuple(draw(st.lists(elements, max_size=3))))
    return GuardFamily(members)


@st.composite
def extended_heaps(draw):
    return ExtendedHeap(draw(perm_heaps()), draw(shared_guards()), draw(guard_families()))


def try_add(a, b):
    try:
        return a + b
    except HeapAdditionUndefined:
        return None


class TestMultisetLaws:
    @given(multisets, multisets)
    def test_union_commutative(self, a, b):
        assert a + b == b + a

    @given(multisets, multisets, multisets)
    def test_union_associative(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(multisets)
    def test_empty_is_identity(self, a):
        assert a + Multiset() == a

    @given(multisets, multisets)
    def test_difference_inverts_union(self, a, b):
        assert (a + b) - b == a

    @given(multisets, multisets)
    def test_cardinality_additive(self, a, b):
        assert len(a + b) == len(a) + len(b)

    @given(multisets, multisets)
    def test_subset_of_union(self, a, b):
        assert a.issubset(a + b)


class TestPermHeapLaws:
    @given(perm_heaps(), perm_heaps())
    def test_addition_commutative(self, a, b):
        assert try_add(a, b) == try_add(b, a)

    @given(perm_heaps(), perm_heaps(), perm_heaps())
    def test_addition_associative_when_defined(self, a, b, c):
        left = try_add(a, b)
        left = try_add(left, c) if left is not None else None
        right = try_add(b, c)
        right = try_add(a, right) if right is not None else None
        if left is not None and right is not None:
            assert left == right

    @given(perm_heaps())
    def test_empty_is_identity(self, a):
        assert a + PermissionHeap.empty() == a

    @given(perm_heaps(), perm_heaps())
    def test_addition_preserves_values(self, a, b):
        total = try_add(a, b)
        if total is None:
            return
        for location in a.domain():
            assert total.value(location) == a.value(location)

    @given(perm_heaps())
    def test_normalize_domain(self, a):
        assert set(a.normalize()) == set(a.domain())


class TestGuardLaws:
    @given(shared_guards(), shared_guards())
    def test_shared_addition_commutative(self, a, b):
        try:
            left = add_shared_guards(a, b)
        except HeapAdditionUndefined:
            left = "undef"
        try:
            right = add_shared_guards(b, a)
        except HeapAdditionUndefined:
            right = "undef"
        assert left == right

    @given(shared_guards())
    def test_bottom_is_identity(self, a):
        assert add_shared_guards(a, None) == a

    @given(multisets, st.integers(2, 4))
    def test_split_recombines(self, args, pieces):
        guard = SharedGuard(Fraction(1), args)
        parts = guard.split(pieces)
        total = parts[0]
        for part in parts[1:]:
            total = add_shared_guards(total, part)
        assert total == guard

    @given(guard_families(), guard_families())
    def test_family_addition_commutative(self, a, b):
        assert try_add(a, b) == try_add(b, a)


class TestExtendedHeapLaws:
    @given(extended_heaps(), extended_heaps())
    def test_addition_commutative(self, a, b):
        assert try_add(a, b) == try_add(b, a)

    @given(extended_heaps())
    def test_empty_is_identity(self, a):
        assert a + ExtendedHeap.empty() == a

    @given(extended_heaps())
    def test_normalization_forgets_guards(self, a):
        stripped = ExtendedHeap(a.perm_heap)
        assert a.normalize() == stripped.normalize()

    @given(extended_heaps(), extended_heaps())
    def test_compatibility_symmetric(self, a, b):
        assert a.compatible(b) == b.compatible(a)
