"""Property-based tests for the static pre-verification analyses.

* **Lockset vs. brute force** — on a generator of two-branch parallel
  programs (plain reads/writes, atomic read-modify-writes, local
  assignments over two heap cells), the lockset detector's verdict must
  coincide with a brute-force oracle that explores every reachable
  configuration of the small-step semantics and looks for co-enabled
  conflicting accesses not both under ``atomic``.  On this fragment the
  abstraction is exact: no missed races (soundness) and no spurious ones
  (precision).
* **Flow monotonicity** — declassifying inputs (moving variables from
  high to low) can only keep a ``secure`` verdict.
* **Flow soundness** — a ``secure`` verdict on a terminating sequential
  program implies empirical non-interference: executions that differ
  only in the high input produce identical output traces.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_flow, check_races
from repro.lang import run
from repro.lang.ast import (
    Alloc,
    Assign,
    Atomic,
    BinOp,
    If,
    Lit,
    Load,
    Par,
    Print,
    Seq,
    Skip,
    Store,
    Var,
    seq_all,
)
from repro.lang.semantics import Config, State, evaluate, step

# ---------------------------------------------------------------------------
# Generators: two-branch parallel programs over cells 'c' and 'd'
# ---------------------------------------------------------------------------

_CELLS = ("c", "d")


def _op_to_command(op, side):
    kind, cell, payload = op
    if kind == "write":
        return Store(Var(cell), Lit(payload))
    if kind == "read":
        return Load(f"r{side}{payload}", Var(cell))
    if kind == "atomic":
        tmp = f"t{side}{payload}"
        return Atomic(
            Seq(
                Load(tmp, Var(cell)),
                Store(Var(cell), BinOp("+", Var(tmp), Lit(payload))),
            )
        )
    return Assign(f"x{side}{payload}", Lit(payload))


_par_op = st.tuples(
    st.sampled_from(("write", "read", "atomic", "local")),
    st.sampled_from(_CELLS),
    st.integers(0, 2),
)
_par_branch = st.lists(_par_op, min_size=1, max_size=3)


def _par_program(left_ops, right_ops):
    left = seq_all(*[_op_to_command(op, "l") for op in left_ops])
    right = seq_all(*[_op_to_command(op, "r") for op in right_ops])
    return seq_all(Alloc("c", Lit(0)), Alloc("d", Lit(0)), Par(left, right))


# ---------------------------------------------------------------------------
# Brute-force race oracle over the small-step semantics
# ---------------------------------------------------------------------------


def _next_accesses(branch, state):
    """(location, kind, synchronized) for the branch's next enabled step."""
    cmd = branch
    while isinstance(cmd, Seq):
        cmd = cmd.first
    store = state.store_dict()
    if isinstance(cmd, Load):
        return [(evaluate(cmd.address, store), "read", False)]
    if isinstance(cmd, Store):
        return [(evaluate(cmd.address, store), "write", False)]
    if isinstance(cmd, Atomic):
        accesses = []
        body = [cmd.body]
        while body:
            inner = body.pop()
            if isinstance(inner, Seq):
                body.extend((inner.first, inner.second))
            elif isinstance(inner, Load):
                accesses.append((evaluate(inner.address, store), "read", True))
            elif isinstance(inner, Store):
                accesses.append((evaluate(inner.address, store), "write", True))
        return accesses
    return []


def _config_has_race(config):
    # Walk only *enabled* positions: the head of a Seq and both branches
    # of a Par.  A Par still suspended behind an un-executed prefix is
    # not co-enabled and must not be inspected.
    commands = [config.command]
    while commands:
        cmd = commands.pop()
        if isinstance(cmd, Seq):
            commands.append(cmd.first)
        elif isinstance(cmd, Par):
            left = _next_accesses(cmd.left, config.state)
            right = _next_accesses(cmd.right, config.state)
            for loc_a, kind_a, sync_a in left:
                for loc_b, kind_b, sync_b in right:
                    if loc_a != loc_b:
                        continue
                    if kind_a == "read" and kind_b == "read":
                        continue
                    if sync_a and sync_b:
                        continue
                    return True
            commands.extend((cmd.left, cmd.right))
    return False


def _brute_force_race(program, max_configs=5000):
    seen = set()
    frontier = [Config(program, State.make())]
    while frontier and len(seen) < max_configs:
        config = frontier.pop()
        if config in seen:
            continue
        seen.add(config)
        if _config_has_race(config):
            return True
        for successor in step(config):
            if successor.result != "abort":
                frontier.append(successor.result)
    return False


class TestLocksetVsBruteForce:
    @given(_par_branch, _par_branch)
    @settings(max_examples=120, deadline=None)
    def test_detector_agrees_with_exhaustive_interleaving(self, left_ops, right_ops):
        program = _par_program(left_ops, right_ops)
        detected = any(d.code == "R001" for d in check_races(program))
        concrete = _brute_force_race(program)
        assert detected == concrete

    @given(_par_branch, _par_branch)
    @settings(max_examples=60, deadline=None)
    def test_fully_atomic_programs_are_race_free(self, left_ops, right_ops):
        left_ops = [("atomic", cell, k) for _, cell, k in left_ops]
        right_ops = [("atomic", cell, k) for _, cell, k in right_ops]
        program = _par_program(left_ops, right_ops)
        assert not any(d.code == "R001" for d in check_races(program))
        assert not _brute_force_race(program)


# ---------------------------------------------------------------------------
# Generators: terminating sequential programs over a, b (low) and h (high)
# ---------------------------------------------------------------------------


def _exprs(values=("a", "b", "h", "x", "y")):
    atoms = st.one_of(
        st.integers(-3, 3).map(Lit),
        st.sampled_from(values).map(Var),
    )
    return st.recursive(
        atoms,
        lambda children: st.builds(
            BinOp, st.sampled_from(("+", "-", "*")), children, children
        ),
        max_leaves=4,
    )


def _conditions():
    return st.builds(BinOp, st.just("<"), _exprs(), _exprs())


def _commands():
    simple = st.one_of(
        st.builds(Assign, st.sampled_from(("x", "y")), _exprs()),
        st.builds(Print, _exprs()),
        st.just(Skip()),
    )
    return st.recursive(
        simple,
        lambda children: st.one_of(
            st.builds(Seq, children, children),
            st.builds(If, _conditions(), children, children),
        ),
        max_leaves=6,
    )


class TestFlowProperties:
    @given(_commands())
    @settings(max_examples=150, deadline=None)
    def test_declassification_is_monotone(self, program):
        # secure with {h} high => secure with nothing high.
        before = analyze_flow(program, low_inputs=("a", "b"), high_inputs=("h",))
        if before.secure:
            after = analyze_flow(program, low_inputs=("a", "b", "h"), high_inputs=())
            assert after.secure

    @given(_commands())
    @settings(max_examples=100, deadline=None)
    def test_all_low_sequential_programs_are_secure(self, program):
        report = analyze_flow(program, low_inputs=("a", "b", "h", "x", "y"))
        assert report.secure

    @given(
        _commands(),
        st.integers(-3, 3),
        st.integers(-3, 3),
        st.integers(-5, 5),
        st.integers(-5, 5),
    )
    @settings(max_examples=150, deadline=None)
    def test_secure_verdict_implies_empirical_noninterference(
        self, program, va, vb, h1, h2
    ):
        report = analyze_flow(program, low_inputs=("a", "b"), high_inputs=("h",))
        if not report.secure:
            return
        # x/y start at 0 in both runs: they are not inputs, merely
        # uninitialised locals the generator may read before writing.
        first = run(program, inputs={"a": va, "b": vb, "h": h1, "x": 0, "y": 0})
        second = run(program, inputs={"a": va, "b": vb, "h": h2, "x": 0, "y": 0})
        assert first.output == second.output

    @given(
        _commands(),
        st.integers(-5, 5),
        st.integers(-5, 5),
    )
    @settings(max_examples=80, deadline=None)
    def test_insecure_witness_or_sound_verdict(self, program, h1, h2):
        # Contrapositive sanity: a pair of runs with different outputs on
        # the same lows forces a non-secure verdict.
        first = run(program, inputs={"a": 0, "b": 0, "h": h1, "x": 0, "y": 0})
        second = run(program, inputs={"a": 0, "b": 0, "h": h2, "x": 0, "y": 0})
        if first.output != second.output:
            report = analyze_flow(program, low_inputs=("a", "b"), high_inputs=("h",))
            assert not report.secure
