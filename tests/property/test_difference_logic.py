"""Property suite for difference-logic theory propagation (PR 5).

Four contracts are pinned here:

* **conjunction soundness** — on random conjunctions of difference
  literals the DPLL(T) verdict equals exhaustive integer enumeration
  over a window provably wide enough to contain a solution whenever one
  exists (each constraint shifts a bound by at most ``max |k| + 1``, so
  a satisfiable system has a solution within ``±Σ(|k| + 1)``);
* **validity envelope** — on random boolean combinations of mixed
  ``==``/``<=`` atoms, ``check_validity`` with the solver fast paths
  refutes and errors *byte-identically* to the pure enumerator and may
  only soundly strengthen BOUNDED acceptance into PROVED;
* **explanation minimality** — a theory conflict blames exactly the
  literals of one negative cycle: the blamed set is jointly infeasible
  and dropping any single literal restores feasibility;
* **no blocked models on the pure fragment** — pure difference-logic
  formulas are decided entirely by theory propagation
  (``models_blocked == 0``), fresh and through a shared session.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.arith import (
    DifferenceLogicPropagator,
    negated_constraint,
    normalize_order_atom,
)
from repro.smt.cnf import AtomTable
from repro.smt.dpll import dpllt_equality
from repro.smt.session import SolverSession
from repro.smt.solver import Verdict, check_validity
from repro.smt.sorts import INT
from repro.smt.terms import App, Const, SymVar, conj, evaluate_term, free_symvars

VARS = [SymVar(name, INT) for name in ("dx", "dy", "dz")]
MAX_CONSTANT = 2


@st.composite
def order_atoms(draw):
    """A difference-logic atom over three variables and small constants."""
    op = draw(st.sampled_from(["<", "<=", ">", ">="]))
    left = draw(st.sampled_from(VARS))
    shape = draw(st.integers(min_value=0, max_value=2))
    if shape == 0:
        right = draw(st.sampled_from([v for v in VARS if v is not left]))
    elif shape == 1:
        base = draw(st.sampled_from([v for v in VARS if v is not left]))
        offset = draw(st.integers(-MAX_CONSTANT, MAX_CONSTANT))
        right = App("+", (base, Const(offset)))
    else:
        right = Const(draw(st.integers(-MAX_CONSTANT, MAX_CONSTANT)))
    return App(op, (left, right))


@st.composite
def difference_literals(draw):
    atom = draw(order_atoms())
    if draw(st.booleans()):
        return App("not", (atom,))
    return atom


def _window_solvable(formula, half_width):
    """Exhaustive integer enumeration of the formula's variables over
    ``[-half_width, half_width]`` — a complete SAT oracle for difference
    systems whose solutions (when any exist) fit the window."""
    names = sorted(v.name for v in free_symvars(formula))
    values = range(-half_width, half_width + 1)
    for combo in itertools.product(values, repeat=len(names)):
        if evaluate_term(formula, dict(zip(names, combo))):
            return True
    return False


class TestConjunctionsAgainstEnumeration:
    @given(st.lists(difference_literals(), min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_dpllt_verdict_matches_integer_enumeration(self, literals):
        formula = conj(*literals)
        result = dpllt_equality(formula)
        assert result is not None, formula
        # Each constraint bound is at most MAX_CONSTANT + 1 in magnitude
        # (strictness adds one), so a satisfiable system of n literals
        # has a solution within ±n·(MAX_CONSTANT + 1).
        half_width = len(literals) * (MAX_CONSTANT + 1)
        assert result.satisfiable == _window_solvable(formula, half_width), formula

    @given(st.lists(difference_literals(), min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_pure_fragment_never_blocks_models(self, literals):
        result = dpllt_equality(conj(*literals))
        assert result is not None
        assert result.models_blocked == 0


@st.composite
def mixed_formulas(draw, depth=2):
    """Boolean structure over mixed equality / order atoms."""
    if depth == 0:
        atom = draw(order_atoms())
        if draw(st.booleans()):
            left = draw(st.sampled_from(VARS))
            right = draw(st.sampled_from(VARS + [Const(0), Const(1)]))
            atom = App(draw(st.sampled_from(["==", "!="])), (left, right))
        return atom
    op = draw(st.sampled_from(["and", "or", "not", "implies"]))
    if op == "not":
        return App("not", (draw(mixed_formulas(depth=depth - 1)),))
    return App(
        op,
        (draw(mixed_formulas(depth=depth - 1)), draw(mixed_formulas(depth=depth - 1))),
    )


class TestValidityEnvelope:
    @given(mixed_formulas())
    @settings(max_examples=60, deadline=None)
    def test_fast_paths_only_strengthen_soundly(self, formula):
        with_sat = check_validity(formula, use_cache=False)
        enumerated = check_validity(formula, use_cache=False, use_sat=False)
        if with_sat.verdict is Verdict.PROVED:
            # A solver-PROVED formula is valid over ℤ: the bounded
            # enumerator must not have found a countermodel.
            assert enumerated.verdict is not Verdict.REFUTED, formula
        else:
            # Every undecided query falls through to the *same*
            # enumeration: verdict and countermodel are byte-identical.
            assert with_sat.verdict == enumerated.verdict, formula
            assert with_sat.model == enumerated.model, formula

    @given(st.lists(mixed_formulas(), min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_session_matches_fresh_on_the_mixed_fragment(self, batch):
        fresh = [check_validity(f, use_cache=False) for f in batch]
        session = SolverSession()
        shared = [
            check_validity(f, use_cache=False, session=session) for f in batch
        ]
        for one, other in zip(fresh, shared):
            if Verdict.PROVED in (one.verdict, other.verdict):
                # The mixed-fragment model check is an over-
                # approximation evaluated per shrunk model, so a warmed
                # session may soundly strengthen BOUNDED into PROVED;
                # it must never flip acceptance.
                assert {one.verdict, other.verdict} <= {
                    Verdict.PROVED,
                    Verdict.BOUNDED,
                }, (one.verdict, other.verdict)
            else:
                assert one.verdict == other.verdict
                assert one.model == other.model


def _feasible(constraints):
    """Bellman–Ford feasibility of a set of (u, v, k) constraints —
    an oracle independent of the propagator's incremental graph."""
    nodes = {node for u, v, _k in constraints for node in (u, v)}
    if not nodes:
        return True
    distance = {node: 0 for node in nodes}
    edges = [(v, u, k) for u, v, k in constraints]
    for _ in range(len(nodes)):
        changed = False
        for source, target, weight in edges:
            candidate = distance[source] + weight
            if candidate < distance[target]:
                distance[target] = candidate
                changed = True
        if not changed:
            return True
    return False


class TestExplanationMinimality:
    @given(st.lists(difference_literals(), min_size=2, max_size=7))
    @settings(max_examples=80, deadline=None)
    def test_conflict_explanations_are_single_negative_cycles(self, literals):
        table = AtomTable()
        atoms = {}
        trail = []
        for literal_term in literals:
            negated = False
            atom = literal_term
            if isinstance(atom, App) and atom.op == "not":
                negated = True
                atom = atom.args[0]
            var = table.atom(atom)
            atoms[var] = atom
            trail.append(-var if negated else var)
        propagator = DifferenceLogicPropagator(table)
        propagator.reset()
        # Literal-indexed, as the flat-arena solver hands it over:
        # slots 2v / 2v+1 per variable, both filled on assignment.
        assign = [0] * (2 * (table.count + 1))
        conflict = None
        for literal in trail:
            variable = abs(literal)
            if assign[variable << 1] != 0:
                continue  # duplicate atom: keep the first polarity
            propagator.assert_literal(literal)
            value = 1 if literal > 0 else -1
            assign[variable << 1] = value
            assign[(variable << 1) | 1] = -value
            status, payload = propagator.check(assign)
            if status == "conflict":
                conflict = payload
                break
        if conflict is None:
            return
        blamed = [-literal for literal in conflict]  # the true literals
        assert set(map(abs, blamed)) <= set(map(abs, trail))

        def constraint_of(literal):
            constraint = normalize_order_atom(atoms[abs(literal)])
            return constraint if literal > 0 else negated_constraint(constraint)

        blamed_constraints = [constraint_of(literal) for literal in blamed]
        # The blamed set is genuinely infeasible…
        assert not _feasible(blamed_constraints)
        # …and minimal: dropping any one literal restores feasibility.
        for index in range(len(blamed_constraints)):
            rest = blamed_constraints[:index] + blamed_constraints[index + 1:]
            assert _feasible(rest), (blamed, index)


# Representative pure difference-logic VC shapes: transitivity chains,
# bound propagation, window pinning, and an infeasible cycle.
def _corpus():
    x, y, z = VARS
    le = lambda a, b: App("<=", (a, b))  # noqa: E731
    lt = lambda a, b: App("<", (a, b))  # noqa: E731
    chain = App(
        "implies", (conj(le(x, y), le(y, z)), le(x, z))
    )
    bounds = App(
        "implies",
        (conj(le(x, Const(2)), le(Const(0), x)), lt(x, Const(4))),
    )
    window = App(
        "implies",
        (conj(lt(x, y), lt(y, App("+", (x, Const(2))))), le(y, App("+", (x, Const(1))))),
    )
    cycle = App("not", (conj(lt(x, y), lt(y, z), lt(z, x)),))
    return [chain, bounds, window, cycle]


class TestPureFragmentRegression:
    def test_corpus_is_proved_with_zero_blocked_models(self):
        session = SolverSession()
        for formula in _corpus():
            result = check_validity(formula, use_cache=False, session=session)
            assert result.verdict is Verdict.PROVED, formula
        stats = session.stats()
        assert stats["models_blocked"] == 0
        assert stats["fallbacks"] == 0
        # Every corpus case is decided by the theory layer: either a
        # mid-search propagation or a root-level theory conflict.
        assert stats["theory_propagations"] + stats["theory_conflicts"] > 0

    def test_corpus_fresh_dpllt_never_blocks(self):
        for formula in _corpus():
            result = dpllt_equality(App("not", (formula,)))
            assert result is not None
            assert not result.satisfiable
            assert result.models_blocked == 0
