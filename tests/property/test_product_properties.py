"""Property-based cross-validation of the product construction.

For any sequential program and any pair of input stores, running the
2-product once must give exactly the two output traces of running the
plain program twice — i.e. the product is a sound *and complete* encoding
of pairs of executions (Eilers et al. 2018, Theorem 1, specialized to our
fragment)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import Assign, BinOp, If, Lit, Print, Seq, Skip, Var, While, run, seq_all
from repro.verifier.product import build_product, run_product

names = st.sampled_from(["x", "y", "h", "l"])
literals = st.integers(-4, 4).map(Lit)
arith_ops = st.sampled_from(["+", "-", "*"])
cmp_ops = st.sampled_from(["<", "<=", "==", "!=", ">", ">="])


@st.composite
def arith_exprs(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        return draw(st.one_of(literals, names.map(Var)))
    op = draw(arith_ops)
    return BinOp(op, draw(arith_exprs(depth=depth - 1)), draw(arith_exprs(depth=depth - 1)))


@st.composite
def bool_exprs(draw):
    return BinOp(draw(cmp_ops), draw(arith_exprs()), draw(arith_exprs()))


@st.composite
def commands(draw, depth=2, allow_loops=True):
    max_kind = 4 if (depth > 0 and allow_loops) else (3 if depth > 0 else 2)
    kind = draw(st.integers(0, max_kind))
    if kind == 0:
        return Assign(draw(names), draw(arith_exprs()))
    if kind == 1:
        return Print(draw(arith_exprs()))
    if kind == 2:
        first = draw(commands(depth=depth - 1, allow_loops=allow_loops)) if depth else Skip()
        second = draw(commands(depth=depth - 1, allow_loops=allow_loops)) if depth else Skip()
        return Seq(first, second)
    if kind == 3:
        return If(
            draw(bool_exprs()),
            draw(commands(depth=depth - 1, allow_loops=allow_loops)),
            draw(commands(depth=depth - 1, allow_loops=allow_loops)),
        )
    # Bounded loop: counter-controlled, and the body contains no nested
    # loop (a nested loop over the same counter could reset it forever).
    counter = draw(st.sampled_from(["i", "j"]))
    bound = draw(st.integers(0, 3))
    body = Seq(
        draw(commands(depth=depth - 1, allow_loops=False)),
        Assign(counter, BinOp("+", Var(counter), Lit(1))),
    )
    return seq_all(Assign(counter, Lit(0)), While(BinOp("<", Var(counter), Lit(bound)), body))


input_stores = st.fixed_dictionaries(
    {}, optional={name: st.integers(-4, 4) for name in ("x", "y", "h", "l")}
)


class TestProductFaithful:
    @given(commands(), input_stores, input_stores)
    @settings(max_examples=150, deadline=None)
    def test_product_equals_two_plain_runs(self, program, inputs1, inputs2):
        out1 = run(program, inputs=dict(inputs1), max_steps=50_000).output
        out2 = run(program, inputs=dict(inputs2), max_steps=50_000).output
        product = run_product(build_product(program), inputs1, inputs2, max_steps=200_000)
        assert product.output1 == out1
        assert product.output2 == out2

    @given(commands(), input_stores)
    @settings(max_examples=60, deadline=None)
    def test_product_on_equal_inputs_always_agrees(self, program, inputs):
        product = run_product(build_product(program), inputs, dict(inputs), max_steps=200_000)
        assert product.outputs_agree
