"""Differential harness for incremental solver sessions (PR 4 tentpole).

Hypothesis-generated VC batches are discharged three ways —

1. **fresh** — a fresh solver per VC (the pre-session behaviour),
2. **session** — one shared :class:`repro.smt.session.SolverSession`,
   where each VC is activated by an assumption literal and retired after
   its query,
3. **round-trip** — a session run whose decisive results were saved to a
   persistent store, the store reloaded into a cold cache, and the batch
   replayed (every answer must come from the persistent layer),

and the three verdict sequences (verdict + countermodel) must be
identical.  This pins the session layer's soundness contract: assumption
activation, clause retirement, shared Tseitin state and the
fingerprint-keyed persistence must never change what the solver says,
only how fast it says it.
"""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import clear_all_caches
from repro.smt.cache import GLOBAL
from repro.smt.session import SolverSession, in_euf_fragment, in_mixed_fragment
from repro.smt.solver import Verdict, check_validity
from repro.smt.sorts import BOOL, INT
from repro.smt.terms import App, Const, SymVar

BOOL_VARS = [SymVar(name, BOOL) for name in ("a", "b", "c")]
INT_VARS = [SymVar(name, INT) for name in ("x", "y", "z")]
EUF_TERMS = INT_VARS + [App("f", (v,)) for v in INT_VARS]


@st.composite
def vc_formulas(draw, depth=2):
    """Small VC-shaped formulas across all three solver regimes:
    pure boolean skeletons, ground-equality (EUF) formulas, and
    mixed/arithmetic formulas that force the bounded enumerator."""
    kind = draw(st.integers(min_value=0, max_value=2))
    if depth == 0:
        if kind == 0:
            return draw(st.sampled_from(BOOL_VARS + [Const(True), Const(False)]))
        if kind == 1:
            op = draw(st.sampled_from(["==", "!="]))
            return App(
                op,
                (draw(st.sampled_from(EUF_TERMS)), draw(st.sampled_from(EUF_TERMS))),
            )
        return App(
            "<", (draw(st.sampled_from(INT_VARS)), draw(st.sampled_from(INT_VARS)))
        )
    op = draw(st.sampled_from(["and", "or", "not", "implies"]))
    if op == "not":
        return App("not", (draw(vc_formulas(depth=depth - 1)),))
    return App(
        op,
        (draw(vc_formulas(depth=depth - 1)), draw(vc_formulas(depth=depth - 1))),
    )


def _observe(result):
    """The observable part of a Result for differential comparison."""
    model = None if result.model is None else dict(result.model)
    return (result.verdict, model)


def _solve_fresh(batch):
    return [_observe(check_validity(formula, use_cache=False)) for formula in batch]


def _solve_session(batch):
    session = SolverSession()
    return [
        _observe(check_validity(formula, use_cache=False, session=session))
        for formula in batch
    ]


def _solve_after_round_trip(batch):
    """Populate a persistent store from a session run, reload it cold,
    and replay the batch; answers must come from the store."""
    handle, path = tempfile.mkstemp(suffix=".json")
    os.close(handle)
    try:
        GLOBAL.forget_persistent()
        clear_all_caches()
        GLOBAL.enable_persistence()
        session = SolverSession()
        first = [
            _observe(check_validity(formula, session=session)) for formula in batch
        ]
        GLOBAL.save(path)

        GLOBAL.forget_persistent()
        clear_all_caches()
        GLOBAL.load(path)
        replay_session = SolverSession()
        replayed = []
        for formula, observed_first in zip(batch, first):
            result = check_validity(formula, session=replay_session)
            # Decisive verdicts must be served by the reloaded store
            # (UNKNOWN is never persisted and is recomputed instead).
            if result.verdict is not Verdict.UNKNOWN:
                assert result.from_cache, (formula, result)
            replayed.append(_observe(result))
        return replayed
    finally:
        GLOBAL.forget_persistent()
        clear_all_caches()
        os.unlink(path)


class TestSessionDifferential:
    @given(st.lists(vc_formulas(), min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_fresh_session_and_round_trip_verdicts_identical(self, batch):
        fresh = _solve_fresh(batch)
        shared = _solve_session(batch)
        assert fresh == shared
        round_trip = _solve_after_round_trip(batch)
        assert fresh == round_trip

    @given(st.lists(vc_formulas(), min_size=2, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_batch_order_never_leaks_between_activations(self, batch):
        """Solving the batch forwards and backwards through one session
        must give the same per-formula verdicts: a retired VC leaves no
        observable constraint behind."""
        forward_session = SolverSession()
        forward = [
            _observe(check_validity(f, use_cache=False, session=forward_session))
            for f in batch
        ]
        backward_session = SolverSession()
        backward = [
            _observe(check_validity(f, use_cache=False, session=backward_session))
            for f in reversed(batch)
        ]
        assert forward == list(reversed(backward))

    @given(st.lists(vc_formulas(), min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_retirement_keeps_activation_guards_out_of_the_database(self, batch):
        session = SolverSession()
        for formula in batch:
            check_validity(formula, use_cache=False, session=session)
        for sub in (session._skeleton, session._euf, session._mixed):
            atom_count = sub.converter.table.count
            # Every live clause must be expressible without any retired
            # activation guard: guards are allocated via table.fresh()
            # and retired immediately, so no live clause may mention a
            # variable that is neither an atom nor a definition literal
            # reachable from the converter's memo.
            defined = set(abs(v) for v in sub.converter._literal_cache.values())
            for clause in sub.solver.live_clauses():
                for literal in clause:
                    variable = abs(literal)
                    assert (
                        sub.converter.table.term_of(variable) is not None
                        or variable in defined
                    ), (clause, variable, atom_count)

    @given(vc_formulas())
    @settings(max_examples=60, deadline=None)
    def test_fragment_classifier_matches_solver_behaviour(self, formula):
        """The fragment classifiers must accept exactly the formulas
        whose atoms a shared sub-session table may absorb: pure-equality
        formulas go to the EUF sub-session, order-bearing formulas in
        the difference fragment to the mixed one, everything else to the
        one-shot fallback."""
        session = SolverSession()
        before = session.fallbacks
        session.theory_valid(formula)
        went_shared = session.fallbacks == before
        assert went_shared == (
            in_euf_fragment(formula) or in_mixed_fragment(formula)
        )
        stats = session.stats()
        if in_euf_fragment(formula):
            assert stats["euf_queries"] == 1 and stats["mixed_queries"] == 0
        elif in_mixed_fragment(formula):
            assert stats["mixed_queries"] == 1 and stats["euf_queries"] == 0
