"""Property-based tests of the lattice laws (repro.security.lattice).

The Lattice constructor claims to verify the lattice laws; these
properties check that claim from both sides: every accepted order
satisfies the algebraic laws, and random cover relations either form a
lattice or are rejected."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security.lattice import Lattice, LatticeError, linear, powerset

LABELS = ("a", "b", "c", "d")


@st.composite
def random_covers(draw):
    """A random covering relation over up to 4 labels (acyclic by
    construction: edges always go from earlier to later labels)."""
    size = draw(st.integers(1, 4))
    labels = LABELS[:size]
    covers = []
    for low_index, high_index in itertools.combinations(range(size), 2):
        if draw(st.booleans()):
            covers.append((labels[low_index], labels[high_index]))
    return labels, tuple(covers)


def _try_build(labels, covers):
    try:
        return Lattice(labels, covers)
    except LatticeError:
        return None


class TestLatticeLaws:
    @given(random_covers())
    @settings(max_examples=200, deadline=None)
    def test_accepted_orders_satisfy_the_laws(self, poset):
        labels, covers = poset
        lattice = _try_build(labels, covers)
        if lattice is None:
            return  # rejected: nothing to check
        for a, b in itertools.product(labels, repeat=2):
            join = lattice.join(a, b)
            meet = lattice.meet(a, b)
            # join is an upper bound, meet a lower bound
            assert lattice.leq(a, join) and lattice.leq(b, join)
            assert lattice.leq(meet, a) and lattice.leq(meet, b)
            # commutativity
            assert join == lattice.join(b, a)
            assert meet == lattice.meet(b, a)
            # absorption
            assert lattice.join(a, lattice.meet(a, b)) == a
            assert lattice.meet(a, lattice.join(a, b)) == a

    @given(random_covers())
    @settings(max_examples=200, deadline=None)
    def test_join_is_least_and_meet_is_greatest(self, poset):
        labels, covers = poset
        lattice = _try_build(labels, covers)
        if lattice is None:
            return
        for a, b in itertools.product(labels, repeat=2):
            join = lattice.join(a, b)
            for candidate in labels:
                if lattice.leq(a, candidate) and lattice.leq(b, candidate):
                    assert lattice.leq(join, candidate)
            meet = lattice.meet(a, b)
            for candidate in labels:
                if lattice.leq(candidate, a) and lattice.leq(candidate, b):
                    assert lattice.leq(candidate, meet)

    @given(random_covers())
    @settings(max_examples=200, deadline=None)
    def test_downsets_are_downward_closed(self, poset):
        labels, covers = poset
        lattice = _try_build(labels, covers)
        if lattice is None:
            return
        for level in labels:
            downset = lattice.downset(level)
            for member in downset:
                for below in labels:
                    if lattice.leq(below, member):
                        assert below in downset

    @given(st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_linear_lattices_always_build(self, size):
        labels = [f"l{index}" for index in range(size)]
        lattice = linear(labels)
        assert lattice.bottom == "l0"
        assert lattice.top == f"l{size - 1}"

    @given(st.integers(0, 3))
    @settings(max_examples=8, deadline=None)
    def test_powerset_lattices_always_build(self, size):
        basis = [f"c{index}" for index in range(size)]
        lattice = powerset(basis)
        assert len(lattice.elements) == 2 ** size
        assert lattice.bottom == frozenset()
        assert lattice.top == frozenset(basis)
