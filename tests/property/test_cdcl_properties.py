"""Property suite for the CDCL upgrade of the SAT core.

Three contracts are pinned here:

* **agreement** — the CDCL :class:`~repro.smt.dpll.WatchedSolver`
  (first-UIP learning, VSIDS, phase saving, Luby restarts) decides
  exactly the same random CNF instances as the retained seed solver
  (:func:`repro.smt.reference.dpll_reference`), and its models genuinely
  satisfy every clause;
* **learned-clause soundness** — every clause the solver learns is
  implied by the input clauses: asserting its negation alongside the
  input is unsatisfiable (checked with the reference solver);
* **use-list congruence closure** — the Downey–Sethi–Tarjan-style
  closure produces the identical partition to the seed's quadratic
  rescan, and theory propagation never changes DPLL(T) verdicts while
  reducing the blocked-model count to zero on the pure fragment.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import reference
from repro.smt.dpll import WatchedSolver, dpllt_equality
from repro.smt.euf import CongruenceClosure
from repro.smt.sorts import INT
from repro.smt.terms import App, SymVar

INT_VARS = [SymVar(name, INT) for name in ("x", "y", "z")]


# ---------------------------------------------------------------------------
# Random CNF instances
# ---------------------------------------------------------------------------


@st.composite
def cnf_instances(draw):
    """Random ≤3-CNF over at most 8 variables (dense enough for UNSAT)."""
    nvars = draw(st.integers(min_value=1, max_value=8))
    nclauses = draw(st.integers(min_value=1, max_value=28))
    clauses = []
    for _ in range(nclauses):
        width = draw(st.integers(min_value=1, max_value=3))
        variables = draw(
            st.lists(
                st.integers(min_value=1, max_value=nvars),
                min_size=width,
                max_size=width,
            )
        )
        signs = draw(st.lists(st.booleans(), min_size=width, max_size=width))
        clauses.append(
            tuple(v if s else -v for v, s in zip(variables, signs))
        )
    return clauses


def _satisfies(model, clause):
    if any(-literal in clause for literal in clause):
        return True  # tautological: satisfied by every extension
    return any(model.get(abs(literal)) == (literal > 0) for literal in clause)


class TestCDCLAgainstReference:
    @given(cnf_instances())
    @settings(max_examples=300, deadline=None)
    def test_sat_unsat_agreement(self, clauses):
        ours = WatchedSolver(clauses).solve()
        theirs = reference.dpll_reference(clauses)
        assert (ours is None) == (theirs is None)

    @given(cnf_instances())
    @settings(max_examples=200, deadline=None)
    def test_models_satisfy_every_clause(self, clauses):
        model = WatchedSolver(clauses).solve()
        if model is not None:
            for clause in clauses:
                assert _satisfies(model, clause)

    @given(cnf_instances())
    @settings(max_examples=200, deadline=None)
    def test_repeated_solves_stay_stable(self, clauses):
        # Learned clauses and saved phases persist across calls; the
        # verdict must not drift.
        solver = WatchedSolver(clauses)
        first = solver.solve()
        second = solver.solve()
        assert (first is None) == (second is None)
        if second is not None:
            for clause in clauses:
                assert _satisfies(second, clause)

    @given(cnf_instances(), st.lists(st.integers(min_value=-8, max_value=8)))
    @settings(max_examples=150, deadline=None)
    def test_assumptions_behave_like_units(self, clauses, raw_assumptions):
        assumptions = []
        seen = set()
        for literal in raw_assumptions:
            if literal != 0 and abs(literal) not in seen:
                seen.add(abs(literal))
                assumptions.append(literal)
        under_assumptions = WatchedSolver(clauses).solve(assumptions)
        as_units = reference.dpll_reference(
            list(clauses) + [(literal,) for literal in assumptions]
        )
        assert (under_assumptions is None) == (as_units is None)
        if under_assumptions is not None:
            for literal in assumptions:
                assert under_assumptions.get(abs(literal)) == (literal > 0)


class TestLearnedClauseSoundness:
    @given(cnf_instances())
    @settings(max_examples=100, deadline=None)
    def test_learned_clauses_are_implied(self, clauses):
        solver = WatchedSolver(clauses)
        solver.solve()
        for clause in solver.live_learned_clauses():
            # input ∧ ¬clause must be unsatisfiable if the clause is implied.
            negated_units = [(-literal,) for literal in clause]
            assert reference.dpll_reference(list(clauses) + negated_units) is None

    @given(cnf_instances())
    @settings(max_examples=100, deadline=None)
    def test_learned_units_are_implied(self, clauses):
        solver = WatchedSolver(clauses)
        solver.solve()
        if solver._unsat:
            return
        for literal in solver._units:
            assert reference.dpll_reference(list(clauses) + [(-literal,)]) is None


# ---------------------------------------------------------------------------
# Congruence closure: use lists vs the seed's quadratic rescan
# ---------------------------------------------------------------------------


def _quadratic_classes(pairs, universe):
    """The seed's congruence closure: union-find plus a full rescan of
    every ``App`` per fixpoint round (kept here as the oracle)."""
    parent = {}

    def register(term):
        if term in parent:
            return
        parent[term] = term
        if isinstance(term, App):
            for arg in term.args:
                register(arg)

    def find(term):
        root = term
        while parent[root] != root:
            root = parent[root]
        while parent[term] != root:
            parent[term], term = root, parent[term]
        return root

    def union(left, right):
        root_left, root_right = find(left), find(right)
        if root_left != root_right:
            parent[root_left] = root_right

    for term in universe:
        register(term)
    for left, right in pairs:
        register(left)
        register(right)
        union(left, right)
    changed = True
    while changed:
        changed = False
        by_signature = {}
        for term in [t for t in parent if isinstance(t, App)]:
            signature = (term.op, tuple(find(arg) for arg in term.args))
            other = by_signature.get(signature)
            if other is None:
                by_signature[signature] = term
            elif find(term) != find(other):
                union(term, other)
                changed = True
    groups = {}
    for term in parent:
        groups.setdefault(find(term), set()).add(term)
    return {frozenset(members) for members in groups.values()}


@st.composite
def merge_sequences(draw):
    terms = INT_VARS + [App("f", (v,)) for v in INT_VARS]
    terms = terms + [App("g", (a, b)) for a in INT_VARS[:2] for b in INT_VARS[:2]]
    pairs = draw(
        st.lists(
            st.tuples(st.sampled_from(terms), st.sampled_from(terms)),
            max_size=6,
        )
    )
    return pairs, terms


class TestUseListClosure:
    @given(merge_sequences())
    @settings(max_examples=200, deadline=None)
    def test_partition_identical_to_quadratic_rescan(self, case):
        pairs, universe = case
        cc = CongruenceClosure()
        for term in universe:
            cc.find(term)
        for left, right in pairs:
            cc.merge(left, right)
        ours = {members for members in cc.classes().values()}
        assert ours == _quadratic_classes(pairs, universe)

    @given(merge_sequences())
    @settings(max_examples=150, deadline=None)
    def test_registration_order_is_irrelevant(self, case):
        # Terms first seen after their arguments merged still land in
        # the right class (the signature-table path of _register).
        pairs, universe = case
        eager = CongruenceClosure()
        for term in universe:
            eager.find(term)
        for left, right in pairs:
            eager.merge(left, right)
        lazy = CongruenceClosure()
        for left, right in pairs:
            lazy.merge(left, right)
        for a, b in itertools.combinations(universe, 2):
            assert eager.same(a, b) == lazy.same(a, b)


# ---------------------------------------------------------------------------
# Theory propagation
# ---------------------------------------------------------------------------


@st.composite
def euf_formulas(draw, depth=2):
    """Boolean combinations of equalities over {x, y, z, f(x), f(y), f(z)}."""
    terms = INT_VARS + [App("f", (v,)) for v in INT_VARS]
    if depth == 0:
        op = draw(st.sampled_from(["==", "!="]))
        return App(op, (draw(st.sampled_from(terms)), draw(st.sampled_from(terms))))
    choice = draw(st.integers(min_value=0, max_value=3))
    if choice == 0:
        op = draw(st.sampled_from(["==", "!="]))
        return App(op, (draw(st.sampled_from(terms)), draw(st.sampled_from(terms))))
    if choice == 1:
        return App("not", (draw(euf_formulas(depth=depth - 1)),))
    op = draw(st.sampled_from(["and", "or", "implies"]))
    return App(
        op, (draw(euf_formulas(depth=depth - 1)), draw(euf_formulas(depth=depth - 1)))
    )


class TestTheoryPropagation:
    @given(euf_formulas())
    @settings(max_examples=150, deadline=None)
    def test_verdicts_match_lazy_reference(self, term):
        ours = dpllt_equality(term)
        theirs = reference.dpllt_equality_reference(term)
        assert (ours is None) == (theirs is None)
        if ours is not None:
            assert ours.satisfiable == theirs.satisfiable

    @given(euf_formulas())
    @settings(max_examples=150, deadline=None)
    def test_pure_fragment_blocks_no_models(self, term):
        # With theory conflicts raised mid-search, the blocking loop
        # is a safety net that never fires inside the pure fragment.
        result = dpllt_equality(term)
        assert result is not None  # pure EUF: always decided
        assert result.models_blocked == 0


# ---------------------------------------------------------------------------
# Assumption-based activation + retirement (the SolverSession contract)
# ---------------------------------------------------------------------------


def _activation_var(clauses, used):
    top = max((abs(lit) for clause in clauses for lit in clause), default=0)
    return max(top, used) + 1


class TestActivationRetirement:
    @given(st.lists(cnf_instances(), min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_activated_queries_agree_with_reference(self, batches):
        """A sequence of CNFs discharged MiniSat-style on one shared
        solver — each batch guarded by a fresh activation literal,
        solved under the assumption, then retired — must decide exactly
        what a fresh reference solve of each batch decides."""
        shared = WatchedSolver()
        used = 0
        for clauses in batches:
            activation = _activation_var(clauses, used)
            used = activation
            mark = shared.clause_mark()
            for clause in clauses:
                shared.add_clause(tuple(clause) + (-activation,))
            shared_verdict = shared.solve([activation]) is not None
            shared.retire(activation, since=mark)
            fresh_verdict = reference.dpll_reference(list(clauses)) is not None
            assert shared_verdict == fresh_verdict

    @given(st.lists(cnf_instances(), min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_learned_clauses_never_mention_retired_activations(self, batches):
        shared = WatchedSolver()
        used = 0
        retired = []
        for clauses in batches:
            activation = _activation_var(clauses, used)
            used = activation
            mark = shared.clause_mark()
            for clause in clauses:
                shared.add_clause(tuple(clause) + (-activation,))
            shared.solve([activation])
            shared.retire(activation, since=mark)
            retired.append(activation)
            for clause in shared.live_clauses():
                for literal in clause:
                    assert abs(literal) not in retired
            for literal in shared._unit_set:
                assert abs(literal) not in retired

    @given(cnf_instances())
    @settings(max_examples=60, deadline=None)
    def test_retirement_restores_satisfiability(self, clauses):
        """After retiring an (arbitrarily hard) activated query, the
        shared database must be satisfiable again — queries leave no
        constraint behind, not even when they were UNSAT."""
        shared = WatchedSolver()
        activation = _activation_var(clauses, 0)
        mark = shared.clause_mark()
        for clause in clauses:
            shared.add_clause(tuple(clause) + (-activation,))
        shared.solve([activation])
        shared.retire(activation, since=mark)
        assert shared.solve() is not None

    @given(st.lists(cnf_instances(), min_size=2, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_interleaved_sessions_do_not_cross_talk(self, batches):
        """Solving the batches through one shared solver in any order
        gives the same per-batch verdicts as solving them fresh."""
        verdicts_fresh = [
            reference.dpll_reference(list(clauses)) is not None
            for clauses in batches
        ]
        for order in (list(range(len(batches))), list(reversed(range(len(batches))))):
            shared = WatchedSolver()
            used = 0
            got = {}
            for index in order:
                clauses = batches[index]
                activation = _activation_var(clauses, used)
                used = activation
                mark = shared.clause_mark()
                for clause in clauses:
                    shared.add_clause(tuple(clause) + (-activation,))
                got[index] = shared.solve([activation]) is not None
                shared.retire(activation, since=mark)
            assert [got[i] for i in range(len(batches))] == verdicts_fresh


# ---------------------------------------------------------------------------
# Learned-clause DB management (reduceDB / minimization / compaction)
# ---------------------------------------------------------------------------


class _AuditingSolver(WatchedSolver):
    """A solver that checks the DB-management invariants at every
    reduceDB pass: reason clauses of trail literals survive, clauses
    mentioning a live assumption (activation) variable survive, and the
    arena/watch structures stay consistent through the compaction."""

    def reduce_db(self):
        pinned = set(self._pinned_vars)
        guarded_before = []
        if pinned:
            for clause in self.live_clauses():
                if any(abs(literal) in pinned for literal in clause):
                    guarded_before.append(frozenset(clause))
        removed = super().reduce_db()
        # Invariant 1: every trail literal's clause reason is live and
        # contains the literal (db_check verifies via remapped refs).
        self.db_check()
        # Invariant 2: no clause mentioning a live activation variable
        # was dropped.
        if pinned:
            guarded_after = [
                frozenset(clause)
                for clause in self.live_clauses()
                if any(abs(literal) in pinned for literal in clause)
            ]
            for clause in guarded_before:
                assert clause in guarded_after, (
                    f"reduceDB dropped clause {sorted(clause)} mentioning "
                    f"live activation vars {pinned}"
                )
        return removed


class TestClauseDBManagement:
    @given(cnf_instances())
    @settings(max_examples=60, deadline=None)
    def test_reduce_db_preserves_verdicts_and_invariants(self, clauses):
        """With the reduction floor forced to 1 (reduceDB fires on
        nearly every conflict), verdicts still match the reference and
        the auditing invariants hold at every pass."""
        solver = _AuditingSolver(clauses, reduce_floor=1)
        model = solver.solve()
        oracle = reference.dpll_reference([list(c) for c in clauses], {})
        assert (model is None) == (oracle is None)

    @given(cnf_instances())
    @settings(max_examples=60, deadline=None)
    def test_minimized_learned_clauses_still_implied(self, clauses):
        """Recursive minimization only ever drops redundant literals:
        every surviving learned clause is implied by the input (fresh
        reference solve of input ∧ ¬clause is UNSAT)."""
        solver = WatchedSolver(clauses, minimize=True, reduce_floor=1)
        solver.solve()
        for clause in solver.live_learned_clauses():
            negated_units = [(-literal,) for literal in clause]
            assert reference.dpll_reference(list(clauses) + negated_units) is None
        if not solver._unsat:
            for literal in solver._units:
                assert reference.dpll_reference(
                    list(clauses) + [(-literal,)]
                ) is None

    @given(cnf_instances())
    @settings(max_examples=40, deadline=None)
    def test_minimization_never_changes_verdicts(self, clauses):
        with_min = WatchedSolver(clauses, minimize=True).solve() is not None
        without = WatchedSolver(clauses, minimize=False).solve() is not None
        assert with_min == without

    @given(st.lists(cnf_instances(), min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_retire_then_solve_agreement_post_reduce(self, batches):
        """The TestActivationRetirement contract extended to post-reduceDB
        states: activation/retirement sequences on a solver that reduces
        (and compacts) aggressively still decide each batch exactly as a
        fresh reference solve."""
        shared = _AuditingSolver(reduce_floor=1)
        used = 0
        for clauses in batches:
            activation = _activation_var(clauses, used)
            used = activation
            mark = shared.clause_mark()
            for clause in clauses:
                shared.add_clause(tuple(clause) + (-activation,))
            shared_verdict = shared.solve([activation]) is not None
            shared.retire(activation, since=mark)
            shared.db_check()
            fresh_verdict = reference.dpll_reference(list(clauses)) is not None
            assert shared_verdict == fresh_verdict
            for clause in shared.live_clauses():
                assert all(abs(literal) != activation for literal in clause)

    def test_reduce_db_actually_fires(self):
        """Deterministic coverage check: a pigeonhole instance under a
        floor of 1 must run real reductions (and drop real clauses), so
        the properties above genuinely exercise reduceDB."""
        def pigeonhole(pigeons, holes):
            clauses = [
                tuple(p * holes + h + 1 for h in range(holes))
                for p in range(pigeons)
            ]
            for h in range(holes):
                for p1 in range(pigeons):
                    for p2 in range(p1 + 1, pigeons):
                        clauses.append(
                            (-(p1 * holes + h + 1), -(p2 * holes + h + 1))
                        )
            return clauses

        solver = _AuditingSolver(pigeonhole(6, 5), reduce_floor=1)
        assert solver.solve() is None
        assert solver.reductions > 0
        assert solver.reduced_clauses > 0
        assert solver.compactions > 0

    def test_retire_triggers_tombstone_compaction(self):
        """Retiring the bulk of a large database crosses the tombstone
        fraction and compacts the arena; marks taken before the
        compaction degrade to full scans, not stale offsets."""
        solver = WatchedSolver()
        early_mark = solver.clause_mark()
        for i in range(1, 301):
            solver.add_clause((i, -(i + 1), 1000))
        stats = solver.clause_db_stats()
        assert stats["compactions"] == 0
        removed = solver.retire(1000, since=early_mark)
        assert removed == 300
        stats = solver.clause_db_stats()
        assert stats["compactions"] >= 1
        assert stats["dead_words"] == 0
        assert stats["live_input"] == 0
        # A pre-compaction mark still works for a later retire scan.
        solver.add_clause((1, 2, 999))
        assert solver.retire(999, since=early_mark) == 1
        solver.db_check()
