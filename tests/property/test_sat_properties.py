"""Property-based validation of the SAT/EUF layer against brute force."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.cnf import cnf_of, to_nnf
from repro.smt.dpll import dpll, propositionally_valid, sat
from repro.smt.euf import congruence_closure_consistent
from repro.smt.sorts import BOOL, INT
from repro.smt.terms import App, Const, SymVar, evaluate_term, free_symvars, negate

BOOL_VARS = [SymVar(name, BOOL) for name in ("a", "b", "c", "d")]


@st.composite
def bool_terms(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        return draw(st.sampled_from(BOOL_VARS + [Const(True), Const(False)]))
    op = draw(st.sampled_from(["and", "or", "not", "implies"]))
    if op == "not":
        return App("not", (draw(bool_terms(depth=depth - 1)),))
    return App(op, (draw(bool_terms(depth=depth - 1)), draw(bool_terms(depth=depth - 1))))


def brute_force_sat(term):
    names = sorted(v.name for v in free_symvars(term))
    for values in itertools.product([False, True], repeat=len(names)):
        assignment = dict(zip(names, values))
        if evaluate_term(term, assignment):
            return assignment
    return None


class TestDPLLAgainstBruteForce:
    @given(bool_terms())
    @settings(max_examples=300, deadline=None)
    def test_sat_agrees_with_truth_tables(self, term):
        expected = brute_force_sat(term) is not None
        assert (sat(term) is not None) == expected

    @given(bool_terms())
    @settings(max_examples=200, deadline=None)
    def test_validity_agrees_with_truth_tables(self, term):
        expected = brute_force_sat(negate(term)) is None
        assert propositionally_valid(term) == expected

    @given(bool_terms())
    @settings(max_examples=200, deadline=None)
    def test_nnf_preserves_semantics(self, term):
        nnf = to_nnf(term)
        names = sorted(v.name for v in free_symvars(term) | free_symvars(nnf))
        for values in itertools.product([False, True], repeat=len(names)):
            assignment = dict(zip(names, values))
            assert bool(evaluate_term(term, assignment)) == bool(
                evaluate_term(nnf, assignment)
            )

    @given(bool_terms())
    @settings(max_examples=150, deadline=None)
    def test_dpll_models_are_genuine(self, term):
        clauses, _table = cnf_of(term)
        model = dpll(clauses)
        if model is not None:
            for clause in clauses:
                assert any((lit > 0) == model.get(abs(lit), False) for lit in clause)


INT_VARS = [SymVar(name, INT) for name in ("x", "y", "z")]


@st.composite
def euf_problems(draw):
    """Random equality/disequality sets over {x, y, z, f(x), f(y), f(z)}."""
    terms = INT_VARS + [App("f", (v,)) for v in INT_VARS]
    equalities = draw(
        st.lists(st.tuples(st.sampled_from(terms), st.sampled_from(terms)), max_size=4)
    )
    disequalities = draw(
        st.lists(st.tuples(st.sampled_from(terms), st.sampled_from(terms)), max_size=3)
    )
    return equalities, disequalities


def brute_force_euf(equalities, disequalities, universe=3):
    """Decide EUF satisfiability by enumerating small models: values of
    x, y, z in a finite universe and all functions f over it."""
    for vals in itertools.product(range(universe), repeat=3):
        assignment = dict(zip(("x", "y", "z"), vals))
        for f_table in itertools.product(range(universe), repeat=universe):
            def interp(term):
                if isinstance(term, SymVar):
                    return assignment[term.name]
                return f_table[interp(term.args[0])]

            if all(interp(l) == interp(r) for l, r in equalities) and all(
                interp(l) != interp(r) for l, r in disequalities
            ):
                return True
    return False


def _class_model_satisfies(equalities, disequalities):
    """Build the canonical term model from the congruence classes and
    check the constraints in it (the textbook completeness argument)."""
    from repro.smt.euf import CongruenceClosure

    cc = CongruenceClosure()
    for left, right in equalities:
        cc.merge(left, right)
    return all(cc.same(l, r) for l, r in equalities) and not any(
        cc.same(l, r) or l == r for l, r in disequalities
    )


class TestCongruenceClosureAgainstBruteForce:
    @given(euf_problems())
    @settings(max_examples=150, deadline=None)
    def test_unsat_is_sound(self, problem):
        # CC-inconsistent ⟹ no model exists in any finite universe.
        equalities, disequalities = problem
        if not congruence_closure_consistent(equalities, disequalities):
            assert not brute_force_euf(equalities, disequalities, universe=3)

    @given(euf_problems())
    @settings(max_examples=150, deadline=None)
    def test_sat_yields_class_model(self, problem):
        # CC-consistent ⟹ the quotient term model satisfies everything.
        equalities, disequalities = problem
        if congruence_closure_consistent(equalities, disequalities):
            assert _class_model_satisfies(equalities, disequalities)

    @given(euf_problems())
    @settings(max_examples=100, deadline=None)
    def test_small_model_implies_consistent(self, problem):
        # Completeness direction at the brute-force bound.
        equalities, disequalities = problem
        if brute_force_euf(equalities, disequalities, universe=3):
            assert congruence_closure_consistent(equalities, disequalities)
