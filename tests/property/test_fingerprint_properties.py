"""Properties of the stable term fingerprint backing cache persistence.

The persistent validity cache keys entries by
:func:`repro.smt.cache.term_fingerprint`, which must be a pure function
of term *structure*: independent of the order terms were interned, of
whether the intern tables were cleared in between, and (by construction
— the digest never consults ``hash()`` or ``id()``) of the process.
Collisions between structurally distinct terms must be negligible, and
the on-disk store must be a fixed point of save → load → save.
"""

import json
import os
import random
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import clear_all_caches
from repro.smt.cache import GLOBAL, ValidityCache, persistent_key, term_fingerprint
from repro.smt.solver import Result, Verdict, check_validity
from repro.smt.sorts import BOOL, INT, Scope
from repro.smt.terms import App, Const, SymVar


@st.composite
def term_specs(draw, depth=3):
    """A *recipe* for a term (so the same structure can be rebuilt from
    scratch, in different orders, against different intern tables)."""
    if depth == 0 or draw(st.booleans()):
        kind = draw(st.integers(min_value=0, max_value=3))
        if kind == 0:
            return ("const", draw(st.integers(min_value=-3, max_value=3)))
        if kind == 1:
            return ("const", draw(st.booleans()))
        if kind == 2:
            return ("var", draw(st.sampled_from("abcxyz")), "int")
        return ("var", draw(st.sampled_from("pqr")), "bool")
    op = draw(st.sampled_from(["and", "or", "not", "implies", "==", "!=", "<", "f"]))
    if op in ("not", "f"):
        return ("app", op, (draw(term_specs(depth=depth - 1)),))
    return (
        "app",
        op,
        (draw(term_specs(depth=depth - 1)), draw(term_specs(depth=depth - 1))),
    )


def build(spec):
    """Build the term a recipe describes (top-down: children are interned
    in left-to-right order as encountered)."""
    if spec[0] == "const":
        return Const(spec[1])
    if spec[0] == "var":
        return SymVar(spec[1], INT if spec[2] == "int" else BOOL)
    return App(spec[1], tuple(build(arg) for arg in spec[2]))


def _subterm_specs(spec, out):
    if spec[0] == "app":
        for arg in spec[2]:
            _subterm_specs(arg, out)
    out.append(spec)
    return out


def build_scrambled(spec, seed):
    """Build the same term after pre-interning its subterms in a
    shuffled order, so the intern tables' insertion order differs from
    the plain top-down build."""
    pieces = _subterm_specs(spec, [])
    random.Random(seed).shuffle(pieces)
    for piece in pieces:
        build(piece)  # populate the intern tables in scrambled order
    return build(spec)


class TestFingerprintStability:
    @given(term_specs(), st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=150, deadline=None)
    def test_insertion_order_is_irrelevant(self, spec, seed):
        plain = term_fingerprint(build(spec))
        scrambled = term_fingerprint(build_scrambled(spec, seed))
        assert plain == scrambled

    @given(term_specs(), st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=100, deadline=None)
    def test_stable_across_fresh_intern_tables(self, spec, seed):
        before = term_fingerprint(build(spec))
        clear_all_caches()  # fresh tables: every node re-interned from scratch
        after = term_fingerprint(build_scrambled(spec, seed))
        assert before == after

    @given(term_specs(), term_specs())
    @settings(max_examples=200, deadline=None)
    def test_distinct_terms_do_not_collide(self, spec_left, spec_right):
        left = build(spec_left)
        right = build(spec_right)
        if left == right:
            assert term_fingerprint(left) == term_fingerprint(right)
        else:
            # 128-bit blake2 digests: a collision on this corpus would be
            # astronomically unlikely and indicates a structural bug
            # (e.g. an order-dependent or ambiguous encoding).
            assert term_fingerprint(left) != term_fingerprint(right)

    def test_fingerprint_respects_term_equality_classes(self):
        # Term equality deliberately conflates Const(True)/Const(1)
        # (Python bool/int ``==``, a documented seed behaviour the
        # in-memory cache key inherits); the fingerprint must agree with
        # that equivalence — equal terms fingerprint identically, and
        # genuinely distinct payloads do not.
        assert term_fingerprint(Const(True)) == term_fingerprint(Const(1))
        assert term_fingerprint(Const(1.0)) == term_fingerprint(Const(1))
        assert term_fingerprint(Const(1)) != term_fingerprint(Const("1"))
        assert term_fingerprint(Const(1)) != term_fingerprint(Const(2))

    @given(term_specs())
    @settings(max_examples=50, deadline=None)
    def test_persistent_key_covers_query_parameters(self, spec):
        formula = build(spec)
        base = persistent_key(formula, Scope(), None, False, True)
        assert base is not None
        assert persistent_key(formula, Scope(), None, True, True) != base
        assert persistent_key(formula, Scope(), None, False, False) != base
        widened = persistent_key(formula, Scope().widen((17,)), None, False, True)
        assert widened != base


class TestStoreRoundTrip:
    def test_save_load_save_is_idempotent(self):
        cache = ValidityCache()
        cache.enable_persistence()
        x, y = SymVar("x", INT), SymVar("y", INT)
        queries = [
            App("implies", (App("==", (x, y)), App("==", (y, x)))),
            App("==", (x, x)),
            App("and", (App("==", (x, y)), App("!=", (x, y)))),
        ]
        for index, formula in enumerate(queries):
            pkey = persistent_key(formula, Scope(), None, False, True)
            cache.put(
                ("key", index),
                Result(Verdict.PROVED if index < 2 else Verdict.REFUTED, model={}),
                persistent_key=pkey,
            )
        handle, first_path = tempfile.mkstemp(suffix=".json")
        os.close(handle)
        handle, second_path = tempfile.mkstemp(suffix=".json")
        os.close(handle)
        try:
            cache.save(first_path)
            first = json.load(open(first_path))

            reloaded = ValidityCache()
            reloaded.load(first_path)
            reloaded.save(second_path)
            second = json.load(open(second_path))
            assert first == second

            # And saving the reloaded store back over the original is a
            # fixed point too.
            reloaded.save(first_path)
            assert json.load(open(first_path)) == first
        finally:
            os.unlink(first_path)
            os.unlink(second_path)

    def test_global_round_trip_preserves_verdicts(self):
        x, y = SymVar("rt_x", INT), SymVar("rt_y", INT)
        formulas = [
            App("implies", (App("==", (x, y)), App("==", (y, x)))),
            App("<", (x, y)),
        ]
        handle, path = tempfile.mkstemp(suffix=".json")
        os.close(handle)
        try:
            GLOBAL.forget_persistent()
            clear_all_caches()
            GLOBAL.enable_persistence()
            cold = [check_validity(f) for f in formulas]
            GLOBAL.save(path)

            GLOBAL.forget_persistent()
            clear_all_caches()
            GLOBAL.load(path)
            warm = [check_validity(f) for f in formulas]
            assert [r.verdict for r in cold] == [r.verdict for r in warm]
            assert [r.model for r in cold] == [r.model for r in warm]
            assert all(r.from_cache for r in warm)
            assert GLOBAL.stats()["persistent_hits"] == len(formulas)
        finally:
            GLOBAL.forget_persistent()
            clear_all_caches()
            os.unlink(path)
