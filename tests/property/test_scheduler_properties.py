"""Property tests for the scheduler edge cases the fuzzer leans on.

The differential oracle (:mod:`repro.fuzz.oracle`) trusts three scheduler
behaviours without checking them per case: ``RandomScheduler`` is a pure
function of its seed (sampled campaigns replay exactly),
``enumerate_executions`` either yields *every* interleaving or raises
(never silently truncates below the bound), and ``FixedScheduler``
tolerates recorded choice sequences that run out or index out of range
(shrunk programs have fewer choice points than the original recording).
These tests pin those behaviours down directly.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.interpreter import run
from repro.lang.parser import parse_program
from repro.lang.scheduler import (
    FixedScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    enumerate_executions,
    left_first,
)
from repro.lang.semantics import ABORT, Config, State, step

TWO_THREADS = parse_program(
    """
    x := 0
    { x := x + 1; print(1) } || { x := x + 10; print(2) }
    print(x)
    """
)

THREE_PRINTS = parse_program("{ print(1) } || { { print(2) } || { print(3) } }")

DIVERGENT = parse_program("while (true) { skip }")


# -- FixedScheduler: choice exhaustion and modulo wrapping -------------------


@given(st.lists(st.integers(min_value=-5, max_value=12), max_size=6))
@settings(max_examples=60, deadline=None)
def test_fixed_scheduler_total_on_any_choice_sequence(choices):
    """Any recorded sequence — too short, negative, out of range — still
    drives a run to completion: indices wrap modulo the enabled steps and
    exhausted recordings pad with 0."""
    result = run(TWO_THREADS, scheduler=FixedScheduler(choices))
    assert result.output[-1] == 11


def test_fixed_scheduler_pads_with_zero_after_exhaustion():
    """An empty recording behaves exactly like the left-first policy."""
    fixed = run(THREE_PRINTS, scheduler=FixedScheduler([]))
    leftmost = run(THREE_PRINTS, scheduler=left_first)
    assert fixed.output == leftmost.output


def test_fixed_scheduler_wraps_indices_modulo_enabled_steps():
    config = Config(THREE_PRINTS, State.make({}))
    successors = step(config)
    assert len(successors) > 1
    scheduler = FixedScheduler([len(successors), len(successors) + 1])
    assert scheduler(config, successors) == 0
    assert scheduler(config, successors) == 1


def test_fixed_scheduler_replays_a_recorded_schedule():
    """The (schedule length)-prefix of choices replays the same output —
    the contract shrink-replay relies on."""
    reference = run(TWO_THREADS, scheduler=RandomScheduler(99))
    choice_count = len(reference.schedule)
    for seq in itertools.product((0, 1), repeat=min(choice_count, 4)):
        replayed = run(TWO_THREADS, scheduler=FixedScheduler(list(seq) + [0] * 20))
        assert replayed.output[-1] == 11


# -- RandomScheduler: seed determinism ---------------------------------------


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=40, deadline=None)
def test_random_scheduler_is_a_pure_function_of_its_seed(seed):
    first = run(TWO_THREADS, scheduler=RandomScheduler(seed))
    second = run(TWO_THREADS, scheduler=RandomScheduler(seed))
    assert first.output == second.output
    assert first.schedule == second.schedule


def test_random_scheduler_seeds_are_independent():
    """Different seeds explore different interleavings (on a program with
    3! orderings, 12 seeds collapsing to one schedule would mean the seed
    is ignored)."""
    schedules = {
        run(THREE_PRINTS, scheduler=RandomScheduler(seed)).output
        for seed in range(12)
    }
    assert len(schedules) > 1


def test_random_scheduler_state_advances_within_one_run():
    """The scheduler's RNG is private: interleaving two scheduler objects
    does not perturb each other's streams."""
    a1, b1 = RandomScheduler(5), RandomScheduler(5)
    config = Config(THREE_PRINTS, State.make({}))
    successors = step(config)
    interleaved = [a1(config, successors), b1(config, successors),
                   a1(config, successors), b1(config, successors)]
    a2 = RandomScheduler(5)
    solo = [a2(config, successors), a2(config, successors)]
    assert interleaved[0::2] == solo
    assert interleaved[1::2] == solo


# -- enumerate_executions: bounds --------------------------------------------


def test_enumerate_executions_covers_all_interleavings():
    """3 independent prints → every one of the 3! output orders is
    reached (execution paths can outnumber output orders: the nested
    ``||`` joins are scheduled steps too)."""
    finals = list(enumerate_executions(Config(THREE_PRINTS, State.make({}))))
    assert len(finals) >= 6
    outputs = {f.state.output for f in finals}
    assert outputs == set(itertools.permutations((1, 2, 3)))


def test_enumerate_executions_raises_on_max_steps():
    """A divergent branch hits the depth bound with RuntimeError — it must
    never be silently dropped (the oracle would then under-enumerate)."""
    with pytest.raises(RuntimeError, match="max_steps"):
        list(enumerate_executions(Config(DIVERGENT, State.make({})), max_steps=50))


def test_enumerate_executions_max_executions_truncates_exactly():
    for bound in (1, 2, 5):
        finals = list(
            enumerate_executions(Config(THREE_PRINTS, State.make({})), max_executions=bound)
        )
        assert len(finals) == bound


def test_enumerate_executions_yields_abort_markers():
    program = parse_program("{ x := [0] } || { print(1) }")  # 0 is unallocated
    results = list(enumerate_executions(Config(program, State.make({}))))
    assert ABORT in results


# -- RoundRobinScheduler ------------------------------------------------------


def test_round_robin_alternates_enabled_threads():
    """With two always-enabled threads the choices alternate L, R, L, R —
    the deterministic scheduler of the Fig. 1 leak discussion."""
    program = parse_program("{ print(1); print(2) } || { print(3); print(4) }")
    result = run(program, scheduler=RoundRobinScheduler())
    assert result.output == (1, 3, 2, 4)
