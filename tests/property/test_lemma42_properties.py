"""Property-based validation of Lemma 4.2 and the validity checker.

Random histories over each valid specification's argument domains must
yield a single abstract value over all interleavings, and PRE-related
history *pairs* must yield equal abstractions across the two executions —
the full statement of Lemma 4.2.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assertions.pre import find_bijection, pre_shared, pre_unique
from repro.heap.multiset import Multiset
from repro.spec import abstractions_of_interleavings, check_validity
from repro.spec.library import (
    VALID_SPECS,
    integer_add_spec,
    map_put_keyset_spec,
    producer_consumer_spec,
)

KEYSET = map_put_keyset_spec()
PUT = KEYSET.shared_action

kv_pairs = st.tuples(st.integers(1, 3), st.integers(10, 12))
histories = st.lists(kv_pairs, max_size=4)


class TestLemma42SingleHistory:
    @given(histories)
    @settings(max_examples=40, deadline=None)
    def test_map_keyset_single_alpha(self, history):
        alphas = abstractions_of_interleavings(KEYSET, KEYSET.initial_value, Multiset(history))
        assert len(alphas) == 1

    @given(st.lists(st.integers(-3, 3), max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_integer_add_single_alpha(self, history):
        spec = integer_add_spec()
        alphas = abstractions_of_interleavings(spec, 0, Multiset(history))
        assert alphas == frozenset({sum(history)})

    @given(
        st.lists(st.integers(1, 3), max_size=3),
        st.lists(st.just(0), max_size=2),
    )
    @settings(max_examples=40, deadline=None)
    def test_queue_1p1c_single_alpha(self, produced, consumed):
        spec = producer_consumer_spec(1, 1)
        alphas = abstractions_of_interleavings(
            spec, spec.initial_value, unique_args={"Prod": produced, "Cons": consumed}
        )
        assert alphas == frozenset({tuple(produced)})


class TestLemma42FullRelational:
    """Two PRE-related histories (same keys, any values, any order) produce
    equal abstractions — the two-execution form of Lemma 4.2."""

    @given(histories, st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_pre_related_histories_agree(self, history, rng):
        # second execution: same keys, shuffled order, fresh values
        permuted = list(history)
        rng.shuffle(permuted)
        other = [(key, rng.choice([10, 11, 12])) for key, _ in permuted]
        ms1, ms2 = Multiset(history), Multiset(other)
        assert pre_shared(PUT, ms1, ms2)  # keys form a bijection
        alphas1 = abstractions_of_interleavings(KEYSET, KEYSET.initial_value, ms1)
        alphas2 = abstractions_of_interleavings(KEYSET, KEYSET.initial_value, ms2)
        assert alphas1 == alphas2
        assert len(alphas1) == 1


class TestPreBijection:
    @given(histories)
    def test_pre_reflexive(self, history):
        ms = Multiset(history)
        assert pre_shared(PUT, ms, ms)

    @given(histories, histories)
    def test_pre_symmetric(self, h1, h2):
        ms1, ms2 = Multiset(h1), Multiset(h2)
        assert pre_shared(PUT, ms1, ms2) == pre_shared(PUT, ms2, ms1)

    @given(histories)
    def test_bijection_witness_is_valid(self, history):
        ms = Multiset(history)
        witness = find_bijection(PUT, ms, ms)
        assert witness is not None
        assert len(witness) == len(ms)
        for left, right in witness:
            assert PUT.precondition(left, right)

    @given(histories, kv_pairs)
    def test_cardinality_mismatch_fails(self, history, extra):
        ms = Multiset(history)
        assert not pre_shared(PUT, ms, ms.add(extra))

    @given(st.lists(st.integers(1, 3), max_size=4))
    def test_pre_unique_reflexive(self, args):
        prod = producer_consumer_spec(1, 1).action("Prod")
        assert pre_unique(prod, args, args)

    @given(st.lists(st.integers(1, 3), min_size=2, max_size=4))
    def test_pre_unique_rejects_reordering(self, args):
        prod = producer_consumer_spec(1, 1).action("Prod")
        reordered = args[1:] + args[:1]
        if reordered != args:
            assert not pre_unique(prod, args, reordered)


class TestRandomCommutativeSpecs:
    """Randomly generated *commutative* action sets always pass validity,
    and randomly generated order-sensitive ones always fail — the checker
    neither under- nor over-approximates on these families."""

    @given(st.integers(-2, 2), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_affine_add_mul_commutes(self, offset, scale):
        from repro.spec import Action, ResourceSpecification
        from repro.spec.actions import low_everything

        add = Action.shared(
            "AddOff", lambda v, x: v + x + offset, low_projections=low_everything()
        )
        spec = ResourceSpecification(
            "RandomAffine",
            abstraction=lambda v: v,
            actions=(add,),
            initial_value=0,
            value_domain=tuple(range(-2, 3)),
            arg_domains={"AddOff": tuple(range(-2, 3))},
        )
        assert check_validity(spec).valid

    @given(st.integers(2, 4))
    @settings(max_examples=10, deadline=None)
    def test_append_never_commutes_concretely(self, domain_size):
        from repro.spec import Action, ResourceSpecification
        from repro.spec.actions import low_everything

        append = Action.shared(
            "App", lambda v, x: v + (x,), low_projections=low_everything()
        )
        spec = ResourceSpecification(
            "RandomAppend",
            abstraction=lambda v: v,  # identity: order visible
            actions=(append,),
            initial_value=(),
            value_domain=((), (0,)),
            arg_domains={"App": tuple(range(domain_size))},
        )
        assert not check_validity(spec).valid
