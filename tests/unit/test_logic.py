"""Unit tests for the CommCSL proof rules (Fig. 8 / Fig. 10)."""

from fractions import Fraction

import pytest

from repro.assertions import (
    BoolAssert,
    Conj,
    Emp,
    Low,
    PointsTo,
    SepConj,
)
from repro.heap import ExtendedHeap, PermissionHeap
from repro.lang.ast import Lit, Var
from repro.lang.parser import parse_expr
from repro.logic import (
    ProofError,
    alloc_rule,
    assign_rule,
    cons_rule,
    entails,
    exists_rule,
    frame_rule,
    if_high_rule,
    if_low_rule,
    par_rule,
    read_rule,
    seq_rule,
    skip_rule,
    while_high_rule,
    while_low_rule,
    write_rule,
)

X_IS_1 = BoolAssert(parse_expr("x == 1"))


class TestSmallAxioms:
    def test_skip(self):
        node = skip_rule(None, Emp())
        assert node.judgment.pre == node.judgment.post

    def test_assign_computes_backwards_precondition(self):
        node = assign_rule(None, "x", Lit(1), Low(Var("x")))
        assert node.judgment.pre == Low(Lit(1))

    def test_alloc(self):
        node = alloc_rule(None, "p", Lit(0))
        assert node.judgment.pre == Emp()
        assert node.judgment.post == PointsTo(Var("p"), Lit(0), Fraction(1))

    def test_alloc_rejects_target_in_initializer(self):
        with pytest.raises(ProofError):
            alloc_rule(None, "p", Var("p"))

    def test_read(self):
        node = read_rule(None, "t", Var("p"), Lit(5))
        assert isinstance(node.judgment.post, SepConj)

    def test_read_rejects_target_in_address(self):
        with pytest.raises(ProofError):
            read_rule(None, "p", Var("p"), Lit(5))

    def test_write(self):
        node = write_rule(None, Var("p"), Lit(0), Lit(5))
        assert node.judgment.post == PointsTo(Var("p"), Lit(5), Fraction(1))


class TestSequencing:
    def test_seq_composes(self):
        first = assign_rule(None, "x", Lit(1), X_IS_1)
        second = skip_rule(None, X_IS_1)
        node = seq_rule(first, second)
        assert node.judgment.post == X_IS_1

    def test_seq_rejects_mismatched_middle(self):
        first = assign_rule(None, "x", Lit(1), X_IS_1)
        second = skip_rule(None, Emp())
        with pytest.raises(ProofError):
            seq_rule(first, second)


class TestConditionals:
    def _branches(self, post):
        condition = parse_expr("b > 0")
        then_pre = Conj(Emp(), BoolAssert(condition))
        else_pre = Conj(Emp(), BoolAssert(parse_expr("!(b > 0)")))
        then_proof = cons_rule(skip_rule(None, then_pre), then_pre, post, trusted=True)
        else_proof = cons_rule(skip_rule(None, else_pre), else_pre, post, trusted=True)
        return condition, then_proof, else_proof

    def test_if_low_allows_relational_post(self):
        condition, then_proof, else_proof = self._branches(Low(Var("y")))
        node = if_low_rule(condition, then_proof, else_proof)
        assert node.judgment.pre == Conj(Emp(), Low(condition))

    def test_if_high_requires_unary_post(self):
        condition, then_proof, else_proof = self._branches(Low(Var("y")))
        with pytest.raises(ProofError, match="unary"):
            if_high_rule(condition, then_proof, else_proof)

    def test_if_high_accepts_unary_post(self):
        condition, then_proof, else_proof = self._branches(Emp())
        node = if_high_rule(condition, then_proof, else_proof)
        assert node.judgment.pre == Emp()

    def test_implicit_flow_blocked(self):
        """{Low(x)} if (h) {x:=1} else {x:=0} {Low(x)} must NOT be derivable
        via If2 — the canonical implicit-flow example of App. B.2."""
        condition = parse_expr("h > 0")
        post = Low(Var("x"))
        then_pre = Conj(assign_rule(None, "x", Lit(1), post).judgment.pre, BoolAssert(condition))
        then_proof = cons_rule(
            assign_rule(None, "x", Lit(1), post), then_pre, post, trusted=True
        )
        else_pre = Conj(
            assign_rule(None, "x", Lit(0), post).judgment.pre,
            BoolAssert(parse_expr("!(h > 0)")),
        )
        else_proof = cons_rule(
            assign_rule(None, "x", Lit(0), post), else_pre, post, trusted=True
        )
        with pytest.raises(ProofError, match="unary"):
            if_high_rule(condition, then_proof, else_proof)


class TestLoops:
    def test_while_low(self):
        condition = parse_expr("i < n")
        invariant = Emp()
        body_pre = Conj(invariant, BoolAssert(condition))
        body_post = Conj(invariant, Low(condition))
        body = cons_rule(skip_rule(None, body_pre), body_pre, body_post, trusted=True)
        node = while_low_rule(condition, body)
        assert node.judgment.post == Conj(invariant, BoolAssert(parse_expr("!(i < n)")))

    def test_while_high_requires_unary_invariant(self):
        condition = parse_expr("i < h")
        invariant = Low(Var("x"))
        body_pre = Conj(invariant, BoolAssert(condition))
        body = cons_rule(skip_rule(None, body_pre), body_pre, invariant, trusted=True)
        with pytest.raises(ProofError, match="unary"):
            while_high_rule(condition, body)

    def test_while_high_with_unary_invariant(self):
        condition = parse_expr("i < h")
        invariant = Emp()
        body_pre = Conj(invariant, BoolAssert(condition))
        body = cons_rule(skip_rule(None, body_pre), body_pre, invariant, trusted=True)
        node = while_high_rule(condition, body)
        assert node.judgment.pre == invariant


class TestParAndFrame:
    def test_par_composes_disjoint_threads(self):
        left = write_rule(None, Var("p"), Lit(0), Lit(1))
        right = write_rule(None, Var("q"), Lit(0), Lit(2))
        node = par_rule(left, right)
        assert isinstance(node.judgment.pre, SepConj)

    def test_par_rejects_variable_interference(self):
        left = assign_rule(None, "x", Lit(1), X_IS_1)
        right = assign_rule(None, "x", Lit(2), BoolAssert(parse_expr("x == 2")))
        with pytest.raises(ProofError, match="modifies"):
            par_rule(left, right)

    def test_frame_preserves_disjoint_state(self):
        node = frame_rule(
            write_rule(None, Var("p"), Lit(0), Lit(1)),
            PointsTo(Var("q"), Lit(7)),
        )
        assert isinstance(node.judgment.pre, SepConj)

    def test_frame_rejects_modified_variables(self):
        proof = assign_rule(None, "x", Lit(1), X_IS_1)
        with pytest.raises(ProofError):
            frame_rule(proof, PointsTo(Var("x"), Lit(0)))


class TestConsAndExists:
    def _probe_states(self):
        gh = ExtendedHeap(PermissionHeap.singleton(1, 5))
        return [
            ({"p": 1, "x": 5}, gh, {"p": 1, "x": 5}, gh),
            ({"p": 1, "x": 5}, gh, {"p": 1, "x": 6}, gh),
        ]

    def test_entails_on_probes(self):
        probes = self._probe_states()
        assert entails(Low(Var("x")), BoolAssert(parse_expr("x == 5")), probes)
        # x >= 5 holds of the (5, 6) probe pair but Low(x) does not.
        assert not entails(BoolAssert(parse_expr("x >= 5")), Low(Var("x")), probes)

    def test_cons_checks_entailment(self):
        proof = skip_rule(None, Low(Var("x")))
        probes = self._probe_states()
        node = cons_rule(proof, Low(Var("x")), BoolAssert(parse_expr("x == 5")), probes)
        assert node.judgment.post == BoolAssert(parse_expr("x == 5"))

    def test_cons_rejects_bad_entailment(self):
        proof = skip_rule(None, BoolAssert(parse_expr("x >= 5")))
        with pytest.raises(ProofError):
            cons_rule(
                proof,
                BoolAssert(parse_expr("x >= 5")),
                Low(Var("x")),
                self._probe_states(),
            )

    def test_trusted_cons_is_marked(self):
        node = cons_rule(skip_rule(None, Emp()), Emp(), Emp(), trusted=True)
        assert node.note == "trusted"

    def test_exists_requires_unambiguity(self):
        proof = skip_rule(None, Low(Var("v")))
        with pytest.raises(ProofError, match="determine"):
            exists_rule(proof, "v")

    def test_exists_over_points_to(self):
        proof = skip_rule(None, PointsTo(Var("p"), Var("v")))
        node = exists_rule(proof, "v")
        assert "∃" in str(node.judgment.pre)

    def test_proof_tree_size_and_pretty(self):
        first = assign_rule(None, "x", Lit(1), X_IS_1)
        second = skip_rule(None, X_IS_1)
        node = seq_rule(first, second)
        assert node.size() == 3
        assert "[Seq]" in node.pretty()
