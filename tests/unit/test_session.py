"""Unit behaviour of SolverSession: activation bookkeeping, clause-DB
leanness under retirement, and structural sharing across related VCs."""

from repro.smt import INT, App, SymVar, Verdict, check_validity, conj, eq, implies
from repro.smt.session import SolverSession, in_euf_fragment, in_mixed_fragment
from repro.smt.terms import Const, negate


def _family(index, width=12):
    atoms = [
        App("<", (SymVar(f"u{j}", INT), SymVar(f"w{j}", INT))) for j in range(width)
    ]
    return implies(conj(*atoms), atoms[index])


class TestSession:
    def test_propositional_verdicts(self):
        session = SolverSession()
        assert session.propositionally_valid(_family(0))
        x = SymVar("x0", INT)
        assert not session.propositionally_valid(App("<", (x, x)))

    def test_euf_verdicts_and_fallback(self):
        session = SolverSession()
        x, y, z = (SymVar(name, INT) for name in ("ex", "ey", "ez"))
        assert session.theory_valid(implies(conj(eq(x, y), eq(y, z)), eq(x, z))) is True
        assert session.theory_valid(implies(eq(x, y), eq(x, z))) is False
        assert session.fallbacks == 0
        # An integer comparison atom routes to the shared mixed
        # (equality + difference logic) sub-session, not the fallback.
        ordered = implies(conj(App("<", (x, y)), App("<", (y, z))), App("<", (x, z)))
        assert not in_euf_fragment(ordered)
        assert in_mixed_fragment(ordered)
        assert session.theory_valid(ordered) is True
        assert session.fallbacks == 0
        assert session.stats()["mixed_queries"] == 1
        # A comparison over an uninterpreted application is outside
        # every fragment: one-shot fallback.
        outside = implies(
            App("<", (App("g", (x,)), y)), App("<", (App("g", (x,)), y))
        )
        assert not in_mixed_fragment(outside)
        assert session.theory_valid(outside) is True
        assert session.fallbacks == 1

    def test_mixed_queries_bypass_order_atoms_when_gated(self):
        # allow_orders=False (a caller whose sort overrides reinterpret
        # INT-labelled variables) must keep order atoms away from the
        # shared difference-logic propagator.
        session = SolverSession()
        x, y = SymVar("gx", INT), SymVar("gy", INT)
        ordered = implies(App("<", (x, y)), App("<", (x, y)))
        assert session.theory_valid(ordered, allow_orders=False) is True
        assert session.stats()["mixed_queries"] == 0
        assert session.fallbacks == 1

    def test_shared_structure_is_converted_once(self):
        session = SolverSession()
        for index in range(8):
            assert session.propositionally_valid(_family(index))
        stats = session.stats()
        # The big shared conjunction re-resolves from the definition memo
        # after the first VC instead of re-emitting clauses.
        assert stats["definition_hits"] > 0
        assert stats["skeleton_queries"] == 8

    def test_database_stays_lean_under_retirement(self):
        session = SolverSession()
        live_counts = []
        for _ in range(5):
            for index in range(4):
                session.propositionally_valid(_family(index))
            live_counts.append(session.stats()["live_clauses"])
        # Repeating the same VC family must not grow the database: all
        # activation-guarded clauses were retired, definitions are memoized.
        assert live_counts[-1] == live_counts[0]
        assert session.stats()["retired_clauses"] > 0

    def test_session_verdicts_match_module_fast_paths(self):
        session = SolverSession()
        x, y = SymVar("mx", INT), SymVar("my", INT)
        cases = [
            _family(3),
            implies(eq(x, y), eq(y, x)),
            negate(eq(x, x)),
            conj(Const(True), eq(x, x)),
        ]
        for formula in cases:
            fresh = check_validity(formula, use_cache=False)
            shared = check_validity(formula, use_cache=False, session=session)
            assert fresh.verdict == shared.verdict
            assert fresh.model == shared.model

    def test_unknown_formulas_are_unaffected(self):
        # An uninterpreted unary application mixed with arithmetic falls
        # through every fast path to the enumerator, which cannot
        # evaluate it: UNKNOWN, with or without a session.
        g = App("g", (SymVar("gx", INT),))
        formula = App("<", (g, SymVar("gy", INT)))
        session = SolverSession()
        assert check_validity(formula, use_cache=False).verdict == Verdict.UNKNOWN
        assert (
            check_validity(formula, use_cache=False, session=session).verdict
            == Verdict.UNKNOWN
        )
