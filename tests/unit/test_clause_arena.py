"""Unit suite for the flat clause arena inside
:class:`repro.smt.dpll.WatchedSolver`.

The arena packs every clause into one shared int list — three header
words (size, state/LBD, recency stamp) followed by the literals, encoded
as ``2v`` (positive) / ``2v + 1`` (negative).  These tests pin the
structural layer directly: encoding round-trips, header bookkeeping,
watch-list integrity across the add/learn/reduce/retire lifecycle,
tombstone compaction triggers, and the epoch-tagged clause marks that
keep :meth:`~repro.smt.dpll.WatchedSolver.retire` scans valid across
compactions.
"""

import pytest

from repro.smt.dpll import (
    WatchedSolver,
    _COMPACT_FRACTION,
    _HDR,
    _decode,
    _encode,
)


def _pigeonhole(pigeons, holes):
    clauses = [
        tuple(p * holes + h + 1 for h in range(holes)) for p in range(pigeons)
    ]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append((-(p1 * holes + h + 1), -(p2 * holes + h + 1)))
    return clauses


class TestLiteralEncoding:
    @pytest.mark.parametrize("literal", [1, -1, 2, -2, 7, -7, 1000, -1000])
    def test_round_trip(self, literal):
        assert _decode(_encode(literal)) == literal

    def test_encoding_layout(self):
        # Positive literal of v is 2v, negative 2v+1; negation is ^1.
        assert _encode(3) == 6
        assert _encode(-3) == 7
        assert _encode(3) ^ 1 == _encode(-3)
        assert _encode(3) >> 1 == 3 == _encode(-3) >> 1

    def test_clauses_round_trip_through_arena(self):
        clauses = [(1, -2, 3), (-1, 2), (2, 3, -4, 5)]
        solver = WatchedSolver(clauses)
        # live_clauses decodes straight out of the arena; order and
        # content are preserved (watch swaps may reorder the first two
        # literals only after propagation, none has run here).
        assert [tuple(c) for c in solver.live_clauses()] == clauses


class TestArenaLayout:
    def test_header_words_per_clause(self):
        solver = WatchedSolver([(1, -2, 3), (-1, 2)])
        stats = solver.clause_db_stats()
        assert stats["arena_words"] == (3 + _HDR) + (2 + _HDR)
        assert stats["live_input"] == 2
        assert stats["live_learned"] == 0
        assert stats["dead_words"] == 0

    def test_units_and_tautologies_never_reach_the_arena(self):
        solver = WatchedSolver([(5,), (1, -1), (1, -1, 2)])
        assert solver.clause_db_stats()["arena_words"] == 0
        assert solver._units == [5]

    def test_duplicate_literals_collapse(self):
        solver = WatchedSolver([(1, 1, -2)])
        assert solver.live_clauses() == [[1, -2]]

    def test_learned_clauses_carry_positive_state(self):
        solver = WatchedSolver(_pigeonhole(3, 2))
        assert solver.solve() is None
        assert solver.learned_clauses > 0
        learned = solver.live_learned_clauses()
        stats = solver.clause_db_stats()
        assert stats["live_learned"] == len(learned)
        solver.db_check()


class TestWatchIntegrity:
    def test_after_add(self):
        solver = WatchedSolver([(1, -2, 3), (-1, 2), (2, 3, -4, 5)])
        solver.db_check()

    def test_after_solve_learning(self):
        solver = WatchedSolver(_pigeonhole(4, 3))
        assert solver.solve() is None
        solver.db_check()

    def test_after_reduce(self):
        solver = WatchedSolver(_pigeonhole(6, 5), reduce_floor=1)
        assert solver.solve() is None
        assert solver.reductions > 0
        solver.db_check()

    def test_after_retire(self):
        solver = WatchedSolver()
        mark = solver.clause_mark()
        solver.add_clause((1, 2, -9))
        solver.add_clause((-1, 3, -9))
        solver.add_clause((1, 4))  # unrelated: must survive
        assert solver.retire(9, since=mark) == 2
        assert solver.live_clauses() == [[1, 4]]
        solver.db_check()

    def test_interleaved_lifecycle(self):
        solver = WatchedSolver(reduce_floor=1)
        for clause in _pigeonhole(4, 3):
            solver.add_clause(clause)
        mark = solver.clause_mark()
        solver.add_clause((50, 51, -60))
        solver.add_clause((-50, 52, -60))
        assert solver.solve([60]) is None  # pigeonhole core is UNSAT
        solver.retire(60, since=mark)
        solver.db_check()
        # Pigeonhole with enough holes to be SAT after adding a new hole
        # column is not modeled here; just confirm the DB still answers.
        assert solver.solve([60]) is None
        solver.db_check()


class TestTombstoneCompaction:
    def test_compaction_triggers_on_fraction(self):
        solver = WatchedSolver()
        mark = solver.clause_mark()
        for i in range(1, 101):
            solver.add_clause((i, i + 1, 500))
        words_before = solver.clause_db_stats()["arena_words"]
        assert words_before == 100 * (3 + _HDR)
        solver.retire(500, since=mark)
        stats = solver.clause_db_stats()
        assert stats["compactions"] == 1
        assert stats["arena_words"] == 0
        assert stats["dead_words"] == 0

    def test_small_arena_not_compacted(self):
        # Below the size threshold retirement tombstones but keeps the
        # words (compaction would cost more than it frees).
        solver = WatchedSolver()
        mark = solver.clause_mark()
        solver.add_clause((1, 2, 9))
        solver.retire(9, since=mark)
        stats = solver.clause_db_stats()
        assert stats["compactions"] == 0
        assert stats["dead_words"] == 3 + _HDR

    def test_compaction_preserves_surviving_clauses(self):
        solver = WatchedSolver()
        keep = [(i, -(i + 1)) for i in range(1, 200, 2)]
        for clause in keep:
            solver.add_clause(clause)
        mark = solver.clause_mark()
        for i in range(1, 300):
            solver.add_clause((i, i + 2, 700))
        solver.retire(700, since=mark)
        assert solver.clause_db_stats()["compactions"] >= 1
        live = [tuple(c) for c in solver.live_clauses()]
        assert live == keep
        solver.db_check()
        assert solver.solve() is not None

    def test_compact_fraction_is_meaningful(self):
        assert 0 < _COMPACT_FRACTION < 1


class TestClauseMarks:
    def test_mark_scopes_retire_scan(self):
        solver = WatchedSolver()
        solver.add_clause((1, 2, 9))  # pre-mark clause mentioning 9
        mark = solver.clause_mark()
        solver.add_clause((3, 4, -9))
        # A scoped retire only scans from the mark: the pre-mark clause
        # is intentionally out of range (the session contract passes the
        # mark taken just before the query's guarded clauses).
        assert solver.retire(9, since=mark) == 1
        assert [tuple(c) for c in solver.live_clauses()] == [(1, 2, 9)]

    def test_stale_mark_degrades_to_full_scan(self):
        solver = WatchedSolver()
        for i in range(1, 101):
            solver.add_clause((i, i + 1, 500))
        stale = solver.clause_mark()  # taken at epoch 0, end of arena
        mark0 = solver.clause_mark()
        # Trigger a compaction by retiring everything (epoch bumps).
        solver.retire(500, since=0)
        assert solver.clause_db_stats()["epoch"] >= 1
        solver.add_clause((1, 2, 600))
        # The stale mark's offset points past the new arena's end under
        # its old epoch; retire must fall back to a full scan and still
        # find the clause.
        assert solver.retire(600, since=stale) == 1
        solver.db_check()

    def test_marks_are_monotonic_within_an_epoch(self):
        solver = WatchedSolver()
        first = solver.clause_mark()
        solver.add_clause((1, 2))
        second = solver.clause_mark()
        assert second > first


class TestSolveStatePersistence:
    def test_search_arrays_clear_between_solves(self):
        solver = WatchedSolver([(1, 2), (-1, 2)])
        first = solver.solve()
        assert first is not None
        # After solve returns, the trail is fully retracted.
        assert solver._trail == []
        second = solver.solve([-1])
        assert second is not None and second.get(1) is False
        assert second.get(2) is True
        solver.db_check()

    def test_phase_saving_survives_retraction(self):
        solver = WatchedSolver([(1, 2)])
        model = solver.solve([1, -2])
        assert model is not None
        # Saved phases reflect the last assignment even though the
        # trail was retracted.
        assert solver._phase[1] is True
        assert solver._phase[2] is False
