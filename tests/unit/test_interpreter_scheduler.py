"""Unit tests for the interpreter and schedulers."""

import pytest

from repro.lang.interpreter import AbortError, run
from repro.lang.parser import parse_program
from repro.lang.scheduler import (
    FixedScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    enumerate_executions,
    left_first,
)
from repro.lang.semantics import ABORT, Config, State


class TestRun:
    def test_sequential_program(self):
        result = run(parse_program("x := 1\ny := x + 1"))
        assert result.store["y"] == 2

    def test_inputs_feed_store(self):
        result = run(parse_program("y := x * 2"), {"x": 21})
        assert result.store["y"] == 42

    def test_output_trace(self):
        result = run(parse_program("print(1)\nprint(2)"))
        assert result.output == (1, 2)

    def test_abort_raises(self):
        with pytest.raises(AbortError):
            run(parse_program("x := [p]"), {"p": 3})

    def test_divergence_detected(self):
        with pytest.raises(RuntimeError, match="did not terminate"):
            run(parse_program("while (true) { skip }"), max_steps=500)

    def test_deadlock_detected(self):
        source = "q := alloc(0)\natomic [A(0)] when (deref(q) > 0) { [q] := 0 }"
        with pytest.raises(RuntimeError, match="deadlock"):
            run(parse_program(source))

    def test_schedule_recorded(self):
        result = run(parse_program("{ x := 1 } || { y := 2 }"))
        assert len(result.schedule) >= 2


class TestSchedulers:
    SOURCE = "{ x := 1; x := x + 1 } || { y := 5 }"

    def test_left_first_runs_left_thread_first(self):
        result = run(parse_program(self.SOURCE), scheduler=left_first)
        assert result.store["x"] == 2

    def test_round_robin_alternates(self):
        result = run(parse_program(self.SOURCE), scheduler=RoundRobinScheduler())
        assert result.store == {"x": 2, "y": 5}

    def test_random_scheduler_deterministic_per_seed(self):
        out1 = run(parse_program(self.SOURCE), scheduler=RandomScheduler(7)).schedule
        out2 = run(parse_program(self.SOURCE), scheduler=RandomScheduler(7)).schedule
        assert out1 == out2

    def test_random_scheduler_varies_with_seed(self):
        source = "{ s := 1 } || { s := 2 }"
        finals = {
            run(parse_program(source), scheduler=RandomScheduler(seed)).store["s"]
            for seed in range(20)
        }
        assert finals == {1, 2}

    def test_fixed_scheduler_replays(self):
        source = "{ s := 1 } || { s := 2 }"
        result = run(parse_program(source), scheduler=FixedScheduler([1, 1, 1, 1]))
        replay = run(parse_program(source), scheduler=FixedScheduler([1, 1, 1, 1]))
        assert result.store == replay.store


class TestEnumeration:
    def test_enumerates_all_interleavings_of_race(self):
        source = "{ s := 1 } || { s := 2 }"
        finals = {
            config.state.read_var("s")
            for config in enumerate_executions(Config(parse_program(source), State.make()))
            if config != ABORT
        }
        assert finals == {1, 2}

    def test_deterministic_program_single_outcome(self):
        source = "x := 1\ny := 2"
        outcomes = list(enumerate_executions(Config(parse_program(source), State.make())))
        assert len(outcomes) == 1

    def test_yields_abort(self):
        source = "{ x := [p] } || { y := 1 }"
        outcomes = list(
            enumerate_executions(Config(parse_program(source), State.make({"p": 5})))
        )
        assert ABORT in outcomes

    def test_max_executions_bound(self):
        source = "{ a := 1; b := 2 } || { c := 3; d := 4 }"
        outcomes = list(
            enumerate_executions(Config(parse_program(source), State.make()), max_executions=3)
        )
        assert len(outcomes) == 3

    def test_interleaving_count_two_step_threads(self):
        # Two independent 1-assignment threads: assignments interleave in
        # 2 orders; the join adds no variation.
        source = "{ a := 1 } || { b := 2 }"
        outcomes = list(enumerate_executions(Config(parse_program(source), State.make())))
        assert len(outcomes) == 2
