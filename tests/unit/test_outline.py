"""Tests for proof outlines (Fig. 5 style) and derivation re-checking."""

import pytest

from repro.assertions.ast import BoolAssert, Conj, Emp, Low
from repro.lang.ast import Assign, BinOp, Lit, Seq, Skip, Var
from repro.logic import ProofError, assign_rule, seq_rule, skip_rule
from repro.logic.judgment import Judgment, ProofNode
from repro.logic.outline import (
    OutlineBuilder,
    ProofOutline,
    rules_used,
    to_outline,
    validate_structure,
)


def _simple_assign_proof():
    # {Low(e+1)} x := e + 1 {Low(x)}
    return assign_rule(None, "x", BinOp("+", Var("e"), Lit(1)), Low(Var("x")))


class TestOutlineBuilder:
    def test_single_step(self):
        node = _simple_assign_proof()
        builder = OutlineBuilder(None, node.judgment.pre)
        proof = builder.step(node).close()
        assert proof.judgment == node.judgment

    def test_two_steps_compose_with_seq(self):
        first = assign_rule(None, "x", Lit(1), Low(Var("x")))
        second = assign_rule(None, "y", Var("x"), Conj(Low(Var("y")), Low(Var("x"))))
        builder = OutlineBuilder(None, first.judgment.pre)
        builder.step(first)
        # bridge: Low(x) ⇒ Low(x) ∧ Low(x)  — matches second's pre Low(x)[x/y]
        assert second.judgment.pre == Conj(Low(Var("x")), Low(Var("x")))
        builder.entail(second.judgment.pre, trusted=True)
        builder.step(second)
        proof = builder.close()
        assert proof.rule == "Seq"
        assert isinstance(proof.judgment.command, Seq)

    def test_step_with_wrong_pre_raises(self):
        node = _simple_assign_proof()
        builder = OutlineBuilder(None, Emp())
        with pytest.raises(ProofError, match="does not\n?.*match|match"):
            builder.step(node)

    def test_entail_before_any_step_strengthens_pre(self):
        builder = OutlineBuilder(None, Conj(Emp(), BoolAssert(Lit(True))))
        builder.entail(Emp(), trusted=True)
        proof = builder.close()
        assert proof.judgment.pre == Conj(Emp(), BoolAssert(Lit(True)))
        assert proof.judgment.post == Emp()

    def test_empty_builder_closes_to_skip(self):
        builder = OutlineBuilder(None, Emp())
        proof = builder.close()
        assert proof.rule == "Skip"

    def test_current_tracks_postcondition(self):
        node = _simple_assign_proof()
        builder = OutlineBuilder(None, node.judgment.pre)
        builder.step(node)
        assert builder.current == Low(Var("x"))


class TestToOutline:
    def test_renders_assertions_around_commands(self):
        node = _simple_assign_proof()
        outline = to_outline(node)
        text = outline.render()
        assert text.splitlines()[0].startswith("{")
        assert "x := " in text
        assert text.splitlines()[-1].startswith("{")

    def test_seq_renders_middle_assertion(self):
        first = assign_rule(None, "x", Lit(1), Low(Var("x")))
        second = skip_rule(None, Low(Var("x")))
        outline = to_outline(seq_rule(first, second))
        lines = outline.render().splitlines()
        # pre, command, middle, command, post
        assert len(lines) == 5
        assert lines[2] == "{ Low(x) }"


class TestRulesUsed:
    def test_histogram(self):
        first = assign_rule(None, "x", Lit(1), Low(Var("x")))
        second = skip_rule(None, Low(Var("x")))
        counts = rules_used(seq_rule(first, second))
        assert counts == {"Seq": 1, "Assign": 1, "Skip": 1}


class TestValidateStructure:
    def test_valid_tree_has_no_problems(self):
        first = assign_rule(None, "x", Lit(1), Low(Var("x")))
        second = skip_rule(None, Low(Var("x")))
        assert validate_structure(seq_rule(first, second)) == []

    def test_detects_mutated_seq_node(self):
        first = assign_rule(None, "x", Lit(1), Low(Var("x")))
        second = skip_rule(None, Emp())  # pre Emp ≠ first's post
        bogus = ProofNode(
            "Seq",
            Judgment(None, first.judgment.pre, Seq(first.judgment.command, Skip()), Emp()),
            (first, second),
        )
        problems = validate_structure(bogus)
        assert any("mismatched middle" in problem for problem in problems)

    def test_detects_bogus_skip(self):
        bogus = ProofNode("Skip", Judgment(None, Emp(), Assign("x", Lit(1)), Emp()))
        problems = validate_structure(bogus)
        assert any("Skip node concluding" in problem for problem in problems)

    def test_detects_share_under_gamma(self):
        from repro.spec.library import counter_increment_spec
        from repro.spec.resource import ResourceContext

        ctx = ResourceContext(counter_increment_spec(), "c")
        bogus = ProofNode("Share", Judgment(ctx, Emp(), Skip(), Emp()))
        problems = validate_structure(bogus)
        assert any("must be under ⊥" in problem for problem in problems)
