"""Unit tests for the PC-taint flow analysis (repro.analysis.flow)."""

from repro.analysis import analyze_flow, analyze_spec_flow
from repro.casestudies import ALL_CASES, case_by_name
from repro.lang import parse_program


def _flow(source, low=(), high=(), observable=None):
    return analyze_flow(
        parse_program(source), low_inputs=low, high_inputs=high, observable=observable
    )


class TestSecurePrograms:
    def test_all_low_straight_line_is_secure(self):
        report = _flow("x := a + 1\nprint(x)", low=("a",))
        assert report.secure
        assert report.findings == ()
        assert report.reasons == ()

    def test_unused_secret_is_secure(self):
        report = _flow("x := a\nnote := h + 1\nprint(x)", low=("a",), high=("h",))
        assert report.secure

    def test_low_branching_is_secure(self):
        report = _flow(
            "if (a < 3) { x := 1 } else { x := 2 }\nprint(x)", low=("a",), high=("h",)
        )
        assert report.secure

    def test_low_loop_is_secure(self):
        report = _flow(
            "i := 0\ns := 0\nwhile (i < n) { s := s + i\ni := i + 1 }\nprint(s)",
            low=("n",),
            high=("h",),
        )
        assert report.secure

    def test_sequential_heap_program_is_secure(self):
        report = _flow(
            "c := alloc(0)\nt := [c]\n[c] := t + a\nresult := [c]\nprint(result)",
            low=("a",),
            high=("h",),
        )
        assert report.secure

    def test_noninterfering_par_is_secure(self):
        # Disjoint variable footprints, no output inside ||.
        report = _flow(
            "{ x := a + 1 } || { y := b + 2 }\nprint(x + y)",
            low=("a", "b"),
            high=("h",),
        )
        assert report.secure

    def test_secret_overwritten_before_output_is_secure(self):
        # Flow-sensitivity: the high value is dead at the print.
        report = _flow("x := h\nx := 1\nprint(x)", high=("h",))
        assert report.secure

    def test_unobservable_channel_print_is_exempt(self):
        report = analyze_flow(
            parse_program("print(h, debug)"),
            high_inputs=("h",),
            observable=lambda channel: channel == "stdout",
        )
        assert report.secure


class TestLeaks:
    def test_explicit_flow_is_f001(self):
        report = _flow("print(h)", high=("h",))
        assert not report.secure
        assert [d.code for d in report.findings] == ["F001"]

    def test_explicit_flow_through_arithmetic(self):
        report = _flow("x := h + 1\ny := x * 2\nprint(y)", high=("h",))
        assert [d.code for d in report.findings] == ["F001"]

    def test_implicit_flow_is_f002(self):
        report = _flow(
            "if (h < 0) { print(1) } else { print(2) }", high=("h",)
        )
        assert not report.secure
        assert {d.code for d in report.findings} == {"F002"}

    def test_assignment_under_high_branch_taints_target(self):
        report = _flow(
            "x := 0\nif (h < 0) { x := 1 } else { skip }\nprint(x)", high=("h",)
        )
        assert [d.code for d in report.findings] == ["F001"]

    def test_heap_carries_taint(self):
        report = _flow(
            "c := alloc(0)\n[c] := h\nt := [c]\nprint(t)", high=("h",)
        )
        assert [d.code for d in report.findings] == ["F001"]

    def test_loop_fixpoint_propagates_taint(self):
        # The taint only reaches `x` on the second abstract iteration.
        report = _flow(
            "x := 0\ny := 0\ni := 0\n"
            "while (i < n) { x := y\ny := h\ni := i + 1 }\n"
            "print(x)",
            low=("n",),
            high=("h",),
        )
        assert [d.code for d in report.findings] == ["F001"]

    def test_findings_cite_positions(self):
        (finding,) = _flow("print(h)", high=("h",)).findings
        assert finding.line is not None
        assert finding.severity == "error"


class TestBailouts:
    def _reasons(self, source, **kwargs):
        report = _flow(source, **kwargs)
        assert not report.secure
        assert report.reasons
        return " ".join(report.reasons)

    def test_interfering_par_bails(self):
        reasons = self._reasons("{ x := 1 } || { y := x }", low=("a",))
        assert "interfere" in reasons

    def test_parallel_heap_writes_bail_even_when_atomic(self):
        reasons = self._reasons(
            "c := alloc(0)\n"
            "{ atomic { t1 := [c]; [c] := t1 + 1 } } || "
            "{ atomic { t2 := [c]; [c] := t2 + 1 } }",
        )
        assert "heap cell" in reasons

    def test_observable_print_inside_par_bails(self):
        reasons = self._reasons("{ print(1) } || { y := 2 }")
        assert "output inside a parallel composition" in reasons

    def test_blocking_guard_bails(self):
        reasons = self._reasons(
            "c := alloc(0)\natomic when (deref(c) > 0) { [c] := 0 }"
        )
        assert "guard" in reasons

    def test_computed_address_bails(self):
        reasons = self._reasons("c := alloc(0)\nt := [c + 0]")
        assert "computed address" in reasons

    def test_address_escape_bails(self):
        reasons = self._reasons("c := alloc(0)\nx := c + 1\nprint(x)")
        assert "escapes" in reasons

    def test_alloc_inside_branch_bails(self):
        reasons = self._reasons("if (a < 0) { c := alloc(0) } else { skip }", low=("a",))
        assert "allocation inside" in reasons

    def test_bailout_never_reports_secure_with_findings(self):
        report = _flow("print(h)\n{ x := 1 } || { y := x }", high=("h",))
        assert not report.secure


class TestSpecFlow:
    def test_sequential_tally_is_secure(self):
        case = case_by_name("Sequential-Tally")
        assert analyze_spec_flow(case.program_spec()).secure

    def test_every_parallel_corpus_case_is_unknown(self):
        # Every Table-1 case uses interfering || branches: the fast path
        # must leave them all to the full verifier.
        for case in ALL_CASES:
            if case.name == "Sequential-Tally":
                continue
            report = analyze_spec_flow(case.program_spec())
            assert not report.secure, case.name

    def test_insecure_cases_never_report_secure(self):
        for case in ALL_CASES:
            if case.expected_verified:
                continue
            report = analyze_spec_flow(case.program_spec())
            assert not report.secure, case.name
