"""Unit tests for the lockset race detector (repro.analysis.races)."""

from repro.analysis import ATOMIC_LOCK, check_races, collect_accesses
from repro.analysis.races import HeapAccess
from repro.casestudies import case_by_name
from repro.lang import parse_program
from repro.lang.ast import Atomic, Load, Par, Store


def _codes(diagnostics):
    return sorted(d.code for d in diagnostics)


class TestCollectAccesses:
    def test_alloc_is_not_an_access(self):
        program = parse_program("c := alloc(0)")
        assert collect_accesses(program) == []

    def test_plain_load_and_store_have_empty_locksets(self):
        program = parse_program("c := alloc(0)\nt := [c]\n[c] := t + 1")
        accesses = collect_accesses(program)
        assert [(a.location, a.kind) for a in accesses] == [("c", "read"), ("c", "write")]
        assert all(a.lockset == frozenset() for a in accesses)

    def test_atomic_accesses_hold_the_global_lock(self):
        program = parse_program("c := alloc(0)\natomic { t := [c]; [c] := t + 1 }")
        accesses = collect_accesses(program)
        assert len(accesses) == 2
        assert all(ATOMIC_LOCK in a.lockset for a in accesses)

    def test_guard_deref_counts_as_a_locked_read(self):
        program = parse_program(
            "c := alloc(0)\natomic when (deref(c) > 0) { [c] := 0 }"
        )
        reads = [a for a in collect_accesses(program) if a.kind == "read"]
        assert len(reads) == 1
        assert reads[0].location == "c"
        assert ATOMIC_LOCK in reads[0].lockset


class TestConflicts:
    def test_read_read_never_conflicts(self):
        a = HeapAccess("c", "read", frozenset(), Load("x", None))
        b = HeapAccess("c", "read", frozenset(), Load("y", None))
        assert not a.conflicts_with(b)

    def test_disjoint_locations_never_conflict(self):
        a = HeapAccess("c", "write", frozenset(), Store(None, None))
        b = HeapAccess("d", "write", frozenset(), Store(None, None))
        assert not a.conflicts_with(b)

    def test_common_lock_prevents_the_conflict(self):
        a = HeapAccess("c", "write", frozenset({ATOMIC_LOCK}), Store(None, None))
        b = HeapAccess("c", "write", frozenset({ATOMIC_LOCK}), Store(None, None))
        assert not a.conflicts_with(b)

    def test_unknown_location_conflicts_conservatively(self):
        a = HeapAccess(None, "write", frozenset(), Store(None, None))
        b = HeapAccess("c", "read", frozenset(), Load("x", None))
        assert a.conflicts_with(b)


class TestLocksetRaces:
    def test_unsynchronized_parallel_writes_race(self):
        program = parse_program(
            "c := alloc(0)\n{ [c] := 1 } || { [c] := 2 }"
        )
        diagnostics = check_races(program)
        assert "R001" in _codes(diagnostics)

    def test_read_against_unsynchronized_write_races(self):
        program = parse_program(
            "c := alloc(0)\n{ t := [c] } || { [c] := 2 }"
        )
        assert "R001" in _codes(check_races(program))

    def test_both_sides_atomic_is_race_free(self):
        program = parse_program(
            "c := alloc(0)\n"
            "{ atomic { t1 := [c]; [c] := t1 + 1 } } || "
            "{ atomic { t2 := [c]; [c] := t2 + 1 } }"
        )
        assert check_races(program) == []

    def test_one_side_atomic_still_races(self):
        program = parse_program(
            "c := alloc(0)\n{ atomic { [c] := 1 } } || { [c] := 2 }"
        )
        assert "R001" in _codes(check_races(program))

    def test_parallel_reads_are_race_free(self):
        program = parse_program(
            "c := alloc(0)\n{ t1 := [c] } || { t2 := [c] }"
        )
        assert check_races(program) == []

    def test_disjoint_cells_are_race_free(self):
        program = parse_program(
            "c := alloc(0)\nd := alloc(0)\n{ [c] := 1 } || { [d] := 2 }"
        )
        assert check_races(program) == []

    def test_sequential_program_never_races(self):
        program = parse_program("c := alloc(0)\n[c] := 1\nt := [c]\n[c] := t + 1")
        assert check_races(program) == []

    def test_race_diagnostic_cites_a_source_position(self):
        program = parse_program("c := alloc(0)\n{ [c] := 1 } || { [c] := 2 }")
        (diagnostic,) = [d for d in check_races(program) if d.code == "R001"]
        assert diagnostic.line is not None
        assert diagnostic.severity == "error"

    def test_duplicate_race_pairs_are_deduplicated(self):
        # Two writes per branch on the same cell: one R001 per (loc, kinds).
        program = parse_program(
            "c := alloc(0)\n{ [c] := 1\n[c] := 2 } || { [c] := 3\n[c] := 4 }"
        )
        writes = [d for d in check_races(program) if d.code == "R001"]
        assert len(writes) == 1


class TestDisciplineChecks:
    def test_corpus_cases_have_no_shared_cell_violations(self):
        for name in ("Figure 2", "Count-Vaccinated", "Mean-Salary"):
            case = case_by_name(name)
            spec = case.program_spec()
            assert check_races(spec.program, spec, source=case.name) == []

    def test_shared_cell_access_outside_atomic_is_r002(self):
        case = case_by_name("Sequential-Tally")
        spec = case.program_spec()
        source = case.source.replace(
            "atomic [Add(t)] { v := [c]; [c] := v + t }",
            "v := [c]\n    [c] := v + t",
        )
        program = parse_program(source)
        broken = type(spec)(
            name=spec.name,
            program=program,
            resources=spec.resources,
            low_inputs=spec.low_inputs,
            high_inputs=spec.high_inputs,
            low_channels=spec.low_channels,
        )
        codes = _codes(check_races(program, broken))
        assert "R002" in codes

    def test_access_after_unshare_is_allowed(self):
        case = case_by_name("Sequential-Tally")
        spec = case.program_spec()
        # `result := [c]` after `unshare` is the corpus idiom: no R002.
        assert check_races(spec.program, spec) == []

    def test_unique_action_split_is_r003(self):
        case = case_by_name("Sales-By-Region (guard split)")
        spec = case.program_spec()
        codes = _codes(check_races(spec.program, spec, source=case.name))
        assert "R003" in codes

    def test_disjoint_unique_actions_are_fine(self):
        case = case_by_name("Sales-By-Region")
        spec = case.program_spec()
        codes = _codes(check_races(spec.program, spec, source=case.name))
        assert "R003" not in codes
