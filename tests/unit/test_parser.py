"""Unit tests for the concrete-syntax parser."""

import pytest

from repro.lang.ast import (
    Alloc,
    Assign,
    Atomic,
    BinOp,
    Call,
    If,
    Lit,
    Load,
    Par,
    Print,
    Seq,
    Share,
    Skip,
    Store,
    UnOp,
    Unshare,
    Var,
    While,
)
from repro.lang.parser import ParseError, parse_expr, parse_program


class TestExpressions:
    def test_int_literal(self):
        assert parse_expr("42") == Lit(42)

    def test_booleans(self):
        assert parse_expr("true") == Lit(True)
        assert parse_expr("false") == Lit(False)

    def test_string_literal(self):
        assert parse_expr('"prod"') == Lit("prod")

    def test_variable(self):
        assert parse_expr("x") == Var("x")

    def test_precedence_mul_over_add(self):
        assert parse_expr("1 + 2 * 3") == BinOp("+", Lit(1), BinOp("*", Lit(2), Lit(3)))

    def test_parentheses(self):
        assert parse_expr("(1 + 2) * 3") == BinOp("*", BinOp("+", Lit(1), Lit(2)), Lit(3))

    def test_comparison(self):
        assert parse_expr("x <= 5") == BinOp("<=", Var("x"), Lit(5))

    def test_conjunction(self):
        parsed = parse_expr("x > 0 && y > 0")
        assert parsed.op == "&&"

    def test_unary(self):
        assert parse_expr("-x") == UnOp("-", Var("x"))
        assert parse_expr("!b") == UnOp("!", Var("b"))

    def test_call(self):
        assert parse_expr("pair(a, 1)") == Call("pair", (Var("a"), Lit(1)))

    def test_nested_call(self):
        parsed = parse_expr("sort(setToSeq(keys(m)))")
        assert parsed == Call("sort", (Call("setToSeq", (Call("keys", (Var("m"),)),)),))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("1 + ")


class TestStatements:
    def test_assign(self):
        assert parse_program("x := 1") == Assign("x", Lit(1))

    def test_load(self):
        assert parse_program("x := [p]") == Load("x", Var("p"))

    def test_store(self):
        assert parse_program("[p] := 5") == Store(Var("p"), Lit(5))

    def test_alloc(self):
        assert parse_program("x := alloc(0)") == Alloc("x", Lit(0))

    def test_skip(self):
        assert parse_program("skip") == Skip()

    def test_sequence_newline_separated(self):
        parsed = parse_program("x := 1\ny := 2")
        assert parsed == Seq(Assign("x", Lit(1)), Assign("y", Lit(2)))

    def test_sequence_semicolon_separated(self):
        parsed = parse_program("x := 1; y := 2")
        assert isinstance(parsed, Seq)

    def test_if_else(self):
        parsed = parse_program("if (x > 0) { y := 1 } else { y := 2 }")
        assert isinstance(parsed, If)
        assert parsed.else_branch == Assign("y", Lit(2))

    def test_if_without_else(self):
        parsed = parse_program("if (x > 0) { y := 1 }")
        assert parsed.else_branch == Skip()

    def test_while(self):
        parsed = parse_program("while (i < n) { i := i + 1 }")
        assert isinstance(parsed, While)

    def test_parallel(self):
        parsed = parse_program("{ x := 1 } || { y := 2 }")
        assert parsed == Par(Assign("x", Lit(1)), Assign("y", Lit(2)))

    def test_three_way_parallel_right_associated(self):
        parsed = parse_program("{ a := 1 } || { b := 2 } || { c := 3 }")
        assert isinstance(parsed, Par)
        assert isinstance(parsed.right, Par)

    def test_atomic_plain(self):
        parsed = parse_program("atomic { [p] := 1 }")
        assert isinstance(parsed, Atomic)
        assert parsed.action is None

    def test_atomic_annotated(self):
        parsed = parse_program("atomic [Put(pair(k, v))] { [p] := 1 }")
        assert parsed.action == "Put"
        assert parsed.argument == Call("pair", (Var("k"), Var("v")))

    def test_atomic_with_empty_args(self):
        parsed = parse_program("atomic [Inc()] { [p] := 1 }")
        assert parsed.action == "Inc"
        assert parsed.argument == Lit(0)

    def test_atomic_when_guard(self):
        parsed = parse_program("atomic [Cons(0)] when (qSize(deref(q)) > 0) { skip }")
        assert parsed.when is not None
        assert parsed.when.op == ">"

    def test_share_unshare(self):
        assert parse_program("share R") == Share("R")
        assert parse_program("unshare R") == Unshare("R")

    def test_print(self):
        assert parse_program("print(x)") == Print(Var("x"))

    def test_comments_skipped(self):
        parsed = parse_program("// a comment\nx := 1 // trailing\n")
        assert parsed == Assign("x", Lit(1))

    def test_error_reports_position(self):
        with pytest.raises(ParseError, match=r"line 2"):
            parse_program("x := 1\n:= 2")

    def test_roundtrip_of_case_study_sources(self):
        from repro.casestudies import ALL_CASES

        for case in ALL_CASES:
            case.program()  # must parse without error
