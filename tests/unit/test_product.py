"""Tests for the modular product program construction (Eilers et al. 2018)."""

import pytest

from repro.lang import (
    Alloc,
    Assign,
    Atomic,
    BinOp,
    Call,
    Fork,
    If,
    Join,
    Lit,
    Load,
    Par,
    Print,
    Share,
    Skip,
    Store,
    UnOp,
    Unshare,
    Var,
    While,
    run,
    seq_all,
)
from repro.verifier.product import (
    ProductError,
    build_product,
    is_productable,
    product_noninterference,
    run_product,
)


def _pairwise_outputs(program, inputs1, inputs2):
    return run(program, inputs=dict(inputs1)).output, run(program, inputs=dict(inputs2)).output


class TestConstruction:
    def test_assignment_copies_are_independent(self):
        program = Assign("x", BinOp("+", Var("a"), Lit(1)))
        outcome = run_product(build_product(program), {"a": 1}, {"a": 5})
        # no prints: both traces empty
        assert outcome.output1 == outcome.output2 == ()

    def test_print_collects_both_traces(self):
        program = seq_all(Assign("x", Var("h")), Print(Var("x")))
        outcome = run_product(build_product(program), {"h": 1}, {"h": 2})
        assert outcome.output1 == (1,)
        assert outcome.output2 == (2,)
        assert not outcome.outputs_agree

    def test_low_branching_agrees(self):
        program = If(BinOp(">", Var("l"), Lit(0)), Print(Lit(1)), Print(Lit(2)))
        outcome = run_product(build_product(program), {"l": 5}, {"l": 7})
        assert outcome.outputs_agree

    def test_high_branching_splits_activation(self):
        # One copy takes then, the other else — both still print.
        program = If(BinOp(">", Var("h"), Lit(0)), Print(Lit(1)), Print(Lit(2)))
        outcome = run_product(build_product(program), {"h": 5}, {"h": -5})
        assert outcome.output1 == (1,)
        assert outcome.output2 == (2,)

    def test_loop_iteration_counts_differ(self):
        # Copies run the loop different numbers of times (lock-step product
        # with activation variables keeps going while either copy is live).
        program = seq_all(
            Assign("i", Lit(0)),
            While(
                BinOp("<", Var("i"), Var("h")),
                seq_all(Print(Var("i")), Assign("i", BinOp("+", Var("i"), Lit(1)))),
            ),
        )
        outcome = run_product(build_product(program), {"h": 2}, {"h": 4})
        assert outcome.output1 == (0, 1)
        assert outcome.output2 == (0, 1, 2, 3)

    def test_heap_cells_are_duplicated(self):
        program = seq_all(
            Alloc("p", Var("h")),
            Load("x", Var("p")),
            Print(Var("x")),
        )
        outcome = run_product(build_product(program), {"h": 10}, {"h": 20})
        assert outcome.output1 == (10,)
        assert outcome.output2 == (20,)

    def test_store_through_pointer(self):
        program = seq_all(
            Alloc("p", Lit(0)),
            Store(Var("p"), Var("h")),
            Load("x", Var("p")),
            Print(Var("x")),
        )
        outcome = run_product(build_product(program), {"h": 3}, {"h": 4})
        assert (outcome.output1, outcome.output2) == ((3,), (4,))

    def test_atomic_body_is_inlined(self):
        program = seq_all(
            Alloc("c", Lit(0)),
            Atomic(seq_all(Load("t", Var("c")), Store(Var("c"), BinOp("+", Var("t"), Lit(1))))),
            Load("r", Var("c")),
            Print(Var("r")),
        )
        outcome = run_product(build_product(program), {}, {})
        assert outcome.output1 == outcome.output2 == (1,)

    def test_share_unshare_are_erased(self):
        program = seq_all(Share("R"), Print(Lit(1)), Unshare("R"))
        outcome = run_product(build_product(program), {}, {})
        assert outcome.outputs_agree

    def test_nested_conditionals(self):
        program = If(
            BinOp(">", Var("h"), Lit(0)),
            If(BinOp(">", Var("h"), Lit(10)), Print(Lit(1)), Print(Lit(2))),
            Print(Lit(3)),
        )
        outcome = run_product(build_product(program), {"h": 20}, {"h": -1})
        assert (outcome.output1, outcome.output2) == ((1,), (3,))


class TestFragmentLimits:
    def test_par_rejected(self):
        with pytest.raises(ProductError):
            build_product(Par(Skip(), Skip()))

    def test_fork_rejected(self):
        with pytest.raises(ProductError):
            build_product(Fork("t", "p", ()))

    def test_join_rejected(self):
        with pytest.raises(ProductError):
            build_product(Join("p", Var("t")))

    def test_pointer_arithmetic_rejected(self):
        with pytest.raises(ProductError):
            build_product(Load("x", BinOp("+", Var("base"), Lit(1))))

    def test_is_productable(self):
        assert is_productable(Assign("x", Lit(1)))
        assert not is_productable(Par(Skip(), Skip()))


class TestProductNI:
    def _leaky(self):
        # Classic explicit flow.
        return seq_all(Assign("x", Var("h")), Print(Var("x")))

    def _secure(self):
        return seq_all(Assign("x", Var("l")), Print(Var("x")))

    def _implicit_leak(self):
        return If(BinOp(">", Var("h"), Lit(0)), Print(Lit(1)), Print(Lit(0)))

    def test_detects_explicit_flow(self):
        report = product_noninterference(
            self._leaky(), [[{"h": 1}, {"h": 2}]]
        )
        assert not report.secure
        assert report.witness is not None

    def test_detects_implicit_flow(self):
        report = product_noninterference(
            self._implicit_leak(), [[{"h": 1}, {"h": -1}]]
        )
        assert not report.secure

    def test_accepts_secure_program(self):
        report = product_noninterference(
            self._secure(), [[{"l": 3, "h": 1}, {"l": 3, "h": 2}]]
        )
        assert report.secure
        assert report.pairs_checked == 1

    def test_agrees_with_pairwise_execution(self):
        # Cross-validation: product result == comparing two plain runs.
        programs = [self._leaky(), self._secure(), self._implicit_leak()]
        pairs = [({"l": 3, "h": 1}, {"l": 3, "h": 2}), ({"l": 0, "h": 5}, {"l": 0, "h": -5})]
        for program in programs:
            for inputs1, inputs2 in pairs:
                expected = (
                    run(program, inputs=dict(inputs1)).output
                    == run(program, inputs=dict(inputs2)).output
                )
                report = product_noninterference(program, [[inputs1, inputs2]])
                assert report.secure == expected

    def test_multiple_groups_counted(self):
        report = product_noninterference(
            self._secure(),
            [
                [{"l": 1, "h": 0}, {"l": 1, "h": 9}],
                [{"l": 2, "h": 0}, {"l": 2, "h": 9}, {"l": 2, "h": 5}],
            ],
        )
        assert report.secure
        assert report.pairs_checked == 1 + 3
