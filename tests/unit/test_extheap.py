"""Unit tests for extended heaps ``⟨ph, gs, Gu⟩`` (Sec. 3.3)."""

from fractions import Fraction

import pytest

from repro.heap.extheap import ExtendedHeap
from repro.heap.guards import GuardFamily, SharedGuard, UniqueGuard
from repro.heap.multiset import Multiset
from repro.heap.permheap import HeapAdditionUndefined, PermissionHeap

HALF = Fraction(1, 2)


class TestConstruction:
    def test_empty(self):
        gh = ExtendedHeap.empty()
        assert gh.is_guard_free()
        assert gh.normalize() == {}

    def test_from_plain_is_complete(self):
        gh = ExtendedHeap.from_plain({1: "a", 2: "b"})
        assert gh.is_complete()
        assert gh.normalize() == {1: "a", 2: "b"}

    def test_guard_only(self):
        gh = ExtendedHeap.guard_only(SharedGuard(HALF))
        assert not gh.is_guard_free()
        assert gh.normalize() == {}


class TestPredicates:
    def test_complete_requires_full_permissions(self):
        partial = ExtendedHeap(PermissionHeap.singleton(1, "v", HALF))
        assert not partial.is_complete()
        assert partial.is_guard_free()

    def test_complete_requires_bottom_guards(self):
        gh = ExtendedHeap(
            PermissionHeap.singleton(1, "v"),
            SharedGuard(Fraction(1)),
        )
        assert gh.has_full_permissions()
        assert not gh.is_complete()


class TestAddition:
    def test_componentwise(self):
        left = ExtendedHeap(
            PermissionHeap.singleton(1, "v", HALF),
            SharedGuard(HALF, Multiset(["a"])),
        )
        right = ExtendedHeap(
            PermissionHeap.singleton(1, "v", HALF),
            SharedGuard(HALF, Multiset(["b"])),
            GuardFamily.singleton("i", UniqueGuard((7,))),
        )
        total = left + right
        assert total.perm_heap.permission(1) == Fraction(1)
        assert total.shared_guard.args == Multiset(["a", "b"])
        assert total.unique_guards.get("i") == UniqueGuard((7,))

    def test_incompatible_perm_heaps(self):
        a = ExtendedHeap(PermissionHeap.singleton(1, "x", HALF))
        b = ExtendedHeap(PermissionHeap.singleton(1, "y", HALF))
        with pytest.raises(HeapAdditionUndefined):
            a + b
        assert not a.compatible(b)

    def test_unique_guard_conflict(self):
        gh = ExtendedHeap.guard_only(unique_guards=GuardFamily.singleton("i", UniqueGuard()))
        with pytest.raises(HeapAdditionUndefined):
            gh + gh


class TestRecording:
    def test_record_shared(self):
        gh = ExtendedHeap.guard_only(SharedGuard(HALF)).record_shared("arg")
        assert gh.shared_args() == Multiset(["arg"])

    def test_record_shared_without_guard_fails(self):
        with pytest.raises(HeapAdditionUndefined):
            ExtendedHeap.empty().record_shared("arg")

    def test_record_unique_preserves_order(self):
        gh = ExtendedHeap.guard_only(
            unique_guards=GuardFamily.singleton("i", UniqueGuard())
        )
        gh = gh.record_unique("i", 1).record_unique("i", 2)
        assert gh.unique_guards.get("i").args == (1, 2)

    def test_record_unique_without_guard_fails(self):
        with pytest.raises(HeapAdditionUndefined):
            ExtendedHeap.empty().record_unique("i", 1)

    def test_shared_fraction(self):
        assert ExtendedHeap.empty().shared_fraction() == 0
        assert ExtendedHeap.guard_only(SharedGuard(HALF)).shared_fraction() == HALF
