"""Unit tests for the verifier: taint domain, static analysis, conformance."""

import pytest

from repro.lang.parser import parse_program
from repro.spec.library import (
    assign_constant_abstraction_spec,
    counter_increment_spec,
    integer_add_spec,
    map_put_keyset_spec,
)
from repro.verifier import (
    HIGH,
    LOW,
    ProgramSpec,
    ResourceDecl,
    TaintAnalyzer,
    abstract,
    check_conformance,
    join,
    verify,
)


class TestTaintDomain:
    def test_low_is_bottom(self):
        assert join(LOW, HIGH) == HIGH
        assert join(LOW, LOW) == LOW
        assert join(LOW, abstract("R")) == abstract("R")

    def test_abstract_degrades_with_high(self):
        assert join(abstract("R"), HIGH) == HIGH

    def test_two_different_abstracts_degrade(self):
        assert join(abstract("R"), abstract("S")) == HIGH

    def test_join_idempotent(self):
        for taint in (LOW, HIGH, abstract("R")):
            assert join(taint, taint) == taint


def analyze(source: str, low=frozenset(), high=frozenset(), resources=()):
    spec = ProgramSpec("test", parse_program(source), tuple(resources), frozenset(low), frozenset(high))
    analyzer = TaintAnalyzer(spec)
    return analyzer, analyzer.analyze()


class TestExpressionTaint:
    def test_literal_low(self):
        analyzer, _ = analyze("skip")
        from repro.verifier.analysis import AnalysisState
        from repro.lang.parser import parse_expr

        assert analyzer.expr_taint(parse_expr("42"), AnalysisState()) == LOW

    def test_high_propagates(self):
        analyzer, _ = analyze("skip", high={"h"})
        from repro.verifier.analysis import AnalysisState
        from repro.lang.parser import parse_expr

        state = AnalysisState(env={"h": HIGH})
        assert analyzer.expr_taint(parse_expr("h + 1"), AnalysisState(env={"h": HIGH})) == HIGH
        assert analyzer.expr_taint(parse_expr("1 + 2"), state) == LOW


class TestImplicitFlows:
    def test_assignment_under_high_branch_is_high(self):
        source = "if (h > 0) { x := 1 } else { x := 0 }\nprint(x)"
        _, report = analyze(source, high={"h"})
        assert any("print" in error for error in report.errors)

    def test_assignment_under_low_branch_stays_low(self):
        source = "if (b > 0) { x := 1 } else { x := 0 }\nprint(x)"
        _, report = analyze(source, low={"b"})
        assert report.clean

    def test_high_loop_taints_assignments(self):
        source = "k := 0\nwhile (k < h) { k := k + 1 }\nprint(k)"
        _, report = analyze(source, high={"h"})
        assert not report.clean

    def test_low_loop_counter_stays_low(self):
        source = "k := 0\nwhile (k < n) { k := k + 1 }\nprint(k)"
        _, report = analyze(source, low={"n"})
        assert report.clean

    def test_print_under_high_branch_rejected(self):
        source = "if (h > 0) { print(1) }"
        _, report = analyze(source, high={"h"})
        assert not report.clean


class TestCSLDiscipline:
    def _counter_resources(self):
        return (ResourceDecl("CounterInc", counter_increment_spec(), "c"),)

    def test_read_of_shared_cell_outside_atomic_rejected(self):
        source = "c := alloc(0)\nshare CounterInc\nx := [c]\nunshare CounterInc"
        _, report = analyze(source, resources=self._counter_resources())
        assert any("outside an atomic" in error for error in report.errors)

    def test_write_to_shared_cell_outside_atomic_rejected(self):
        source = "c := alloc(0)\nshare CounterInc\n[c] := 5\nunshare CounterInc"
        _, report = analyze(source, resources=self._counter_resources())
        assert any("outside an atomic" in error for error in report.errors)

    def test_unannotated_atomic_while_shared_rejected(self):
        source = "c := alloc(0)\nshare CounterInc\natomic { [c] := 5 }\nunshare CounterInc"
        _, report = analyze(source, resources=self._counter_resources())
        assert any("unannotated" in error for error in report.errors)

    def test_action_without_share_rejected(self):
        source = "c := alloc(0)\natomic [Inc()] { t := [c]; [c] := t + 1 }"
        _, report = analyze(source, resources=self._counter_resources())
        assert any("not shared" in error for error in report.errors)

    def test_share_requires_low_initial_value(self):
        source = "c := alloc(h)\nshare CounterInc\nunshare CounterInc"
        _, report = analyze(source, high={"h"}, resources=self._counter_resources())
        assert any("property 1" in error for error in report.errors)

    def test_double_share_rejected(self):
        source = "c := alloc(0)\nshare CounterInc\nshare CounterInc"
        _, report = analyze(source, resources=self._counter_resources())
        assert not report.clean

    def test_unshare_without_share_rejected(self):
        source = "c := alloc(0)\nunshare CounterInc"
        _, report = analyze(source, resources=self._counter_resources())
        assert not report.clean

    def test_read_after_unshare_with_identity_abstraction_is_low(self):
        source = (
            "c := alloc(0)\nshare CounterInc\n"
            "atomic [Inc()] { t := [c]; [c] := t + 1 }\n"
            "unshare CounterInc\nx := [c]\nprint(x)"
        )
        _, report = analyze(source, resources=self._counter_resources())
        assert report.clean

    def test_read_after_unshare_with_proper_abstraction_is_abstract(self):
        decl = ResourceDecl("MapKeySet", map_put_keyset_spec(), "m", low_views=("keys",))
        source = (
            "m := alloc(emptyMap())\nshare MapKeySet\n"
            "atomic [Put(pair(1, 2))] { t := [m]; [m] := put(t, 1, 2) }\n"
            "unshare MapKeySet\nx := [m]\nprint(keys(x))"
        )
        _, report = analyze(source, low=set(), resources=(decl,))
        assert report.clean

    def test_non_view_function_on_abstract_value_rejected(self):
        decl = ResourceDecl("MapKeySet", map_put_keyset_spec(), "m", low_views=("keys",))
        source = (
            "m := alloc(emptyMap())\nshare MapKeySet\n"
            "atomic [Put(pair(1, 2))] { t := [m]; [m] := put(t, 1, 2) }\n"
            "unshare MapKeySet\nx := [m]\nprint(mapValues(x))"
        )
        _, report = analyze(source, resources=(decl,))
        assert not report.clean


class TestObligations:
    def test_atomic_under_high_branch_creates_count_obligation(self):
        source = (
            "c := alloc(0)\nshare CounterInc\n"
            "if (h > 0) { atomic [Inc()] { t := [c]; [c] := t + 1 } }\n"
            "unshare CounterInc"
        )
        _, report = analyze(
            source,
            high={"h"},
            resources=(ResourceDecl("CounterInc", counter_increment_spec(), "c"),),
        )
        assert any(ob.kind == "retroactive-count" for ob in report.obligations)

    def test_high_argument_creates_pre_obligation(self):
        decl = ResourceDecl("IntegerAdd", integer_add_spec(), "c")
        source = (
            "c := alloc(0)\nshare IntegerAdd\n"
            "atomic [Add(h)] { t := [c]; [c] := t + h }\n"
            "unshare IntegerAdd"
        )
        _, report = analyze(source, high={"h"}, resources=(decl,))
        assert any(ob.kind == "retroactive-pre" for ob in report.obligations)

    def test_no_obligation_for_low_arguments(self):
        decl = ResourceDecl("IntegerAdd", integer_add_spec(), "c")
        source = (
            "c := alloc(0)\nshare IntegerAdd\n"
            "atomic [Add(v)] { t := [c]; [c] := t + v }\n"
            "unshare IntegerAdd"
        )
        _, report = analyze(source, low={"v"}, resources=(decl,))
        assert not report.obligations


class TestConformance:
    def test_correct_body_conforms(self):
        decl = ResourceDecl("IntegerAdd", integer_add_spec(), "c")
        program = parse_program("atomic [Add(v)] { t := [c]; [c] := t + v }")
        report = check_conformance(decl, program)
        assert report.ok
        assert report.samples_checked > 0

    def test_wrong_body_detected(self):
        decl = ResourceDecl("IntegerAdd", integer_add_spec(), "c")
        program = parse_program("atomic [Add(v)] { t := [c]; [c] := t + v + 1 }")
        report = check_conformance(decl, program)
        assert not report.ok
        assert report.failures

    def test_failure_carries_concrete_witness(self):
        decl = ResourceDecl("IntegerAdd", integer_add_spec(), "c")
        program = parse_program("atomic [Add(v)] { [c] := v }")
        report = check_conformance(decl, program)
        failure = report.failures[0]
        assert failure.expected != failure.actual

    def test_body_ignoring_argument_annotation_detected(self):
        # annotation says Add(v) but the body adds a constant
        decl = ResourceDecl("IntegerAdd", integer_add_spec(), "c")
        program = parse_program("atomic [Add(v)] { t := [c]; [c] := t + 1 }")
        report = check_conformance(decl, program)
        assert not report.ok


class TestFrontend:
    def test_verify_reports_invalid_spec(self):
        from repro.spec.library import assign_identity_abstraction_spec

        decl = ResourceDecl("AssignIdentityAlpha", assign_identity_abstraction_spec(), "s")
        source = "s := alloc(0)\nshare AssignIdentityAlpha\nunshare AssignIdentityAlpha"
        spec = ProgramSpec("bad-spec", parse_program(source), (decl,), frozenset(), frozenset())
        result = verify(spec)
        assert not result.verified
        assert any("invalid specification" in error for error in result.errors)

    def test_undischarged_obligations_without_instances(self):
        decl = ResourceDecl("CounterInc", counter_increment_spec(), "c")
        source = (
            "c := alloc(0)\nshare CounterInc\n"
            "if (h > 0) { atomic [Inc()] { t := [c]; [c] := t + 1 } }\n"
            "unshare CounterInc"
        )
        spec = ProgramSpec("no-instances", parse_program(source), (decl,), frozenset(), frozenset({"h"}))
        result = verify(spec, bounded_instances=None)
        assert not result.verified
        assert any("no bounded instances" in error for error in result.errors)

    def test_verified_program_has_no_errors(self):
        decl = ResourceDecl("CounterInc", counter_increment_spec(), "c")
        source = (
            "c := alloc(0)\nshare CounterInc\n"
            "{ atomic [Inc()] { t1 := [c]; [c] := t1 + 1 } } || "
            "{ atomic [Inc()] { t2 := [c]; [c] := t2 + 1 } }\n"
            "unshare CounterInc\nout := [c]\nprint(out)"
        )
        spec = ProgramSpec("two-incs", parse_program(source), (decl,), frozenset(), frozenset())
        result = verify(spec)
        assert result.verified, result.errors
