"""Unit tests for the empirical non-interference and leakage modules."""

import pytest

from repro.lang.parser import parse_program
from repro.security import (
    all_outputs,
    check_exhaustive,
    check_noninterference,
    check_sampled,
    mutual_information,
    threshold_leak,
)

# The smallest internal-timing-channel program: which thread writes last
# depends on the high-bounded loop.
RACY = parse_program(
    """
t2 := 0
{ s := 3 } || { while (t2 < h) { t2 := t2 + 1 }; s := 4 }
print(s)
"""
)

# The commuting repair: both threads add, the result is schedule-independent.
COMMUTING = parse_program(
    """
t2 := 0
s := 0
{ s1 := 3 } || { while (t2 < h) { t2 := t2 + 1 }; s2 := 4 }
print(s1 + s2)
"""
)


class TestAllOutputs:
    def test_deterministic_program(self):
        program = parse_program("print(1 + 1)")
        assert all_outputs(program, {}) == frozenset({(2,)})

    def test_racy_program_has_multiple_outputs(self):
        assert len(all_outputs(RACY, {"h": 1})) == 2

    def test_aborting_program_raises(self):
        program = parse_program("x := [p]")
        with pytest.raises(RuntimeError):
            all_outputs(program, {"p": 3})


class TestExhaustive:
    def test_racy_program_insecure(self):
        report = check_exhaustive(RACY, [{"h": 0}, {"h": 2}])
        assert not report.secure
        assert report.witness is not None

    def test_commuting_program_secure(self):
        report = check_exhaustive(COMMUTING, [{"h": 0}, {"h": 2}])
        assert report.secure

    def test_single_variant_scheduler_nondeterminism_detected(self):
        # even with one input, schedule-dependent output is a violation
        report = check_exhaustive(RACY, [{"h": 1}])
        assert not report.secure


class TestSampled:
    def test_racy_program_detected(self):
        # FIG1's symmetric busy loops make the round-robin outcome flip with
        # the secret, so sampling catches the channel immediately.
        report = check_sampled(FIG1, [{"h": 0}, {"h": 200}], schedules=10)
        assert not report.secure
        assert "inputs" in str(report.witness)

    def test_commuting_program_passes(self):
        report = check_sampled(COMMUTING, [{"h": 0}, {"h": 200}], schedules=10)
        assert report.secure

    def test_check_noninterference_over_groups(self):
        report = check_noninterference(COMMUTING, [[{"h": 0}, {"h": 5}], [{"h": 1}, {"h": 9}]])
        assert report.secure
        assert report.executions_checked > 0


FIG1 = parse_program(
    """
t1 := 0
t2 := 0
{ while (t1 < 100) { t1 := t1 + 1 }; s := 3 } || { while (t2 < h) { t2 := t2 + 1 }; s := 4 }
print(s)
"""
)


class TestLeakage:
    def test_fig1_round_robin_threshold(self):
        result = threshold_leak(FIG1, "h", [0, 50, 150, 200])
        assert result.distinguishes
        # the paper: the deterministic scheduler reveals whether h > 100
        assert result.boundary is not None

    def test_commuting_variant_no_threshold(self):
        result = threshold_leak(COMMUTING, "h", [0, 50, 150, 200])
        assert not result.distinguishes

    def test_fig1_positive_mutual_information(self):
        bits = mutual_information(FIG1, "h", [0, 200], runs_per_value=10)
        assert bits > 0.5  # h=0 vs h=200 nearly fully distinguishable

    def test_commuting_variant_zero_mutual_information(self):
        bits = mutual_information(COMMUTING, "h", [0, 200], runs_per_value=10)
        assert bits == 0.0
