"""Pretty-printer ↔ parser round-trip: ``parse(print(ast)) == ast``.

The fuzzer's repro files only work if the printed text re-parses to the
*same* AST (positions excluded — ``pos`` is compare-excluded on every
node).  These tests pin the round-trip on the whole hand-written corpus,
on generated fuzz cases, and on the edge shapes where the grammar has a
normal form (nested sequence/parallel association, negative literals,
expression-level ``||``, atomic argument defaults).
"""

import pytest

from repro.casestudies import ALL_CASES, GENERATED_CASES, THREADED_CASES
from repro.fuzz import generate_corpus
from repro.lang.ast import (
    Atomic,
    BinOp,
    If,
    Lit,
    Par,
    Print,
    Seq,
    Skip,
    Store,
    UnOp,
    Var,
    While,
    par_all,
    seq_all,
)
from repro.lang.parser import parse_expr, parse_program, parse_threaded_program
from repro.lang.printer import (
    PrintError,
    print_command,
    print_expr,
    print_program,
    print_threaded_program,
)


@pytest.mark.parametrize("case", ALL_CASES, ids=lambda c: c.name)
def test_corpus_round_trips(case):
    ast = case.program()
    assert parse_program(print_program(ast)) == ast


@pytest.mark.parametrize("case", THREADED_CASES, ids=lambda c: c.name)
def test_threaded_corpus_round_trips(case):
    tp = case.program()
    assert parse_threaded_program(print_threaded_program(tp)) == tp


@pytest.mark.parametrize("index", range(30))
def test_generated_cases_round_trip(index):
    case = generate_corpus(11, 30)[index]
    assert parse_program(print_program(case.program)) == case.program
    # and the stored source is exactly the printed program
    assert parse_program(case.source) == case.program


@pytest.mark.parametrize(
    "source",
    [
        "x := -2",
        "x := -2 + 3",
        "x := -(y)",
        "x := a || b",
        "x := a || b && c",
        "if (h > 1 || h < -1) { print(1) } else { print(2) }",
        "atomic { x := 1 }",
        'atomic [Inc(0)] when (deref(c) >= 0) { t := [c]; [c] := t + 1 }',
        "{ skip } || { skip }",
        "{ print(1) } || { { print(2) } || { print(3) } }",
        "print(1, err)",
        'print("done")',
        "print(0 - 2)",
    ],
    ids=repr,
)
def test_source_shapes_stable_under_one_round_trip(source):
    """print ∘ parse is the identity on already-parsed normal forms."""
    ast = parse_program(source)
    printed = print_program(ast)
    assert parse_program(printed) == ast
    # printing is idempotent: a second trip changes nothing
    assert print_program(parse_program(printed)) == printed


@pytest.mark.parametrize(
    "ast",
    [
        Seq(Seq(Print(Lit(1)), Print(Lit(2))), Print(Lit(3))),  # left-nested Seq
        Par(Par(Print(Lit(1)), Print(Lit(2))), Print(Lit(3))),  # left-nested Par
        seq_all(Skip(), Skip(), Print(Lit(1))),
        While(Lit(True), Skip()),
        If(Lit(False), Skip(), Print(Lit(7))),  # else branch kept
        If(Lit(False), Print(Lit(7)), Skip()),  # else branch omitted
        Print(Lit(-5)),
        Print(UnOp("-", Var("x"))),
        Print(BinOp("||", Var("a"), BinOp("&&", Var("b"), Var("c")))),
        Atomic(Store(Var("c"), Lit(1)), None, Lit(0), None),
        Atomic(Store(Var("c"), Lit(1)), "SetTo", Lit(1), BinOp(">", Var("g"), Lit(0))),
        par_all(Print(Lit(1)), Print(Lit(2)), Print(Lit(3)), Print(Lit(4))),
    ],
    ids=lambda a: type(a).__name__ + "/" + repr(a)[:40],
)
def test_ast_shapes_round_trip(ast):
    assert parse_program(print_program(ast)) == ast


def test_negative_literals_fold_in_the_parser():
    """``-2`` is a literal, not ``UnOp('-', Lit(2))`` — the printed text
    could only ever re-parse folded, so the parser folds too."""
    assert parse_expr("-2") == Lit(-2)
    assert parse_expr("- 2") == Lit(-2)
    assert parse_expr("-x") == UnOp("-", Var("x"))
    assert parse_expr("1 - 2") == BinOp("-", Lit(1), Lit(2))


def test_expression_level_or_parses():
    """``||`` works inside expressions (lowest precedence), without
    colliding with statement-level parallel composition."""
    assert parse_expr("a || b") == BinOp("||", Var("a"), Var("b"))
    assert parse_expr("a || b && c") == BinOp(
        "||", Var("a"), BinOp("&&", Var("b"), Var("c"))
    )
    assert parse_expr("a && b || c") == BinOp(
        "||", BinOp("&&", Var("a"), Var("b")), Var("c")
    )


def test_printer_rejects_unparseable_constructs():
    with pytest.raises(PrintError):
        print_expr(Lit(1.5))  # no float literals in the grammar
    with pytest.raises(PrintError):
        print_expr(Lit('say "hi"'))  # no escapes in string literals
    with pytest.raises(PrintError):
        print_expr(Var("while"))  # keyword as identifier
    with pytest.raises(PrintError):
        # an action argument without an action annotation cannot be printed
        print_command(Atomic(Skip(), None, Lit(3), None))
