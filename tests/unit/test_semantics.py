"""Unit tests for the small-step operational semantics (Fig. 9)."""

import pytest

from repro.lang.ast import (
    Assign,
    Atomic,
    BinOp,
    Call,
    Lit,
    Load,
    Par,
    Print,
    Seq,
    Skip,
    Store,
    Var,
    While,
)
from repro.lang.parser import parse_expr, parse_program
from repro.lang.semantics import ABORT, Config, State, evaluate, step


def make_config(source: str, store=None, heap=None) -> Config:
    return Config(parse_program(source), State.make(store, heap))


class TestExpressionEvaluation:
    def test_arithmetic(self):
        assert evaluate(parse_expr("2 + 3 * 4"), {}) == 14

    def test_uninitialized_variable_defaults_to_zero(self):
        assert evaluate(parse_expr("x + 1"), {}) == 1

    def test_division_total(self):
        assert evaluate(parse_expr("7 / 0"), {}) == 0
        assert evaluate(parse_expr("7 % 0"), {}) == 0

    def test_integer_division_floors(self):
        assert evaluate(parse_expr("7 / 2"), {}) == 3

    def test_comparison(self):
        assert evaluate(parse_expr("x < 5"), {"x": 3}) is True

    def test_short_circuit_and(self):
        # right operand irrelevant when left is false
        assert evaluate(parse_expr("false && x"), {"x": 1}) is False

    def test_call(self):
        assert evaluate(parse_expr("max(2, 5)"), {}) == 5

    def test_deref_requires_heap(self):
        from repro.lang.semantics import EvaluationError

        with pytest.raises(EvaluationError):
            evaluate(Call("deref", (Var("p"),)), {"p": 1})

    def test_deref_with_heap(self):
        assert evaluate(Call("deref", (Var("p"),)), {"p": 1}, {1: 42}) == 42


class TestBasicSteps:
    def test_assign(self):
        [s] = step(make_config("x := 1 + 1"))
        assert s.result.state.read_var("x") == 2
        assert s.result.is_final()

    def test_load(self):
        [s] = step(make_config("x := [p]", {"p": 1}, {1: 99}))
        assert s.result.state.read_var("x") == 99

    def test_load_unallocated_aborts(self):
        [s] = step(make_config("x := [p]", {"p": 7}))
        assert s.result == ABORT

    def test_store(self):
        [s] = step(make_config("[p] := 5", {"p": 1}, {1: 0}))
        assert s.result.state.heap_dict()[1] == 5

    def test_store_unallocated_aborts(self):
        [s] = step(make_config("[p] := 5", {"p": 7}))
        assert s.result == ABORT

    def test_alloc_assigns_fresh_location(self):
        [s] = step(make_config("x := alloc(3)", heap={1: 0}))
        state = s.result.state
        location = state.read_var("x")
        assert location not in (0, 1)
        assert state.heap_dict()[location] == 3

    def test_seq_skip_elimination(self):
        config = Config(Seq(Skip(), Assign("x", Lit(1))), State.make())
        [s] = step(config)
        assert s.result.command == Assign("x", Lit(1))

    def test_if_chooses_branch(self):
        [s] = step(make_config("if (1 < 2) { x := 1 } else { x := 2 }"))
        assert s.result.command == Assign("x", Lit(1))

    def test_while_unfolds_to_conditional(self):
        [s] = step(make_config("while (x < 1) { x := x + 1 }"))
        assert "if" in str(s.result.command)

    def test_share_unshare_are_runtime_noops(self):
        [s] = step(make_config("share R"))
        assert s.result.is_final()

    def test_print_appends_output(self):
        [s] = step(make_config("print(5)"))
        assert s.result.state.output == (5,)


class TestParallelism:
    def test_par_offers_both_branches(self):
        steps = step(make_config("{ x := 1 } || { y := 2 }"))
        assert {s.choice for s in steps} == {"L", "R"}

    def test_par_join_when_both_skip(self):
        config = Config(Par(Skip(), Skip()), State.make())
        [s] = step(config)
        assert s.result.is_final()

    def test_nested_par_labels(self):
        steps = step(make_config("{ a := 1 } || { b := 2 } || { c := 3 }"))
        assert {s.choice for s in steps} == {"L", "RL", "RR"}

    def test_par_abort_propagates(self):
        steps = step(make_config("{ x := [p] } || { y := 1 }", {"p": 9}))
        assert any(s.result == ABORT for s in steps)


class TestAtomic:
    def test_atomic_runs_body_to_completion(self):
        [s] = step(make_config("atomic { x := 1; y := x + 1 }"))
        assert s.result.is_final()
        assert s.result.state.read_var("y") == 2

    def test_atomic_abort_propagates(self):
        [s] = step(make_config("atomic { x := [p] }", {"p": 9}))
        assert s.result == ABORT

    def test_when_guard_blocks(self):
        config = make_config("atomic [A(0)] when (deref(q) > 0) { [q] := 0 }", {"q": 1}, {1: 0})
        assert step(config) == []

    def test_when_guard_enables(self):
        config = make_config("atomic [A(0)] when (deref(q) > 0) { [q] := 0 }", {"q": 1}, {1: 5})
        [s] = step(config)
        assert s.result.state.heap_dict()[1] == 0

    def test_blocked_thread_does_not_block_sibling(self):
        source = "{ atomic [A(0)] when (deref(q) > 0) { [q] := 0 } } || { x := 1 }"
        steps = step(make_config(source, {"q": 1}, {1: 0}))
        assert {s.choice for s in steps} == {"R"}


class TestDeterminism:
    def test_sequential_step_is_deterministic(self):
        config = make_config("x := 1\ny := 2\nz := 3")
        while not config.is_final():
            successors = step(config)
            assert len(successors) == 1
            config = successors[0].result
        assert config.state.read_var("z") == 3

    def test_state_is_hashable(self):
        s1 = State.make({"x": 1}, {1: 2})
        s2 = State.make({"x": 1}, {1: 2})
        assert s1 == s2
        assert hash(s1) == hash(s2)
