"""Unit tests for :class:`repro.smt.session.SessionPool` — the daemon's
per-tenant warm-session store with LRU and bloat eviction."""

from repro.smt.session import SessionPool, SolverSession


def test_acquire_creates_then_reuses():
    pool = SessionPool(max_sessions=4)
    first = pool.acquire("a")
    second = pool.acquire("a")
    assert first is second
    assert pool.created == 1
    assert pool.reused == 1
    assert len(pool) == 1
    assert "a" in pool


def test_acquire_uses_per_tenant_factory():
    pool = SessionPool(max_sessions=4)
    session = pool.acquire("a", factory=lambda: SolverSession(max_models=3))
    assert session.max_models == 3
    # factory only applies on creation; reuse keeps the existing session
    assert pool.acquire("a", factory=lambda: SolverSession(max_models=9)) is session


def test_lru_eviction_beyond_max_sessions():
    pool = SessionPool(max_sessions=2)
    evictions = []
    pool.on_evict(lambda tenant, session, reason: evictions.append((tenant, reason)))
    pool.acquire("a")
    pool.acquire("b")
    pool.acquire("a")  # refresh a: b is now the LRU
    pool.acquire("c")  # evicts b
    assert evictions == [("b", "lru")]
    assert "b" not in pool and "a" in pool and "c" in pool
    assert pool.evicted == 1


def test_release_retires_bloated_sessions():
    pool = SessionPool(max_sessions=4, max_live_clauses=0)
    evictions = []
    pool.on_evict(lambda tenant, session, reason: evictions.append((tenant, reason)))
    session = pool.acquire("a")
    # leave Tseitin definition clauses behind so live_clauses > 0
    from repro.smt.sorts import INT
    from repro.smt.terms import App, SymVar

    x = SymVar("x_pool_bloat", INT)
    y = SymVar("y_pool_bloat", INT)
    eq = App("==", (x, y))
    session.theory_valid(App("or", (eq, App("not", (eq,)))))
    assert session.stats()["live_clauses"] > 0
    assert pool.release("a") is False
    assert evictions == [("a", "bloat")]
    assert "a" not in pool


def test_release_keeps_sessions_under_the_bound():
    pool = SessionPool(max_sessions=4, max_live_clauses=10**9)
    pool.acquire("a")
    assert pool.release("a") is True
    assert "a" in pool


def test_release_unknown_tenant_is_a_noop():
    pool = SessionPool()
    assert pool.release("ghost") is False


def test_retire_discards_unconditionally():
    pool = SessionPool()
    evictions = []
    pool.on_evict(lambda tenant, session, reason: evictions.append((tenant, reason)))
    first = pool.acquire("a")
    assert pool.retire("a") is True
    assert pool.retire("a") is False  # already gone
    second = pool.acquire("a")
    assert second is not first
    assert evictions == [("a", "retired")]
    assert pool.retired == 1


def test_explicit_evict_and_clear():
    pool = SessionPool()
    pool.acquire("a")
    pool.acquire("b")
    assert pool.evict("a") is True
    assert pool.evict("a") is False
    pool.clear()
    assert len(pool) == 0


def test_stats_shape():
    pool = SessionPool(max_sessions=3)
    pool.acquire("a")
    pool.acquire("a")
    stats = pool.stats()
    assert stats["sessions"] == 1
    assert stats["max_sessions"] == 3
    assert stats["created"] == 1
    assert stats["reused"] == 1
    assert "a" in stats["tenants"]
    assert "queries" in stats["tenants"]["a"]
