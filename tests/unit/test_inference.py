"""Tests for precondition and abstraction inference (repro.spec.inference)."""

import pytest

from repro.spec.inference import (
    STANDARD_ABSTRACTIONS,
    candidate_projections,
    infer_abstraction,
    infer_preconditions,
    precision,
)
from repro.spec.library import (
    counter_increment_spec,
    integer_add_spec,
    list_append_multiset_spec,
    map_disjoint_put_spec,
    map_put_identity_spec,
    map_put_keyset_spec,
)


class TestCandidateProjections:
    def test_pairs_offer_components(self):
        atoms = candidate_projections([(1, 10), (2, 20)])
        assert [name for name, _ in atoms] == ["fst", "snd"]

    def test_scalars_offer_identity(self):
        atoms = candidate_projections([1, 2, 3])
        assert [name for name, _ in atoms] == ["arg"]

    def test_projections_evaluate(self):
        atoms = dict(candidate_projections([(1, 10)]))
        assert atoms["fst"]((1, 10)) == 1
        assert atoms["snd"]((1, 10)) == 10


class TestInferPreconditions:
    def test_keyset_map_needs_only_low_key(self):
        # Fig. 4 left, rediscovered: α = dom needs Low(key) but not Low(val).
        inference = infer_preconditions(map_put_keyset_spec())
        assert inference.found
        assert inference.projection_names("Put") == ("fst",)

    def test_identity_map_cannot_be_repaired(self):
        # Even Low(key) ∧ Low(val) cannot make same-key puts commute
        # (the Fig. 3 discussion): no assignment is valid.
        inference = infer_preconditions(map_put_identity_spec())
        assert not inference.found
        assert inference.candidates_tried >= 4  # the whole subset lattice

    def test_integer_add_needs_low_argument(self):
        inference = infer_preconditions(integer_add_spec())
        assert inference.found
        assert inference.projection_names("Add") == ("arg",)

    def test_counter_increment_needs_nothing(self):
        # Inc ignores its argument, so no lowness is required at all.
        inference = infer_preconditions(counter_increment_spec())
        assert inference.found
        assert inference.projection_names("Inc") == ()

    def test_inferred_matches_declared_for_keyset_spec(self):
        # The declared spec and the inferred one agree — the ablation
        # benchmark relies on this.
        spec = map_put_keyset_spec()
        declared = tuple(name for name, _ in spec.action("Put").low_projections)
        inferred = infer_preconditions(spec).projection_names("Put")
        assert inferred == declared

    def test_weakest_is_preferred(self):
        # The search must not return Low(key) ∧ Low(val) when Low(key)
        # alone suffices.
        inference = infer_preconditions(map_put_keyset_spec())
        assert len(inference.projection_names("Put")) == 1

    def test_disjoint_put_keeps_unary_ranges(self):
        # Unique actions with range constraints: inference retains the
        # unary requires and discovers per-component lowness.
        inference = infer_preconditions(map_disjoint_put_spec())
        assert inference.found


class TestPrecision:
    def test_identity_is_finest(self):
        domain = [(1,), (2,), (1, 2)]
        identity = next(c for c in STANDARD_ABSTRACTIONS if c.name == "identity")
        constant = next(c for c in STANDARD_ABSTRACTIONS if c.name == "constant")
        assert precision(identity.function, domain) == 3
        assert precision(constant.function, domain) == 0

    def test_length_between(self):
        domain = [(1,), (2,), (1, 2)]
        length = next(c for c in STANDARD_ABSTRACTIONS if c.name == "length")
        assert precision(length.function, domain) == 2


class TestInferAbstraction:
    def test_map_put_finds_keyset(self):
        inference = infer_abstraction(map_put_keyset_spec())
        assert "keyset" in inference.names()
        assert inference.finest is not None
        assert inference.finest.name == "keyset"

    def test_map_put_identity_reported_invalid(self):
        inference = infer_abstraction(map_put_keyset_spec())
        invalid_names = {candidate.name for candidate in inference.invalid}
        assert "identity" in invalid_names

    def test_list_append_finds_multiset_as_finest(self):
        inference = infer_abstraction(list_append_multiset_spec())
        names = inference.names()
        assert names[0] in ("multiset", "sorted")  # equal precision
        assert "identity" not in names  # appends do not commute concretely
        assert "length" in names and "constant" in names

    def test_constant_is_always_valid(self):
        for spec in (map_put_keyset_spec(), list_append_multiset_spec(), integer_add_spec()):
            inference = infer_abstraction(spec)
            assert "constant" in inference.names()

    def test_valid_sorted_finest_first(self):
        inference = infer_abstraction(list_append_multiset_spec())
        precisions = [
            precision(candidate.function, list_append_multiset_spec().value_domain)
            for candidate in inference.valid
        ]
        assert precisions == sorted(precisions, reverse=True)
