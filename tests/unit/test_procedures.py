"""Tests for procedure declarations and substitution (repro.lang.procedures)."""

import pytest

from repro.lang import (
    Assign,
    Atomic,
    BinOp,
    Call,
    Fork,
    If,
    Join,
    Lit,
    Print,
    Procedure,
    ProcedureError,
    Seq,
    Skip,
    Store,
    ThreadedProgram,
    Var,
    While,
    run,
    seq_all,
)
from repro.lang.procedures import command_subst_expr


class TestProcedure:
    def test_duplicate_params_rejected(self):
        with pytest.raises(ProcedureError):
            Procedure("p", ("x", "x"), Skip())

    def test_instantiate_substitutes_arguments(self):
        proc = Procedure("p", ("a", "b"), Print(BinOp("+", Var("a"), Var("b"))))
        body = proc.instantiate((Lit(2), Lit(3)))
        assert run(body).output == (5,)

    def test_instantiate_wrong_arity(self):
        proc = Procedure("p", ("a",), Skip())
        with pytest.raises(ProcedureError):
            proc.instantiate((Lit(1), Lit(2)))

    def test_instantiate_refuses_shadowing(self):
        # The body assigns to its own parameter: substitution would be
        # inexact, so it is rejected loudly.
        proc = Procedure("p", ("a",), Seq(Assign("a", Lit(0)), Print(Var("a"))))
        with pytest.raises(ProcedureError, match="shadow"):
            proc.instantiate((Lit(9),))

    def test_table_lookup(self):
        program = ThreadedProgram(Skip(), (Procedure("p", (), Skip()),))
        assert program.procedure("p").name == "p"
        with pytest.raises(ProcedureError):
            program.procedure("q")


class TestCommandSubstExpr:
    def test_substitutes_reads_everywhere(self):
        cmd = seq_all(
            Store(Var("cell"), Var("x")),
            If(BinOp(">", Var("x"), Lit(0)), Print(Var("x")), Skip()),
            While(BinOp("<", Var("k"), Var("x")), Assign("k", BinOp("+", Var("k"), Lit(1)))),
        )
        result = command_subst_expr(cmd, "x", Lit(7))
        assert "x" not in str(result)
        assert "7" in str(result)

    def test_substitutes_atomic_annotations(self):
        cmd = Atomic(Store(Var("c"), Var("v")), "Put", Call("pair", (Var("k"), Var("v"))))
        result = command_subst_expr(cmd, "k", Lit(1))
        assert "pair(1, v)" in str(result)

    def test_substitutes_fork_arguments(self):
        cmd = Fork("t", "p", (Var("x"), Lit(2)))
        result = command_subst_expr(cmd, "x", Lit(5))
        assert result == Fork("t", "p", (Lit(5), Lit(2)))

    def test_substitutes_join_tokens(self):
        cmd = Join("p", Var("x"))
        result = command_subst_expr(cmd, "x", Var("token"))
        assert result == Join("p", Var("token"))

    def test_refuses_assigned_variable(self):
        cmd = Assign("x", Lit(1))
        with pytest.raises(ProcedureError):
            command_subst_expr(cmd, "x", Lit(9))


class TestDesugarOverApproximation:
    """Joins interleaved with later middle statements: the reduction may
    admit *more* interleavings than the threaded machine (the middle runs
    in parallel with an already-joined worker).  That direction is sound
    for verification — the desugared program's behaviours are a superset
    — and this test documents it."""

    def test_desugared_behaviours_superset(self):
        from repro.lang import (
            Alloc,
            Load,
            enumerate_executions,
            enumerate_threaded_executions,
            forks_to_par,
        )
        from repro.lang.semantics import Config, State
        from repro.lang.threads import MAIN_TID

        setter = Procedure("setter", ("cell", "value"), Atomic(Store(Var("cell"), Var("value"))))
        program = ThreadedProgram(
            seq_all(
                Alloc("c", Lit(0)),
                Fork("t1", "setter", (Var("c"), Lit(1))),
                Fork("t2", "setter", (Var("c"), Lit(2))),
                Join("setter", Var("t1")),
                # after t1 is joined, the main thread overwrites:
                Store(Var("c"), Lit(9)),
                Join("setter", Var("t2")),
                Load("r", Var("c")),
            ),
            (setter,),
        )
        threaded = {
            config.thread(MAIN_TID).store_dict()["r"]
            for config in enumerate_threaded_executions(program)
            if config not in ("abort", "deadlock")
        }
        structured = forks_to_par(program)
        reduced = {
            config.state.store_dict()["r"]
            for config in enumerate_executions(Config(structured, State.make()))
            if config != "abort"
        }
        assert threaded <= reduced
