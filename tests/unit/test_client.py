"""Unit tests for :class:`repro.client.ServiceClient` retry semantics,
against a scripted fake daemon: the backoff schedule is bounded and
jittered, ``retry_after`` hints are honored, a connection reset
mid-batch replays only the still-undecided requests, and retries are
capped — no infinite loop against a dead daemon."""

import json
import os
import shutil
import socket
import tempfile
import threading

import pytest

from repro.client import (
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
    requests_for_cases,
)

#: Script sentinel: close the connection abruptly at this point.
DROP = "DROP"


class ScriptedDaemon:
    """A fake daemon on a unix socket.  Each received ``batch`` op
    consumes one script — a list of event dicts to stream (indices are
    positions in *that* batch), optionally ending with :data:`DROP` to
    sever the connection mid-stream.  An exhausted script list answers
    every further batch with an immediate drop (a dead daemon)."""

    def __init__(self, scripts):
        self.scripts = list(scripts)
        self.batches = []  # every batch message received, in order
        self.connections = 0
        self._tmp = tempfile.mkdtemp(prefix="repro-fake-")
        self.socket_path = os.path.join(self._tmp, "fake.sock")
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(self.socket_path)
        self._sock.listen(8)
        self._sock.settimeout(0.2)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self.connections += 1
            self._serve_connection(conn)

    def _serve_connection(self, conn):
        file = conn.makefile("rwb")
        try:
            while not self._stop.is_set():
                line = file.readline()
                if not line:
                    return
                message = json.loads(line)
                if message.get("op") != "batch":
                    return
                self.batches.append(message)
                script = self.scripts.pop(0) if self.scripts else [DROP]
                for event in script:
                    if event == DROP:
                        return
                    file.write(json.dumps(event).encode("utf-8") + b"\n")
                    file.flush()
        except (BrokenPipeError, ConnectionResetError, OSError, ValueError):
            pass
        finally:
            try:
                file.close()
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    def close(self):
        self._stop.set()
        try:
            self._sock.close()
        except OSError:
            pass
        self._thread.join(timeout=5)
        shutil.rmtree(self._tmp, ignore_errors=True)


def verdict_event(index, name, attempts=1):
    return {
        "event": "verdict",
        "index": index,
        "attempts": attempts,
        "verdict": {"name": name, "verified": True, "expected": True},
    }


def done_event():
    return {"event": "done", "elapsed": 0.01, "stats": {}}


@pytest.fixture()
def recording_policy():
    """A deterministic policy: rng pinned to 1.0 (no jitter shrink) and
    a sleep that records instead of sleeping."""
    sleeps = []
    policy = RetryPolicy(
        max_retries=3,
        base_delay=0.1,
        max_delay=1.0,
        sleep=sleeps.append,
        rng=lambda: 1.0,
    )
    return policy, sleeps


# ---------------------------------------------------------------------------
# The backoff schedule itself (pure, no daemon)
# ---------------------------------------------------------------------------


def test_backoff_is_exponential_and_bounded():
    policy = RetryPolicy(base_delay=0.1, max_delay=1.0, rng=lambda: 1.0)
    assert [policy.delay(a) for a in range(6)] == [
        pytest.approx(d) for d in (0.1, 0.2, 0.4, 0.8, 1.0, 1.0)  # capped
    ]


def test_backoff_is_jittered_within_half_to_full():
    lo = RetryPolicy(base_delay=0.1, rng=lambda: 0.0)
    hi = RetryPolicy(base_delay=0.1, rng=lambda: 1.0)
    assert lo.delay(2) == pytest.approx(0.2)  # 0.4 * 0.5
    assert hi.delay(2) == pytest.approx(0.4)  # 0.4 * 1.0
    draws = iter([0.3, 0.7])
    mid = RetryPolicy(base_delay=0.1, rng=lambda: next(draws))
    first, second = mid.delay(2), mid.delay(2)
    assert 0.2 <= first <= 0.4 and 0.2 <= second <= 0.4
    assert first != second  # rng actually participates


def test_retry_after_hint_overrides_the_exponential_base():
    policy = RetryPolicy(base_delay=0.1, max_delay=1.0, rng=lambda: 1.0)
    assert policy.delay(0, hint=7.5) == pytest.approx(7.5)
    assert policy.delay(5, hint=0.25) == pytest.approx(0.25)


# ---------------------------------------------------------------------------
# retry_after honored end to end
# ---------------------------------------------------------------------------


def test_retry_after_is_honored_and_request_replayed(recording_policy):
    policy, sleeps = recording_policy
    daemon = ScriptedDaemon(
        [
            [
                {"event": "accepted", "count": 1},
                {
                    "event": "retry_after",
                    "index": 0,
                    "retry_after": 0.25,
                    "reason": "busy",
                },
                done_event(),
            ],
            [
                {"event": "accepted", "count": 1},
                verdict_event(0, "Figure 3"),
                done_event(),
            ],
        ]
    )
    try:
        with ServiceClient(socket_path=daemon.socket_path, retry=policy) as client:
            outcome = client.run_batch(requests_for_cases(["Figure 3"]))
        assert outcome.complete and outcome.ok
        assert outcome.client_retries == 1
        # the sleep came from the daemon's hint, not the exponential base
        assert sleeps == [pytest.approx(0.25)]
        assert len(daemon.batches) == 2
    finally:
        daemon.close()


def test_exhausted_retries_surface_shed_requests(recording_policy):
    policy, sleeps = recording_policy  # max_retries=3
    shed_script = [
        {"event": "accepted", "count": 1},
        {"event": "retry_after", "index": 0, "retry_after": 0.1, "reason": "busy"},
        done_event(),
    ]
    daemon = ScriptedDaemon([shed_script] * 10)
    try:
        with ServiceClient(socket_path=daemon.socket_path, retry=policy) as client:
            outcome = client.run_batch(requests_for_cases(["Figure 3"]))
        # every round shed: the request lands in outcome.shed, bounded
        assert not outcome.complete
        assert outcome.shed == {0: "busy"}
        assert len(daemon.batches) == 1 + policy.max_retries  # capped
        assert len(sleeps) == policy.max_retries
    finally:
        daemon.close()


# ---------------------------------------------------------------------------
# Connection reset mid-batch: replay only the undecided suffix
# ---------------------------------------------------------------------------


def test_connection_reset_replays_only_undecided_requests(recording_policy):
    policy, sleeps = recording_policy
    daemon = ScriptedDaemon(
        [
            [
                {"event": "accepted", "count": 2},
                verdict_event(0, "Figure 3"),
                DROP,  # connection dies before request 1 is answered
            ],
            [
                {"event": "accepted", "count": 1},
                verdict_event(0, "Figure 1"),  # index 0 *of the replay*
                done_event(),
            ],
        ]
    )
    try:
        with ServiceClient(socket_path=daemon.socket_path, retry=policy) as client:
            outcome = client.run_batch(requests_for_cases(["Figure 3", "Figure 1"]))
        assert outcome.complete and outcome.ok
        # both verdicts present, replay index mapped back to original 1
        assert outcome.verdicts[0].name == "Figure 3"
        assert outcome.verdicts[1].name == "Figure 1"
        # the replay carried only the undecided request
        assert [len(b["requests"]) for b in daemon.batches] == [2, 1]
        assert daemon.batches[1]["requests"][0]["case"] == "Figure 1"
        # one reconnect happened
        assert daemon.connections == 2
        assert len(sleeps) == 1
    finally:
        daemon.close()


def test_decided_failures_are_never_retried(recording_policy):
    """rejected/timeout/worker_crash/error are answers, not transport
    problems: one wire round, no replay."""
    policy, sleeps = recording_policy
    daemon = ScriptedDaemon(
        [
            [
                {"event": "accepted", "count": 4},
                {"event": "rejected", "index": 0, "reason": "over budget"},
                {"event": "timeout", "index": 1, "reason": "too slow"},
                {"event": "worker_crash", "index": 2, "attempts": 2, "reason": "died"},
                {"event": "error", "index": 3, "reason": "bad request"},
                done_event(),
            ]
        ]
    )
    try:
        with ServiceClient(socket_path=daemon.socket_path, retry=policy) as client:
            outcome = client.run_batch(
                requests_for_cases(["Figure 3", "Figure 1", "Pipeline", "Debt-Sum"])
            )
        assert outcome.rejections == {0: "over budget"}
        assert outcome.timeouts == {1: "too slow"}
        assert outcome.crashes == {2: "died"}
        assert outcome.errors == {3: "bad request"}
        assert outcome.attempts[2] == 2
        assert len(daemon.batches) == 1 and not sleeps
    finally:
        daemon.close()


# ---------------------------------------------------------------------------
# Retries are capped: a dead daemon cannot trap the client
# ---------------------------------------------------------------------------


def test_dead_daemon_raises_after_capped_retries(recording_policy):
    policy, sleeps = recording_policy  # max_retries=3
    daemon = ScriptedDaemon([])  # every batch is answered with a drop
    try:
        with ServiceClient(socket_path=daemon.socket_path, retry=policy) as client:
            with pytest.raises(ServiceUnavailable, match="retries"):
                client.run_batch(requests_for_cases(["Figure 3"]))
        assert len(daemon.batches) == 1 + policy.max_retries
        assert len(sleeps) == policy.max_retries
    finally:
        daemon.close()


def test_daemon_gone_entirely_raises_service_unavailable(recording_policy):
    policy, _sleeps = recording_policy
    daemon = ScriptedDaemon(
        [[{"event": "accepted", "count": 1}, verdict_event(0, "Figure 3"), done_event()]]
    )
    socket_path = daemon.socket_path
    with ServiceClient(socket_path=socket_path, retry=policy) as client:
        assert client.run_batch(requests_for_cases(["Figure 3"])).complete
        daemon.close()
        os_error_free = False
        with pytest.raises(ServiceUnavailable):
            client.run_batch(requests_for_cases(["Figure 3"]))
            os_error_free = True
        assert not os_error_free


def test_whole_batch_rejection_raises_not_retries(recording_policy):
    policy, sleeps = recording_policy
    daemon = ScriptedDaemon(
        [[{"event": "rejected", "reason": "batch of 1 exceeds the limit of 0"}]]
    )
    try:
        with ServiceClient(socket_path=daemon.socket_path, retry=policy) as client:
            with pytest.raises(ServiceError, match="exceeds the limit"):
                client.run_batch(requests_for_cases(["Figure 3"]))
        assert len(daemon.batches) == 1 and not sleeps
    finally:
        daemon.close()
