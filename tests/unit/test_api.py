"""Unit tests for the ``repro.api`` facade: wire round-trips, request
validation, admission-control estimation, explicit cache handles, and
the deprecation of the ``GLOBAL`` cache singleton."""

import pytest

from repro import api
from repro.smt.cache import ValidityCache, get_default
from repro.smt.sorts import BOOL, INT
from repro.smt.terms import App, Const, SymVar


# ---------------------------------------------------------------------------
# Term wire codec
# ---------------------------------------------------------------------------


def test_term_wire_round_trip_is_identity():
    x = SymVar("x", INT)
    term = App("==", (App("+", (x, Const(1))), App("+", (Const(1), x))))
    wire = api.term_to_wire(term)
    # JSON-safe: only lists/strings/ints inside
    import json

    assert json.loads(json.dumps(wire)) == wire
    rebuilt = api.term_from_wire(wire)
    assert rebuilt is term  # hash-consing: decode returns the same object


def test_term_wire_bool_sort():
    p = SymVar("p", BOOL)
    wire = api.term_to_wire(p)
    assert wire == ["var", "p", "bool"]
    assert api.term_from_wire(wire) is p


def test_term_wire_rejects_unknown_sort_name():
    with pytest.raises(api.RequestError):
        api.sort_from_wire("real")


def test_term_wire_rejects_malformed():
    for bad in ([], ["nope"], ["app", "+"], ["var", 3, "int"], 42, None):
        with pytest.raises(api.RequestError):
            api.term_from_wire(bad)


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------


def test_case_request_round_trip():
    request = api.VerificationRequest(case="Figure 3")
    wire = request.to_wire()
    assert wire == {"case": "Figure 3"}
    assert api.VerificationRequest.from_wire(wire) == request


def test_program_request_round_trip():
    request = api.VerificationRequest(
        program="skip",
        name="demo",
        resources=(
            api.ResourceRequest(
                name="ctr", spec="counter", location_var="l", low_views=("count",)
            ),
        ),
        low_inputs=frozenset({"a"}),
        high_inputs=frozenset({"h"}),
        conformance_mode="symbolic",
        exhaustive=True,
    )
    rebuilt = api.VerificationRequest.from_wire(request.to_wire())
    assert rebuilt == request


def test_formula_request_round_trip():
    x = SymVar("x", INT)
    tautology = App("==", (x, x))
    request = api.VerificationRequest(
        formula=api.term_to_wire(tautology),
        name="taut",
        sorts=(("x", "int"),),
    )
    rebuilt = api.VerificationRequest.from_wire(request.to_wire())
    assert rebuilt == request
    assert rebuilt.build_sorts() == {"x": INT}


def test_request_requires_exactly_one_shape():
    with pytest.raises(api.RequestError):
        api.VerificationRequest().validate()
    with pytest.raises(api.RequestError):
        api.VerificationRequest(case="Figure 3", program="skip").validate()


def test_request_rejects_bad_conformance_mode():
    with pytest.raises(api.RequestError):
        api.VerificationRequest(case="Figure 3", conformance_mode="psychic").validate()


def test_unknown_case_is_a_request_error():
    with pytest.raises(api.RequestError):
        api.VerificationRequest(case="No Such Case").build_program_spec()


def test_unknown_spec_name_is_a_request_error():
    resource = api.ResourceRequest(name="r", spec="no-such-spec", location_var="l")
    with pytest.raises(api.RequestError):
        resource.build()


def test_unparsable_program_is_a_request_error():
    request = api.VerificationRequest(program="this is not a program (", name="bad")
    with pytest.raises(api.RequestError):
        request.build_program_spec()


# ---------------------------------------------------------------------------
# Admission control estimation
# ---------------------------------------------------------------------------


def test_estimate_formula_is_one():
    x = SymVar("x", INT)
    request = api.VerificationRequest(formula=api.term_to_wire(App("==", (x, x))))
    assert api.estimate_vc_count(request) == 1


def test_estimate_counts_resources_and_atomics():
    from repro.casestudies import case_by_name
    from repro.lang.ast import Atomic

    case = case_by_name("Figure 3")
    request = api.VerificationRequest(case="Figure 3")
    estimate = api.estimate_vc_count(request)
    assert estimate >= len(case.resources)

    def count_atomics(node, seen):
        if id(node) in seen:
            return 0
        seen.add(id(node))
        total = int(isinstance(node, Atomic))
        from repro.lang.ast import Node

        for value in vars(node).values():
            if isinstance(value, Node):
                total += count_atomics(value, seen)
            elif isinstance(value, (tuple, list)):
                total += sum(
                    count_atomics(v, seen) for v in value if isinstance(v, Node)
                )
        return total

    atomics = count_atomics(case.program_spec().program, set())
    assert estimate == len(case.resources) + atomics


# ---------------------------------------------------------------------------
# Verdicts
# ---------------------------------------------------------------------------


def test_verdict_round_trip():
    verdict = api.Verdict(
        name="demo",
        verified=False,
        errors=("resource r: not valid",),
        expected=False,
        elapsed=1.25,
        symbolic_conformance=(("r", "conforms"),),
        validity=(("r", False, 12),),
        conformance=("sampled ok",),
        obligations=("instance group 0 discharged",),
        solver_verdict=None,
        model=None,
        from_cache=True,
    )
    rebuilt = api.Verdict.from_wire(verdict.to_wire())
    assert rebuilt == verdict
    assert rebuilt.ok  # expected False, verified False
    assert rebuilt.observable() == verdict.observable()


def test_verdict_observable_ignores_timing():
    a = api.Verdict(name="x", verified=True, elapsed=0.1)
    b = api.Verdict(name="x", verified=True, elapsed=9.9, from_cache=True)
    assert a.observable() == b.observable()


def test_batch_report_round_trip():
    report = api.BatchReport(
        verdicts=(api.Verdict(name="x", verified=True),),
        elapsed=0.5,
        stats={"pool": {"reused": 3}},
    )
    rebuilt = api.BatchReport.from_wire(report.to_wire())
    assert rebuilt == report
    assert rebuilt.ok


# ---------------------------------------------------------------------------
# Execution through the facade
# ---------------------------------------------------------------------------


def test_execute_formula_tautology():
    x = SymVar("x", INT)
    request = api.VerificationRequest(
        formula=api.term_to_wire(App("==", (x, x))), name="taut"
    )
    verdict = api.execute(request)
    assert verdict.verified
    assert verdict.solver_verdict == "proved"


def test_execute_formula_with_sort_overrides():
    p = SymVar("p_api_sort_override", BOOL)
    request = api.VerificationRequest(
        formula=api.term_to_wire(App("or", (p, App("not", (p,))))),
        name="excluded-middle",
    )
    verdict = api.execute(request, sorts={"p_api_sort_override": BOOL})
    assert verdict.verified


def test_execute_case_matches_direct_verify():
    from repro.casestudies import case_by_name

    case = case_by_name("Figure 1")
    direct = case.verify()
    verdict = api.execute(api.VerificationRequest(case=case.name))
    assert verdict.verified == direct.verified
    assert verdict.expected == case.expected_verified
    assert verdict.ok


def test_verify_batch_shares_a_session():
    requests = [
        api.VerificationRequest(case="Figure 3"),
        api.VerificationRequest(case="Figure 3"),
    ]
    report = api.verify_batch(requests)
    assert report.ok
    assert len(report.verdicts) == 2
    assert report.stats["session"]["queries"] > 0
    assert report.verdicts[0].observable() == report.verdicts[1].observable()


# ---------------------------------------------------------------------------
# Explicit cache handles / GLOBAL retirement
# ---------------------------------------------------------------------------


def test_open_cache_installs_and_restores_default(tmp_path):
    before = get_default()
    with api.open_cache(tmp_path) as handle:
        assert get_default() is handle.cache
        assert handle.path == tmp_path / api.CACHE_FILENAME
    assert get_default() is before
    assert handle.path.exists()  # saved on exit (even empty)


def test_open_cache_persists_between_handles(tmp_path):
    x = SymVar("x_open_cache_persist", INT)
    request = api.VerificationRequest(
        formula=api.term_to_wire(App("==", (x, x))), name="t"
    )
    with api.open_cache(tmp_path) as first:
        assert api.execute(request).verified
        assert first.stats()["persistent_size"] > 0
    with api.open_cache(tmp_path) as second:
        verdict = api.execute(request)
        assert verdict.verified
        stats = second.stats()
        assert stats["persistent_hits"] + stats["hits"] > 0


def test_open_cache_namespaces_are_isolated(tmp_path):
    x = SymVar("x_open_cache_ns", INT)
    request = api.VerificationRequest(
        formula=api.term_to_wire(App("==", (x, x))), name="t"
    )
    with api.open_cache(tmp_path, namespace="tenant-a"):
        api.execute(request)
    with api.open_cache(tmp_path, namespace="tenant-b") as other:
        api.execute(request)
        # a fresh namespace cannot see tenant-a's persisted verdicts
        assert other.stats()["persistent_hits"] == 0


def test_global_alias_is_deprecated_but_works():
    import repro.smt.cache as cache_module

    with pytest.warns(DeprecationWarning):
        alias = cache_module.GLOBAL
    assert isinstance(alias, ValidityCache)


def test_module_getattr_still_raises_for_unknown_names():
    import repro.smt.cache as cache_module

    with pytest.raises(AttributeError):
        cache_module.no_such_attribute
