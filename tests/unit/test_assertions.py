"""Unit tests for relational assertion syntax and satisfaction (Fig. 7)."""

from fractions import Fraction

import pytest

from repro.assertions import (
    BoolAssert,
    Conj,
    Emp,
    Exists,
    Implies,
    Low,
    PointsTo,
    PreShared,
    PreUnique,
    SGuardAssert,
    SepConj,
    UGuardAssert,
    assertion_fv,
    assertion_subst,
    contains_guard,
    contains_low,
    is_noguard,
    is_precise,
    is_unambiguous,
    is_unary,
    satisfies,
)
from repro.heap import ExtendedHeap, GuardFamily, Multiset, PermissionHeap, SharedGuard, UniqueGuard
from repro.lang.ast import BinOp, Lit, Var
from repro.lang.parser import parse_expr

HALF = Fraction(1, 2)
EMPTY = ExtendedHeap.empty()


def sat(assertion, s1=None, gh1=EMPTY, s2=None, gh2=EMPTY):
    return satisfies(s1 or {}, gh1, s2 or {}, gh2, assertion)


class TestPureAssertions:
    def test_emp_holds_of_empty_heaps(self):
        assert sat(Emp())

    def test_emp_fails_with_cells(self):
        gh = ExtendedHeap(PermissionHeap.singleton(1, 5))
        assert not sat(Emp(), gh1=gh, gh2=gh)

    def test_bool_checks_both_states(self):
        assertion = BoolAssert(parse_expr("x > 0"))
        assert sat(assertion, {"x": 1}, EMPTY, {"x": 2}, EMPTY)
        assert not sat(assertion, {"x": 1}, EMPTY, {"x": 0}, EMPTY)

    def test_low_requires_equal_values(self):
        assert sat(Low(Var("x")), {"x": 5}, EMPTY, {"x": 5}, EMPTY)
        assert not sat(Low(Var("x")), {"x": 5}, EMPTY, {"x": 6}, EMPTY)

    def test_low_of_expression(self):
        # x differs but x - x is equal
        assertion = Low(parse_expr("x - x"))
        assert sat(assertion, {"x": 5}, EMPTY, {"x": 6}, EMPTY)

    def test_implies_requires_low_condition(self):
        assertion = Implies(parse_expr("x > 0"), Low(Var("y")))
        # condition differs across states -> fails
        assert not sat(assertion, {"x": 1, "y": 2}, EMPTY, {"x": 0, "y": 2}, EMPTY)

    def test_implies_vacuous_when_false(self):
        assertion = Implies(parse_expr("x > 0"), Low(Var("y")))
        assert sat(assertion, {"x": 0, "y": 1}, EMPTY, {"x": 0, "y": 2}, EMPTY)

    def test_implies_checks_body_when_true(self):
        assertion = Implies(parse_expr("x > 0"), Low(Var("y")))
        assert sat(assertion, {"x": 1, "y": 3}, EMPTY, {"x": 1, "y": 3}, EMPTY)
        assert not sat(assertion, {"x": 1, "y": 3}, EMPTY, {"x": 1, "y": 4}, EMPTY)


class TestSpatialAssertions:
    def test_points_to_exact(self):
        gh = ExtendedHeap(PermissionHeap.singleton(1, 5))
        assertion = PointsTo(Var("p"), Lit(5))
        assert sat(assertion, {"p": 1}, gh, {"p": 1}, gh)

    def test_points_to_wrong_value(self):
        gh = ExtendedHeap(PermissionHeap.singleton(1, 5))
        assert not sat(PointsTo(Var("p"), Lit(6)), {"p": 1}, gh, {"p": 1}, gh)

    def test_points_to_insufficient_fraction(self):
        gh = ExtendedHeap(PermissionHeap.singleton(1, 5, HALF))
        assert not sat(PointsTo(Var("p"), Lit(5)), {"p": 1}, gh, {"p": 1}, gh)

    def test_points_to_fractional(self):
        gh = ExtendedHeap(PermissionHeap.singleton(1, 5, HALF))
        assert sat(PointsTo(Var("p"), Lit(5), HALF), {"p": 1}, gh, {"p": 1}, gh)

    def test_points_to_leftover_heap_fails_top_level(self):
        gh = ExtendedHeap(PermissionHeap({1: (Fraction(1), 5), 2: (Fraction(1), 6)}))
        assert not sat(PointsTo(Var("p"), Lit(5)), {"p": 1}, gh, {"p": 1}, gh)

    def test_sep_conj_splits_heap(self):
        gh = ExtendedHeap(PermissionHeap({1: (Fraction(1), 5), 2: (Fraction(1), 6)}))
        assertion = SepConj(PointsTo(Lit(1), Lit(5)), PointsTo(Lit(2), Lit(6)))
        assert sat(assertion, {}, gh, {}, gh)

    def test_sep_conj_no_double_ownership(self):
        gh = ExtendedHeap(PermissionHeap.singleton(1, 5))
        assertion = SepConj(PointsTo(Lit(1), Lit(5)), PointsTo(Lit(1), Lit(5)))
        assert not sat(assertion, {}, gh, {}, gh)

    def test_half_permissions_recombine(self):
        gh = ExtendedHeap(PermissionHeap.singleton(1, 5))
        assertion = SepConj(PointsTo(Lit(1), Lit(5), HALF), PointsTo(Lit(1), Lit(5), HALF))
        assert sat(assertion, {}, gh, {}, gh)

    def test_pure_conjunct_absorbs(self):
        gh = ExtendedHeap(PermissionHeap.singleton(1, 5))
        assertion = SepConj(BoolAssert(parse_expr("1 == 1")), PointsTo(Lit(1), Lit(5)))
        assert sat(assertion, {}, gh, {}, gh)


class TestGuardAssertions:
    def test_sguard_exact(self):
        gh = ExtendedHeap.guard_only(SharedGuard(HALF, Multiset(["a"])))
        assertion = SGuardAssert(HALF, Lit(Multiset(["a"])))
        assert sat(assertion, {}, gh, {}, gh)

    def test_sguard_wrong_args(self):
        gh = ExtendedHeap.guard_only(SharedGuard(HALF, Multiset(["a"])))
        assert not sat(SGuardAssert(HALF, Lit(Multiset(["b"]))), {}, gh, {}, gh)

    def test_sguard_split_across_sep_conj(self):
        gh = ExtendedHeap.guard_only(SharedGuard(Fraction(1), Multiset(["a", "b"])))
        assertion = SepConj(
            SGuardAssert(HALF, Lit(Multiset(["a"]))),
            SGuardAssert(HALF, Lit(Multiset(["b"]))),
        )
        assert sat(assertion, {}, gh, {}, gh)

    def test_uguard_exact_sequence(self):
        gh = ExtendedHeap.guard_only(
            unique_guards=GuardFamily.singleton("Prod", UniqueGuard((1, 2)))
        )
        assert sat(UGuardAssert("Prod", Lit((1, 2))), {}, gh, {}, gh)
        assert not sat(UGuardAssert("Prod", Lit((2, 1))), {}, gh, {}, gh)

    def test_uguard_missing(self):
        assert not sat(UGuardAssert("Prod", Lit(())))


class TestExists:
    def test_witnesses_may_differ(self):
        # ∃x. p ↦ x with different stored values in the two states
        gh1 = ExtendedHeap(PermissionHeap.singleton(1, 5))
        gh2 = ExtendedHeap(PermissionHeap.singleton(1, 6))
        assertion = Exists("x", PointsTo(Lit(1), Var("x")))
        assert sat(assertion, {}, gh1, {}, gh2)

    def test_exists_with_low_body_fails_on_differing(self):
        gh1 = ExtendedHeap(PermissionHeap.singleton(1, 5))
        gh2 = ExtendedHeap(PermissionHeap.singleton(1, 6))
        assertion = Exists("x", Conj(PointsTo(Lit(1), Var("x")), Low(Var("x"))))
        assert not sat(assertion, {}, gh1, {}, gh2)


class TestPreAssertions:
    def _keyset_action(self):
        from repro.spec.library import map_put_keyset_spec

        return map_put_keyset_spec().shared_action

    def test_pre_shared_bijection(self):
        action = self._keyset_action()
        assertion = PreShared(action, Var("s"))
        ms1 = Multiset([(1, 10), (2, 20)])
        ms2 = Multiset([(2, 99), (1, 88)])
        assert sat(assertion, {"s": ms1}, EMPTY, {"s": ms2}, EMPTY)

    def test_pre_shared_cardinality_mismatch(self):
        action = self._keyset_action()
        assertion = PreShared(action, Var("s"))
        assert not sat(assertion, {"s": Multiset([(1, 1)])}, EMPTY, {"s": Multiset()}, EMPTY)

    def test_pre_unique_pointwise(self):
        from repro.spec.library import producer_consumer_spec

        spec = producer_consumer_spec(1, 1)
        prod = spec.action("Prod")
        assertion = PreUnique(prod, Var("s"))
        assert sat(assertion, {"s": (1, 2)}, EMPTY, {"s": (1, 2)}, EMPTY)
        # same multiset, different order: pointwise check fails
        assert not sat(assertion, {"s": (1, 2)}, EMPTY, {"s": (2, 1)}, EMPTY)


class TestClassifiers:
    def test_unary_syntactic(self):
        assert is_unary(PointsTo(Var("p"), Var("v")))
        assert not is_unary(Low(Var("x")))
        assert not is_unary(SepConj(Emp(), Low(Var("x"))))

    def test_pre_is_not_unary(self):
        action = TestPreAssertions()._keyset_action()
        assert not is_unary(PreShared(action, Var("s")))

    def test_noguard(self):
        assert is_noguard(PointsTo(Var("p"), Var("v")))
        assert not is_noguard(SGuardAssert(HALF, Var("s")))

    def test_precise(self):
        assert is_precise(PointsTo(Var("p"), Var("v")))
        assert is_precise(SepConj(PointsTo(Var("p"), Var("v")), Emp()))
        assert not is_precise(BoolAssert(parse_expr("x == 1")))

    def test_unambiguous_points_to(self):
        assert is_unambiguous(PointsTo(Var("p"), Var("x")), "x")
        assert not is_unambiguous(PointsTo(Var("x"), Var("x")), "x")

    def test_unambiguous_equality(self):
        assert is_unambiguous(BoolAssert(BinOp("==", Var("x"), Lit(3))), "x")
        assert not is_unambiguous(Low(Var("x")), "x")

    def test_fv(self):
        assertion = SepConj(PointsTo(Var("p"), Var("v")), Exists("v", Low(Var("v"))))
        assert assertion_fv(assertion) == frozenset({"p", "v"})

    def test_subst(self):
        assertion = Low(Var("x"))
        assert assertion_subst(assertion, "x", Lit(1)) == Low(Lit(1))

    def test_subst_respects_binders(self):
        assertion = Exists("x", Low(Var("x")))
        assert assertion_subst(assertion, "x", Lit(1)) == assertion

    def test_contains_flags(self):
        assert contains_low(Implies(Var("b"), Emp()))
        assert contains_guard(SepConj(Emp(), UGuardAssert("i", Lit(()))))
