"""Unit tests for repro.heap.multiset."""

import pytest

from repro.heap.multiset import EMPTY_MULTISET, Multiset


class TestConstruction:
    def test_empty(self):
        assert len(Multiset()) == 0
        assert not Multiset()

    def test_from_iterable_counts_duplicates(self):
        m = Multiset([1, 1, 2])
        assert m.count(1) == 2
        assert m.count(2) == 1
        assert m.count(3) == 0

    def test_from_counts(self):
        m = Multiset.from_counts({"a": 2, "b": 0})
        assert m.count("a") == 2
        assert "b" not in m

    def test_from_counts_rejects_negative(self):
        with pytest.raises(ValueError):
            Multiset.from_counts({"a": -1})

    def test_heterogeneous_elements(self):
        m = Multiset([(1, 2), "x", 3])
        assert (1, 2) in m
        assert "x" in m


class TestQueries:
    def test_len_counts_multiplicity(self):
        assert len(Multiset([1, 1, 1, 2])) == 4

    def test_support(self):
        assert Multiset([1, 1, 2]).support() == frozenset({1, 2})

    def test_elements_repeats(self):
        assert sorted(Multiset([2, 1, 1]).elements()) == [1, 1, 2]

    def test_items(self):
        assert dict(Multiset([1, 1, 2]).items()) == {1: 2, 2: 1}

    def test_contains(self):
        m = Multiset([5])
        assert 5 in m
        assert 6 not in m


class TestAlgebra:
    def test_union_adds_multiplicities(self):
        assert (Multiset([1]) + Multiset([1, 2])).count(1) == 2

    def test_union_identity(self):
        m = Multiset([1, 2, 2])
        assert m + EMPTY_MULTISET == m

    def test_union_commutative(self):
        a, b = Multiset([1, 2]), Multiset([2, 3])
        assert a + b == b + a

    def test_difference_floors_at_zero(self):
        assert (Multiset([1]) - Multiset([1, 1])).count(1) == 0

    def test_difference_partial(self):
        m = Multiset([1, 1, 2]) - Multiset([1])
        assert m.count(1) == 1
        assert m.count(2) == 1

    def test_add_single(self):
        assert Multiset().add("x").count("x") == 1

    def test_add_many(self):
        assert Multiset().add("x", 3).count("x") == 3

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            Multiset().add("x", -1)

    def test_remove(self):
        assert Multiset([1, 1]).remove(1).count(1) == 1

    def test_remove_too_many_raises(self):
        with pytest.raises(KeyError):
            Multiset([1]).remove(1, 2)

    def test_issubset(self):
        assert Multiset([1]).issubset(Multiset([1, 1]))
        assert not Multiset([1, 1]).issubset(Multiset([1]))

    def test_empty_is_subset_of_all(self):
        assert EMPTY_MULTISET.issubset(Multiset([42]))


class TestEqualityHashing:
    def test_order_irrelevant(self):
        assert Multiset([1, 2, 1]) == Multiset([2, 1, 1])

    def test_multiplicity_matters(self):
        assert Multiset([1]) != Multiset([1, 1])

    def test_hashable_and_consistent(self):
        assert hash(Multiset([1, 2])) == hash(Multiset([2, 1]))

    def test_usable_as_dict_key(self):
        d = {Multiset([1]): "one"}
        assert d[Multiset([1])] == "one"

    def test_not_equal_to_other_types(self):
        assert Multiset([1]) != [1]

    def test_immutability_of_operations(self):
        m = Multiset([1])
        m.add(2)
        assert 2 not in m
