"""Documentation health: internal links resolve and the CLI answers.

The CI docs job runs this file plus a ``python -m repro --help`` smoke
pass; keeping it in tier-1 means a moved file or renamed heading breaks
the build immediately rather than rotting in the docs.
"""

import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Every tracked markdown document with internal links worth checking.
DOCUMENTS = [
    REPO_ROOT / "README.md",
    REPO_ROOT / "docs" / "ARCHITECTURE.md",
    REPO_ROOT / "src" / "repro" / "smt" / "README.md",
    REPO_ROOT / "ROADMAP.md",
]

_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#+\s+(.*)$", re.MULTILINE)


def _anchor(heading: str) -> str:
    """GitHub's heading-to-anchor slug (enough of it for our docs)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\s-]", "", slug)
    return re.sub(r"\s+", "-", slug)


def _links(document: Path):
    for match in _LINK.finditer(document.read_text()):
        yield match.group(1)


class TestInternalLinks:
    def test_documents_exist(self):
        for document in DOCUMENTS:
            assert document.is_file(), f"missing document: {document}"

    def test_relative_links_resolve(self):
        for document in DOCUMENTS:
            for target in _links(document):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                path_part, _, fragment = target.partition("#")
                if path_part:
                    resolved = (document.parent / path_part).resolve()
                    assert resolved.exists(), (
                        f"{document.relative_to(REPO_ROOT)} links to "
                        f"{target!r}, which does not exist"
                    )
                    target_file = resolved
                else:
                    target_file = document
                if fragment and target_file.suffix == ".md":
                    anchors = {
                        _anchor(h) for h in _HEADING.findall(target_file.read_text())
                    }
                    assert fragment in anchors, (
                        f"{document.relative_to(REPO_ROOT)} links to anchor "
                        f"#{fragment} missing from {target_file.name}"
                    )

    def test_readme_mentions_the_cli_flags(self):
        text = (REPO_ROOT / "README.md").read_text()
        for needle in ("python -m repro", "--jobs", "--cache-dir"):
            assert needle in text


class TestCliSmoke:
    def test_module_help_exits_zero(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        for flag in ("--jobs", "--cache-dir"):
            assert flag in result.stdout
