"""Unit tests for the optimized SMT core: interning, compilation,
watched-literal solving, and the cross-call validity cache."""

import pytest

from repro.smt import (
    App,
    BOOL,
    Const,
    INT,
    SymVar,
    Verdict,
    WatchedSolver,
    check_validity,
    clear_all_caches,
    compile_term,
    conj,
    disj,
    eq,
    evaluate_term,
    implies,
    negate,
    simplify,
)
from repro.smt.cache import GLOBAL as VALIDITY_CACHE
from repro.smt.cnf import cnf_of


def _lit_assign(values):
    """Literal-indexed assignment array from var-indexed values: the
    flat-arena solver hands propagators ``assign[2v]``/``assign[2v+1]``
    slots, with both polarities filled on assignment."""
    assign = [0] * (2 * len(values))
    for var, value in enumerate(values):
        if var and value:
            assign[var << 1] = value
            assign[(var << 1) | 1] = -value
    return assign


class TestInterning:
    def test_const_canonical(self):
        assert Const(5) is Const(5)

    def test_symvar_canonical(self):
        assert SymVar("x", INT) is SymVar("x", INT)

    def test_app_canonical(self):
        x = SymVar("x", INT)
        assert App("+", (x, Const(1))) is App("+", (x, Const(1)))
        assert App("+", (x, Const(1))) is not App("+", (Const(1), x))

    def test_interning_preserves_equality_semantics(self):
        # bool/int conflation under == and in dict keys, exactly as the
        # frozen-dataclass representation behaved.
        assert Const(True) == Const(1)
        assert hash(Const(True)) == hash(Const(1))
        table = {Const(True): "a"}
        assert table[Const(1)] == "a"

    def test_bool_and_int_consts_keep_distinct_nodes(self):
        assert Const(True) is not Const(1)
        assert Const(True).value is True
        assert Const(1).value == 1

    def test_terms_immutable(self):
        with pytest.raises(AttributeError):
            Const(5).value = 6
        with pytest.raises(AttributeError):
            App("+", (Const(1), Const(2))).op = "-"

    def test_copy_returns_canonical_instance(self):
        import copy

        term = App("+", (SymVar("x", INT), Const(1)))
        assert copy.copy(term) is term
        assert copy.deepcopy(term) is term

    def test_unhashable_const_payload_tolerated(self):
        ugly = Const([1, 2, 3])  # lists are unhashable
        assert ugly.value == [1, 2, 3]
        assert ugly == Const([1, 2, 3])
        assert ugly is not Const([1, 2, 3])  # cannot intern
        with pytest.raises(TypeError):
            hash(ugly)

    def test_equality_survives_cache_clear(self):
        before = App("<", (SymVar("cc_x", INT), Const(7)))
        clear_all_caches()
        after = App("<", (SymVar("cc_x", INT), Const(7)))
        assert before is not after  # identities diverged at the clear…
        assert before == after  # …but structural equality holds
        assert hash(before) == hash(after)


class TestConjDisj:
    def test_disj_drops_false_operands(self):
        x = SymVar("b", BOOL)
        assert disj(Const(False), x) == x
        assert disj(x, Const(False)) == x

    def test_disj_short_circuits_true(self):
        x = SymVar("b", BOOL)
        assert disj(x, Const(True)) == Const(True)

    def test_disj_empty_and_all_false(self):
        assert disj() == Const(False)
        assert disj(Const(False), Const(False)) == Const(False)

    def test_conj_short_circuits_false(self):
        x = SymVar("b", BOOL)
        assert conj(x, Const(False)) == Const(False)


class TestSimplifyRewrites:
    def test_disequality_reflexivity(self):
        x = SymVar("x", INT)
        assert simplify(App("!=", (x, x))) == Const(False)

    def test_not_equality_folds_to_disequality(self):
        x, y = SymVar("x", INT), SymVar("y", INT)
        assert simplify(negate(eq(x, y))) == App("!=", (x, y))
        assert simplify(negate(App("!=", (x, y)))) == eq(x, y)

    def test_not_folding_is_consistent_roundtrip(self):
        x, y = SymVar("x", INT), SymVar("y", INT)
        assert simplify(negate(negate(eq(x, y)))) == eq(x, y)
        assert simplify(negate(simplify(negate(eq(x, y))))) == eq(x, y)

    def test_comparison_reflexivity(self):
        x = SymVar("x", INT)
        assert simplify(App("<=", (x, x))) == Const(True)
        assert simplify(App(">=", (x, x))) == Const(True)
        assert simplify(App("<", (x, x))) == Const(False)
        assert simplify(App(">", (x, x))) == Const(False)

    def test_implies_chaining_collapses(self):
        a = SymVar("a", BOOL)
        b = SymVar("b", BOOL)
        chained = implies(a, implies(a, b))
        assert simplify(chained) == implies(a, b)


class TestCompile:
    def test_compiled_agrees_on_arithmetic(self):
        x = SymVar("x", INT)
        term = App("+", (App("*", (x, Const(3))), Const(1)))
        compiled = compile_term(term)
        for value in (-2, 0, 5):
            assert compiled({"x": value}) == evaluate_term(term, {"x": value})

    def test_compiled_preserves_lazy_guards(self):
        x = SymVar("x", INT)
        # The guarded division is unsafe to evaluate when x == 0; the
        # guard must short-circuit exactly like the reference walk.
        guarded = implies(
            negate(eq(x, Const(0))),
            App(">=", (App("/", (Const(10), x)), Const(0))),
        )
        compiled = compile_term(guarded)
        assert compiled({"x": 0}) is True

    def test_compiled_lazy_and_or(self):
        x = SymVar("x", INT)
        at = App("at", (Const(()), Const(5)))  # out-of-range index: unsafe to force
        term = App("and", (Const(False), at))
        assert compile_term(term)({"x": 0}) is False
        term = App("or", (Const(True), at))
        assert compile_term(term)({"x": 0}) is True

    def test_compiled_unassigned_variable_raises(self):
        term = SymVar("missing", INT)
        with pytest.raises(KeyError):
            compile_term(term)({})

    def test_compiled_unknown_operation_is_late_bound(self):
        from repro.smt.terms import OPERATIONS, UnknownOperation

        name = "test_late_bound_op"
        term = App(name, (Const(2), Const(3)))
        compiled = compile_term(term)
        with pytest.raises(UnknownOperation):
            compiled({})
        OPERATIONS[name] = lambda a, b: a * b
        try:
            assert compiled({}) == 6
        finally:
            del OPERATIONS[name]

    def test_compiled_closure_is_memoized(self):
        term = App("+", (SymVar("memo_x", INT), Const(1)))
        assert compile_term(term) is compile_term(term)


class TestWatchedSolver:
    def test_incremental_blocking(self):
        # (a ∨ b): block each model as found; eventually UNSAT.
        solver = WatchedSolver([(1, 2)])
        seen = set()
        while True:
            model = solver.solve()
            if model is None:
                break
            key = tuple(sorted(model.items()))
            assert key not in seen, "solver repeated a blocked model"
            seen.add(key)
            solver.add_clause([-lit if val else lit for lit, val in model.items()])
        assert seen  # at least one model existed

    def test_models_satisfy_all_clauses(self):
        clauses = [(1, 2), (-1, 3), (-2, -3), (2, 3)]
        model = WatchedSolver(clauses).solve()
        assert model is not None
        for clause in clauses:
            assert any((lit > 0) == model.get(abs(lit), False) for lit in clause)

    def test_assumptions_respected(self):
        solver = WatchedSolver([(1, 2)])
        model = solver.solve(assumptions=[-1])
        assert model is not None
        assert model[1] is False
        assert model[2] is True

    def test_conflicting_assumptions(self):
        solver = WatchedSolver([(1,)])
        assert solver.solve(assumptions=[-1]) is None

    def test_tautological_clause_ignored(self):
        solver = WatchedSolver([(1, -1)])
        assert solver.solve() is not None

    def test_empty_clause_unsat(self):
        solver = WatchedSolver([()])
        assert solver.solve() is None


class TestMissSentinels:
    def test_intern_table_stores_none_and_falsy_values(self):
        from repro.smt.intern import InternTable

        table = InternTable("regression")
        table.put("none", None)
        table.put("zero", 0)
        missing = object()
        assert table.get("none", missing) is None
        assert table.get("zero", missing) == 0
        assert table.hits == 2
        assert table.misses == 0
        assert table.get("absent", missing) is missing
        assert table.misses == 1

    def test_validity_cache_stores_falsy_results(self):
        from repro.smt.cache import ValidityCache
        from repro.smt.solver import Result, Verdict

        cache = ValidityCache()
        refuted = Result(Verdict.REFUTED, model={})
        assert not refuted  # __bool__ is False: the regression trigger
        cache.put("key", refuted)
        assert cache.get("key") is refuted
        assert cache.hits == 1
        assert cache.misses == 0
        cache.put("none", None)
        assert cache.get("none", "fallback") is None
        assert cache.hits == 2
        assert cache.get("absent", "fallback") == "fallback"
        assert cache.misses == 1


class TestUnitClauseHandling:
    def test_duplicate_units_are_not_accumulated(self):
        solver = WatchedSolver([(1, 2)])
        for _ in range(50):
            solver.add_clause((1,))
            assert solver.solve() is not None
        assert solver._units == [1]

    def test_contradicting_unit_detected_at_add_time(self):
        solver = WatchedSolver([(1,)])
        solver.add_clause((-1,))
        assert solver._unsat  # caught without running the search
        assert solver.solve() is None

    def test_unit_inside_clause_list_constructor(self):
        assert WatchedSolver([(3,), (-3,)]).solve() is None
        assert WatchedSolver([(3,), (3,)]).solve() is not None


class TestCDCL:
    @staticmethod
    def _pigeonhole_clauses(pigeons, holes):
        def var(pigeon, hole):
            return pigeon * holes + hole + 1

        clauses = [
            tuple(var(p, h) for h in range(holes)) for p in range(pigeons)
        ]
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append((-var(p1, h), -var(p2, h)))
        return clauses

    def test_pigeonhole_unsat_with_learning(self):
        solver = WatchedSolver(self._pigeonhole_clauses(4, 3))
        assert solver.solve() is None
        assert solver.conflicts > 0
        assert solver.learned_clauses > 0

    def test_learned_clauses_persist_across_solves(self):
        solver = WatchedSolver(self._pigeonhole_clauses(4, 3))
        assert solver.solve() is None
        conflicts_first = solver.conflicts
        assert solver.solve() is None  # _unsat latched: no new search
        assert solver.conflicts == conflicts_first

    def test_backjumping_instance_model_correct(self):
        clauses = self._pigeonhole_clauses(4, 4)  # satisfiable: a perfect matching
        model = WatchedSolver(clauses).solve()
        assert model is not None
        for clause in clauses:
            assert any(model.get(abs(lit)) == (lit > 0) for lit in clause)


class TestTheoryPropagation:
    def test_pigeonhole_euf_needs_no_blocked_models(self):
        from repro.smt.dpll import dpllt_equality

        xs = [SymVar(f"tp_w{i}", INT) for i in range(4)]
        y, z = SymVar("tp_y", INT), SymVar("tp_z", INT)
        parts = [disj(eq(x, y), eq(x, z)) for x in xs]
        parts.extend(
            negate(eq(xs[i], xs[j]))
            for i in range(4)
            for j in range(i + 1, 4)
        )
        result = dpllt_equality(conj(*parts))
        assert result is not None
        assert not result.satisfiable
        assert result.models_blocked == 0
        assert result.theory_propagations > 0

    def test_entailed_atom_is_propagated(self):
        from repro.smt.cnf import AtomTable
        from repro.smt.euf import EqualityPropagator

        x, y, z = (SymVar(f"ep_{n}", INT) for n in "xyz")
        table = AtomTable()
        xy = table.atom(eq(x, y))
        yz = table.atom(eq(y, z))
        xz = table.atom(eq(x, z))
        propagator = EqualityPropagator(table)
        propagator.reset()
        propagator.assert_literal(xy)
        propagator.assert_literal(yz)
        # xy, yz true; xz unassigned (literal-indexed: slot 2v per var)
        status, implied = propagator.check(_lit_assign([0, 1, 1, 0]))
        assert status == "ok"
        assert (xz, [xy, yz]) in implied

    def test_theory_conflict_detected_before_full_model(self):
        from repro.smt.cnf import AtomTable
        from repro.smt.euf import EqualityPropagator

        x, y, z = (SymVar(f"tc_{n}", INT) for n in "xyz")
        table = AtomTable()
        xy = table.atom(eq(x, y))
        yz = table.atom(eq(y, z))
        xz = table.atom(eq(x, z))
        propagator = EqualityPropagator(table)
        propagator.reset()
        propagator.assert_literal(xy)
        propagator.assert_literal(yz)
        propagator.assert_literal(-xz)  # x ≠ z: inconsistent
        status, clause = propagator.check(_lit_assign([0, 1, 1, -1]))
        assert status == "conflict"
        assert xz in clause  # ¬(x ≠ z) is part of the explanation
        assert all(lit in (xz, -xy, -yz) for lit in clause)

    def test_backjump_rewinds_the_mirrored_trail(self):
        from repro.smt.cnf import AtomTable
        from repro.smt.euf import EqualityPropagator

        x, y = SymVar("bj_x", INT), SymVar("bj_y", INT)
        table = AtomTable()
        xy = table.atom(eq(x, y))
        propagator = EqualityPropagator(table)
        propagator.reset()
        propagator.assert_literal(xy)
        propagator.backjump(0)
        status, implied = propagator.check(_lit_assign([0, 0]))
        assert status == "ok"
        assert implied == []  # nothing asserted any more

    def test_mixed_fragment_is_decided_since_pr5(self):
        from repro.smt.dpll import dpllt_equality

        x, y = SymVar("mx_x", INT), SymVar("mx_y", INT)
        mixed = conj(App("<", (x, y)), eq(x, y))
        # x < y contradicts x = y: the equality + difference-logic
        # propagator stack refutes it without bailing to enumeration.
        result = dpllt_equality(mixed)
        assert result is not None
        assert not result.satisfiable

    def test_out_of_fragment_still_lazy(self):
        from repro.smt.dpll import dpllt_equality

        x, y = SymVar("mxo_x", INT), SymVar("mxo_y", INT)
        # A comparison over an uninterpreted application is outside both
        # fragments: a found model asserting it bails out (None).
        outside = conj(App("<", (App("g", (x,)), y)), eq(x, y))
        assert dpllt_equality(outside) is None


class TestValidityCache:
    def setup_method(self):
        clear_all_caches()

    def test_second_call_hits(self):
        x = SymVar("cachetest_x", INT)
        formula = disj(App("<", (x, Const(0))), App(">=", (x, Const(0))))
        first = check_validity(formula)
        assert not first.from_cache
        second = check_validity(formula)
        assert second.from_cache
        assert second.verdict == first.verdict
        assert second.cache_hits >= 1

    def test_counters_monotonic(self):
        x = SymVar("cachetest_y", INT)
        formula = App("<", (x, Const(3)))
        first = check_validity(formula)
        second = check_validity(formula)
        assert second.cache_hits == first.cache_hits + 1
        assert second.cache_misses == first.cache_misses

    def test_hit_models_are_private_copies(self):
        x = SymVar("cachetest_z", INT)
        formula = App(">", (x, Const(0)))  # refutable
        first = check_validity(formula)
        assert first.verdict == Verdict.REFUTED
        first.model["cachetest_z"] = "corrupted"
        second = check_validity(formula)
        assert second.from_cache
        assert second.model["cachetest_z"] != "corrupted"

    def test_distinct_scopes_do_not_collide(self):
        from repro.smt import Scope

        x = SymVar("cachetest_w", INT)
        formula = negate(eq(x, Const(4)))
        narrow = check_validity(formula, scope=Scope(int_values=(0, 1)))
        wide = check_validity(formula, scope=Scope(int_values=(0, 4)))
        assert narrow.verdict == Verdict.REFUTED  # 4 widened in from the formula
        assert wide.verdict == Verdict.REFUTED
        assert not wide.from_cache or narrow.verdict == wide.verdict

    def test_use_cache_false_bypasses(self):
        x = SymVar("cachetest_v", INT)
        formula = App("<", (x, Const(100)))
        check_validity(formula, use_cache=False)
        result = check_validity(formula, use_cache=False)
        assert not result.from_cache

    def test_verdicts_identical_to_reference(self):
        from repro.smt import reference

        x, y = SymVar("crx", INT), SymVar("cry", INT)
        formulas = [
            eq(x, x),
            App("<", (x, y)),
            implies(eq(x, y), eq(App("f", (x,)), App("f", (y,)))),
            disj(App("<", (x, y)), negate(App("<", (x, y)))),
        ]
        for formula in formulas:
            new = check_validity(formula)
            ref = reference.check_validity_reference(formula)
            assert new.verdict == ref.verdict, str(formula)
        # The difference-logic fast path (PR 5) soundly *strengthens*
        # the seed: an order tautology the seed could only bound out is
        # now PROVED outright.  Acceptance still agrees.
        strengthened = implies(
            conj(App("<", (x, y)), App("<", (y, x))), Const(False)
        )
        new = check_validity(strengthened)
        ref = reference.check_validity_reference(strengthened)
        assert new.verdict == Verdict.PROVED
        assert ref.verdict == Verdict.BOUNDED
        assert new.is_valid() == ref.is_valid()
