"""Unit tests for fractional permission heaps (App. B.1 Eq. (5)/(6))."""

from fractions import Fraction

import pytest

from repro.heap.permheap import FULL, HeapAdditionUndefined, PermissionHeap

HALF = Fraction(1, 2)


class TestConstruction:
    def test_empty(self):
        assert len(PermissionHeap.empty()) == 0

    def test_singleton(self):
        h = PermissionHeap.singleton(3, "v")
        assert h.permission(3) == FULL
        assert h.value(3) == "v"

    def test_rejects_zero_permission(self):
        with pytest.raises(ValueError):
            PermissionHeap({1: (Fraction(0), 5)})

    def test_rejects_over_full_permission(self):
        with pytest.raises(ValueError):
            PermissionHeap({1: (Fraction(3, 2), 5)})

    def test_permission_of_absent_location_is_zero(self):
        assert PermissionHeap.empty().permission(7) == 0


class TestAddition:
    def test_disjoint_union(self):
        h = PermissionHeap.singleton(1, "a") + PermissionHeap.singleton(2, "b")
        assert h.domain() == frozenset({1, 2})

    def test_fractions_add(self):
        half = PermissionHeap.singleton(1, "v", HALF)
        assert (half + half).permission(1) == FULL

    def test_conflicting_values_undefined(self):
        a = PermissionHeap.singleton(1, "x", HALF)
        b = PermissionHeap.singleton(1, "y", HALF)
        with pytest.raises(HeapAdditionUndefined):
            a + b

    def test_permission_overflow_undefined(self):
        a = PermissionHeap.singleton(1, "v", FULL)
        b = PermissionHeap.singleton(1, "v", HALF)
        with pytest.raises(HeapAdditionUndefined):
            a + b

    def test_compatible(self):
        half = PermissionHeap.singleton(1, "v", HALF)
        assert half.compatible(half)
        assert not PermissionHeap.singleton(1, "v").compatible(half)

    def test_addition_commutative(self):
        a = PermissionHeap.singleton(1, "v", HALF)
        b = PermissionHeap.singleton(2, "w", FULL)
        assert a + b == b + a


class TestMutators:
    def test_update_requires_full_permission(self):
        half = PermissionHeap.singleton(1, "v", HALF)
        with pytest.raises(PermissionError):
            half.update(1, "w")

    def test_update_with_full_permission(self):
        h = PermissionHeap.singleton(1, "v").update(1, "w")
        assert h.value(1) == "w"

    def test_allocate_fresh(self):
        h = PermissionHeap.empty().allocate(5, "v")
        assert h.value(5) == "v"
        assert h.permission(5) == FULL

    def test_allocate_existing_raises(self):
        h = PermissionHeap.singleton(1, "v")
        with pytest.raises(ValueError):
            h.allocate(1, "w")

    def test_remove(self):
        h = PermissionHeap.singleton(1, "v").remove(1)
        assert 1 not in h


class TestNormalization:
    def test_normalize_strips_permissions(self):
        h = PermissionHeap({1: (HALF, "a"), 2: (FULL, "b")})
        assert h.normalize() == {1: "a", 2: "b"}

    def test_has_full_permissions(self):
        assert PermissionHeap.singleton(1, "v").has_full_permissions()
        assert not PermissionHeap.singleton(1, "v", HALF).has_full_permissions()

    def test_empty_heap_has_full_permissions_vacuously(self):
        assert PermissionHeap.empty().has_full_permissions()
