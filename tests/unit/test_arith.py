"""Unit tests for the difference-logic theory layer (smt/arith.py):
atom normalization, the incremental propagator, stack composition, and
the model-level joint consistency check."""

from repro.smt.arith import (
    ZERO,
    DifferenceLogicPropagator,
    PropagatorStack,
    is_difference_atom,
    is_order_atom,
    mixed_consistent,
    negated_constraint,
    normalize_equality_atom,
    normalize_order_atom,
)
from repro.smt.cnf import AtomTable
from repro.smt.sorts import BOOL, INT
from repro.smt.terms import App, Const, SymVar, eq

x = SymVar("x", INT)
y = SymVar("y", INT)
z = SymVar("z", INT)
b = SymVar("b", BOOL)


def le(left, right):
    return App("<=", (left, right))


def lt(left, right):
    return App("<", (left, right))


def plus(term, constant):
    return App("+", (term, Const(constant)))


class TestNormalization:
    def test_nonstrict_between_variables(self):
        assert normalize_order_atom(le(x, y)) == (x, y, 0)

    def test_strict_shifts_by_one(self):
        assert normalize_order_atom(lt(x, y)) == (x, y, -1)

    def test_greater_swaps_sides(self):
        assert normalize_order_atom(App(">", (x, y))) == (y, x, -1)
        assert normalize_order_atom(App(">=", (x, y))) == (y, x, 0)

    def test_offsets_move_into_the_bound(self):
        assert normalize_order_atom(le(plus(x, 2), y)) == (x, y, -2)
        assert normalize_order_atom(le(x, plus(y, 2))) == (x, y, 2)
        assert normalize_order_atom(App(">=", (x, plus(y, 2)))) == (y, x, -2)

    def test_subtraction_and_negation(self):
        assert normalize_order_atom(le(App("-", (x, y)), Const(3))) == (x, y, 3)
        # -y <= x has coefficients {y: -1, x: -1}: outside the fragment.
        assert normalize_order_atom(le(App("neg", (y,)), x)) is None
        # -y <= -x is x - y <= 0: back inside.
        assert normalize_order_atom(
            le(App("neg", (y,)), App("neg", (x,)))
        ) == (x, y, 0)

    def test_one_sided_bounds_use_the_zero_node(self):
        assert normalize_order_atom(le(x, Const(3))) == (x, ZERO, 3)
        assert normalize_order_atom(le(Const(3), x)) == (ZERO, x, -3)

    def test_constant_only_atoms_normalize(self):
        assert normalize_order_atom(lt(Const(1), Const(2))) == (ZERO, ZERO, 0)

    def test_out_of_fragment(self):
        assert normalize_order_atom(le(App("*", (Const(2), x)), y)) is None
        assert normalize_order_atom(le(App("+", (x, y)), z)) is None
        assert normalize_order_atom(le(b, y)) is None
        assert normalize_order_atom(le(App("g", (x,)), y)) is None
        assert not is_difference_atom(le(App("g", (x,)), y))
        assert is_difference_atom(le(x, y))
        assert is_order_atom(le(App("g", (x,)), y))  # order, but not DL

    def test_negated_constraint_is_integer_complement(self):
        constraint = normalize_order_atom(le(x, y))
        assert negated_constraint(constraint) == (y, x, -1)
        assert negated_constraint(negated_constraint(constraint)) == constraint

    def test_equality_pair(self):
        assert normalize_equality_atom(eq(x, y)) == ((x, y, 0), (y, x, 0))
        assert normalize_equality_atom(eq(x, plus(y, 1))) == ((x, y, 1), (y, x, -1))
        assert normalize_equality_atom(eq(App("g", (x,)), y)) is None


def _propagator(*atoms):
    table = AtomTable()
    variables = [table.atom(atom) for atom in atoms]
    return DifferenceLogicPropagator(table), variables


def _lit_assign(values):
    """Literal-indexed assignment array from var-indexed values: the
    flat-arena solver hands propagators ``assign[2v]``/``assign[2v+1]``
    slots, with both polarities filled on assignment."""
    assign = [0] * (2 * len(values))
    for var, value in enumerate(values):
        if var and value:
            assign[var << 1] = value
            assign[(var << 1) | 1] = -value
    return assign


def _run(propagator, literals, nvars):
    propagator.reset()
    values = [0] * (nvars + 1)
    for literal in literals:
        propagator.assert_literal(literal)
        values[abs(literal)] = 1 if literal > 0 else -1
    return propagator.check(_lit_assign(values))


class TestDifferenceLogicPropagator:
    def test_negative_cycle_is_a_conflict_with_cycle_explanation(self):
        propagator, (a, b_, c) = _propagator(lt(x, y), lt(y, z), lt(z, x))
        status, clause = _run(propagator, [a, b_, c], 3)
        assert status == "conflict"
        assert sorted(clause) == sorted([-a, -b_, -c])

    def test_irrelevant_literals_stay_out_of_the_explanation(self):
        w = SymVar("w", INT)
        propagator, (a, b_, c, d) = _propagator(
            lt(x, y), lt(y, x), le(z, w), le(w, z)
        )
        status, clause = _run(propagator, [c, d, a, b_], 4)
        assert status == "conflict"
        assert sorted(clause) == sorted([-a, -b_])

    def test_entailed_atom_is_propagated_with_path_premises(self):
        propagator, (a, b_, c) = _propagator(le(x, y), le(y, z), le(x, z))
        status, implied = _run(propagator, [a, b_], 3)
        assert status == "ok"
        literals = dict(implied)
        assert c in literals
        assert sorted(literals[c]) == sorted([a, b_])

    def test_refuted_atom_is_propagated_false(self):
        propagator, (a, b_, c) = _propagator(lt(x, y), lt(y, z), le(z, x))
        status, implied = _run(propagator, [a, b_], 3)
        assert status == "ok"
        literals = dict(implied)
        assert -c in literals  # z <= x would close a negative cycle

    def test_premise_free_tautology_propagates(self):
        propagator, (a,) = _propagator(le(x, plus(x, 3)))
        status, implied = _run(propagator, [], 1)
        assert status == "ok"
        assert (a, []) in implied

    def test_equality_atom_feeds_edges_and_propagates_back(self):
        propagator, (a, b_, c) = _propagator(eq(x, y), le(x, y), le(y, x))
        # Asserting both inequalities pins x = y: the equality atom is
        # propagated true with both paths as premises.
        status, implied = _run(propagator, [b_, c], 3)
        assert status == "ok"
        literals = dict(implied)
        assert a in literals
        assert sorted(_dedupe(literals[a])) == sorted([b_, c])
        # Conversely an asserted equality entails both inequalities.
        status, implied = _run(propagator, [a], 3)
        literals = dict(implied)
        assert b_ in literals and c in literals

    def test_backjump_restores_consistency(self):
        propagator, (a, b_) = _propagator(lt(x, y), lt(y, x))
        propagator.reset()
        propagator.assert_literal(a)
        propagator.assert_literal(b_)
        status, _ = propagator.check(_lit_assign([0, 1, 1]))
        assert status == "conflict"
        propagator.backjump(1)  # drop the second literal
        status, _ = propagator.check(_lit_assign([0, 1, 0]))
        assert status == "ok"


def _dedupe(literals):
    seen = []
    for literal in literals:
        if literal not in seen:
            seen.append(literal)
    return seen


class TestPropagatorStack:
    def test_stack_forwards_and_concatenates(self):
        from repro.smt.euf import EqualityPropagator

        table = AtomTable()
        a = table.atom(eq(x, y))
        b_ = table.atom(le(x, y))
        c = table.atom(le(y, x))
        stack = PropagatorStack(
            EqualityPropagator(table), DifferenceLogicPropagator(table)
        )
        assert set(stack.atom_vars()) == {a, b_, c}
        stack.reset()
        values = [0] * 4
        stack.assert_literal(a)
        values[a] = 1
        status, implied = stack.check(_lit_assign(values))
        assert status == "ok"
        # The difference-logic element derives both inequalities from
        # the asserted equality.
        literals = {lit for lit, _prem in implied}
        assert {b_, c} <= literals
        assert stack.propagations >= 2

    def test_stack_reports_first_conflict(self):
        from repro.smt.euf import EqualityPropagator

        table = AtomTable()
        a = table.atom(eq(x, y))
        b_ = table.atom(lt(x, y))
        stack = PropagatorStack(
            EqualityPropagator(table), DifferenceLogicPropagator(table)
        )
        stack.reset()
        values = [0] * 3
        for literal in (a, b_):
            stack.assert_literal(literal)
            values[literal] = 1
        status, clause = stack.check(_lit_assign(values))
        assert status == "conflict"
        assert set(map(abs, clause)) <= {a, b_}


class TestMixedConsistent:
    def test_pure_orders(self):
        assert mixed_consistent([], [], [(lt(x, y), True), (lt(y, z), True)])
        assert not mixed_consistent(
            [], [], [(lt(x, y), True), (lt(y, z), True), (lt(z, x), True)]
        )

    def test_negated_orders(self):
        # ¬(x < y) ∧ ¬(y < x) pins x = y; consistent on its own…
        orders = [(lt(x, y), False), (lt(y, x), False)]
        assert mixed_consistent([], [], orders)
        # …but not alongside x ≠ y.
        assert not mixed_consistent([], [(x, y)], orders)

    def test_equality_feeds_the_graph(self):
        assert not mixed_consistent(
            [(x, y)], [], [(lt(y, z), True), (lt(z, x), True)]
        )

    def test_congruence_uses_forced_equalities(self):
        fx, fy = App("f", (x,)), App("f", (y,))
        orders = [(le(x, y), True), (le(y, x), True)]
        assert not mixed_consistent([], [(fx, fy)], orders)

    def test_constant_pinning_merges_with_const(self):
        orders = [(le(x, Const(3)), True), (le(Const(3), x), True)]
        assert not mixed_consistent([], [(x, Const(3))], orders)
        assert mixed_consistent([], [(x, Const(4))], orders)

    def test_offset_disequality(self):
        orders = [(lt(x, y), True), (lt(y, plus(x, 2)), True)]
        assert not mixed_consistent([], [(y, plus(x, 1))], orders)
