"""Unit tests for the pure value library (repro.lang.values)."""

import pytest

from repro.heap.multiset import Multiset
from repro.lang.values import (
    EMPTY_MAP,
    PMap,
    PURE_FUNCTIONS,
    interval_set,
    map_add_to_value,
    map_put_if_greater,
    pair,
    seq_get,
    seq_mean_times_len,
    seq_sorted,
    seq_to_multiset,
)


class TestPMap:
    def test_put_get(self):
        assert PMap().put("k", 1).get("k") == 1

    def test_get_default(self):
        assert PMap().get("missing") == 0
        assert PMap().get("missing", None) is None

    def test_put_is_functional(self):
        base = PMap()
        base.put("k", 1)
        assert "k" not in base

    def test_overwrite(self):
        assert PMap().put("k", 1).put("k", 2).get("k") == 2

    def test_remove(self):
        m = PMap({"a": 1, "b": 2}).remove("a")
        assert "a" not in m
        assert m.get("b") == 2

    def test_remove_missing_is_noop(self):
        assert PMap({"a": 1}).remove("zz") == PMap({"a": 1})

    def test_keys(self):
        assert PMap({"a": 1, "b": 2}).keys() == frozenset({"a", "b"})

    def test_equality_order_independent(self):
        assert PMap({"a": 1, "b": 2}) == PMap({"b": 2, "a": 1})

    def test_hashable(self):
        assert hash(PMap({"a": 1})) == hash(PMap({"a": 1}))

    def test_len(self):
        assert len(PMap({"a": 1, "b": 2})) == 2

    def test_empty_map_constant(self):
        assert len(EMPTY_MAP) == 0


class TestSequenceOps:
    def test_seq_get_in_range(self):
        assert seq_get((10, 20), 1) == 20

    def test_seq_get_total_out_of_range(self):
        assert seq_get((10,), 5) == 0
        assert seq_get((10,), -1) == 0

    def test_sorted(self):
        assert seq_sorted((3, 1, 2)) == (1, 2, 3)

    def test_to_multiset(self):
        assert seq_to_multiset((1, 1, 2)) == Multiset([1, 1, 2])

    def test_mean_times_len(self):
        assert seq_mean_times_len((2, 4, 6)) == (12, 3)

    def test_pair_projections(self):
        p = pair("a", 1)
        assert PURE_FUNCTIONS["fst"](p) == "a"
        assert PURE_FUNCTIONS["snd"](p) == 1


class TestMapOps:
    def test_add_to_value_defaults_zero(self):
        assert map_add_to_value(PMap(), "k", 5).get("k") == 5

    def test_add_to_value_accumulates(self):
        m = map_add_to_value(map_add_to_value(PMap(), "k", 2), "k", 3)
        assert m.get("k") == 5

    def test_put_if_greater_inserts_fresh(self):
        assert map_put_if_greater(PMap(), "k", 10).get("k") == 10

    def test_put_if_greater_keeps_max(self):
        m = map_put_if_greater(PMap({"k": 20}), "k", 10)
        assert m.get("k") == 20
        m = map_put_if_greater(m, "k", 30)
        assert m.get("k") == 30

    def test_put_if_greater_is_commutative(self):
        a = map_put_if_greater(map_put_if_greater(PMap(), "k", 10), "k", 20)
        b = map_put_if_greater(map_put_if_greater(PMap(), "k", 20), "k", 10)
        assert a == b


class TestSets:
    def test_interval_set(self):
        assert interval_set(1, 4) == frozenset({1, 2, 3})
        assert interval_set(3, 3) == frozenset()


class TestRegistry:
    @pytest.mark.parametrize(
        "name",
        ["pair", "fst", "snd", "append", "len", "sort", "put", "get", "keys", "setAdd",
         "addToValue", "putIfGreater", "toSet", "toMultiset", "min", "max"],
    )
    def test_core_functions_registered(self, name):
        assert name in PURE_FUNCTIONS

    def test_queue_functions_registered_after_library_import(self):
        import repro.spec.library  # noqa: F401 — registers queue ops

        for name in ("qProduce", "qConsume", "qSize", "qHead", "emptyQueue", "producedSeq"):
            assert name in PURE_FUNCTIONS

    def test_registry_functions_are_callable(self):
        assert PURE_FUNCTIONS["append"]((1,), 2) == (1, 2)
        assert PURE_FUNCTIONS["max"](3, 5) == 5
