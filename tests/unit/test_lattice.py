"""Tests for finite security lattices and channel-labelled observation."""

import pytest

from repro.security.lattice import (
    Lattice,
    LatticeError,
    diamond,
    linear,
    powerset,
    two_point,
)
from repro.security.noninterference import channel_observer, observation


class TestLatticeConstruction:
    def test_two_point(self):
        lattice = two_point()
        assert lattice.leq("low", "high")
        assert not lattice.leq("high", "low")
        assert lattice.bottom == "low"
        assert lattice.top == "high"

    def test_linear(self):
        lattice = linear(["public", "internal", "secret"])
        assert lattice.leq("public", "secret")
        assert lattice.leq("internal", "secret")
        assert not lattice.leq("secret", "public")
        assert lattice.join("public", "internal") == "internal"
        assert lattice.meet("internal", "secret") == "internal"

    def test_diamond(self):
        lattice = diamond()
        assert lattice.join("left", "right") == "top"
        assert lattice.meet("left", "right") == "bot"
        assert not lattice.leq("left", "right")
        assert not lattice.leq("right", "left")

    def test_powerset(self):
        lattice = powerset(["hr", "fin"])
        empty = frozenset()
        hr = frozenset({"hr"})
        fin = frozenset({"fin"})
        both = frozenset({"hr", "fin"})
        assert lattice.bottom == empty
        assert lattice.top == both
        assert lattice.join(hr, fin) == both
        assert lattice.meet(hr, fin) == empty
        assert lattice.leq(hr, both)

    def test_downset(self):
        lattice = linear(["a", "b", "c"])
        assert lattice.downset("b") == frozenset({"a", "b"})
        assert lattice.downset("a") == frozenset({"a"})

    def test_rejects_duplicate_elements(self):
        with pytest.raises(LatticeError):
            Lattice(("a", "a"), ())

    def test_rejects_unknown_cover(self):
        with pytest.raises(LatticeError):
            Lattice(("a",), (("a", "b"),))

    def test_rejects_cyclic_order(self):
        with pytest.raises(LatticeError):
            Lattice(("a", "b"), (("a", "b"), ("b", "a")))

    def test_rejects_non_lattice_poset(self):
        # Two maximal elements with two minimal elements below both: joins
        # of the minimal pair are not unique.
        with pytest.raises(LatticeError):
            Lattice(
                ("a", "b", "c", "d"),
                (("a", "c"), ("a", "d"), ("b", "c"), ("b", "d")),
            )

    def test_leq_unknown_label_raises(self):
        with pytest.raises(LatticeError):
            two_point().leq("low", "nope")

    def test_single_element_lattice(self):
        lattice = Lattice(("only",), ())
        assert lattice.top == lattice.bottom == "only"


class TestObservation:
    def test_none_observes_everything(self):
        trace = (1, ("audit", 2), 3)
        assert observation(trace, None) == trace

    def test_filters_unobservable_channels(self):
        trace = (1, ("audit", 2), ("pub", 3))
        assert observation(trace, frozenset({"out", "pub"})) == (1, ("pub", 3))

    def test_default_channel_is_out(self):
        trace = (1, 2)
        assert observation(trace, frozenset({"audit"})) == ()
        assert observation(trace, frozenset({"out"})) == (1, 2)

    def test_channel_observer_function(self):
        observe = channel_observer(frozenset({"out"}))
        assert observe((1, ("x", 2))) == (1,)


class TestChannelRuntime:
    def test_print_to_channel_tags_entries(self):
        from repro.lang import Lit, Print, run, seq_all

        program = seq_all(Print(Lit(1)), Print(Lit(2), "audit"))
        assert run(program).output == (1, ("audit", 2))

    def test_parser_accepts_channel(self):
        from repro.lang import parse_program, run

        program = parse_program('print(7, audit)\nprint(8)')
        assert run(program).output == (("audit", 7), 8)

    def test_unobservable_high_print_is_permitted(self):
        from repro.lang import parse_program
        from repro.verifier import ProgramSpec, verify

        program = parse_program("print(h, audit)")
        spec = ProgramSpec(
            name="audit-high",
            program=program,
            resources=(),
            high_inputs=frozenset({"h"}),
            low_channels=frozenset({"out"}),
        )
        assert verify(spec).verified

    def test_observable_high_print_is_rejected(self):
        from repro.lang import parse_program
        from repro.verifier import ProgramSpec, verify

        program = parse_program("print(h, audit)")
        spec = ProgramSpec(
            name="audit-high-observable",
            program=program,
            resources=(),
            high_inputs=frozenset({"h"}),
            low_channels=frozenset({"out", "audit"}),
        )
        assert not verify(spec).verified
