"""Tests for the timing-sensitive baseline checker (repro.verifier.baseline)."""

import pytest

from repro.casestudies import case_by_name
from repro.lang import parse_program
from repro.verifier import ProgramSpec
from repro.verifier.baseline import baseline_check


def _spec(source, low=(), high=()):
    return ProgramSpec(
        name="test",
        program=parse_program(source),
        resources=(),
        low_inputs=frozenset(low),
        high_inputs=frozenset(high),
    )


class TestBaselineDiscipline:
    def test_accepts_low_branching(self):
        report = baseline_check(_spec("if (l > 0) { x := 1 } else { x := 2 }\nprint(x)", low=["l"]))
        assert report.accepted

    def test_rejects_high_branch(self):
        report = baseline_check(_spec("if (h > 0) { x := 1 } else { x := 2 }", high=["h"]))
        assert not report.accepted
        assert "branching on high data" in report.rejections[0]

    def test_rejects_high_loop(self):
        report = baseline_check(_spec("k := 0\nwhile (k < h) { k := k + 1 }", high=["h"]))
        assert not report.accepted
        assert "looping on high data" in report.rejections[0]

    def test_rejects_explicit_flow(self):
        report = baseline_check(_spec("x := h\nprint(x)", high=["h"]))
        assert not report.accepted
        assert "printed value is high" in report.rejections[0]

    def test_rejects_blocking_guard(self):
        source = "q := alloc(0)\natomic when (deref(q) > 0) { x := [q] }"
        report = baseline_check(_spec(source))
        assert not report.accepted
        assert "blocking" in report.rejections[0]

    def test_accepts_low_shared_writes(self):
        # Low data through a shared cell with low-only writes: fine even
        # without commutativity (SecCSL-style lock invariant).
        source = """
        c := alloc(0)
        { atomic { [c] := a } } || { atomic { [c] := a } }
        r := [c]
        print(r)
        """
        report = baseline_check(_spec(source, low=["a"]))
        assert report.accepted

    def test_high_store_taints_cell_forever(self):
        # Writing high data once makes the cell high for the whole run —
        # the baseline has no commutativity/abstraction reclamation.
        source = """
        c := alloc(0)
        atomic { [c] := h }
        atomic { [c] := a }
        r := [c]
        print(r)
        """
        report = baseline_check(_spec(source, low=["a"], high=["h"]))
        assert not report.accepted

    def test_taint_through_pure_functions(self):
        report = baseline_check(_spec("x := pair(h, 1)\nprint(fst(x))", high=["h"]))
        assert not report.accepted

    def test_low_loop_reaches_fixpoint(self):
        source = "i := 0\nwhile (i < n) { i := i + 1 }\nprint(i)"
        report = baseline_check(_spec(source, low=["n"]))
        assert report.accepted


class TestBaselineOnCaseStudies:
    @pytest.mark.parametrize(
        "name", ["Figure 2", "Figure 1", "Email-Metadata", "Salary-Histogram"]
    )
    def test_rejects_secret_timing_examples(self, name):
        case = case_by_name(name)
        report = baseline_check(case.program_spec())
        assert not report.accepted
        assert any("high data" in reason for reason in report.rejections)

    @pytest.mark.parametrize(
        "name", ["Website-Visitor-IPs", "Sales-By-Region", "Most-Valuable-Purchase"]
    )
    def test_accepts_timing_free_identity_examples(self, name):
        case = case_by_name(name)
        report = baseline_check(case.program_spec())
        assert report.accepted, report.summary()

    @pytest.mark.parametrize("name", ["Mean-Salary", "Figure 3"])
    def test_rejects_abstraction_dependent_examples(self, name):
        # These are secure only because an abstraction of the high-tainted
        # structure is printed — a mechanism the baseline lacks.
        case = case_by_name(name)
        report = baseline_check(case.program_spec())
        assert not report.accepted
        assert any("printed value is high" in reason for reason in report.rejections)

    def test_commcsl_strictly_more_permissive_on_table1(self):
        from repro.casestudies import TABLE1_CASES

        commcsl = sum(case.verify().verified for case in TABLE1_CASES)
        baseline = sum(
            baseline_check(case.program_spec()).accepted for case in TABLE1_CASES
        )
        assert commcsl == 18
        assert baseline < commcsl
