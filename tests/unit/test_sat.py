"""Tests for the SAT/EUF layer of the SMT substrate (cnf, dpll, euf)."""

import pytest

from repro.smt.cnf import cnf_of, is_atom, to_nnf, tseitin
from repro.smt.dpll import dpll, dpllt_equality, euf_valid, propositionally_valid, sat
from repro.smt.euf import CongruenceClosure, congruence_closure_consistent
from repro.smt.solver import Verdict, check_validity
from repro.smt.sorts import BOOL, INT
from repro.smt.terms import App, Const, SymVar, conj, disj, eq, implies, negate

a = SymVar("a", BOOL)
b = SymVar("b", BOOL)
c = SymVar("c", BOOL)
x = SymVar("x", INT)
y = SymVar("y", INT)
z = SymVar("z", INT)


def f(term):
    return App("f", (term,))


class TestNNF:
    def test_pushes_negation_over_and(self):
        nnf = to_nnf(negate(conj(a, b)))
        assert nnf == App("or", (negate(a), negate(b)))

    def test_double_negation(self):
        assert to_nnf(negate(negate(a))) == a

    def test_implication_unfolds(self):
        nnf = to_nnf(implies(a, b))
        assert nnf == App("or", (negate(a), b))

    def test_negated_implication(self):
        nnf = to_nnf(negate(implies(a, b)))
        assert nnf == App("and", (a, negate(b)))

    def test_constants(self):
        assert to_nnf(Const(True), negated=True) == Const(False)

    def test_atoms_kept_opaque(self):
        comparison = App("<", (x, y))
        assert is_atom(comparison)
        assert to_nnf(negate(comparison)) == negate(comparison)


class TestDPLL:
    def test_sat_simple(self):
        model = sat(conj(a, negate(b)))
        assert model is not None

    def test_unsat_contradiction(self):
        assert sat(conj(a, negate(a))) is None

    def test_tautology_is_propositionally_valid(self):
        assert propositionally_valid(disj(a, negate(a)))

    def test_modus_ponens_valid(self):
        formula = implies(conj(implies(a, b), a), b)
        assert propositionally_valid(formula)

    def test_contingent_formula_not_valid(self):
        assert not propositionally_valid(a)
        assert not propositionally_valid(implies(a, b))

    def test_pigeonhole_2_into_1_unsat(self):
        # p_ij: pigeon i in hole j (2 pigeons, 1 hole) — both in the hole
        # but not together: unsat.
        p1 = SymVar("p1", BOOL)
        p2 = SymVar("p2", BOOL)
        formula = conj(p1, p2, disj(negate(p1), negate(p2)))
        assert sat(formula) is None

    def test_dpll_model_satisfies_clauses(self):
        clauses, _ = cnf_of(conj(disj(a, b), disj(negate(a), c), disj(negate(b), negate(c))))
        model = dpll(clauses)
        assert model is not None
        for clause in clauses:
            assert any((lit > 0) == model.get(abs(lit), False) for lit in clause)

    def test_tseitin_root_asserted(self):
        clauses, table, root = tseitin(a)
        assert table.count >= 1
        assert isinstance(root, int)


class TestCongruenceClosure:
    def test_transitivity(self):
        cc = CongruenceClosure()
        cc.merge(x, y)
        cc.merge(y, z)
        assert cc.same(x, z)

    def test_congruence_propagates_through_functions(self):
        cc = CongruenceClosure()
        cc.merge(x, y)
        assert cc.same(f(x), f(y))
        assert cc.same(f(f(x)), f(f(y)))

    def test_no_spurious_equalities(self):
        cc = CongruenceClosure()
        cc.merge(x, y)
        assert not cc.same(f(x), f(z))

    def test_nested_congruence(self):
        g_xy = App("g", (x, y))
        g_yx = App("g", (y, x))
        cc = CongruenceClosure()
        cc.merge(x, y)
        assert cc.same(g_xy, g_yx)

    def test_consistency_with_disequalities(self):
        assert congruence_closure_consistent([(x, y)], [(x, z)])
        assert not congruence_closure_consistent([(x, y), (y, z)], [(x, z)])

    def test_distinct_constants_inconsistent(self):
        assert not congruence_closure_consistent([(Const(1), Const(2))], [])
        assert congruence_closure_consistent([(Const(1), Const(1))], [])

    def test_self_disequality_inconsistent(self):
        assert not congruence_closure_consistent([], [(x, x)])

    def test_classic_euf_example(self):
        # f(f(f(a))) = a ∧ f(f(f(f(f(a))))) = a ⟹ f(a) = a
        fa = f(x)
        f3 = f(f(f(x)))
        f5 = f(f(f(f(f(x)))))
        assert not congruence_closure_consistent([(f3, x), (f5, x)], [(fa, x)])


class TestDPLLT:
    def test_equality_chain_unsat(self):
        formula = conj(eq(x, y), eq(y, z), negate(eq(x, z)))
        result = dpllt_equality(formula)
        assert result is not None
        assert not result.satisfiable

    def test_equality_sat(self):
        formula = conj(eq(x, y), negate(eq(y, z)))
        result = dpllt_equality(formula)
        assert result is not None
        assert result.satisfiable

    def test_boolean_structure_with_theory_conflict(self):
        # (x=y ∨ x=z) ∧ x≠y ∧ x≠z is unsat; needs model blocking.
        formula = conj(disj(eq(x, y), eq(x, z)), negate(eq(x, y)), negate(eq(x, z)))
        result = dpllt_equality(formula)
        assert result is not None
        assert not result.satisfiable

    def test_congruence_in_dpllt(self):
        formula = conj(eq(x, y), negate(eq(f(x), f(y))))
        result = dpllt_equality(formula)
        assert result is not None
        assert not result.satisfiable

    def test_outside_fragment_returns_none(self):
        # A comparison over an uninterpreted application is outside both
        # the equality and difference fragments: the caller falls back.
        formula = App("<", (f(x), y))
        assert dpllt_equality(formula) is None

    def test_difference_logic_atoms_are_decided(self):
        # Since PR 5 an integer comparison is *inside* the fragment: the
        # difference-logic propagator decides it instead of bailing out.
        formula = App("<", (x, y))
        result = dpllt_equality(formula)
        assert result is not None
        assert result.satisfiable
        # Mixed-fragment models expose their order-atom assignment the
        # same way equalities/disequalities are exposed.
        assert (App("<", (x, y)), True) in result.orders
        cycle = conj(App("<", (x, y)), App("<", (y, z)), App("<", (z, x)))
        result = dpllt_equality(cycle)
        assert result is not None
        assert not result.satisfiable
        assert result.models_blocked == 0

    def test_difference_logic_validity(self):
        chain = implies(
            conj(App("<=", (x, y)), App("<=", (y, z))), App("<=", (x, z))
        )
        assert euf_valid(chain) is True
        # Gating the order fragment off restores the old fallback.
        assert euf_valid(chain, allow_orders=False) is None

    def test_mixed_equality_order_validity(self):
        formula = implies(conj(eq(x, y), App("<=", (y, z))), App("<=", (x, z)))
        assert euf_valid(formula) is True
        assert euf_valid(implies(eq(x, y), App("<=", (x, z)))) is False

    def test_offset_equalities_reach_the_difference_propagator(self):
        # x == y+1 ∧ y == x+1 is EUF-consistent but ℤ-inconsistent: the
        # offset equalities alone must route into the mixed loop.
        swap = conj(
            eq(x, App("+", (y, Const(1)))), eq(y, App("+", (x, Const(1))))
        )
        result = dpllt_equality(swap)
        assert result is not None
        assert not result.satisfiable

    def test_bounded_range_disequalities_split(self):
        # 0 <= v <= 1 ∧ v ≠ 0 ∧ v ≠ 1: neither theory alone refutes it;
        # the model-level disequality split must.
        formula = conj(
            App("<=", (Const(0), x)),
            App("<=", (x, Const(1))),
            negate(eq(x, Const(0))),
            negate(eq(x, Const(1))),
        )
        result = dpllt_equality(formula)
        assert result is not None
        assert not result.satisfiable

    def test_euf_validity(self):
        # x=y ⟹ f(x)=f(y) is EUF-valid.
        assert euf_valid(implies(eq(x, y), eq(f(x), f(y)))) is True
        # x=y is not valid.
        assert euf_valid(eq(x, y)) is False


class TestSolverIntegration:
    def test_propositional_tautology_is_proved_not_bounded(self):
        formula = disj(App("<", (x, y)), negate(App("<", (x, y))))
        result = check_validity(formula)
        assert result.verdict == Verdict.PROVED

    def test_euf_validity_is_proved(self):
        formula = implies(eq(x, y), eq(f(x), f(y)))
        result = check_validity(formula)
        assert result.verdict == Verdict.PROVED

    def test_sat_pre_pass_can_be_disabled(self):
        formula = disj(App("<", (x, y)), negate(App("<", (x, y))))
        result = check_validity(formula, use_sat=False)
        # Without the SAT path the enumerator still accepts, but only boundedly.
        assert result.is_valid()

    def test_refutation_still_concrete(self):
        formula = App("<", (x, y))
        result = check_validity(formula)
        assert result.verdict == Verdict.REFUTED
        assert result.model is not None

    def test_finite_integer_sort_override_keeps_order_reasoning(self):
        # Conformance VCs override CELL with a finite *integer* domain
        # (vcgen._FiniteSort); ℤ-validity subsumes validity over the
        # subset, so the difference-logic fast path must stay live.
        from repro.verifier.vcgen import _FiniteSort

        chain = implies(
            conj(App("<=", (x, y)), App("<=", (y, z))), App("<=", (x, z))
        )
        result = check_validity(
            chain, sorts={"x": _FiniteSort((0, 1, 2))}, use_cache=False
        )
        assert result.verdict == Verdict.PROVED

    def test_non_integer_override_gates_only_affected_queries(self):
        from repro.smt.sorts import INT as INT_SORT
        from repro.smt.sorts import SeqSort

        chain = implies(
            conj(App("<=", (x, y)), App("<=", (y, z))), App("<=", (x, z))
        )
        # The overridden variables occur in the order atoms: the order
        # fragment is disabled and the enumerator (tuple comparisons)
        # answers — acceptance, but only boundedly.
        sequences = SeqSort(INT_SORT)
        gated = check_validity(
            chain,
            sorts={"x": sequences, "y": sequences, "z": sequences},
            use_cache=False,
        )
        assert gated.verdict == Verdict.BOUNDED
        # An override on an unrelated variable leaves the fast path on.
        live = check_validity(
            chain, sorts={"unrelated": SeqSort(INT_SORT)}, use_cache=False
        )
        assert live.verdict == Verdict.PROVED
