"""Tests for the SAT/EUF layer of the SMT substrate (cnf, dpll, euf)."""

import pytest

from repro.smt.cnf import cnf_of, is_atom, to_nnf, tseitin
from repro.smt.dpll import dpll, dpllt_equality, euf_valid, propositionally_valid, sat
from repro.smt.euf import CongruenceClosure, congruence_closure_consistent
from repro.smt.solver import Verdict, check_validity
from repro.smt.sorts import BOOL, INT
from repro.smt.terms import App, Const, SymVar, conj, disj, eq, implies, negate

a = SymVar("a", BOOL)
b = SymVar("b", BOOL)
c = SymVar("c", BOOL)
x = SymVar("x", INT)
y = SymVar("y", INT)
z = SymVar("z", INT)


def f(term):
    return App("f", (term,))


class TestNNF:
    def test_pushes_negation_over_and(self):
        nnf = to_nnf(negate(conj(a, b)))
        assert nnf == App("or", (negate(a), negate(b)))

    def test_double_negation(self):
        assert to_nnf(negate(negate(a))) == a

    def test_implication_unfolds(self):
        nnf = to_nnf(implies(a, b))
        assert nnf == App("or", (negate(a), b))

    def test_negated_implication(self):
        nnf = to_nnf(negate(implies(a, b)))
        assert nnf == App("and", (a, negate(b)))

    def test_constants(self):
        assert to_nnf(Const(True), negated=True) == Const(False)

    def test_atoms_kept_opaque(self):
        comparison = App("<", (x, y))
        assert is_atom(comparison)
        assert to_nnf(negate(comparison)) == negate(comparison)


class TestDPLL:
    def test_sat_simple(self):
        model = sat(conj(a, negate(b)))
        assert model is not None

    def test_unsat_contradiction(self):
        assert sat(conj(a, negate(a))) is None

    def test_tautology_is_propositionally_valid(self):
        assert propositionally_valid(disj(a, negate(a)))

    def test_modus_ponens_valid(self):
        formula = implies(conj(implies(a, b), a), b)
        assert propositionally_valid(formula)

    def test_contingent_formula_not_valid(self):
        assert not propositionally_valid(a)
        assert not propositionally_valid(implies(a, b))

    def test_pigeonhole_2_into_1_unsat(self):
        # p_ij: pigeon i in hole j (2 pigeons, 1 hole) — both in the hole
        # but not together: unsat.
        p1 = SymVar("p1", BOOL)
        p2 = SymVar("p2", BOOL)
        formula = conj(p1, p2, disj(negate(p1), negate(p2)))
        assert sat(formula) is None

    def test_dpll_model_satisfies_clauses(self):
        clauses, _ = cnf_of(conj(disj(a, b), disj(negate(a), c), disj(negate(b), negate(c))))
        model = dpll(clauses)
        assert model is not None
        for clause in clauses:
            assert any((lit > 0) == model.get(abs(lit), False) for lit in clause)

    def test_tseitin_root_asserted(self):
        clauses, table, root = tseitin(a)
        assert table.count >= 1
        assert isinstance(root, int)


class TestCongruenceClosure:
    def test_transitivity(self):
        cc = CongruenceClosure()
        cc.merge(x, y)
        cc.merge(y, z)
        assert cc.same(x, z)

    def test_congruence_propagates_through_functions(self):
        cc = CongruenceClosure()
        cc.merge(x, y)
        assert cc.same(f(x), f(y))
        assert cc.same(f(f(x)), f(f(y)))

    def test_no_spurious_equalities(self):
        cc = CongruenceClosure()
        cc.merge(x, y)
        assert not cc.same(f(x), f(z))

    def test_nested_congruence(self):
        g_xy = App("g", (x, y))
        g_yx = App("g", (y, x))
        cc = CongruenceClosure()
        cc.merge(x, y)
        assert cc.same(g_xy, g_yx)

    def test_consistency_with_disequalities(self):
        assert congruence_closure_consistent([(x, y)], [(x, z)])
        assert not congruence_closure_consistent([(x, y), (y, z)], [(x, z)])

    def test_distinct_constants_inconsistent(self):
        assert not congruence_closure_consistent([(Const(1), Const(2))], [])
        assert congruence_closure_consistent([(Const(1), Const(1))], [])

    def test_self_disequality_inconsistent(self):
        assert not congruence_closure_consistent([], [(x, x)])

    def test_classic_euf_example(self):
        # f(f(f(a))) = a ∧ f(f(f(f(f(a))))) = a ⟹ f(a) = a
        fa = f(x)
        f3 = f(f(f(x)))
        f5 = f(f(f(f(f(x)))))
        assert not congruence_closure_consistent([(f3, x), (f5, x)], [(fa, x)])


class TestDPLLT:
    def test_equality_chain_unsat(self):
        formula = conj(eq(x, y), eq(y, z), negate(eq(x, z)))
        result = dpllt_equality(formula)
        assert result is not None
        assert not result.satisfiable

    def test_equality_sat(self):
        formula = conj(eq(x, y), negate(eq(y, z)))
        result = dpllt_equality(formula)
        assert result is not None
        assert result.satisfiable

    def test_boolean_structure_with_theory_conflict(self):
        # (x=y ∨ x=z) ∧ x≠y ∧ x≠z is unsat; needs model blocking.
        formula = conj(disj(eq(x, y), eq(x, z)), negate(eq(x, y)), negate(eq(x, z)))
        result = dpllt_equality(formula)
        assert result is not None
        assert not result.satisfiable

    def test_congruence_in_dpllt(self):
        formula = conj(eq(x, y), negate(eq(f(x), f(y))))
        result = dpllt_equality(formula)
        assert result is not None
        assert not result.satisfiable

    def test_outside_fragment_returns_none(self):
        formula = App("<", (x, y))
        assert dpllt_equality(formula) is None

    def test_euf_validity(self):
        # x=y ⟹ f(x)=f(y) is EUF-valid.
        assert euf_valid(implies(eq(x, y), eq(f(x), f(y)))) is True
        # x=y is not valid.
        assert euf_valid(eq(x, y)) is False


class TestSolverIntegration:
    def test_propositional_tautology_is_proved_not_bounded(self):
        formula = disj(App("<", (x, y)), negate(App("<", (x, y))))
        result = check_validity(formula)
        assert result.verdict == Verdict.PROVED

    def test_euf_validity_is_proved(self):
        formula = implies(eq(x, y), eq(f(x), f(y)))
        result = check_validity(formula)
        assert result.verdict == Verdict.PROVED

    def test_sat_pre_pass_can_be_disabled(self):
        formula = disj(App("<", (x, y)), negate(App("<", (x, y))))
        result = check_validity(formula, use_sat=False)
        # Without the SAT path the enumerator still accepts, but only boundedly.
        assert result.is_valid()

    def test_refutation_still_concrete(self):
        formula = App("<", (x, y))
        result = check_validity(formula)
        assert result.verdict == Verdict.REFUTED
        assert result.model is not None
