"""Unit tests for resource specifications, validity, and consistency."""

import pytest

from repro.heap.multiset import Multiset
from repro.lang.values import PMap
from repro.spec import (
    Action,
    ResourceSpecification,
    check_condition_a,
    check_condition_b,
    check_validity,
    fuzz_validity,
    is_consistent,
    lemma_4_2_holds,
    merge_shared,
    reachable_values,
    abstractions_of_interleavings,
)
from repro.spec.library import (
    INVALID_SPECS,
    VALID_SPECS,
    integer_add_spec,
    map_disjoint_put_spec,
    map_put_keyset_spec,
    multi_producer_sequence_spec,
    producer_consumer_spec,
)


class TestActions:
    def test_precondition_low_projection(self):
        put = map_put_keyset_spec().shared_action
        assert put.precondition((1, 10), (1, 99))  # same key, different value
        assert not put.precondition((1, 10), (2, 10))  # different key

    def test_unary_precondition_diagonal(self):
        put1 = map_disjoint_put_spec().action("Put1")
        assert put1.unary_precondition((1, 10))
        assert not put1.unary_precondition((2, 10))  # key outside range 1

    def test_action_kinds(self):
        spec = producer_consumer_spec(1, 1)
        assert spec.action("Prod").is_unique
        assert spec.action("Cons").is_unique
        assert spec.shared_action is None


class TestResourceSpecification:
    def test_rejects_two_shared_actions(self):
        a = Action.shared("A", lambda v, x: v)
        b = Action.shared("B", lambda v, x: v)
        with pytest.raises(ValueError, match="at most one shared"):
            ResourceSpecification("Bad", lambda v: v, (a, b), 0, (0,), {"A": (0,), "B": (0,)})

    def test_rejects_duplicate_names(self):
        a = Action.shared("A", lambda v, x: v)
        b = Action.unique("A", lambda v, x: v)
        with pytest.raises(ValueError, match="duplicate"):
            ResourceSpecification("Bad", lambda v: v, (a, b), 0, (0,), {"A": (0,)})

    def test_requires_arg_domains(self):
        a = Action.shared("A", lambda v, x: v)
        with pytest.raises(ValueError, match="argument domain"):
            ResourceSpecification("Bad", lambda v: v, (a,), 0, (0,), {})

    def test_commuting_pairs_exclude_unique_self(self):
        spec = producer_consumer_spec(1, 1)
        pairs = {(a.name, b.name) for a, b in spec.commuting_pairs()}
        assert ("Prod", "Prod") not in pairs
        assert ("Prod", "Cons") in pairs
        assert ("Cons", "Prod") in pairs

    def test_commuting_pairs_include_shared_self(self):
        spec = integer_add_spec()
        pairs = {(a.name, b.name) for a, b in spec.commuting_pairs()}
        assert ("Add", "Add") in pairs

    def test_merge_shared(self):
        inc = Action.shared("Inc", lambda v, _: v + 1)
        dec = Action.shared("Dec", lambda v, _: v - 1)
        merged = merge_shared(
            "Mixed",
            abstraction=lambda v: 0,
            shared_actions=[inc, dec],
            initial_value=0,
            value_domain=(0, 1),
            arg_domains={"Inc": (0,), "Dec": (0,)},
        )
        action = merged.shared_action
        assert action.apply(5, ("Inc", 0)) == 6
        assert action.apply(5, ("Dec", 0)) == 4
        assert not action.precondition(("Inc", 0), ("Dec", 0))  # tags must match
        assert check_validity(merged).valid  # constant abstraction commutes


class TestValidity:
    @pytest.mark.parametrize("name", sorted(VALID_SPECS))
    def test_catalogue_specs_valid(self, name):
        report = check_validity(VALID_SPECS[name]())
        assert report.valid, str(report.counterexamples[:1])

    @pytest.mark.parametrize("name", sorted(INVALID_SPECS))
    def test_invalid_controls_rejected(self, name):
        report = check_validity(INVALID_SPECS[name]())
        assert not report.valid
        assert report.counterexamples

    def test_counterexamples_are_genuine(self):
        """Every reported counterexample must re-verify by direct evaluation."""
        for name in INVALID_SPECS:
            spec = INVALID_SPECS[name]()
            report = check_validity(spec, stop_at_first=False)
            for ce in report.counterexamples:
                alpha = spec.abstraction
                if ce.condition == "A":
                    action = spec.action(ce.action)
                    v1, v2 = ce.values
                    a1, a2 = ce.args
                    assert alpha(v1) == alpha(v2)
                    assert action.precondition(a1, a2)
                    assert alpha(action.apply(v1, a1)) != alpha(action.apply(v2, a2))
                else:
                    first = spec.action(ce.action)
                    second = spec.action(ce.other_action)
                    v1, v2 = ce.values
                    a1, a2 = ce.args
                    assert alpha(v1) == alpha(v2)
                    left = alpha(second.apply(first.apply(v1, a1), a2))
                    right = alpha(first.apply(second.apply(v2, a2), a1))
                    assert left != right

    def test_condition_a_violation_detected(self):
        """An action whose precondition is too weak fails (A)."""
        leaky = Action.shared("Set", lambda v, x: x)  # no lowness requirement
        spec = ResourceSpecification(
            "LeakySet", lambda v: v, (leaky,), 0, (0, 1), {"Set": (0, 1)}
        )
        ces, _ = check_condition_a(spec)
        assert ces and ces[0].condition == "A"

    def test_condition_b_checked_from_distinct_starts(self):
        """(B) quantifies over two values with equal abstraction — an action
        sensitive to abstracted-away state must fail even though it commutes
        from any single start value."""
        # value = (visible, hidden); action adds hidden into visible.
        bad = Action.shared("Mix", lambda v, _: (v[0] + v[1], v[1]))
        spec = ResourceSpecification(
            "HiddenMix",
            abstraction=lambda v: v[0],
            actions=(bad,),
            initial_value=(0, 0),
            value_domain=((0, 0), (0, 1)),
            arg_domains={"Mix": (0,)},
        )
        report = check_validity(spec)
        assert not report.valid

    def test_fuzz_agrees_with_enumeration(self):
        import random

        spec = multi_producer_sequence_spec()
        report = fuzz_validity(
            spec,
            value_gen=lambda rng: ((), tuple(rng.choices([1, 2], k=rng.randrange(3)))),
            arg_gens={"Prod": lambda rng: rng.choice([1, 2]), "Cons": lambda rng: 0},
            iterations=500,
            seed=3,
        )
        assert not report.valid

    def test_sequence_abstraction_valid_for_unique_producer(self):
        """The 1P1C spec keeps the *sequence* abstraction because unique
        actions need not commute with themselves (Sec. 2.7)."""
        assert check_validity(producer_consumer_spec(1, 1)).valid

    def test_sequence_abstraction_invalid_for_shared_producer(self):
        assert not check_validity(multi_producer_sequence_spec()).valid


class TestConsistency:
    def test_reachable_counter_values(self):
        spec = integer_add_spec()
        values = reachable_values(spec, 0, Multiset([1, 2, 3]))
        assert values == frozenset({6})  # addition commutes: single result

    def test_reachable_map_values_vary(self):
        spec = map_put_keyset_spec()
        values = reachable_values(spec, PMap(), Multiset([(1, 10), (1, 20)]))
        assert values == frozenset({PMap({1: 10}), PMap({1: 20})})

    def test_abstractions_singleton_for_valid_spec(self):
        spec = map_put_keyset_spec()
        alphas = abstractions_of_interleavings(spec, PMap(), Multiset([(1, 10), (1, 20), (2, 5)]))
        assert alphas == frozenset({frozenset({1, 2})})

    def test_is_consistent(self):
        spec = map_put_keyset_spec()
        assert is_consistent(spec, PMap({1: 20}), PMap(), Multiset([(1, 10), (1, 20)]))
        assert not is_consistent(spec, PMap({1: 99}), PMap(), Multiset([(1, 10), (1, 20)]))

    def test_unique_sequences_keep_order(self):
        spec = producer_consumer_spec(1, 1)
        values = reachable_values(
            spec, ((), ()), unique_args={"Prod": [1, 2]}
        )
        # single unique producer: only one order, buffer [1,2], produced (1,2)
        assert values == frozenset({((1, 2), (1, 2))})

    def test_producer_consumer_interleavings(self):
        """Fig. 11: producer and consumer interleave; all interleavings agree
        on the produced sequence (the abstraction)."""
        spec = producer_consumer_spec(1, 1)
        alphas = abstractions_of_interleavings(
            spec, ((), ()), unique_args={"Prod": [1, 3], "Cons": [0, 0]}
        )
        assert alphas == frozenset({(1, 3)})

    def test_lemma_4_2_on_counter(self):
        spec = integer_add_spec()
        assert lemma_4_2_holds(spec, 0, 0, [1, 2], [2, 1])

    def test_lemma_4_2_on_map(self):
        spec = map_put_keyset_spec()
        # PRE-related histories: same keys, different values and order
        assert lemma_4_2_holds(
            spec,
            PMap(),
            PMap(),
            [(1, 10), (2, 20)],
            [(2, 99), (1, 88)],
        )

    def test_lemma_4_2_fails_for_invalid_spec(self):
        """The conclusion genuinely fails when commutativity is absent."""
        spec = INVALID_SPECS["MapIdentity"]()
        assert not lemma_4_2_holds(
            spec, PMap(), PMap(), [(1, 10), (1, 20)], [(1, 10), (1, 20)]
        )
