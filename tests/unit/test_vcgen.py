"""Tests for symbolic conformance checking (repro.verifier.vcgen)."""

import pytest

from repro.casestudies import case_by_name
from repro.lang import Assign, Atomic, BinOp, Call, If, Lit, Load, Seq, Skip, Store, Var, While, seq_all
from repro.smt.solver import Verdict
from repro.spec.library import counter_increment_spec, integer_add_spec, map_put_keyset_spec
from repro.verifier.conformance import check_conformance
from repro.verifier.declarations import ResourceDecl
from repro.verifier.vcgen import (
    VCError,
    conformance_vc,
    discharge_conformance,
    symbolic_conformance_ok,
)


def _atomic_blocks(cmd):
    if isinstance(cmd, Atomic):
        yield cmd
        return
    for attr in ("first", "second", "left", "right", "body", "then_branch", "else_branch"):
        child = getattr(cmd, attr, None)
        from repro.lang.ast import Command

        if isinstance(child, Command):
            yield from _atomic_blocks(child)


COUNTER_DECL = ResourceDecl("CounterInc", counter_increment_spec(), "c")
ADD_DECL = ResourceDecl("IntegerAdd", integer_add_spec(), "c")
MAP_DECL = ResourceDecl("MapKeySet", map_put_keyset_spec(), "m")


def _inc_body():
    return seq_all(Load("t", Var("c")), Store(Var("c"), BinOp("+", Var("t"), Lit(1))))


def _add_body(amount_var="a"):
    return seq_all(Load("t", Var("c")), Store(Var("c"), BinOp("+", Var("t"), Var(amount_var))))


class TestConformanceVC:
    def test_counter_increment_discharges(self):
        atomic = Atomic(_inc_body(), "Inc", Lit(0))
        result = discharge_conformance(COUNTER_DECL, atomic)
        assert result.is_valid(), result

    def test_integer_add_discharges(self):
        atomic = Atomic(_add_body(), "Add", Var("a"))
        result = discharge_conformance(ADD_DECL, atomic)
        assert result.is_valid()

    def test_wrong_body_refuted_with_model(self):
        # Body adds 2 but the annotation claims Add(a): refuted whenever
        # a ≠ 2, with a concrete countermodel.
        body = seq_all(Load("t", Var("c")), Store(Var("c"), BinOp("+", Var("t"), Lit(2))))
        atomic = Atomic(body, "Add", Var("a"))
        result = discharge_conformance(ADD_DECL, atomic)
        assert result.verdict == Verdict.REFUTED
        assert result.model is not None
        assert result.model["a"] != 2

    def test_map_put_discharges(self):
        body = seq_all(
            Load("mm", Var("m")),
            Store(Var("m"), Call("put", (Var("mm"), Var("k"), Var("v")))),
        )
        atomic = Atomic(body, "Put", Call("pair", (Var("k"), Var("v"))))
        result = discharge_conformance(MAP_DECL, atomic)
        assert result.is_valid()

    def test_branching_body_covered_by_ite(self):
        # if (a > 0) add a else add a — both paths implement Add(a).
        body = seq_all(
            Load("t", Var("c")),
            If(
                BinOp(">", Var("a"), Lit(0)),
                Store(Var("c"), BinOp("+", Var("t"), Var("a"))),
                Store(Var("c"), BinOp("+", Var("a"), Var("t"))),
            ),
        )
        atomic = Atomic(body, "Add", Var("a"))
        result = discharge_conformance(ADD_DECL, atomic)
        assert result.is_valid()

    def test_branching_body_with_wrong_branch_refuted(self):
        # The negative branch forgets the old value: caught symbolically
        # (a sampling checker needs to hit a ≤ 0 AND a value where the
        # mistake shows).
        body = seq_all(
            Load("t", Var("c")),
            If(
                BinOp(">", Var("a"), Lit(0)),
                Store(Var("c"), BinOp("+", Var("t"), Var("a"))),
                Store(Var("c"), Var("a")),
            ),
        )
        atomic = Atomic(body, "Add", Var("a"))
        result = discharge_conformance(ADD_DECL, atomic)
        assert result.verdict == Verdict.REFUTED
        assert result.model["a"] <= 0

    def test_vc_formula_shape(self):
        atomic = Atomic(_add_body(), "Add", Var("a"))
        vc = conformance_vc(ADD_DECL, atomic)
        text = str(vc.formula)
        assert "f_IntegerAdd_Add" in text
        assert "__cell" in text
        assert vc.free_inputs == ("a",)

    def test_loop_outside_fragment(self):
        body = While(BinOp("<", Var("i"), Lit(3)), Assign("i", BinOp("+", Var("i"), Lit(1))))
        atomic = Atomic(body, "Add", Var("a"))
        with pytest.raises(VCError):
            conformance_vc(ADD_DECL, atomic)

    def test_foreign_heap_access_outside_fragment(self):
        body = Load("t", Var("other"))
        atomic = Atomic(body, "Add", Var("a"))
        with pytest.raises(VCError):
            conformance_vc(ADD_DECL, atomic)

    def test_unannotated_block_rejected(self):
        with pytest.raises(VCError):
            conformance_vc(ADD_DECL, Atomic(Skip()))


class TestCrossValidation:
    """Symbolic and sampling conformance agree on the case studies."""

    @pytest.mark.parametrize(
        "case_name,decl",
        [
            ("Figure 2", ADD_DECL),
            ("Count-Vaccinated", COUNTER_DECL),
            ("Figure 3", MAP_DECL),
        ],
    )
    def test_agree_on_case_study_blocks(self, case_name, decl):
        case = case_by_name(case_name)
        blocks = list(_atomic_blocks(case.program()))
        assert blocks
        for atomic in blocks:
            symbolic = symbolic_conformance_ok(decl, atomic)
            sampled = check_conformance(decl, atomic).ok
            assert symbolic is not None
            assert symbolic == sampled is True

    def test_symbolic_catches_what_sampling_confirms(self):
        body = seq_all(Load("t", Var("c")), Store(Var("c"), BinOp("-", Var("t"), Var("a"))))
        atomic = Atomic(body, "Add", Var("a"))
        assert symbolic_conformance_ok(ADD_DECL, atomic) is False
        assert not check_conformance(ADD_DECL, atomic).ok
