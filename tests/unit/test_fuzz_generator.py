"""Unit tests for the adversarial scenario generator and its plumbing."""

import pytest

from repro.fuzz import (
    FAMILIES,
    MUTATIONS,
    generate_case,
    generate_corpus,
    statement_count,
)
from repro.fuzz.gen import spec_instance
from repro.lang.ast import command_fv
from repro.lang.parser import parse_program
from repro.spec.library import INVALID_SPECS, VALID_SPECS


def test_generation_is_deterministic():
    """A case is a pure function of (seed, index)."""
    for index in range(25):
        assert generate_case(42, index) == generate_case(42, index)


def test_generation_is_prefix_stable():
    """Growing a campaign never changes already-generated cases, so a
    failure at --count 500 can be re-examined with --count 1."""
    short = generate_corpus(7, 10)
    long = generate_corpus(7, 40)
    assert long[:10] == short


def test_different_seeds_differ():
    a = [case.program for case in generate_corpus(1, 15)]
    b = [case.program for case in generate_corpus(2, 15)]
    assert a != b


def test_sources_parse_back_to_the_program():
    for case in generate_corpus(5, 25):
        assert parse_program(case.source) == case.program


def test_cases_are_well_formed():
    """Every generated case: known spec, inputs cover the free variables,
    at least one instance group with ≥2 high variants."""
    for case in generate_corpus(9, 40):
        for ref in case.resources:
            assert ref.spec_name in VALID_SPECS or ref.spec_name in INVALID_SPECS
        free = command_fv(case.program)
        input_names = set(case.low_inputs) | set(case.high_inputs)
        assert input_names <= free | input_names  # inputs may be dead (priv reads)
        assert case.groups
        for low, variants in case.groups:
            assert len(variants) >= 2
            for variant in variants:
                assert set(variant) == set(case.high_inputs)
            merged = dict(low) | dict(variants[0])
            assert free <= set(merged) | (free - input_names)


def test_family_and_mutation_coverage():
    """A 200-case campaign exercises every family and every mutation."""
    corpus = generate_corpus(0, 200)
    families = {case.family for case in corpus}
    mutations = {case.mutation for case in corpus if case.mutation}
    assert set(FAMILIES) <= families
    assert mutations == set(MUTATIONS)
    secure = sum(1 for case in corpus if case.mutation is None)
    assert 0 < secure < len(corpus)


def test_statement_count_ignores_structure_nodes():
    program = parse_program("{ x := 1; y := 2 } || { skip }")
    # Seq/Par/Skip are free; two assignments remain
    assert statement_count(program) == 2
    loop = parse_program("i := 0\nwhile (i < 2) { i := i + 1 }")
    assert statement_count(loop) == 3  # assign + while + body assign


def test_spec_instances_are_shared():
    """The lru_cache keeps one spec object per name, so the verifier's
    validity memo stays warm across thousands of cases."""
    assert spec_instance("CounterInc") is spec_instance("CounterInc")


def test_instance_groups_are_runnable():
    """Instances convert to the verifier's bounded-instance format:
    list of groups, each a list of full input dicts."""
    case = generate_case(3, 1)
    groups = case.instances()
    assert isinstance(groups, list) and groups
    for group in groups:
        assert len(group) >= 2
        names = {frozenset(inputs) for inputs in group}
        assert len(names) == 1  # same variable set across variants


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_with_program_reprints_source(seed):
    case = generate_case(seed, 0)
    clone = case.with_program(case.program)
    assert clone == case
    assert parse_program(clone.source) == case.program
