"""Tests for the fork/join dynamic-thread machine and its static reduction
to structured ``||`` (HyperViper's richer language, Sec. 5 / App. E)."""

import pytest

from repro.lang import (
    Alloc,
    Assign,
    Atomic,
    BinOp,
    Call,
    DeadlockError,
    DesugarError,
    Fork,
    If,
    Join,
    Lit,
    Load,
    Par,
    Print,
    Procedure,
    ProcedureError,
    RandomScheduler,
    Seq,
    Skip,
    Store,
    TConfig,
    ThreadedProgram,
    Var,
    While,
    enumerate_executions,
    enumerate_threaded_executions,
    forks_to_par,
    parse_threaded_program,
    rename_vars,
    run,
    run_threads,
    seq_all,
    threaded_equivalent,
    tstep,
)
from repro.lang.semantics import Config, State
from repro.lang.threads import MAIN_TID, ThreadError


def _incr_proc(name="worker", amount=1):
    """A worker that atomically adds ``amount`` to the cell at param ``c``."""
    body = Atomic(
        seq_all(
            Load("t", Var("c")),
            Store(Var("c"), BinOp("+", Var("t"), Lit(amount))),
        )
    )
    return Procedure(name, ("c",), body)


def _fork_two_workers():
    main = seq_all(
        Alloc("c", Lit(0)),
        Fork("t1", "worker", (Var("c"),)),
        Fork("t2", "worker", (Var("c"),)),
        Join("worker", Var("t1")),
        Join("worker", Var("t2")),
        Load("result", Var("c")),
    )
    return ThreadedProgram(main, (_incr_proc(),))


# ---------------------------------------------------------------------------
# Runtime machine
# ---------------------------------------------------------------------------


class TestThreadMachine:
    def test_two_forked_workers_increment_twice(self):
        result = run_threads(_fork_two_workers())
        assert result.main_store["result"] == 2

    def test_forked_threads_have_private_stores(self):
        # Both workers use the local name 't'; no interference.
        program = _fork_two_workers()
        for seed in range(10):
            result = run_threads(program, scheduler=RandomScheduler(seed))
            assert result.main_store["result"] == 2

    def test_fork_returns_distinct_tokens(self):
        program = _fork_two_workers()
        config = TConfig.make(program)
        # step main thread twice: alloc, then first fork
        for _ in range(3):
            steps = tstep(config, program)
            config = steps[0].result
        tokens = {t.tid for t in config.threads}
        assert MAIN_TID in tokens
        assert len(tokens) >= 2

    def test_join_blocks_until_worker_finishes(self):
        # Worker loops a few times before finishing; join must wait.
        body = seq_all(
            Assign("i", Lit(0)),
            While(BinOp("<", Var("i"), Lit(3)), Assign("i", BinOp("+", Var("i"), Lit(1)))),
            Atomic(Store(Var("c"), Lit(42))),
        )
        program = ThreadedProgram(
            seq_all(
                Alloc("c", Lit(0)),
                Fork("t", "slow", (Var("c"),)),
                Join("slow", Var("t")),
                Load("r", Var("c")),
            ),
            (Procedure("slow", ("c",), body),),
        )
        for seed in range(8):
            result = run_threads(program, scheduler=RandomScheduler(seed))
            assert result.main_store["r"] == 42

    def test_join_on_bad_token_raises(self):
        program = ThreadedProgram(
            seq_all(Assign("t", Lit(True)), Join("worker", Var("t"))),
            (_incr_proc(),),
        )
        with pytest.raises(ThreadError):
            run_threads(program)

    def test_join_never_forked_deadlocks(self):
        program = ThreadedProgram(Join("worker", Lit(99)), (_incr_proc(),))
        with pytest.raises(DeadlockError):
            run_threads(program, max_steps=100)

    def test_fork_undeclared_procedure_raises(self):
        program = ThreadedProgram(Fork("t", "nope", ()), ())
        with pytest.raises(ProcedureError):
            run_threads(program)

    def test_fork_wrong_arity_raises(self):
        program = ThreadedProgram(Fork("t", "worker", ()), (_incr_proc(),))
        with pytest.raises(ProcedureError):
            run_threads(program)

    def test_fork_inside_atomic_rejected(self):
        program = ThreadedProgram(
            Atomic(Fork("t", "worker", (Lit(1),))),
            (_incr_proc(),),
        )
        with pytest.raises(ThreadError):
            run_threads(program)

    def test_heap_is_shared_between_threads(self):
        # Worker writes, main reads after join.
        program = ThreadedProgram(
            seq_all(
                Alloc("cell", Lit(0)),
                Fork("t", "writer", (Var("cell"),)),
                Join("writer", Var("t")),
                Load("x", Var("cell")),
            ),
            (Procedure("writer", ("cell",), Atomic(Store(Var("cell"), Lit(7)))),),
        )
        result = run_threads(program)
        assert result.main_store["x"] == 7

    def test_output_trace_is_shared(self):
        program = ThreadedProgram(
            seq_all(
                Fork("t", "printer", (Lit(5),)),
                Join("printer", Var("t")),
                Print(Lit(6)),
            ),
            (Procedure("printer", ("x",), Print(Var("x"))),),
        )
        result = run_threads(program)
        assert result.output == (5, 6)

    def test_aborting_thread_aborts_run(self):
        from repro.lang import ThreadAbortError

        program = ThreadedProgram(
            seq_all(Fork("t", "bad", ()), Join("bad", Var("t"))),
            (Procedure("bad", (), Load("x", Lit(12345))),),
        )
        with pytest.raises(ThreadAbortError):
            run_threads(program)

    def test_interleaving_is_nondeterministic(self):
        # Two workers racing to set (not add) expose scheduling.
        program = ThreadedProgram(
            seq_all(
                Alloc("c", Lit(0)),
                Fork("t1", "setter3", (Var("c"),)),
                Fork("t2", "setter4", (Var("c"),)),
                Join("setter3", Var("t1")),
                Join("setter4", Var("t2")),
                Load("r", Var("c")),
            ),
            (
                Procedure("setter3", ("c",), Atomic(Store(Var("c"), Lit(3)))),
                Procedure("setter4", ("c",), Atomic(Store(Var("c"), Lit(4)))),
            ),
        )
        results = {
            run_threads(program, scheduler=RandomScheduler(seed)).main_store["r"]
            for seed in range(30)
        }
        assert results == {3, 4}

    def test_loop_forking_n_workers(self):
        # The App. E pattern: fork in a loop, tokens stored in heap cells,
        # join in a second loop after loading tokens back.
        n = 4
        source_main = seq_all(
            Alloc("c", Lit(0)),
            # allocate a token array: cells at addresses base..base+n-1
            Alloc("base", Lit(0)),
            *[Alloc(f"_slot{i}", Lit(0)) for i in range(1, n)],
            Assign("i", Lit(0)),
            While(
                BinOp("<", Var("i"), Lit(n)),
                seq_all(
                    Fork("t", "worker", (Var("c"),)),
                    Store(BinOp("+", Var("base"), Var("i")), Var("t")),
                    Assign("i", BinOp("+", Var("i"), Lit(1))),
                ),
            ),
            Assign("j", Lit(0)),
            While(
                BinOp("<", Var("j"), Lit(n)),
                seq_all(
                    Load("tok", BinOp("+", Var("base"), Var("j"))),
                    Join("worker", Var("tok")),
                    Assign("j", BinOp("+", Var("j"), Lit(1))),
                ),
            ),
            Load("result", Var("c")),
        )
        program = ThreadedProgram(source_main, (_incr_proc(),))
        for seed in range(6):
            result = run_threads(program, scheduler=RandomScheduler(seed))
            assert result.main_store["result"] == n

    def test_enumeration_yields_all_final_results(self):
        program = ThreadedProgram(
            seq_all(
                Alloc("c", Lit(0)),
                Fork("t1", "setter3", (Var("c"),)),
                Fork("t2", "setter4", (Var("c"),)),
                Join("setter3", Var("t1")),
                Join("setter4", Var("t2")),
                Load("r", Var("c")),
            ),
            (
                Procedure("setter3", ("c",), Atomic(Store(Var("c"), Lit(3)))),
                Procedure("setter4", ("c",), Atomic(Store(Var("c"), Lit(4)))),
            ),
        )
        finals = set()
        for config in enumerate_threaded_executions(program):
            assert config not in ("abort", "deadlock")
            main = config.thread(MAIN_TID)
            finals.add(main.store_dict()["r"])
        assert finals == {3, 4}


# ---------------------------------------------------------------------------
# Parser round-trip
# ---------------------------------------------------------------------------


class TestThreadedParser:
    SOURCE = """
    procedure worker(c) {
        atomic { t := [c]; [c] := t + 1 }
    }
    c := alloc(0)
    t1 := fork worker(c)
    t2 := fork worker(c)
    join worker(t1)
    join worker(t2)
    result := [c]
    """

    def test_parse_and_run(self):
        program = parse_threaded_program(self.SOURCE)
        assert len(program.procedures) == 1
        assert program.procedures[0].params == ("c",)
        result = run_threads(program)
        assert result.main_store["result"] == 2

    def test_parse_fork_arity_and_args(self):
        program = parse_threaded_program(
            "procedure p(a, b) { skip }\nt := fork p(1, 2)\njoin p(t)"
        )
        fork = program.main.first if isinstance(program.main, Seq) else program.main
        assert isinstance(fork, Fork)
        assert fork.args == (Lit(1), Lit(2))

    def test_parse_program_without_procedures(self):
        program = parse_threaded_program("x := 1\nprint(x)")
        assert program.procedures == ()
        assert run_threads(program).output == (1,)


# ---------------------------------------------------------------------------
# Static reduction to structured ||
# ---------------------------------------------------------------------------


class TestForksToPar:
    def test_simple_barrier_reduces_to_par(self):
        structured = forks_to_par(_fork_two_workers())
        # must contain a Par node and no Fork/Join
        def nodes(cmd):
            yield cmd
            for attr in ("first", "second", "left", "right", "body", "then_branch", "else_branch"):
                child = getattr(cmd, attr, None)
                if child is not None and hasattr(child, "__class__") and not isinstance(child, (str, tuple)):
                    from repro.lang.ast import Command

                    if isinstance(child, Command):
                        yield from nodes(child)

        kinds = {type(node).__name__ for node in nodes(structured)}
        assert "Par" in kinds
        assert "Fork" not in kinds and "Join" not in kinds

    def test_reduction_preserves_final_stores(self):
        program = _fork_two_workers()
        structured = forks_to_par(program)
        threaded_finals = set()
        for config in enumerate_threaded_executions(program):
            threaded_finals.add(config.thread(MAIN_TID).store_dict()["result"])
        structured_finals = set()
        for config in enumerate_executions(Config(structured, State.make())):
            assert config != "abort"
            structured_finals.add(config.state.store_dict()["result"])
        assert threaded_finals == structured_finals == {2}

    def test_reduction_preserves_race_outcomes(self):
        program = ThreadedProgram(
            seq_all(
                Alloc("c", Lit(0)),
                Fork("t1", "setter3", (Var("c"),)),
                Fork("t2", "setter4", (Var("c"),)),
                Join("setter3", Var("t1")),
                Join("setter4", Var("t2")),
                Load("r", Var("c")),
            ),
            (
                Procedure("setter3", ("c",), Atomic(Store(Var("c"), Lit(3)))),
                Procedure("setter4", ("c",), Atomic(Store(Var("c"), Lit(4)))),
            ),
        )
        structured = forks_to_par(program)
        threaded_finals = {
            config.thread(MAIN_TID).store_dict()["r"]
            for config in enumerate_threaded_executions(program)
        }
        structured_finals = {
            config.state.store_dict()["r"]
            for config in enumerate_executions(Config(structured, State.make()))
        }
        assert threaded_finals == structured_finals == {3, 4}

    def test_middle_statements_run_in_parallel(self):
        # main work between forks and joins joins the Par.
        program = ThreadedProgram(
            seq_all(
                Alloc("c", Lit(0)),
                Fork("t1", "worker", (Var("c"),)),
                Assign("m", Lit(10)),
                Join("worker", Var("t1")),
                Load("r", Var("c")),
            ),
            (_incr_proc(),),
        )
        structured = forks_to_par(program)
        result = run(structured)
        assert result.store["m"] == 10
        assert result.store["r"] == 1

    def test_two_phases(self):
        program = ThreadedProgram(
            seq_all(
                Alloc("c", Lit(0)),
                Fork("t1", "worker", (Var("c"),)),
                Join("worker", Var("t1")),
                Fork("t2", "worker", (Var("c"),)),
                Join("worker", Var("t2")),
                Load("r", Var("c")),
            ),
            (_incr_proc(),),
        )
        structured = forks_to_par(program)
        assert run(structured).store["r"] == 2

    def test_rejects_fork_under_loop(self):
        program = ThreadedProgram(
            While(BinOp("<", Var("i"), Lit(2)), Fork("t", "worker", (Var("c"),))),
            (_incr_proc(),),
        )
        with pytest.raises(DesugarError):
            forks_to_par(program)

    def test_rejects_unjoined_fork(self):
        program = ThreadedProgram(Fork("t", "worker", (Lit(1),)), (_incr_proc(),))
        with pytest.raises(DesugarError):
            forks_to_par(program)

    def test_rejects_join_without_fork(self):
        program = ThreadedProgram(Join("worker", Var("t")), (_incr_proc(),))
        with pytest.raises(DesugarError):
            forks_to_par(program)

    def test_rejects_token_reuse(self):
        program = ThreadedProgram(
            seq_all(
                Fork("t", "worker", (Lit(1),)),
                Fork("t", "worker", (Lit(1),)),
                Join("worker", Var("t")),
                Join("worker", Var("t")),
            ),
            (_incr_proc(),),
        )
        with pytest.raises(DesugarError):
            forks_to_par(program)

    def test_rejects_wrong_procedure_in_join(self):
        program = ThreadedProgram(
            seq_all(Fork("t", "worker", (Lit(1),)), Join("other", Var("t"))),
            (_incr_proc(), Procedure("other", ("c",), Skip())),
        )
        with pytest.raises(DesugarError):
            forks_to_par(program)

    def test_rejects_modified_fork_argument(self):
        program = ThreadedProgram(
            seq_all(
                Assign("a", Lit(1)),
                Fork("t", "worker", (Var("a"),)),
                Assign("a", Lit(2)),
                Join("worker", Var("t")),
            ),
            (_incr_proc(),),
        )
        with pytest.raises(DesugarError):
            forks_to_par(program)

    def test_rejects_procedure_reading_globals(self):
        leaky = Procedure("leaky", ("c",), Atomic(Store(Var("c"), Var("global_x"))))
        program = ThreadedProgram(
            seq_all(Fork("t", "leaky", (Var("c"),)), Join("leaky", Var("t"))),
            (leaky,),
        )
        with pytest.raises(DesugarError):
            forks_to_par(program)

    def test_rejects_forking_procedure(self):
        forker = Procedure("forker", (), seq_all(Fork("t", "w", ()), Join("w", Var("t"))))
        program = ThreadedProgram(
            seq_all(Fork("t", "forker", ()), Join("forker", Var("t"))),
            (forker, Procedure("w", (), Skip())),
        )
        with pytest.raises(DesugarError):
            forks_to_par(program)

    def test_threaded_equivalent_identity_without_forks(self):
        main = seq_all(Assign("x", Lit(1)), Print(Var("x")))
        program = ThreadedProgram(main, ())
        assert threaded_equivalent(program) is main

    def test_workers_renamed_apart(self):
        structured = forks_to_par(_fork_two_workers())
        # The two workers' local 't' must not collide.
        text = str(structured)
        assert "t__t0" in text and "t__t1" in text


class TestRenameVars:
    def test_renames_reads_and_writes(self):
        cmd = seq_all(Assign("x", BinOp("+", Var("x"), Lit(1))), Print(Var("x")))
        renamed = rename_vars(cmd, {"x": "y"})
        result = run(renamed, inputs={"y": 5})
        assert result.output == (6,)

    def test_renames_inside_atomic_annotations(self):
        cmd = Atomic(Store(Var("c"), Var("v")), "Put", Call("pair", (Var("k"), Var("v"))))
        renamed = rename_vars(cmd, {"k": "k2", "v": "v2"})
        assert "k2" in str(renamed.argument) and "v2" in str(renamed.argument)

    def test_rename_does_not_touch_other_vars(self):
        cmd = Assign("x", Var("z"))
        assert rename_vars(cmd, {"y": "w"}) == cmd
