"""Unit contract of the persistent validity-cache layer.

Pins the PR 4 satellite fixes — ``stats()`` counts persistent-layer hits
separately from in-memory hits, and ``clear()`` never deletes the
on-disk store — plus the encode/merge/delta plumbing the process-pool
discharge relies on."""

import json

import pytest

from repro.smt.cache import (
    ValidityCache,
    decode_result,
    encode_result,
    persistent_key,
)
from repro.smt.solver import Result, Verdict
from repro.smt.sorts import INT, Scope
from repro.smt.terms import App, SymVar


def _pkey(tag):
    return persistent_key(
        App("==", (SymVar(f"k{tag}", INT), SymVar("v", INT))),
        Scope(),
        None,
        False,
        True,
    )


class TestStatsSeparation:
    def test_persistent_hits_counted_separately(self):
        cache = ValidityCache()
        cache.enable_persistence()
        pkey = _pkey("a")
        cache.put("mem-key", Result(Verdict.PROVED), persistent_key=pkey)

        assert cache.get("mem-key") is not None  # in-memory hit
        assert cache.get("other-key") is None  # in-memory miss
        assert cache.get_persistent(pkey) is not None  # persistent hit
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["persistent_hits"] == 1
        assert stats["size"] == 1
        assert stats["persistent_size"] == 1

    def test_persistent_miss_is_not_a_memory_miss(self):
        cache = ValidityCache()
        cache.enable_persistence()
        assert cache.get_persistent(_pkey("nothing")) is None
        assert cache.stats()["misses"] == 0
        assert cache.stats()["persistent_hits"] == 0


class TestClearSemantics:
    def test_clear_keeps_persistent_layer_and_disk(self, tmp_path):
        path = tmp_path / "store.json"
        cache = ValidityCache()
        cache.enable_persistence()
        cache.put("k", Result(Verdict.PROVED), persistent_key=_pkey("c"))
        cache.save(path)

        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0
        # The persistent mirror survives a clear (fingerprint keys stay
        # valid across intern-table clears) …
        assert cache.stats()["persistent_size"] == 1
        assert cache.get_persistent(_pkey("c")) is not None
        # … and the on-disk store is untouched.
        assert path.exists()
        on_disk = json.loads(path.read_text())
        assert len(on_disk["entries"]) == 1

    def test_forget_persistent_never_touches_disk(self, tmp_path):
        path = tmp_path / "store.json"
        cache = ValidityCache()
        cache.enable_persistence()
        cache.put("k", Result(Verdict.PROVED), persistent_key=_pkey("d"))
        cache.save(path)
        before = path.read_text()
        cache.forget_persistent()
        assert cache.stats()["persistent_size"] == 0
        assert path.read_text() == before


class TestEncoding:
    def test_unknown_is_never_persisted(self):
        assert encode_result(Result(Verdict.UNKNOWN)) is None
        cache = ValidityCache()
        cache.enable_persistence()
        cache.put("k", Result(Verdict.UNKNOWN), persistent_key=_pkey("u"))
        assert cache.stats()["persistent_size"] == 0

    def test_json_unsafe_models_are_skipped(self):
        refuted = Result(Verdict.REFUTED, model={"x": (1, 2)})
        assert encode_result(refuted) is None
        cache = ValidityCache()
        cache.enable_persistence()
        cache.put("k", refuted, persistent_key=_pkey("t"))
        assert cache.stats()["persistent_size"] == 0
        # The in-memory layer still holds it.
        assert cache.get("k") is refuted

    def test_round_trip_preserves_verdict_model_and_count(self):
        original = Result(Verdict.REFUTED, model={"x": 3, "b": True}, checked_assignments=7)
        decoded = decode_result(encode_result(original))
        assert decoded.verdict == original.verdict
        assert decoded.model == original.model
        assert decoded.checked_assignments == original.checked_assignments

    def test_malformed_entries_are_ignored(self):
        assert decode_result({"verdict": "no-such-verdict"}) is None
        assert decode_result({}) is None
        assert decode_result({"verdict": "proved", "model": "junk"}) is None


class TestMergeAndDelta:
    def test_worker_delta_merges_into_parent(self):
        worker = ValidityCache()
        worker.enable_persistence()
        worker.put("wk", Result(Verdict.PROVED), persistent_key=_pkey("w"))
        delta = worker.export_delta()
        assert len(delta) == 1

        parent = ValidityCache()
        assert parent.merge(delta) == 1
        # Merging stores (and will save) the entries but does NOT flip
        # the parent into persistence mode — that stays an explicit
        # opt-in, so a pool run without --cache-dir adds no per-query
        # fingerprinting overhead.
        assert not parent.persistence_enabled
        assert parent.get_persistent(_pkey("w")) is not None

    def test_reset_delta_empties_the_shipment(self):
        cache = ValidityCache()
        cache.enable_persistence()
        cache.put("k", Result(Verdict.PROVED), persistent_key=_pkey("r"))
        cache.reset_delta()
        assert cache.export_delta() == {}
        # The entry itself is still served.
        assert cache.get_persistent(_pkey("r")) is not None

    def test_save_merges_with_concurrent_writer(self, tmp_path):
        path = tmp_path / "store.json"
        first = ValidityCache()
        first.enable_persistence()
        first.put("a", Result(Verdict.PROVED), persistent_key=_pkey("one"))
        first.save(path)

        second = ValidityCache()
        second.enable_persistence()
        second.put("b", Result(Verdict.BOUNDED, checked_assignments=9), persistent_key=_pkey("two"))
        second.save(path)  # must union, not clobber

        reloaded = ValidityCache()
        assert reloaded.load(path) == 2

    def test_load_missing_file_activates_empty_layer(self, tmp_path):
        cache = ValidityCache()
        assert cache.load(tmp_path / "absent.json") == 0
        assert cache.persistence_enabled
        assert cache.stats()["persistent_size"] == 0


class TestCorruptionHardening:
    """PR 7 satellite: a truncated or corrupt shard (e.g. from a worker
    killed mid-save on a pre-atomic store) must log-and-skip — never
    raise — and saves must be atomic with no stale temp siblings."""

    def _seeded(self, tag="seed"):
        cache = ValidityCache()
        cache.enable_persistence()
        cache.put("k", Result(Verdict.PROVED), persistent_key=_pkey(tag))
        return cache

    def test_truncated_json_shard_loads_cold_with_a_warning(self, tmp_path, caplog):
        path = tmp_path / "store.json"
        path.write_text('{"version": 1, "entries": {"dead', encoding="utf-8")
        cache = ValidityCache()
        with caplog.at_level("WARNING", logger="repro.smt.cache"):
            assert cache.load(path) == 0
        assert cache.persistence_enabled  # cold, but the layer is live
        assert any("starting cold" in record.message for record in caplog.records)

    def test_binary_garbage_shard_loads_cold(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_bytes(b"\xff\xfe\x00garbage\x00" * 7)  # invalid UTF-8
        cache = ValidityCache()
        assert cache.load(path) == 0
        assert cache.stats()["persistent_size"] == 0

    def test_wrong_shape_shard_loads_cold(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text(json.dumps([1, 2, 3]), encoding="utf-8")
        assert ValidityCache().load(path) == 0
        path.write_text(json.dumps({"version": 1, "entries": "nope"}))
        assert ValidityCache().load(path) == 0

    def test_save_over_corrupt_shard_rewrites_it_atomically(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text('{"version": 1, "entries": {"dead', encoding="utf-8")
        cache = self._seeded()
        assert cache.save(path) == 1  # garbage contributed nothing
        reloaded = ValidityCache()
        assert reloaded.load(path) == 1  # well-formed again

    def test_save_leaves_no_temp_sibling(self, tmp_path):
        path = tmp_path / "store.json"
        self._seeded().save(path)
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "store.json"]
        assert leftovers == []

    def test_failed_save_cleans_up_its_temp_file(self, tmp_path, monkeypatch):
        import repro.smt.cache as cache_module

        def explode(_src, _dst):
            raise OSError("disk full")

        monkeypatch.setattr(cache_module.os, "replace", explode)
        cache = self._seeded()
        with pytest.raises(OSError, match="disk full"):
            cache.save(tmp_path / "store.json")
        assert list(tmp_path.iterdir()) == []  # temp removed on failure

    def test_snapshot_persistent_is_a_deep_enough_copy(self):
        cache = self._seeded()
        snapshot = cache.snapshot_persistent()
        key = _pkey("seed")
        assert key in snapshot
        snapshot[key]["verdict"] = "tampered"
        # the cache's own entry is unaffected (worker mutation safety)
        assert cache.get_persistent(key).verdict is Verdict.PROVED
        # and a fresh cache can be seeded from an untampered snapshot
        worker = ValidityCache()
        worker.merge(cache.snapshot_persistent())
        worker.enable_persistence()
        assert worker.get_persistent(key).verdict is Verdict.PROVED
