"""Unit tests for the in-house term language and bounded solver."""

import pytest

from repro.lang.parser import parse_expr
from repro.smt import (
    App,
    BOOL,
    Const,
    INT,
    Scope,
    SymVar,
    Verdict,
    check_validity,
    conj,
    eq,
    evaluate_term,
    find_model,
    free_symvars,
    from_expr,
    implies,
    int_constants,
    is_literally_true,
    negate,
    simplify,
    substitute,
)


class TestTerms:
    def test_evaluate_constant(self):
        assert evaluate_term(Const(5), {}) == 5

    def test_evaluate_variable(self):
        assert evaluate_term(SymVar("x", INT), {"x": 3}) == 3

    def test_unassigned_variable_raises(self):
        with pytest.raises(KeyError):
            evaluate_term(SymVar("x", INT), {})

    def test_evaluate_app(self):
        term = App("+", (SymVar("x", INT), Const(1)))
        assert evaluate_term(term, {"x": 4}) == 5

    def test_division_total(self):
        assert evaluate_term(App("/", (Const(1), Const(0))), {}) == 0

    def test_lazy_implies(self):
        # consequent would fail to evaluate; antecedent false short-circuits
        term = implies(Const(False), App("at", (Const(0), Const(0))))
        assert evaluate_term(term, {}) is True

    def test_free_symvars(self):
        term = App("+", (SymVar("x", INT), SymVar("y", INT)))
        assert {v.name for v in free_symvars(term)} == {"x", "y"}

    def test_substitute(self):
        term = App("+", (SymVar("x", INT), Const(1)))
        assert substitute(term, {"x": Const(2)}) == App("+", (Const(2), Const(1)))

    def test_int_constants(self):
        term = App("+", (Const(7), App("*", (Const(-3), SymVar("x", INT)))))
        assert int_constants(term) == frozenset({7, -3})

    def test_from_expr_lifts_program_expression(self):
        term = from_expr(parse_expr("x + 2 * y"))
        assert evaluate_term(term, {"x": 1, "y": 3}) == 7

    def test_from_expr_maps_boolean_ops(self):
        term = from_expr(parse_expr("x > 0 && !(x > 5)"))
        assert evaluate_term(term, {"x": 3}) is True
        assert evaluate_term(term, {"x": 9}) is False


class TestSimplify:
    def test_constant_folding(self):
        assert simplify(App("+", (Const(2), Const(3)))) == Const(5)

    def test_and_unit(self):
        x = SymVar("b", BOOL)
        assert simplify(App("and", (Const(True), x))) == x

    def test_and_zero(self):
        x = SymVar("b", BOOL)
        assert simplify(App("and", (x, Const(False)))) == Const(False)

    def test_or_unit(self):
        x = SymVar("b", BOOL)
        assert simplify(App("or", (Const(False), x))) == x

    def test_double_negation(self):
        x = SymVar("b", BOOL)
        assert simplify(App("not", (App("not", (x,)),))) == x

    def test_reflexive_equality(self):
        x = SymVar("x", INT)
        assert simplify(eq(x, x)) == Const(True)

    def test_implies_reflexive(self):
        x = SymVar("b", BOOL)
        assert is_literally_true(implies(x, x))

    def test_arith_units(self):
        x = SymVar("x", INT)
        assert simplify(App("+", (x, Const(0)))) == x
        assert simplify(App("*", (x, Const(1)))) == x
        assert simplify(App("*", (x, Const(0)))) == Const(0)
        assert simplify(App("-", (x, x))) == Const(0)

    def test_ite_collapses(self):
        x = SymVar("x", INT)
        assert simplify(App("ite", (Const(True), x, Const(0)))) == x
        assert simplify(App("ite", (SymVar("b", BOOL), x, x))) == x

    def test_simplification_recursive(self):
        inner = App("+", (Const(1), Const(1)))
        assert simplify(eq(inner, Const(2))) == Const(True)


class TestSolver:
    def test_tautology_proved_by_rewriting(self):
        x = SymVar("x", INT)
        result = check_validity(eq(x, x))
        assert result.verdict == Verdict.PROVED

    def test_refutable_formula_gives_model(self):
        x = SymVar("x", INT)
        result = check_validity(App(">", (x, Const(0))))
        assert result.verdict == Verdict.REFUTED
        assert result.model["x"] <= 0

    def test_bounded_validity(self):
        x = SymVar("x", INT)
        # x*0 == 0 holds everywhere; enumeration cannot prove it outright
        result = check_validity(eq(App("*", (x, Const(0))), Const(0)))
        assert result.is_valid()

    def test_exhaustive_upgrades_to_proved(self):
        b = SymVar("b", BOOL)
        result = check_validity(App("or", (b, App("not", (b,)))), exhaustive=True)
        assert result.verdict == Verdict.PROVED

    def test_scope_widened_with_formula_constants(self):
        x = SymVar("x", INT)
        # counterexample requires trying x = 100, outside the default window
        formula = negate(eq(x, Const(100)))
        result = check_validity(formula)
        assert result.verdict == Verdict.REFUTED
        assert result.model["x"] == 100

    def test_find_model(self):
        x = SymVar("x", INT)
        model = find_model(App(">", (x, Const(1))))
        assert model is not None
        assert model["x"] > 1

    def test_find_model_unsat_in_scope(self):
        x = SymVar("x", INT)
        assert find_model(App("!=", (x, x))) is None

    def test_conjunction_helper(self):
        assert conj() == Const(True)
        x = SymVar("b", BOOL)
        assert conj(Const(True), x) == x

    def test_multiset_sort_domain(self):
        from repro.smt import MultisetSort
        from repro.heap.multiset import Multiset

        values = list(MultisetSort(BOOL).domain(Scope(max_size=2)))
        assert Multiset([True, False]) in values
        # sizes 0,1,2 over {F,T}: 1 + 2 + 3 = 6
        assert len(values) == 6

    def test_map_sort_domain(self):
        from repro.smt import MapSort

        values = list(MapSort(BOOL, BOOL).domain(Scope(max_size=1)))
        # empty map + 2 keys x 2 values singleton maps
        assert len(values) == 5
