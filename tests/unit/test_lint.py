"""Unit tests for the lint framework, diagnostics, and the lint CLI."""

import json

from repro.__main__ import main
from repro.analysis import (
    Baseline,
    Diagnostic,
    LINT_RULES,
    has_errors,
    lint_case,
    lint_paths,
    render_json,
    render_text,
    run_lint,
    severity_counts,
    sort_diagnostics,
    target_from_source,
)
from repro.casestudies import case_by_name


def _codes(diagnostics):
    return sorted(d.code for d in diagnostics)


def _lint(source, low=(), high=()):
    return run_lint(
        target_from_source(source, source="<test>", low_inputs=low, high_inputs=high)
    )


class TestRules:
    def test_registry_has_the_documented_rules(self):
        assert {"L001", "L002", "L003", "L004", "L005", "L006"} <= set(LINT_RULES)

    def test_clean_program_lints_clean(self):
        assert _lint("x := a + 1\nprint(x)") == []

    def test_unused_variable_is_l001(self):
        assert "L001" in _codes(_lint("x := 1\ny := 2\nprint(y)"))

    def test_dead_code_after_divergent_loop_is_l002(self):
        source = "x := 0\nwhile (true) { x := x + 1 }\nprint(0)"
        assert "L002" in _codes(_lint(source))

    def test_parameter_shadowing_is_l003(self):
        source = (
            "procedure worker(m) { x := m }\n"
            "m := 5\n"
            "t := fork worker(m)\n"
            "join worker(t)\n"
            "print(m)"
        )
        assert "L003" in _codes(_lint(source))

    def test_atomic_without_cell_access_is_l004(self):
        case = case_by_name("Sequential-Tally")
        spec = case.program_spec()
        target = target_from_source(
            case.source.replace(
                "atomic [Add(t)] { v := [c]; [c] := v + t }",
                "atomic [Add(t)] { v := t }",
            ),
            source="<test>",
        )
        target.spec = spec
        assert "L004" in _codes(run_lint(target))

    def test_fork_without_join_is_l005(self):
        source = (
            "procedure worker(m) { x := m }\n"
            "t := fork worker(1)\n"
            "print(0)"
        )
        diagnostics = _lint(source)
        assert "L005" in _codes(diagnostics)
        (l005,) = [d for d in diagnostics if d.code == "L005"]
        assert l005.severity == "error"

    def test_unapplied_low_view_is_l006(self):
        case = case_by_name("Email-Metadata")
        assert "L006" in _codes(lint_case(case))

    def test_parse_failure_is_p001(self):
        diagnostics = _lint("x := := 1")
        assert _codes(diagnostics) == ["P001"]
        assert has_errors(diagnostics)

    def test_flow_findings_surface_with_labels(self):
        assert "F001" in _codes(_lint("print(h)", high=("h",)))

    def test_races_surface_without_a_spec(self):
        source = "c := alloc(0)\n{ [c] := 1 } || { [c] := 2 }"
        assert "R001" in _codes(_lint(source))


class TestRendering:
    DIAGS = [
        Diagnostic("L001", "warning", "variable 'x' is written but never read", "b.prog", 3, 1),
        Diagnostic("R001", "error", "data race on heap cell [c]", "a.prog", 2, 5),
    ]

    def test_text_rendering_is_sorted_and_summarized(self):
        text = render_text(self.DIAGS)
        lines = text.splitlines()
        assert lines[0] == "a.prog:2:5: error[R001]: data race on heap cell [c]"
        assert lines[1] == "b.prog:3:1: warning[L001]: variable 'x' is written but never read"
        assert lines[2] == "2 diagnostic(s): 1 error(s), 1 warning(s), 0 info"

    def test_json_rendering_round_trips(self):
        payload = json.loads(render_json(self.DIAGS))
        assert payload["version"] == 1
        assert payload["summary"]["error"] == 1
        restored = [Diagnostic.from_wire(obj) for obj in payload["diagnostics"]]
        assert restored == sort_diagnostics(self.DIAGS)

    def test_rendering_is_deterministic(self):
        assert render_json(self.DIAGS) == render_json(list(reversed(self.DIAGS)))
        assert render_text(self.DIAGS) == render_text(list(reversed(self.DIAGS)))

    def test_severity_counts(self):
        counts = severity_counts(self.DIAGS)
        assert counts == {"error": 1, "warning": 1, "info": 0}


class TestBaseline:
    def test_round_trip_and_suppression(self, tmp_path):
        diagnostics = TestRendering.DIAGS
        baseline = Baseline.from_diagnostics(diagnostics)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        kept, suppressed = loaded.apply(diagnostics)
        assert kept == []
        assert suppressed == 2

    def test_new_findings_survive_the_baseline(self):
        baseline = Baseline.from_diagnostics(TestRendering.DIAGS)
        extra = Diagnostic("R001", "error", "another race", "a.prog", 9, 1)
        kept, suppressed = baseline.apply(list(TestRendering.DIAGS) + [extra])
        assert suppressed == 2
        assert len(kept) == 1
        assert kept[0].code == "R001"


class TestPathCollection:
    def test_prog_file_and_directory_scan(self, tmp_path):
        (tmp_path / "ok.prog").write_text("x := 1\nprint(x)\n")
        (tmp_path / "racy.prog").write_text(
            "c := alloc(0)\n{ [c] := 1 } || { [c] := 2 }\n"
        )
        diagnostics = lint_paths([tmp_path])
        assert "R001" in _codes(diagnostics)
        assert all(d.source.endswith(".prog") for d in diagnostics)

    def test_python_literals_are_extracted(self, tmp_path):
        (tmp_path / "demo.py").write_text(
            'SRC = """\nx := 1\ny := 2\nprint(y)\n"""\n'
        )
        diagnostics = lint_paths([tmp_path])
        assert "L001" in _codes(diagnostics)
        assert any("demo.py" in d.source for d in diagnostics)


class TestCli:
    def test_clean_paths_exit_zero(self, tmp_path, capsys):
        (tmp_path / "ok.prog").write_text("x := 1\nprint(x)\n")
        assert main(["repro", "lint", str(tmp_path)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_errors_exit_one(self, tmp_path, capsys):
        (tmp_path / "racy.prog").write_text(
            "c := alloc(0)\n{ [c] := 1 } || { [c] := 2 }\n"
        )
        assert main(["repro", "lint", str(tmp_path)]) == 1
        assert "R001" in capsys.readouterr().out

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        (tmp_path / "unused.prog").write_text("x := 1\nprint(0)\n")
        assert main(["repro", "lint", "--format", "json", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["warning"] >= 1

    def test_baseline_flow(self, tmp_path, capsys):
        (tmp_path / "racy.prog").write_text(
            "c := alloc(0)\n{ [c] := 1 } || { [c] := 2 }\n"
        )
        baseline = tmp_path / "baseline.json"
        assert (
            main(["repro", "lint", str(tmp_path), "--write-baseline", str(baseline)])
            == 0
        )
        capsys.readouterr()
        assert (
            main(["repro", "lint", str(tmp_path), "--baseline", str(baseline)]) == 0
        )
        assert "suppressed" in capsys.readouterr().out

    def test_flow_labels_via_flags(self, tmp_path, capsys):
        (tmp_path / "leak.prog").write_text("print(h)\n")
        assert main(["repro", "lint", str(tmp_path), "--high", "h"]) == 1
        assert "F001" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["repro", "lint", str(tmp_path / "absent")]) == 2

    def test_no_inputs_exits_two(self, capsys):
        assert main(["repro", "lint"]) == 2

    def test_single_case_lint(self, capsys):
        assert main(["repro", "lint", "--case", "Email-Metadata"]) == 0
        assert "L006" in capsys.readouterr().out

    def test_shipped_corpus_lints_without_errors(self, capsys):
        # The CI contract: examples/ and the case-study sources carry no
        # error-severity findings.
        assert main(["repro", "lint", "examples/", "src/repro/casestudies/"]) == 0
