"""Unit tests for guard states (Sec. 3.3, Eq. (3)/(4))."""

from fractions import Fraction

import pytest

from repro.heap.guards import (
    GuardFamily,
    SharedGuard,
    UniqueGuard,
    add_shared_guards,
    add_unique_guards,
)
from repro.heap.multiset import Multiset
from repro.heap.permheap import HeapAdditionUndefined

HALF = Fraction(1, 2)


class TestSharedGuard:
    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            SharedGuard(Fraction(0))
        with pytest.raises(ValueError):
            SharedGuard(Fraction(3, 2))

    def test_complete(self):
        assert SharedGuard(Fraction(1)).is_complete()
        assert not SharedGuard(HALF).is_complete()

    def test_record_adds_to_multiset(self):
        g = SharedGuard(HALF).record("a").record("a")
        assert g.args.count("a") == 2

    def test_record_preserves_fraction(self):
        assert SharedGuard(HALF).record("a").fraction == HALF

    def test_split_fractions(self):
        parts = SharedGuard(Fraction(1), Multiset(["x"])).split(2)
        assert [p.fraction for p in parts] == [HALF, HALF]
        assert parts[0].args == Multiset(["x"])
        assert parts[1].args == Multiset()

    def test_split_requires_positive_pieces(self):
        with pytest.raises(ValueError):
            SharedGuard(Fraction(1)).split(0)


class TestSharedGuardAddition:
    def test_bottom_is_identity(self):
        g = SharedGuard(HALF, Multiset(["a"]))
        assert add_shared_guards(g, None) == g
        assert add_shared_guards(None, g) == g

    def test_addition_unions_multisets(self):
        left = SharedGuard(HALF, Multiset(["a"]))
        right = SharedGuard(HALF, Multiset(["b", "a"]))
        total = add_shared_guards(left, right)
        assert total.fraction == Fraction(1)
        assert total.args == Multiset(["a", "a", "b"])

    def test_fraction_overflow_undefined(self):
        g = SharedGuard(Fraction(1))
        with pytest.raises(HeapAdditionUndefined):
            add_shared_guards(g, SharedGuard(HALF))

    def test_split_then_recombine_roundtrip(self):
        original = SharedGuard(Fraction(1), Multiset(["x", "y"]))
        parts = original.split(2)
        assert add_shared_guards(parts[0], parts[1]) == original


class TestUniqueGuard:
    def test_record_appends_in_order(self):
        g = UniqueGuard().record(1).record(2)
        assert g.args == (1, 2)

    def test_addition_requires_one_bottom(self):
        g = UniqueGuard((1,))
        assert add_unique_guards(g, None) == g
        assert add_unique_guards(None, g) == g
        with pytest.raises(HeapAdditionUndefined):
            add_unique_guards(g, UniqueGuard())

    def test_equality_is_sequence_equality(self):
        assert UniqueGuard((1, 2)) == UniqueGuard((1, 2))
        assert UniqueGuard((1, 2)) != UniqueGuard((2, 1))


class TestGuardFamily:
    def test_bottom(self):
        assert GuardFamily.bottom().is_bottom()
        assert GuardFamily.bottom().get("i") is None

    def test_singleton(self):
        family = GuardFamily.singleton("i", UniqueGuard((5,)))
        assert family.get("i") == UniqueGuard((5,))
        assert family.indices() == frozenset({"i"})

    def test_pointwise_addition_disjoint(self):
        a = GuardFamily.singleton("i", UniqueGuard((1,)))
        b = GuardFamily.singleton("j", UniqueGuard((2,)))
        combined = a + b
        assert combined.get("i") == UniqueGuard((1,))
        assert combined.get("j") == UniqueGuard((2,))

    def test_pointwise_addition_conflict_undefined(self):
        a = GuardFamily.singleton("i", UniqueGuard((1,)))
        with pytest.raises(HeapAdditionUndefined):
            a + a

    def test_with_guard_is_functional(self):
        base = GuardFamily.bottom()
        extended = base.with_guard("i", UniqueGuard())
        assert base.is_bottom()
        assert not extended.is_bottom()
