"""Benchmark: CommCSL vs. the timing-sensitive baseline (Sec. 5).

The paper: "Ca. half of our examples have secret-dependent timing due to
branches on high data, and would thus be rejected by existing techniques,
even if the attacker cannot observe timing."  This benchmark runs both
checkers on all 18 Table-1 case studies:

* the full CommCSL pipeline (`repro.verifier.frontend.verify`) — expected
  to verify all 18;
* the baseline of `repro.verifier.baseline`, which models the discipline
  of SecCSL/COVERN-style techniques (no branching or looping on secrets,
  no schedule-dependent blocking, no commutativity reclamation of shared
  cells) — expected to reject the examples with secret-dependent timing.
"""

import time

import pytest

from repro.casestudies import TABLE1_CASES
from repro.verifier.baseline import baseline_check

#: Case studies the baseline must reject, with the rejection class.
#: Exactly 8 fall to secret-dependent timing — the paper's "ca. half of
#: our examples have secret-dependent timing due to branches on high
#: data"; 4 more need an abstraction the baseline lacks; 3 block on
#: shared state.  The 3 accepted ones (Website-Visitor-IPs,
#: Sales-By-Region, Most-Valuable-Purchase) have identity abstractions,
#: all-low data and no secret-dependent control flow, which a
#: SecCSL-style lock invariant can handle without commutativity.
EXPECTED_BASELINE_REJECTS = {
    # secret-dependent timing (high loops) — 8/18, the Sec. 5 claim
    "Count-Vaccinated",
    "Figure 2",
    "Count-Sick-Days",
    "Figure 1",
    "Email-Metadata",
    "Sick-Employee-Names",
    "Salary-Histogram",
    "Count-Purchases",
    # secret data in the shared structure; only an abstraction of it is
    # printed, and the baseline has no abstraction mechanism
    "Mean-Salary",
    "Patient-Statistic",
    "Debt-Sum",
    "Figure 3",
    # schedule-dependent blocking (queue guards)
    "1-Producer-1-Consumer",
    "Pipeline",
    "2-Producers-2-Consumers",
}


@pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name.replace(" ", "-"))
def test_baseline_bench(benchmark, case):
    report = benchmark(baseline_check, case.program_spec())
    expected_reject = case.name in EXPECTED_BASELINE_REJECTS
    assert report.accepted != expected_reject, report.summary()


def test_print_baseline_comparison():
    header = f"{'Example':28s} {'CommCSL':>9s} {'baseline':>9s}  first baseline rejection"
    print("\n" + "=" * 100)
    print("CommCSL vs. timing-sensitive baseline (Sec. 5, 'High branches')")
    print("=" * 100)
    print(header)
    print("-" * 100)
    commcsl_ok = 0
    baseline_ok = 0
    for case in TABLE1_CASES:
        verdict = case.verify()
        report = baseline_check(case.program_spec())
        commcsl_ok += verdict.verified
        baseline_ok += report.accepted
        reason = report.rejections[0][:50] if report.rejections else ""
        print(
            f"{case.name:28s} "
            f"{'VERIFIED' if verdict.verified else 'rejected':>9s} "
            f"{'accepted' if report.accepted else 'REJECTED':>9s}  {reason}"
        )
        assert verdict.verified
    print("-" * 100)
    print(f"CommCSL verifies {commcsl_ok}/18; the baseline accepts {baseline_ok}/18 — "
          f"{18 - baseline_ok} examples are verifiable *only* with "
          f"commutativity-based reasoning")
    print("=" * 100)
    # The paper says "ca. half" have secret-dependent timing; with the
    # baseline's additional store-taint strictness the gap is larger.
    assert 18 - baseline_ok >= 9
