"""Benchmark: the Fig. 1 internal-timing-channel experiment.

Regenerates the behavioural claims of Fig. 1 and the introduction:

* under the deterministic round-robin scheduler, the printed value is a
  threshold function of the secret ``h`` (flips at the public loop bound
  100) — the "leaks whether or not h is greater than 100" claim;
* under a randomized scheduler, the empirical mutual information between
  ``h`` and the output is ≈1 bit for well-separated secrets;
* the commuting repair (+3/+4) and the constant-abstraction variant leak
  nothing (0 bits, no threshold).

The timed benchmarks measure the experiment harness itself (runs per
secret value), which is the cost driver of this figure.
"""

import pytest

from repro.lang import parse_program
from repro.security import mutual_information, threshold_leak

FIG1 = parse_program(
    """
t1 := 0
t2 := 0
{ while (t1 < 100) { t1 := t1 + 1 }; s := 3 } || { while (t2 < h) { t2 := t2 + 1 }; s := 4 }
print(s)
"""
)

COMMUTING = parse_program(
    """
t1 := 0
t2 := 0
s := 0
{ while (t1 < 100) { t1 := t1 + 1 }; a := 3 } || { while (t2 < h) { t2 := t2 + 1 }; b := 4 }
print(a + b)
"""
)

H_SWEEP = [0, 25, 50, 75, 99, 100, 101, 125, 150, 200]


def test_fig1_threshold(benchmark):
    result = benchmark(threshold_leak, FIG1, "h", H_SWEEP)
    assert result.distinguishes
    assert result.boundary == 100  # flips exactly at the public loop bound


def test_commuting_no_threshold(benchmark):
    result = benchmark(threshold_leak, COMMUTING, "h", H_SWEEP)
    assert not result.distinguishes


def test_fig1_mutual_information(benchmark):
    bits = benchmark(mutual_information, FIG1, "h", [0, 200], 20)
    assert bits > 0.9


def test_commuting_mutual_information(benchmark):
    bits = benchmark(mutual_information, COMMUTING, "h", [0, 200], 20)
    assert bits == 0.0


def test_print_fig1_report():
    print("\n=== Figure 1 experiment — internal timing channel ===")
    leak = threshold_leak(FIG1, "h", H_SWEEP)
    print("round-robin outputs by secret h (racy program):")
    for h in H_SWEEP:
        print(f"  h={h:3d} -> {leak.outputs_by_h[h][0]}")
    print(f"threshold boundary: h = {leak.boundary}  (paper: 'leaks whether h > 100')")
    racy_bits = mutual_information(FIG1, "h", [0, 200], runs_per_value=30)
    fixed_bits = mutual_information(COMMUTING, "h", [0, 200], runs_per_value=30)
    print(f"I(h; output): racy = {racy_bits:.3f} bits, commuting repair = {fixed_bits:.3f} bits")
    assert leak.boundary == 100
    assert racy_bits > 0.9 and fixed_bits == 0.0
