"""Benchmark: regenerate Table 1 (Sec. 5).

One pytest-benchmark target per Table-1 row times the *full verification
pipeline* (spec validity + static analysis + conformance + obligation
discharge) for that case study, and the session-scoped reporter prints the
complete table — example, data structure, abstraction, LOC, annotations,
measured time — next to the paper's reported numbers.

Absolute times are not comparable (the paper measured a JVM/Z3 stack on an
8-core Ryzen; we measure a pure-Python pipeline), but the *shape* is: all
18 rows verify, the same rows need retroactive reasoning, and relative
difficulty ordering is broadly preserved.
"""

import time

import pytest

from repro.casestudies import INSECURE_CASES, TABLE1_CASES


@pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name.replace(" ", "-"))
def test_verify_case(benchmark, case):
    result = benchmark(case.verify)
    assert result.verified


@pytest.mark.parametrize("case", INSECURE_CASES, ids=lambda c: c.name.replace(" ", "-"))
def test_reject_case(benchmark, case):
    result = benchmark(case.verify)
    assert not result.verified


def test_print_table1_report():
    """Print the regenerated Table 1 (runs as the last 'benchmark')."""
    header = (
        f"{'Example':28s} {'Data structure':24s} {'Abstraction':20s} "
        f"{'LOC':>4s} {'Ann.':>4s} {'T(ours)':>8s} {'T(paper)':>9s} {'verdict':>8s}"
    )
    print("\n" + "=" * len(header))
    print("Table 1 — Evaluated examples (reproduction)")
    print("=" * len(header))
    print(header)
    print("-" * len(header))
    for case in TABLE1_CASES:
        start = time.perf_counter()
        result = case.verify()
        elapsed = time.perf_counter() - start
        row = case.paper
        print(
            f"{case.name:28s} {row.data_structure:24s} {row.abstraction:20s} "
            f"{case.loc():>4d} {case.annotation_count():>4d} {elapsed:>7.2f}s "
            f"{row.time_seconds:>8.2f}s {'OK' if result.verified else 'FAIL':>8s}"
        )
        assert result.verified
    print("-" * len(header))
    print("Negative controls (must be rejected):")
    for case in INSECURE_CASES:
        start = time.perf_counter()
        result = case.verify()
        elapsed = time.perf_counter() - start
        verdict = "REJECTED" if not result.verified else "ACCEPTED?!"
        print(f"{case.name:28s} {'':24s} {'':20s} {case.loc():>4d} "
              f"{case.annotation_count():>4d} {elapsed:>7.2f}s {'—':>9s} {verdict:>8s}")
        assert not result.verified
    print("=" * len(header))
