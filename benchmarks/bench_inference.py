"""Benchmark: specification inference ablation.

Quantifies how much of the evaluation's hand-written specification
content is mechanically recoverable:

* for each catalogue specification, the weakest sufficient precondition
  found by :func:`repro.spec.inference.infer_preconditions` is compared
  to the declared one — agreement means the Fig. 4-style ``Low(...)``
  atoms carry no hidden slack;
* for each, :func:`repro.spec.inference.infer_abstraction` ranks the
  standard abstractions and its *finest valid* recommendation is compared
  to the declared abstraction (Table 1's "Abstraction" column).

pytest-benchmark targets time both searches; the reporter prints the
comparison table.
"""

import pytest

from repro.spec.inference import infer_abstraction, infer_preconditions, precision
from repro.spec.library import (
    counter_increment_spec,
    integer_add_spec,
    list_append_length_spec,
    list_append_multiset_spec,
    list_append_sum_spec,
    map_disjoint_put_spec,
    map_histogram_spec,
    map_put_keyset_spec,
    set_add_spec,
)

#: (spec factory, expected finest abstraction name or None when the
#: declared abstraction is outside the standard catalogue's vocabulary)
INFERENCE_CASES = (
    (counter_increment_spec, "identity"),
    (integer_add_spec, "identity"),
    (set_add_spec, "identity"),
    (map_put_keyset_spec, "keyset"),
    (map_histogram_spec, "identity"),
    (map_disjoint_put_spec, "identity"),
    (list_append_multiset_spec, "multiset"),
    # Patient-Statistic appends *high* records: nothing finer than the
    # count survives condition (A).
    (list_append_length_spec, "length"),
    # Debt-Sum's declared α (sum of the pair's amount component) is a
    # projection-composed abstraction outside the generic catalogue; the
    # finest generic view of (secret creditor, low amount) pairs is the
    # count.
    (list_append_sum_spec, "length"),
)


@pytest.mark.parametrize(
    "factory", [factory for factory, _ in INFERENCE_CASES], ids=lambda f: f.__name__
)
def test_infer_preconditions_bench(benchmark, factory):
    spec = factory()
    inference = benchmark(infer_preconditions, spec)
    assert inference.found


@pytest.mark.parametrize(
    "factory", [factory for factory, _ in INFERENCE_CASES], ids=lambda f: f.__name__
)
def test_infer_abstraction_bench(benchmark, factory):
    spec = factory()
    inference = benchmark(infer_abstraction, spec)
    assert inference.valid  # at least the constant abstraction


def test_print_inference_report():
    header = (
        f"{'Specification':18s} {'declared pre':26s} {'inferred pre':26s} "
        f"{'finest α':10s} {'match':>6s}"
    )
    print("\n" + "=" * len(header))
    print("Specification inference — declared vs. mechanically recovered")
    print("=" * len(header))
    print(header)
    print("-" * len(header))
    agreements = 0
    for factory, expected_finest in INFERENCE_CASES:
        spec = factory()
        pre_inference = infer_preconditions(spec)
        declared = {
            action.name: tuple(name for name, _ in action.low_projections)
            for action in spec.actions
        }
        inferred = {
            entry.action: entry.low_projections for entry in pre_inference.preconditions
        }
        # Inferred preconditions must be no stronger than the declared ones
        # on the domain: whenever the declared relational precondition
        # accepts an argument pair, the inferred projections must agree on
        # it too (the search returns the weakest valid assignment).
        from repro.spec.inference import candidate_projections

        weakest_ok = True
        for action in spec.actions:
            atoms = dict(candidate_projections(spec.arg_domain(action.name)))
            chosen = [atoms[name] for name in inferred.get(action.name, ())]
            for arg1 in spec.arg_domain(action.name):
                for arg2 in spec.arg_domain(action.name):
                    if action.precondition(arg1, arg2):
                        if any(projection(arg1) != projection(arg2) for projection in chosen):
                            weakest_ok = False
        abs_inference = infer_abstraction(spec)
        finest = abs_inference.finest.name if abs_inference.finest else "—"
        match = finest == expected_finest
        agreements += match
        declared_text = "; ".join(
            f"{name}:{','.join(atoms) or '∅'}" for name, atoms in sorted(declared.items())
        )
        inferred_text = "; ".join(
            f"{name}:{','.join(atoms) or '∅'}" for name, atoms in sorted(inferred.items())
        )
        print(
            f"{spec.name:18s} {declared_text:26s} {inferred_text:26s} "
            f"{finest:10s} {'yes' if match else 'NO':>6s}"
        )
        assert pre_inference.found
        assert weakest_ok
        assert match, f"{spec.name}: expected finest {expected_finest}, got {finest}"
    print("-" * len(header))
    print(f"{agreements}/{len(INFERENCE_CASES)} abstraction recommendations match Table 1")
    print("=" * len(header))


def test_print_precision_ordering():
    """The precision measure orders the standard abstractions sensibly."""
    spec = list_append_multiset_spec()
    inference = infer_abstraction(spec)
    print("\nabstraction precision on the list domain (finest first):")
    for candidate in inference.valid:
        score = precision(candidate.function, spec.value_domain)
        print(f"  {candidate.name:10s} distinguishes {score} of "
              f"{len(spec.value_domain) * (len(spec.value_domain) - 1) // 2} pairs")
