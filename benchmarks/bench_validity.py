"""Benchmark: resource-specification validity checking (Def. 3.1).

Covers Fig. 4 (both map specifications), Fig. 12 / Fig. 11 (the totalized
producer–consumer specs and the invalid sequence-abstraction variant), and
the whole catalogue: time per spec and the check counts, plus a report
showing which specs fail and with which counterexample.
"""

import pytest

from repro.spec import check_validity
from repro.spec.library import (
    INVALID_SPECS,
    VALID_SPECS,
    map_disjoint_put_spec,
    map_put_keyset_spec,
    multi_producer_sequence_spec,
    producer_consumer_spec,
)


@pytest.mark.parametrize("name", sorted(VALID_SPECS), ids=str)
def test_validity_of_catalogue_spec(benchmark, name):
    spec = VALID_SPECS[name]()
    report = benchmark(check_validity, spec)
    assert report.valid


@pytest.mark.parametrize("name", sorted(INVALID_SPECS), ids=str)
def test_invalidity_detection(benchmark, name):
    spec = INVALID_SPECS[name]()
    report = benchmark(check_validity, spec)
    assert not report.valid


def test_fig4_left_keyset(benchmark):
    """Fig. 4 left: shared puts commute modulo the key-set abstraction."""
    report = benchmark(check_validity, map_put_keyset_spec())
    assert report.valid


def test_fig4_right_disjoint_unique(benchmark):
    """Fig. 4 right: unique range-restricted puts with identity abstraction."""
    report = benchmark(check_validity, map_disjoint_put_spec())
    assert report.valid


def test_fig12_totalized_queue(benchmark):
    """Fig. 12: the totalized queue spec is valid under the produced-multiset
    abstraction with shared roles."""
    report = benchmark(check_validity, producer_consumer_spec(2, 2))
    assert report.valid


def test_fig11_sequence_alpha_rejected(benchmark):
    """Fig. 11 / App. D: with two producers the sequence abstraction fails —
    the checker finds the (Prod 1, Prod 2) reordering counterexample."""
    report = benchmark(check_validity, multi_producer_sequence_spec())
    assert not report.valid
    ce = report.counterexamples[0]
    assert ce.condition == "B"


def test_print_validity_report():
    print("\n=== Resource specification validity (Def. 3.1) ===")
    print(f"{'specification':26s} {'verdict':>9s} {'checks':>8s}  detail")
    for name in sorted(VALID_SPECS):
        report = check_validity(VALID_SPECS[name]())
        print(f"{name:26s} {'valid':>9s} {report.checks_performed:>8d}")
        assert report.valid
    for name in sorted(INVALID_SPECS):
        report = check_validity(INVALID_SPECS[name]())
        detail = str(report.counterexamples[0])[:70]
        print(f"{name:26s} {'INVALID':>9s} {report.checks_performed:>8d}  {detail}")
        assert not report.valid
