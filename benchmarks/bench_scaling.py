"""Benchmark: how the pipeline scales along its three cost axes.

The paper's evaluation fixes two worker threads per example; this
benchmark varies the knobs our stack exposes and reports the growth
curves:

* **worker count** — fork/join counter programs with N = 2..5 workers,
  verified through the desugar-then-verify pipeline (the analogue of
  HyperViper handling more forked threads);
* **validity domain size** — Def. 3.1 checking of the integer-add spec as
  the small-scope value/argument domains grow (the analogue of Z3's
  instantiation workload);
* **solver strategy** — the bounded enumerator with and without the
  DPLL/EUF fast paths on boolean-skeleton-heavy validity queries;
* **interleaving explosion** — the number of executions the exhaustive
  checker enumerates as threads are added, the reason retroactive
  discharge samples schedules instead of enumerating them by default.
"""

import itertools

import pytest

from repro.lang import (
    Alloc,
    Atomic,
    BinOp,
    Fork,
    Join,
    Lit,
    Load,
    Procedure,
    Store,
    ThreadedProgram,
    Var,
    enumerate_threaded_executions,
    seq_all,
)
from repro.smt.solver import check_validity as smt_check
from repro.smt.sorts import BOOL
from repro.smt.terms import App, SymVar, conj, disj, implies, negate
from repro.spec import Action, ResourceSpecification, check_validity
from repro.spec.actions import low_everything
from repro.spec.library import integer_add_spec
from repro.verifier.frontend import verify_threaded


def _incr_worker() -> Procedure:
    body = Atomic(
        seq_all(Load("t", Var("c")), Store(Var("c"), BinOp("+", Var("t"), Lit(1)))),
        action="Add",
        argument=Lit(1),
    )
    return Procedure("worker", ("c",), body)


def _fork_join_counter(workers: int) -> ThreadedProgram:
    statements = [Alloc("c", Lit(0))]
    from repro.lang import Share, Unshare

    statements.append(Share("IntegerAdd"))
    for index in range(workers):
        statements.append(Fork(f"t{index}", "worker", (Var("c"),)))
    for index in range(workers):
        statements.append(Join("worker", Var(f"t{index}")))
    statements.append(Unshare("IntegerAdd"))
    statements.append(Load("result", Var("c")))
    from repro.lang import Print

    statements.append(Print(Var("result")))
    return ThreadedProgram(seq_all(*statements), (_incr_worker(),))


WORKER_COUNTS = (2, 3, 4, 5)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_verify_n_workers(benchmark, workers):
    from repro.verifier import ResourceDecl

    program = _fork_join_counter(workers)
    resources = (ResourceDecl("IntegerAdd", integer_add_spec(), "c"),)
    result = benchmark(
        verify_threaded, f"counter-{workers}w", program, resources, frozenset(), frozenset()
    )
    assert result.verified, result.summary()


def _add_spec_with_domain(size: int) -> ResourceSpecification:
    domain = tuple(range(-(size // 2), size - size // 2))
    add = Action.shared("Add", lambda value, amount: value + amount,
                        low_projections=low_everything())
    return ResourceSpecification(
        name=f"IntegerAdd{size}",
        abstraction=lambda value: value,
        actions=(add,),
        initial_value=0,
        value_domain=domain,
        arg_domains={"Add": domain},
    )


DOMAIN_SIZES = (4, 8, 12, 16)


@pytest.mark.parametrize("size", DOMAIN_SIZES)
def test_validity_domain_scaling(benchmark, size):
    spec = _add_spec_with_domain(size)
    report = benchmark(check_validity, spec)
    assert report.valid


def _skeleton_formula(atoms: int):
    """A propositional tautology over `atoms` comparison atoms:
    (a1 ∧ ... ∧ ak) ⇒ a1 — heavy for enumeration, trivial for DPLL."""
    from repro.smt.sorts import INT

    comparisons = [
        App("<", (SymVar(f"x{i}", INT), SymVar(f"y{i}", INT))) for i in range(atoms)
    ]
    return implies(conj(*comparisons), comparisons[0])


SKELETON_SIZES = (2, 4, 6)


@pytest.mark.parametrize("atoms", SKELETON_SIZES)
def test_solver_with_sat_fast_path(benchmark, atoms):
    formula = _skeleton_formula(atoms)
    result = benchmark(smt_check, formula)
    assert result.verdict.value == "proved"


@pytest.mark.parametrize("atoms", SKELETON_SIZES)
def test_solver_enumeration_only(benchmark, atoms):
    formula = _skeleton_formula(atoms)
    result = benchmark(smt_check, formula, use_sat=False)
    assert result.is_valid()


def test_print_scaling_report():
    import time

    from repro.verifier import ResourceDecl

    print("\n=== scaling: fork/join worker count (full verification) ===")
    resources = (ResourceDecl("IntegerAdd", integer_add_spec(), "c"),)
    for workers in WORKER_COUNTS:
        program = _fork_join_counter(workers)
        start = time.perf_counter()
        result = verify_threaded(
            f"counter-{workers}w", program, resources, frozenset(), frozenset()
        )
        elapsed = time.perf_counter() - start
        print(f"  {workers} workers: {elapsed * 1000:7.1f} ms  "
              f"({'VERIFIED' if result.verified else 'REJECTED'})")
        assert result.verified

    print("\n=== scaling: validity-check domain size (Def. 3.1) ===")
    for size in DOMAIN_SIZES:
        spec = _add_spec_with_domain(size)
        start = time.perf_counter()
        report = check_validity(spec)
        elapsed = time.perf_counter() - start
        print(f"  |domain| = {size:2d}: {report.checks_performed:7d} checks "
              f"in {elapsed * 1000:7.1f} ms")

    print("\n=== scaling: solver fast path vs enumeration ===")
    for atoms in SKELETON_SIZES:
        formula = _skeleton_formula(atoms)
        start = time.perf_counter()
        with_sat = smt_check(formula)
        time_sat = time.perf_counter() - start
        start = time.perf_counter()
        without = smt_check(formula, use_sat=False)
        time_enum = time.perf_counter() - start
        print(f"  {atoms} atoms: SAT path {time_sat * 1000:7.2f} ms "
              f"({with_sat.verdict.value}); enumeration {time_enum * 1000:7.2f} ms "
              f"({without.verdict.value}, {without.checked_assignments} assignments)")

    print("\n=== scaling: interleavings enumerated (exhaustive checking) ===")
    for workers in (1, 2, 3):
        program = _fork_join_counter(workers)
        count = sum(1 for _ in enumerate_threaded_executions(program, max_steps=5_000))
        print(f"  {workers} worker(s): {count} complete interleavings")
