"""Ablation benchmark: abstract vs. concrete commutativity.

The paper's key generalization is requiring commutativity only *modulo an
abstraction* (Sec. 2.3).  This ablation quantifies what that buys: for
every catalogue specification we re-check validity with the abstraction
replaced by the identity (concrete commutativity) and count how many of
the evaluation's designs survive.

Expected shape (matches the paper's 'Abstraction' column): the specs whose
Table-1 abstraction is 'None' already commute concretely; every spec with
a proper abstraction (mean, multiset, length, sum, key set, constant,
produced sequence/multiset) fails under the identity — i.e. roughly half
of the evaluation is *only* verifiable thanks to abstract commutativity.

A second ablation removes the retroactive-obligation mechanism: case
studies that rely on it (blocking guards, pipeline's retroactive
precondition) can no longer be verified.
"""

import dataclasses

import pytest

from repro.casestudies import TABLE1_CASES
from repro.spec import check_validity
from repro.spec.library import VALID_SPECS
from repro.verifier.frontend import verify

# Specs that survive with the identity abstraction: either their declared
# abstraction is already the identity, or (Queue1P1C) the App. D
# totalization makes the unique produce/consume pair commute concretely —
# unique actions never have to commute with themselves (Sec. 2.7).
IDENTITY_ALPHA = {
    "CounterInc",
    "IntegerAdd",
    "SetAdd",
    "MapDisjointPut",
    "MapHistogram",
    "MapAddValue",
    "MapPutMax",
    "Queue1P1C",
}


def strip_abstraction(spec):
    """The ablated spec: identity abstraction (concrete commutativity)."""
    return dataclasses.replace(spec, name=spec.name + "-concrete", abstraction=lambda v: v)


@pytest.mark.parametrize("name", sorted(VALID_SPECS), ids=str)
def test_concrete_commutativity_ablation(benchmark, name):
    spec = VALID_SPECS[name]()
    report = benchmark(check_validity, strip_abstraction(spec))
    if name in IDENTITY_ALPHA:
        assert report.valid, f"{name} commutes concretely"
    else:
        assert not report.valid, f"{name} should need its abstraction"


def test_print_ablation_report():
    print("\n=== Ablation: abstract vs concrete commutativity ===")
    survived = 0
    for name in sorted(VALID_SPECS):
        spec = VALID_SPECS[name]()
        abstract_ok = check_validity(spec).valid
        concrete_ok = check_validity(strip_abstraction(spec)).valid
        survived += concrete_ok
        marker = "" if concrete_ok else "   <- needs abstraction"
        print(f"  {name:26s} abstract={abstract_ok!s:5s} concrete={concrete_ok!s:5s}{marker}")
    total = len(VALID_SPECS)
    print(f"\n{survived}/{total} designs commute concretely; "
          f"{total - survived}/{total} verifiable ONLY via abstract commutativity")
    assert survived == len(IDENTITY_ALPHA)


def test_print_retroactive_ablation():
    """Without the retroactive mechanism (no bounded discharge), the case
    studies with deferred obligations can no longer be verified."""
    print("\n=== Ablation: retroactive obligation checking disabled ===")
    lost = []
    for case in TABLE1_CASES:
        result = verify(case.program_spec(), bounded_instances=None)
        full = case.verify()
        assert full.verified
        status = "still verified" if result.verified else "LOST"
        if not result.verified:
            lost.append(case.name)
        print(f"  {case.name:28s} {status}")
    print(f"\n{len(lost)} case studies depend on retroactive checking: {lost}")
    assert "Pipeline" in lost
    assert "Sales-By-Region" in lost
