"""Benchmark runner: the optimized SMT core vs the retained reference.

Times the seed-equivalent reference path (:mod:`repro.smt.reference`:
recursive clause-copying DPLL, interpreted AST-walking enumeration,
non-incremental DPLL(T), no caches) against the optimized core
(:mod:`repro.smt`: hash-consed terms, watched-literal incremental
DPLL(T), compiled evaluation, cross-call validity cache) on three
workloads and writes ``BENCH_smt.json``:

* ``boolean_skeleton`` — validity of boolean-skeleton-heavy formulas
  along bench_scaling's "solver strategy" axis, both with the SAT fast
  path (watched vs recursive DPLL) and enumeration-only (compiled vs
  interpreted evaluation); the ``cdcl_search`` strategy adds hard
  near-phase-transition random 3-CNF refutations (as negated terms
  over comparison atoms) where the flat-arena CDCL core's conflict
  analysis, not just propagation, carries the load;
* ``clause_db`` — learned-clause database management in isolation:
  the same hard UNSAT instances and a guarded lemma-accumulation
  loop solved with reduceDB off (reference) vs on (optimized), so
  the LBD-scored eviction policy's effect is measured directly;
* ``repeated_vc`` — the same conformance VCs discharged over and over,
  as vcgen and spec inference do across proof outlines (cross-call
  cache vs recomputation);
* ``dpllt_incremental`` — EUF formulas whose boolean abstraction has
  exponentially many models, all theory-inconsistent: the CDCL core's
  theory propagation refutes them mid-search (``models_blocked`` stays
  0) where the reference blocks model after model;
* ``difference_logic`` — order-atom VCs (transitivity chains, mixed
  equality/order chains, negated negative cycles) that the seed could
  only accept by bounded enumeration: the difference-logic propagator
  (PR 5) decides them in the CDCL core with zero blocked models, so
  acceptance is PROVED instead of BOUNDED (agreement on this axis is
  *acceptance* agreement — the strengthening is the point);
* ``spec_inference`` — the ROADMAP's spec-inference axis
  (``bench_inference.py`` workload): precondition + abstraction
  inference over catalogue specifications, cold caches vs warm caches
  (the repeated-discharge profile of a long-lived verifier process);
* ``incremental_vc`` — batches of structurally related VCs discharged
  fresh-per-VC vs through one shared
  :class:`repro.smt.session.SolverSession` (assumption-activated VCs
  over one clause database, retired after each query);
* ``persistent_cache`` — a VC corpus run cold (empty store) vs warm
  (store saved, reloaded into a cold process state, and replayed):
  the ``--cache-dir`` profile of repeated CLI/CI invocations;
* ``static_prepass`` — end-to-end corpus verification with the
  information-flow fast path (:mod:`repro.analysis`) enabled vs
  disabled: prepass-secure cases skip VC generation and SMT entirely
  (solver query counters prove it), everything else falls through to
  the full pipeline with identical verdict surfaces;
* ``fuzz_corpus`` — the promoted fuzz families
  (:mod:`repro.casestudies.generated`: session store, rate limiter,
  salary analytics) with the corpus size as the scaling parameter:
  empirical noninterference checking (cost grows with the inputs) vs
  static verification (cost is size-independent — the proof is over
  the spec); agreement here is the soundness contract the fuzzer
  enforces case by case.

Every timed formula is checked for *verdict agreement* between the two
paths; the JSON records per-case timings, per-workload speedups and the
agreement flag.  Run with ``--quick`` for a CI smoke pass and
``--compare BENCH_smt.json`` to print per-axis deltas against a
committed report (regressions become visible in the CI job log).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.lang.ast import Atomic, BinOp, If, Lit, Load, Seq, Store, Var  # noqa: E402
from repro.smt import (  # noqa: E402
    App,
    Const,
    INT,
    SymVar,
    check_validity,
    clear_all_caches,
    conj,
    disj,
    dpllt_equality,
    eq,
    implies,
    negate,
)
from repro.smt import reference  # noqa: E402
from repro.smt.cache import get_default  # noqa: E402

VALIDITY_CACHE = get_default()
from repro.smt.session import SolverSession  # noqa: E402
from repro.spec import Action, ResourceSpecification  # noqa: E402
from repro.spec.library import integer_add_spec  # noqa: E402
from repro.verifier.declarations import ResourceDecl  # noqa: E402
from repro.verifier.vcgen import CELL, conformance_vc, _spec_discharge_params  # noqa: E402
from repro.smt.sorts import Scope  # noqa: E402


# ---------------------------------------------------------------------------
# Workload formulas
# ---------------------------------------------------------------------------


def skeleton_formula(atoms: int, salt: str = ""):
    """bench_scaling's boolean-skeleton tautology: (a1 ∧ … ∧ ak) ⇒ a1,
    over ``<`` comparison atoms — heavy for enumeration, easy for DPLL."""
    comparisons = [
        App("<", (SymVar(f"x{salt}{i}", INT), SymVar(f"y{salt}{i}", INT)))
        for i in range(atoms)
    ]
    return implies(conj(*comparisons), comparisons[0])


def skeleton_chain(atoms: int, salt: str = ""):
    """A deeper tautology: ⋀(ai ⇒ ai+1) ∧ a0 ⇒ ak — propagation-heavy."""
    comparisons = [
        App("<", (SymVar(f"p{salt}{i}", INT), SymVar(f"q{salt}{i}", INT)))
        for i in range(atoms + 1)
    ]
    links = conj(*(implies(comparisons[i], comparisons[i + 1]) for i in range(atoms)))
    return implies(conj(links, comparisons[0]), comparisons[atoms])


def blocked_model_formula(pigeons: int, salt: str = ""):
    """An EUF pigeonhole: n pigeons into the two holes {y, z}, all
    pigeons pairwise distinct.  Propositionally satisfiable in 2^n ways,
    but *every* boolean model is theory-inconsistent (two pigeons always
    share a hole), so DPLL(T) must block its way to UNSAT — the workload
    that punishes re-propagating the growing clause list from zero."""
    xs = [SymVar(f"w{salt}{i}", INT) for i in range(pigeons)]
    y = SymVar(f"y{salt}", INT)
    z = SymVar(f"z{salt}", INT)
    parts = [disj(eq(x, y), eq(x, z)) for x in xs]
    parts.extend(
        negate(eq(xs[i], xs[j]))
        for i in range(pigeons)
        for j in range(i + 1, pigeons)
    )
    return conj(*parts)


def hard_cnf_clauses(variables: int, seed: int, ratio: float = 4.6):
    """A seeded random 3-CNF at the hard clause/variable ratio (~4.3 is
    the phase transition; 4.6 lands reliably UNSAT with a non-trivial
    refutation).  These instances force genuine CDCL search — thousands
    of conflicts, deep backjumps, a growing learned-clause DB."""
    import random as _random

    rng = _random.Random(seed)
    clauses = []
    for _ in range(int(variables * ratio)):
        chosen = rng.sample(range(1, variables + 1), 3)
        clauses.append(
            tuple(v if rng.random() < 0.5 else -v for v in chosen)
        )
    return clauses


def hard_cnf_formula(variables: int, seed: int, salt: str = ""):
    """The refutation of :func:`hard_cnf_clauses` as a term: ¬⋀clauses
    over independent ``<`` comparison atoms.  Valid iff the CNF is
    UNSAT, and every atom pair is theory-free, so both paths decide it
    purely by propositional search — a direct head-to-head between the
    recursive reference DPLL and the flat-arena CDCL core."""
    atoms = {
        v: App("<", (SymVar(f"h{salt}x{v}", INT), SymVar(f"h{salt}y{v}", INT)))
        for v in range(1, variables + 1)
    }
    clause_terms = [
        disj(*(atoms[l] if l > 0 else negate(atoms[-l]) for l in clause))
        for clause in hard_cnf_clauses(variables, seed)
    ]
    # Balanced conjunction: ``conj`` nests left-associatively, and a
    # 600-clause chain overflows the recursive simplifier/compiler.
    while len(clause_terms) > 1:
        clause_terms = [
            App("and", (clause_terms[i], clause_terms[i + 1]))
            if i + 1 < len(clause_terms)
            else clause_terms[i]
            for i in range(0, len(clause_terms), 2)
        ]
    return negate(clause_terms[0])


def conformance_vcs():
    """Real conformance VCs from the verifier pipeline: an increment
    body against IntegerAdd, and a branching max body against IntegerMax."""
    incr_body = Seq(
        Load("t", Var("c")), Store(Var("c"), BinOp("+", Var("t"), Lit(1)))
    )
    incr = Atomic(incr_body, action="Add", argument=Lit(1))
    add_decl = ResourceDecl("IntegerAdd", integer_add_spec(), "c")

    max_spec = ResourceSpecification(
        name="IntegerMax",
        abstraction=lambda value: value,
        actions=(Action.shared("Max", lambda value, m: value if value > m else m),),
        initial_value=0,
        value_domain=tuple(range(-2, 4)),
        arg_domains={"Max": tuple(range(-2, 4))},
    )
    max_body = Seq(
        Load("t", Var("c")),
        If(
            BinOp(">", Var("m"), Var("t")),
            Store(Var("c"), Var("m")),
            Store(Var("c"), Var("t")),
        ),
    )
    maxi = Atomic(max_body, action="Max", argument=Var("m"))
    max_decl = ResourceDecl("IntegerMax", max_spec, "c")

    cases = []
    for decl, atomic in ((add_decl, incr), (max_decl, maxi)):
        vc = conformance_vc(decl, atomic)
        extra_ints, cell_sort = _spec_discharge_params(decl.spec)
        scope = Scope().widen(extra_ints)
        sorts = {CELL: cell_sort}
        cases.append((f"{decl.name}/{vc.action}", vc.formula, scope, sorts))
    return cases


# ---------------------------------------------------------------------------
# Timing helpers
# ---------------------------------------------------------------------------


def timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result


def bench_boolean_skeleton(quick: bool):
    sat_sizes = (8, 120) if quick else (8, 20, 60, 160, 320)
    enum_sizes = (2,) if quick else (2, 3)
    cdcl_sizes = (60,) if quick else (100, 120, 140)
    base_reps = 1 if quick else 3
    cases = []
    for use_sat, sizes, strategy in (
        (True, sat_sizes, "dpll_fast_path"),
        (False, enum_sizes, "bounded_enumeration"),
        (True, cdcl_sizes, "cdcl_search"),
    ):
        # Hard refutations take seconds on the reference path; one rep
        # is plenty (the instance is seeded, not timing-noise-sized).
        reps = 1 if strategy == "cdcl_search" else base_reps
        for atoms in sizes:
            ref_total = new_total = 0.0
            agree = True
            verdict = None
            for rep in range(reps):
                # Distinct variable names per repetition: every run pays
                # the full cold path (no intern/memo reuse across reps).
                salt = f"s{strategy}{atoms}r{rep}_"
                if strategy == "cdcl_search":
                    build = lambda n, s: hard_cnf_formula(n, seed=0, salt=s)
                elif use_sat and atoms >= 20:
                    build = skeleton_chain
                else:
                    build = skeleton_formula
                formula = build(atoms, salt)
                ref_elapsed, ref_result = timed(
                    reference.check_validity_reference, formula, use_sat=use_sat
                )
                clear_all_caches()
                formula = build(atoms, salt)
                new_elapsed, new_result = timed(
                    check_validity, formula, use_sat=use_sat
                )
                ref_total += ref_elapsed
                new_total += new_elapsed
                agree = agree and (ref_result.verdict == new_result.verdict)
                verdict = new_result.verdict.value
            cases.append(
                {
                    "strategy": strategy,
                    "atoms": atoms,
                    "reference_s": round(ref_total / reps, 6),
                    "optimized_s": round(new_total / reps, 6),
                    "speedup": round(ref_total / new_total, 2) if new_total else None,
                    "verdict": verdict,
                    "verdicts_agree": agree,
                }
            )
    return cases


def bench_clause_db(quick: bool):
    """Learned-clause DB management in isolation: identical instances
    solved by :class:`~repro.smt.dpll.WatchedSolver` with reduceDB off
    (reference) vs on (optimized).

    Two workload shapes:

    * ``hard_unsat`` — seeded near-phase-transition 3-CNF refutations
      where search learns thousands of clauses; without eviction every
      one of them stays on the watch lists until the end;
    * ``lemma_accumulation`` — the session profile: activation-guarded
      hard queries stacked on one shared solver without retirement, so
      stale lemmas from earlier queries bloat later ones.

    Agreement here is *verdict* agreement between the two configurations
    (the eviction policy must never flip SAT/UNSAT), and the per-case
    stats expose what the policy actually did (reductions fired, live
    learned clauses at the end).
    """
    from repro.smt.dpll import WatchedSolver

    hard = ((140, (0,)),) if quick else ((185, (0, 1, 2)),)
    cases = []
    for variables, seeds in hard:
        for seed in seeds:
            clauses = hard_cnf_clauses(variables, seed)
            row = {}
            for label, flag in (("reference", False), ("optimized", True)):
                solver = WatchedSolver(clauses, reduce_db=flag)
                elapsed, model = timed(solver.solve)
                stats = solver.clause_db_stats()
                row[label] = {
                    "elapsed": elapsed,
                    "unsat": model is None,
                    "conflicts": solver.conflicts,
                    "live_learned": stats["live_learned"],
                    "reductions": stats["reductions"],
                }
            cases.append(
                {
                    "workload": "hard_unsat",
                    "variables": variables,
                    "seed": seed,
                    "reference_s": round(row["reference"]["elapsed"], 6),
                    "optimized_s": round(row["optimized"]["elapsed"], 6),
                    "speedup": round(
                        row["reference"]["elapsed"] / row["optimized"]["elapsed"], 2
                    )
                    if row["optimized"]["elapsed"]
                    else None,
                    "reference_live_learned": row["reference"]["live_learned"],
                    "optimized_live_learned": row["optimized"]["live_learned"],
                    "reductions": row["optimized"]["reductions"],
                    "verdicts_agree": row["reference"]["unsat"]
                    == row["optimized"]["unsat"],
                }
            )

    queries, variables = (4, 90) if quick else (8, 120)
    row = {}
    for label, flag in (("reference", False), ("optimized", True)):
        solver = WatchedSolver(reduce_db=flag)
        total = 0.0
        verdicts = []
        for query in range(queries):
            guard = 10_000 + query
            for clause in hard_cnf_clauses(variables, seed=100 + query, ratio=4.5):
                solver.add_clause(tuple(list(clause) + [-guard]))
            elapsed, model = timed(solver.solve, [guard])
            total += elapsed
            verdicts.append(model is None)
        stats = solver.clause_db_stats()
        row[label] = {
            "elapsed": total,
            "verdicts": verdicts,
            "live_learned": stats["live_learned"],
            "reductions": stats["reductions"],
        }
    cases.append(
        {
            "workload": "lemma_accumulation",
            "variables": variables,
            "queries": queries,
            "reference_s": round(row["reference"]["elapsed"], 6),
            "optimized_s": round(row["optimized"]["elapsed"], 6),
            "speedup": round(
                row["reference"]["elapsed"] / row["optimized"]["elapsed"], 2
            )
            if row["optimized"]["elapsed"]
            else None,
            "reference_live_learned": row["reference"]["live_learned"],
            "optimized_live_learned": row["optimized"]["live_learned"],
            "reductions": row["optimized"]["reductions"],
            "verdicts_agree": row["reference"]["verdicts"]
            == row["optimized"]["verdicts"],
        }
    )
    return cases


def bench_repeated_vc(quick: bool):
    repeats = 10 if quick else 40
    cases = []
    for name, formula, scope, sorts in conformance_vcs():
        ref_total = 0.0
        ref_verdicts = []
        for _ in range(repeats):
            elapsed, result = timed(
                reference.check_validity_reference, formula, scope=scope, sorts=sorts
            )
            ref_total += elapsed
            ref_verdicts.append(result.verdict)
        clear_all_caches()
        new_total = 0.0
        new_verdicts = []
        for _ in range(repeats):
            elapsed, result = timed(
                check_validity, formula, scope=scope, sorts=sorts
            )
            new_total += elapsed
            new_verdicts.append(result.verdict)
        cases.append(
            {
                "vc": name,
                "repeats": repeats,
                "reference_s": round(ref_total, 6),
                "optimized_s": round(new_total, 6),
                "speedup": round(ref_total / new_total, 2) if new_total else None,
                "verdict": new_verdicts[0].value,
                "verdicts_agree": ref_verdicts == new_verdicts,
                "cache_hits": VALIDITY_CACHE.hits,
            }
        )
    return cases


def bench_dpllt_incremental(quick: bool):
    sizes = (5,) if quick else (6, 7)
    cases = []
    for chains in sizes:
        formula = blocked_model_formula(chains, salt=f"ref{chains}_")
        ref_elapsed, ref_result = timed(reference.dpllt_equality_reference, formula)
        clear_all_caches()
        formula = blocked_model_formula(chains, salt=f"ref{chains}_")
        new_elapsed, new_result = timed(dpllt_equality, formula)
        cases.append(
            {
                "chains": chains,
                "reference_s": round(ref_elapsed, 6),
                "optimized_s": round(new_elapsed, 6),
                "speedup": round(ref_elapsed / new_elapsed, 2) if new_elapsed else None,
                "reference_blocked": ref_result.models_blocked,
                "optimized_blocked": new_result.models_blocked,
                "theory_propagations": new_result.theory_propagations,
                "verdicts_agree": ref_result.satisfiable == new_result.satisfiable,
            }
        )
    return cases


def order_chain_formula(links: int, salt: str = ""):
    """⋀ xi <= xi+1 ⇒ x0 <= xn — valid only through order reasoning
    (not propositionally), so the seed must enumerate 6^(links+1)
    assignments while the difference-logic propagator proves it."""
    xs = [SymVar(f"oc{salt}{i}", INT) for i in range(links + 1)]
    body = conj(*(App("<=", (xs[i], xs[i + 1])) for i in range(links)))
    return implies(body, App("<=", (xs[0], xs[links])))


def mixed_chain_formula(links: int, salt: str = ""):
    """Alternating ==/<= links: the equality and difference propagators
    must cooperate through the shared trail to prove the conclusion."""
    xs = [SymVar(f"mc{salt}{i}", INT) for i in range(links + 1)]
    parts = [
        eq(xs[i], xs[i + 1]) if i % 2 == 0 else App("<=", (xs[i], xs[i + 1]))
        for i in range(links)
    ]
    return implies(conj(*parts), App("<=", (xs[0], xs[links])))


def negated_cycle_formula(size: int, salt: str = ""):
    """¬(x0 < x1 < … < x0): valid because the cycle is a negative cycle
    in the difference graph — one theory conflict for the CDCL core."""
    xs = [SymVar(f"nc{salt}{i}", INT) for i in range(size)]
    cycle = conj(*(App("<", (xs[i], xs[(i + 1) % size])) for i in range(size)))
    return negate(cycle)


def bench_difference_logic(quick: bool):
    """The mixed-fragment axis (PR 5 tentpole): order-atom VCs decided
    by difference-logic theory propagation vs the seed's enumeration.

    The optimized core *soundly strengthens* these verdicts (PROVED
    where the seed bounds out), so ``verdicts_agree`` on this axis
    records acceptance agreement plus the absence of blocked models."""
    families = (
        (("order_chain", order_chain_formula, 4),)
        if quick
        else (
            ("order_chain", order_chain_formula, 5),
            ("order_chain", order_chain_formula, 7),
            ("mixed_chain", mixed_chain_formula, 6),
            ("negated_cycle", negated_cycle_formula, 6),
        )
    )
    cases = []
    for name, build, size in families:
        salt = f"{name}{size}_"
        formula = build(size, salt)
        ref_elapsed, ref_result = timed(
            reference.check_validity_reference, formula
        )
        clear_all_caches()
        formula = build(size, salt)
        new_elapsed, new_result = timed(check_validity, formula, use_cache=False)
        # The pure-DL refutation of the negated formula must never fall
        # back to model blocking (a None verdict — budget exhaustion —
        # counts as disagreement rather than crashing the run).
        theory = dpllt_equality(negate(build(size, f"blk{salt}")))
        blocked = theory.models_blocked if theory is not None else None
        refuted = theory is not None and not theory.satisfiable
        agree = (
            new_result.is_valid() == ref_result.is_valid()
            and blocked == 0
            and refuted
        )
        cases.append(
            {
                "family": name,
                "size": size,
                "reference_s": round(ref_elapsed, 6),
                "optimized_s": round(new_elapsed, 6),
                "speedup": round(ref_elapsed / new_elapsed, 2)
                if new_elapsed
                else None,
                "reference_verdict": ref_result.verdict.value,
                "optimized_verdict": new_result.verdict.value,
                "optimized_blocked": blocked,
                "verdicts_agree": agree,
            }
        )
    return cases


def bench_spec_inference(quick: bool):
    """The ROADMAP's spec-inference axis: infer preconditions and the
    finest valid abstraction for catalogue specs, cold vs warm caches."""
    from repro.spec.inference import infer_abstraction, infer_preconditions
    from repro.spec.library import (
        counter_increment_spec,
        integer_add_spec,
        list_append_multiset_spec,
        map_put_keyset_spec,
        set_add_spec,
    )

    factories = (
        (counter_increment_spec, integer_add_spec)
        if quick
        else (
            counter_increment_spec,
            integer_add_spec,
            set_add_spec,
            map_put_keyset_spec,
            list_append_multiset_spec,
        )
    )

    def run(spec):
        preconditions = infer_preconditions(spec)
        abstraction = infer_abstraction(spec)
        fingerprint = (
            preconditions.found,
            tuple(
                (entry.action, tuple(entry.low_projections))
                for entry in preconditions.preconditions
            ),
            abstraction.finest.name if abstraction.finest else None,
        )
        return fingerprint

    cases = []
    for factory in factories:
        spec = factory()
        clear_all_caches()
        cold_elapsed, cold = timed(run, spec)
        warm_elapsed, warm = timed(run, spec)
        cases.append(
            {
                "spec": spec.name,
                "reference_s": round(cold_elapsed, 6),
                "optimized_s": round(warm_elapsed, 6),
                "speedup": round(cold_elapsed / warm_elapsed, 2)
                if warm_elapsed
                else None,
                "finest_abstraction": cold[2],
                "verdicts_agree": cold == warm,
            }
        )
    return cases


def related_skeleton_family(count, width, salt=""):
    """Structurally related VCs: one big shared conjunction, a per-VC
    conclusion — the repeated-structure profile of a proof outline."""
    atoms = [
        App("<", (SymVar(f"iv{salt}{j}", INT), SymVar(f"jv{salt}{j}", INT)))
        for j in range(width)
    ]
    shared = conj(*atoms)
    return [implies(shared, atoms[i % width]) for i in range(count)]


def related_euf_family(count, width, salt=""):
    """Related EUF VCs: a shared equality chain entails each link's
    transitive consequence."""
    xs = [SymVar(f"ev{salt}{j}", INT) for j in range(width + 1)]
    chain = conj(*(eq(xs[j], xs[j + 1]) for j in range(width)))
    return [implies(chain, eq(xs[0], xs[i % width + 1])) for i in range(count)]


def bench_incremental_vc(quick):
    """Fresh solver per VC vs one shared SolverSession (the tentpole):
    assumption-activated VCs over one clause database, learned clauses
    and Tseitin definitions shared, activation literals retired."""
    families = (
        (("skeleton", 12, 48),)
        if quick
        else (
            ("skeleton", 40, 120),
            ("skeleton_wide", 24, 320),
            ("euf_chain", 30, 20),
        )
    )

    def build(kind, count, width, salt):
        if kind.startswith("skeleton"):
            return related_skeleton_family(count, width, salt)
        return related_euf_family(count, width, salt)

    def run_fresh(formulas):
        return [check_validity(f, use_cache=False) for f in formulas]

    def run_session(formulas):
        session = SolverSession()
        return (
            [check_validity(f, use_cache=False, session=session) for f in formulas],
            session,
        )

    cases = []
    for kind, count, width, in families:
        salt = f"{kind}{count}x{width}_"
        clear_all_caches()
        formulas = build(kind, count, width, salt)
        fresh_elapsed, fresh_results = timed(run_fresh, formulas)
        clear_all_caches()
        formulas = build(kind, count, width, salt)
        session_elapsed, (session_results, session) = timed(run_session, formulas)
        agree = all(
            a.verdict == b.verdict and a.model == b.model
            for a, b in zip(fresh_results, session_results)
        )
        stats = session.stats()
        cases.append(
            {
                "family": kind,
                "vcs": count,
                "width": width,
                "reference_s": round(fresh_elapsed, 6),
                "optimized_s": round(session_elapsed, 6),
                "speedup": round(fresh_elapsed / session_elapsed, 2)
                if session_elapsed
                else None,
                "verdict": fresh_results[0].verdict.value,
                "verdicts_agree": agree,
                "definition_hits": stats["definition_hits"],
                "retired_clauses": stats["retired_clauses"],
                "live_clauses": stats["live_clauses"],
            }
        )
    return cases


def bench_persistent_cache(quick):
    """Cold corpus run (empty persistent store) vs warm replay (store
    saved, process state cleared, store reloaded) — the ``--cache-dir``
    profile of repeated CLI/CI invocations."""
    import tempfile
    from pathlib import Path as _Path

    entries = []
    for name, formula, scope, sorts in conformance_vcs():
        entries.append((name, formula, scope, sorts))
    count = 6 if quick else 16
    for index, formula in enumerate(related_skeleton_family(count, 24, "pc_")):
        entries.append((f"skeleton/{index}", formula, None, None))
    for index, formula in enumerate(related_euf_family(count, 10, "pc_")):
        entries.append((f"euf/{index}", formula, None, None))

    def run_corpus():
        return [
            check_validity(formula, scope=scope, sorts=sorts).verdict.value
            for _name, formula, scope, sorts in entries
        ]

    with tempfile.TemporaryDirectory() as directory:
        store = _Path(directory) / "validity_cache.json"
        VALIDITY_CACHE.forget_persistent()
        clear_all_caches()
        VALIDITY_CACHE.enable_persistence()
        cold_elapsed, cold = timed(run_corpus)
        saved = VALIDITY_CACHE.save(store)

        VALIDITY_CACHE.forget_persistent()
        clear_all_caches()
        loaded = VALIDITY_CACHE.load(store)
        warm_elapsed, warm = timed(run_corpus)
        hits = VALIDITY_CACHE.stats()["persistent_hits"]
        VALIDITY_CACHE.forget_persistent()
        clear_all_caches()

    return [
        {
            "corpus": f"{len(entries)} VCs (conformance + skeleton + EUF)",
            "reference_s": round(cold_elapsed, 6),
            "optimized_s": round(warm_elapsed, 6),
            "speedup": round(cold_elapsed / warm_elapsed, 2) if warm_elapsed else None,
            "saved_entries": saved,
            "loaded_entries": loaded,
            "persistent_hits": hits,
            "hit_rate": round(hits / len(entries), 3),
            "verdicts_agree": cold == warm,
        }
    ]


def bench_static_prepass(quick):
    """The static pre-verification axis (repro.analysis): end-to-end
    corpus verification with the information-flow fast path enabled vs
    disabled.  For prepass-secure cases the fast path skips VC
    generation and SMT entirely; for everything else it must fall
    through with no measurable verdict drift.  ``verdicts_agree`` here
    is the differential contract: identical ``(verified, errors)``
    surfaces on every case."""
    from repro import api
    from repro.casestudies import ALL_CASES

    names = (
        ("Sequential-Tally", "Figure 2", "Email-Metadata")
        if quick
        else tuple(case.name for case in ALL_CASES)
    )

    cases = []
    for name in names:
        clear_all_caches()
        full_session = SolverSession()
        full_elapsed, full = timed(
            api.execute,
            api.VerificationRequest(case=name, static_prepass=False),
            session=full_session,
        )
        clear_all_caches()
        fast_session = SolverSession()
        fast_elapsed, fast = timed(
            api.execute,
            api.VerificationRequest(case=name),
            session=fast_session,
        )
        discharged = fast.prepass == "secure"
        cases.append(
            {
                "case": name,
                "reference_s": round(full_elapsed, 6),
                "optimized_s": round(fast_elapsed, 6),
                "speedup": round(full_elapsed / fast_elapsed, 2)
                if fast_elapsed
                else None,
                "verified": fast.verified,
                "prepass": fast.prepass,
                "discharged_solver_free": discharged,
                "smt_queries_full": full_session.stats()["queries"],
                "smt_queries_fast": fast_session.stats()["queries"],
                "verdicts_agree": (
                    (fast.verified, fast.errors) == (full.verified, full.errors)
                    and (not discharged or fast_session.stats()["queries"] == 0)
                ),
            }
        )
    return cases


def bench_fuzz_corpus(quick):
    """The fuzz-corpus axis (promoted generated families): static
    verification vs empirical noninterference checking with the corpus
    size ``n`` as the scaling parameter.  The empirical (reference) cost
    grows with the input size — more loop iterations per execution and
    longer traces per schedule — while the verifier (optimized) cost is
    essentially size-independent: the proof is over the *spec*, not the
    inputs.  ``verdicts_agree`` is the soundness contract on this axis:
    every verified case must also be empirically noninterferent."""
    from repro.casestudies.generated import GENERATED_FAMILIES
    from repro.security.noninterference import check_noninterference

    sizes = (4,) if quick else (4, 8, 12)
    schedules = 4 if quick else 8

    cases = []
    session = SolverSession()
    for family, factory in sorted(GENERATED_FAMILIES.items()):
        for n in sizes:
            case = factory(n)
            empirical_elapsed, report = timed(
                check_noninterference,
                case.program(),
                case.instances(),
                exhaustive=False,
                schedules=schedules,
                seed=0,
            )
            verify_elapsed, result = timed(case.verify, session=session)
            cases.append(
                {
                    "family": family,
                    "case": case.name,
                    "corpus_size": n,
                    "reference_s": round(empirical_elapsed, 6),
                    "optimized_s": round(verify_elapsed, 6),
                    "speedup": round(empirical_elapsed / verify_elapsed, 2)
                    if verify_elapsed
                    else None,
                    "verified": result.verified,
                    "empirical_secure": report.secure,
                    "executions": report.executions_checked,
                    "verdicts_agree": result.verified and report.secure,
                }
            )
    return cases


def summarize(cases):
    ref = sum(case["reference_s"] for case in cases)
    new = sum(case["optimized_s"] for case in cases)
    return {
        "reference_s": round(ref, 6),
        "optimized_s": round(new, 6),
        "speedup": round(ref / new, 2) if new else None,
        "verdicts_agree": all(case["verdicts_agree"] for case in cases),
    }


def print_deltas(committed, report):
    """Per-axis deltas of the fresh report against a committed one, so a
    regression is visible directly in the CI job log."""
    print("== per-axis deltas vs committed report ==")
    if committed.get("quick") != report.get("quick"):
        print(
            "  (note: case sizes differ — committed quick="
            f"{committed.get('quick')}, current quick={report.get('quick')}; "
            "deltas are indicative, not like-for-like)"
        )
    for name, workload in report["workloads"].items():
        old = committed.get("workloads", {}).get(name)
        if old is None:
            print(f"  {name:>20s}: new axis (no committed numbers)")
            continue
        old_speedup = old.get("speedup")
        new_speedup = workload.get("speedup")
        line = f"  {name:>20s}: speedup x{old_speedup} -> x{new_speedup}"
        if old_speedup and new_speedup:
            line += f"  ({new_speedup / old_speedup - 1.0:+.0%})"
        print(line)
        if name in ("dpllt_incremental", "difference_logic"):
            old_blocked = sum(
                case.get("optimized_blocked") or 0 for case in old.get("cases", ())
            )
            new_blocked = sum(
                case.get("optimized_blocked") or 0 for case in workload["cases"]
            )
            print(
                f"  {'':>20s}  models_blocked {old_blocked} -> {new_blocked}"
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_smt.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--compare",
        default=None,
        help="committed BENCH_smt.json to print per-axis deltas against",
    )
    args = parser.parse_args(argv)

    output = Path(args.output)
    if not output.parent.is_dir():
        parser.error(f"--output directory does not exist: {output.parent}")
    committed = None
    if args.compare:
        compare_path = Path(args.compare)
        if compare_path.is_file():
            # Read up front: --output may overwrite the same file.
            committed = json.loads(compare_path.read_text())
        else:
            print(f"(no committed report at {compare_path}: deltas skipped)")

    workloads = {}
    print("== boolean_skeleton (solver-strategy axis) ==")
    cases = bench_boolean_skeleton(args.quick)
    workloads["boolean_skeleton"] = {"cases": cases, **summarize(cases)}
    for case in cases:
        print(
            f"  {case['strategy']:>20s} atoms={case['atoms']:<3d} "
            f"ref {case['reference_s'] * 1000:8.2f} ms  "
            f"opt {case['optimized_s'] * 1000:8.2f} ms  "
            f"x{case['speedup']:<6}  agree={case['verdicts_agree']}"
        )
    print(f"  overall: x{workloads['boolean_skeleton']['speedup']}")

    print("== clause_db (reduceDB off vs on) ==")
    cases = bench_clause_db(args.quick)
    workloads["clause_db"] = {"cases": cases, **summarize(cases)}
    for case in cases:
        print(
            f"  {case['workload']:>20s} vars={case['variables']:<4d} "
            f"off {case['reference_s'] * 1000:8.2f} ms ({case['reference_live_learned']} live)  "
            f"on {case['optimized_s'] * 1000:8.2f} ms ({case['optimized_live_learned']} live, "
            f"{case['reductions']} reductions)  "
            f"x{case['speedup']:<6}  agree={case['verdicts_agree']}"
        )
    print(f"  overall: x{workloads['clause_db']['speedup']}")

    print("== repeated_vc (cross-call cache) ==")
    cases = bench_repeated_vc(args.quick)
    workloads["repeated_vc"] = {"cases": cases, **summarize(cases)}
    for case in cases:
        print(
            f"  {case['vc']:>20s} x{case['repeats']:<3d} "
            f"ref {case['reference_s'] * 1000:8.2f} ms  "
            f"opt {case['optimized_s'] * 1000:8.2f} ms  "
            f"x{case['speedup']:<6}  agree={case['verdicts_agree']}"
        )
    print(f"  overall: x{workloads['repeated_vc']['speedup']}")

    print("== dpllt_incremental (theory propagation vs blocked models) ==")
    cases = bench_dpllt_incremental(args.quick)
    workloads["dpllt_incremental"] = {"cases": cases, **summarize(cases)}
    for case in cases:
        print(
            f"  chains={case['chains']:<2d} "
            f"ref {case['reference_s'] * 1000:8.2f} ms ({case['reference_blocked']} blocked)  "
            f"opt {case['optimized_s'] * 1000:8.2f} ms ({case['optimized_blocked']} blocked, "
            f"{case['theory_propagations']} propagated)  "
            f"x{case['speedup']:<6}  agree={case['verdicts_agree']}"
        )

    print("== difference_logic (theory propagation vs enumeration) ==")
    cases = bench_difference_logic(args.quick)
    workloads["difference_logic"] = {"cases": cases, **summarize(cases)}
    for case in cases:
        print(
            f"  {case['family']:>16s} size={case['size']:<2d} "
            f"ref {case['reference_s'] * 1000:8.2f} ms ({case['reference_verdict']})  "
            f"opt {case['optimized_s'] * 1000:8.2f} ms ({case['optimized_verdict']}, "
            f"{case['optimized_blocked']} blocked)  "
            f"x{case['speedup']:<8}  agree={case['verdicts_agree']}"
        )
    print(f"  overall: x{workloads['difference_logic']['speedup']}")

    print("== spec_inference (cold vs warm caches) ==")
    cases = bench_spec_inference(args.quick)
    workloads["spec_inference"] = {"cases": cases, **summarize(cases)}
    for case in cases:
        print(
            f"  {case['spec']:>20s} "
            f"cold {case['reference_s'] * 1000:8.2f} ms  "
            f"warm {case['optimized_s'] * 1000:8.2f} ms  "
            f"x{case['speedup']:<6}  α={case['finest_abstraction']}  "
            f"agree={case['verdicts_agree']}"
        )
    print(f"  overall: x{workloads['spec_inference']['speedup']}")

    print("== incremental_vc (fresh solver per VC vs shared session) ==")
    cases = bench_incremental_vc(args.quick)
    workloads["incremental_vc"] = {"cases": cases, **summarize(cases)}
    for case in cases:
        print(
            f"  {case['family']:>16s} vcs={case['vcs']:<3d} width={case['width']:<4d} "
            f"fresh {case['reference_s'] * 1000:8.2f} ms  "
            f"session {case['optimized_s'] * 1000:8.2f} ms  "
            f"x{case['speedup']:<6}  defs_reused={case['definition_hits']}  "
            f"agree={case['verdicts_agree']}"
        )
    print(f"  overall: x{workloads['incremental_vc']['speedup']}")

    print("== persistent_cache (cold store vs warm replay) ==")
    cases = bench_persistent_cache(args.quick)
    workloads["persistent_cache"] = {"cases": cases, **summarize(cases)}
    for case in cases:
        print(
            f"  {case['corpus']:>40s} "
            f"cold {case['reference_s'] * 1000:8.2f} ms  "
            f"warm {case['optimized_s'] * 1000:8.2f} ms  "
            f"x{case['speedup']:<6}  hit_rate={case['hit_rate']}  "
            f"agree={case['verdicts_agree']}"
        )
    print(f"  overall: x{workloads['persistent_cache']['speedup']}")

    print("== static_prepass (information-flow fast path vs full pipeline) ==")
    cases = bench_static_prepass(args.quick)
    discharged = sum(case["discharged_solver_free"] for case in cases)
    workloads["static_prepass"] = {
        "cases": cases,
        "discharged_solver_free": discharged,
        "discharged_fraction": round(discharged / len(cases), 3),
        **summarize(cases),
    }
    for case in cases:
        print(
            f"  {case['case']:>28s} "
            f"full {case['reference_s'] * 1000:8.2f} ms ({case['smt_queries_full']}q)  "
            f"fast {case['optimized_s'] * 1000:8.2f} ms ({case['smt_queries_fast']}q)  "
            f"x{case['speedup']:<6}  prepass={case['prepass'] or '-':<8s}"
            f"agree={case['verdicts_agree']}"
        )
    print(
        f"  overall: x{workloads['static_prepass']['speedup']}  "
        f"({discharged}/{len(cases)} discharged solver-free)"
    )

    print("== fuzz_corpus (promoted generated families, scaling corpus size) ==")
    cases = bench_fuzz_corpus(args.quick)
    workloads["fuzz_corpus"] = {"cases": cases, **summarize(cases)}
    for case in cases:
        print(
            f"  {case['family']:>20s} n={case['corpus_size']:<3d} "
            f"empirical {case['reference_s'] * 1000:8.2f} ms ({case['executions']}x)  "
            f"verify {case['optimized_s'] * 1000:8.2f} ms  "
            f"x{case['speedup']:<8}  agree={case['verdicts_agree']}"
        )
    print(f"  overall: x{workloads['fuzz_corpus']['speedup']}")

    report = {
        "benchmark": (
            "smt-core: interning + compiled evaluation + flat-arena CDCL"
            " + learned-clause DB management + theory propagation + cache"
        ),
        "quick": args.quick,
        "workloads": workloads,
        "summary": {
            "boolean_skeleton_speedup": workloads["boolean_skeleton"]["speedup"],
            "clause_db_speedup": workloads["clause_db"]["speedup"],
            "clause_db_reductions": sum(
                case["reductions"] for case in workloads["clause_db"]["cases"]
            ),
            "repeated_vc_speedup": workloads["repeated_vc"]["speedup"],
            "dpllt_incremental_speedup": workloads["dpllt_incremental"]["speedup"],
            "difference_logic_speedup": workloads["difference_logic"]["speedup"],
            "difference_logic_models_blocked": sum(
                case["optimized_blocked"] or 0
                for case in workloads["difference_logic"]["cases"]
            ),
            "spec_inference_speedup": workloads["spec_inference"]["speedup"],
            "incremental_vc_speedup": workloads["incremental_vc"]["speedup"],
            "persistent_cache_speedup": workloads["persistent_cache"]["speedup"],
            "static_prepass_speedup": workloads["static_prepass"]["speedup"],
            "static_prepass_discharged_solver_free": workloads["static_prepass"][
                "discharged_solver_free"
            ],
            "fuzz_corpus_speedup": workloads["fuzz_corpus"]["speedup"],
            "warm_cache_hit_rate": workloads["persistent_cache"]["cases"][0][
                "hit_rate"
            ],
            "dpllt_models_blocked": sum(
                case["optimized_blocked"]
                for case in workloads["dpllt_incremental"]["cases"]
            ),
            "all_verdicts_agree": all(
                w["verdicts_agree"] for w in workloads.values()
            ),
        },
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")

    if committed is not None:
        print_deltas(committed, report)

    ok = report["summary"]["all_verdicts_agree"]
    if not ok:
        print("FAIL: verdict mismatch between optimized and reference core")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
