#!/usr/bin/env python
"""The paper's Fig. 2 / Fig. 3 running examples, end to end.

``targetSize`` adds per-household target counts to a shared counter;
``targets`` collects (address, reason) pairs into a shared map and exposes
only the sorted key set.  Both are verified and then executed under a
variety of schedulers to show the published abstraction is indeed
schedule- and secret-independent.
"""

from repro.casestudies import case_by_name
from repro.lang import RandomScheduler, RoundRobinScheduler, run


def demo(case_name: str, input_variants: list[dict]) -> None:
    case = case_by_name(case_name)
    result = case.verify()
    print(f"== {case_name} ==")
    print(f"  verifier: {'VERIFIED' if result.verified else 'REJECTED'}")
    for decl_name, validity in result.validity_reports.items():
        print(f"  spec {decl_name}: valid={validity.valid} ({validity.checks_performed} checks)")
    program = case.program()
    for inputs in input_variants:
        outputs = set()
        outputs.add(run(program, dict(inputs), scheduler=RoundRobinScheduler()).output)
        for seed in range(8):
            outputs.add(run(program, dict(inputs), scheduler=RandomScheduler(seed)).output)
        secret_part = {k: v for k, v in inputs.items() if k in case.high_inputs}
        print(f"  secrets={secret_part}  ->  outputs over 9 schedules: {outputs}")
    print()


def main() -> None:
    demo(
        "Figure 2",
        [
            {"n": 4, "targets": (2, 0, 1, 3), "hcollisions": (0, 0, 0, 0)},
            {"n": 4, "targets": (2, 0, 1, 3), "hcollisions": (6, 1, 0, 4)},
        ],
    )
    demo(
        "Figure 3",
        [
            {"n": 4, "addrs": (1, 2, 1, 3), "reasons": (10, 20, 30, 40)},
            {"n": 4, "addrs": (1, 2, 1, 3), "reasons": (99, 98, 97, 96)},
        ],
    )


if __name__ == "__main__":
    main()
