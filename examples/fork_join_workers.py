#!/usr/bin/env python
"""Dynamic threads: the App. E fork/join pattern, verified and executed.

HyperViper's implementation language creates threads with ``fork`` and
``join`` instead of the paper's structured ``||`` (Sec. 5).  This example
shows both halves of our treatment:

1. the fork/join program *runs* on the dynamic thread-pool machine
   (``repro.lang.threads``) under adversarial schedulers, and its public
   output — the sorted key set of the shared map — never varies, even
   though the map's values race;
2. the same program is *verified* by statically reducing it to the
   paper's structured calculus (``repro.lang.desugar``) and reusing the
   standard pipeline.
"""

from repro.casestudies import figure3_forkjoin, forkjoin_high_key
from repro.lang import RandomScheduler
from repro.lang.desugar import threaded_equivalent

INPUTS = {"n": 4, "addrs": (1, 2, 1, 3), "reasons": (9, 8, 7, 6)}

# -- 1. Execution on the thread machine. --------------------------------------

print("=== Figure 3 with fork/join (App. E) ===")
print(figure3_forkjoin.source)

print("running under 8 random schedulers:")
for seed in range(8):
    result = figure3_forkjoin.run(dict(INPUTS), scheduler=RandomScheduler(seed))
    print(f"  seed {seed}: output {result.output}")

# The two workers race on key 1 (addrs has it twice) — the map's VALUES
# depend on the schedule, but the printed key set does not.
race_inputs = {"n": 2, "addrs": (5, 5), "reasons": (100, 200)}
values_seen = set()
for seed in range(10):
    result = figure3_forkjoin.run(dict(race_inputs), scheduler=RandomScheduler(seed))
    final_map = [v for v in result.heap.values() if hasattr(v, "get")][0]
    values_seen.add(final_map.get(5))
print(f"\nracing value for key 5 across schedules: {sorted(values_seen)}")
print("(the value races; the key set — the declared abstraction — does not)")

# -- 2. Static reduction to structured || and verification. -------------------

structured = threaded_equivalent(figure3_forkjoin.program())
print("\n=== desugared to the paper's core calculus ===")
print(structured)

result = figure3_forkjoin.verify()
print(f"\nverifier verdict: {'VERIFIED' if result.verified else 'REJECTED'}")

# -- 3. A broken variant: forked workers put a HIGH key. ----------------------

bad = forkjoin_high_key.verify()
print(f"\nnegative control ({forkjoin_high_key.name}): "
      f"{'VERIFIED' if bad.verified else 'REJECTED'}")
for error in bad.errors:
    print(f"  reason: {error}")
