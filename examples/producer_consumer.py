#!/usr/bin/env python
"""Producer–consumer patterns and unique actions (Sec. 2.7 / App. D).

Demonstrates the role-multiplicity story of the paper:

* one producer + one consumer: both actions are *unique*, so the produced
  **sequence** abstraction is valid (order and all is low);
* two producers: production becomes a *shared* action; the sequence
  abstraction is now invalid (the validity checker produces the Fig. 11
  counterexample) and only the **multiset** abstraction survives;
* the totalization trick of App. D (consume-debt counters) is shown on the
  reachable-value enumeration.
"""

from repro.casestudies import case_by_name
from repro.heap import Multiset
from repro.lang import RandomScheduler, run
from repro.spec import check_validity, reachable_values
from repro.spec.library import multi_producer_sequence_spec, producer_consumer_spec


def main() -> None:
    print("== Abstraction choice depends on role multiplicity ==")
    spec_1p1c = producer_consumer_spec(1, 1)
    spec_seq_2p = multi_producer_sequence_spec()
    spec_ms_2p2c = producer_consumer_spec(2, 2)
    for label, spec in (
        ("1P/1C, sequence α", spec_1p1c),
        ("2P, sequence α", spec_seq_2p),
        ("2P/2C, multiset α", spec_ms_2p2c),
    ):
        report = check_validity(spec)
        print(f"  {label:22s} valid={report.valid}")
        if not report.valid:
            print(f"      {report.counterexamples[0]}")

    print("\n== App. D totalization: consuming from an empty queue ==")
    values = reachable_values(
        spec_1p1c, spec_1p1c.initial_value, unique_args={"Cons": [0, 0], "Prod": [7]}
    )
    for value in sorted(values, key=repr):
        buffer, produced = value
        print(f"  reachable state: buffer={buffer!r} produced={produced!r}")

    print("\n== Verified patterns, executed ==")
    for name, inputs in (
        ("1-Producer-1-Consumer", {"n": 3, "items": (5, 6, 7)}),
        ("Pipeline", {"n": 3, "items": (5, 6, 7)}),
        ("2-Producers-2-Consumers", {"n": 2, "itemsA": (5, 6), "itemsB": (7, 8)}),
    ):
        case = case_by_name(name)
        result = case.verify()
        outputs = {
            run(case.program(), dict(inputs), scheduler=RandomScheduler(seed)).output
            for seed in range(8)
        }
        print(f"  {name:26s} {'VERIFIED' if result.verified else 'REJECTED'}  outputs={outputs}")
        for obligation in result.obligations:
            print(f"      obligation: [{obligation.kind}] discharged={obligation.discharged}")


if __name__ == "__main__":
    main()
