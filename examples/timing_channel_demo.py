#!/usr/bin/env python
"""Figure 1 demo: internal timing channels become value channels.

Reproduces the paper's motivating example: a program with no direct or
control-flow leak whose *output* still reveals the secret, because the
secret changes thread timing and therefore which racing write lands last.
Then shows the paper's two repairs:

* don't leak the raced variable (constant abstraction) — verifies;
* make the writes commute (+3 / +4) — verifies, and the output is stable.
"""

from repro.casestudies import case_by_name
from repro.lang import parse_program
from repro.security import mutual_information, threshold_leak

FIG1_SOURCE = """
t1 := 0
t2 := 0
{ while (t1 < 100) { t1 := t1 + 1 }; s := 3 } || { while (t2 < h) { t2 := t2 + 1 }; s := 4 }
print(s)
"""

COMMUTING_SOURCE = """
t1 := 0
t2 := 0
s := 0
{ while (t1 < 100) { t1 := t1 + 1 }; a := 3 } || { while (t2 < h) { t2 := t2 + 1 }; b := 4 }
print(a + b)
"""


def main() -> None:
    fig1 = parse_program(FIG1_SOURCE)
    commuting = parse_program(COMMUTING_SOURCE)

    print("== Figure 1: the leak ==")
    leak = threshold_leak(fig1, "h", [0, 25, 50, 75, 100, 101, 125, 150, 200])
    print(leak)
    for h, output in sorted(leak.outputs_by_h.items()):
        print(f"  round-robin, h={h:3d} -> prints {output[0]}")

    bits = mutual_information(fig1, "h", [0, 200], runs_per_value=30)
    print(f"  empirical mutual information I(h; output) = {bits:.3f} bits")

    print("\n== Commuting repair: channel closed ==")
    leak = threshold_leak(commuting, "h", [0, 50, 150, 200])
    print(leak)
    bits = mutual_information(commuting, "h", [0, 200], runs_per_value=30)
    print(f"  empirical mutual information I(h; output) = {bits:.3f} bits")

    print("\n== Verification verdicts ==")
    for name in ("Figure 1 (leaky)", "Figure 1", "Figure 1 (commuting)"):
        case = case_by_name(name)
        result = case.verify()
        verdict = "VERIFIED" if result.verified else "REJECTED"
        print(f"  {name:28s} {verdict}")
        if result.errors:
            print(f"      {result.errors[0][:100]}")


if __name__ == "__main__":
    main()
