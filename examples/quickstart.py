#!/usr/bin/env python
"""Quickstart: verify a concurrent program information-flow secure.

The smallest end-to-end tour of the library:

1. define a resource specification (the paper's ⟨α, f_as, F_au⟩),
2. check its validity (abstract commutativity, Def. 3.1),
3. write a concurrent program that mutates the shared resource through
   annotated atomic blocks,
4. run the automated verifier (the HyperViper analogue), and
5. cross-check the verdict empirically by running the program under many
   schedulers.
"""

from repro.lang import RandomScheduler, parse_program, run
from repro.security import check_sampled
from repro.spec import Action, ResourceSpecification, check_validity
from repro.spec.actions import low_everything
from repro.verifier import ProgramSpec, ResourceDecl, verify

# -- 1. A resource specification: a shared integer with commutative adds. ----
#
# The abstraction is the identity: the whole final value will be declared
# low, which is fine because additions commute and each added amount is low.

add = Action.shared("Add", lambda value, amount: value + amount, low_projections=low_everything())
counter_spec = ResourceSpecification(
    name="Counter",
    abstraction=lambda value: value,
    actions=(add,),
    initial_value=0,
    value_domain=tuple(range(-2, 4)),
    arg_domains={"Add": tuple(range(-2, 4))},
    description="shared integer, n += low amount",
)

# -- 2. Validity: all action pairs must commute modulo the abstraction. ------

report = check_validity(counter_spec)
print(f"specification valid: {report.valid} ({report.checks_performed} checks)")

# -- 3. The program.  Two threads add low values; the right thread also ------
#    busy-waits for a secret-dependent time, creating an internal timing
#    channel that commutativity neutralizes.

SOURCE = """
c := alloc(0)
share Counter
{
    atomic [Add(a)] { t1 := [c]; [c] := t1 + a }
} || {
    k := 0
    while (k < h) { k := k + 1 }          // secret-dependent timing
    atomic [Add(b)] { t2 := [c]; [c] := t2 + b }
}
unshare Counter
result := [c]
print(result)
"""

program = parse_program(SOURCE)

# -- 4. Verify. ---------------------------------------------------------------

program_spec = ProgramSpec(
    name="quickstart",
    program=program,
    resources=(ResourceDecl("Counter", counter_spec, "c"),),
    low_inputs=frozenset({"a", "b"}),
    high_inputs=frozenset({"h"}),
)
result = verify(program_spec)
print(result.summary())

# -- 5. Empirical cross-check: same low inputs, different secrets, many ------
#    schedules — the printed result never changes.

ni = check_sampled(program, [{"a": 3, "b": 4, "h": 0}, {"a": 3, "b": 4, "h": 50}], schedules=15)
print(f"empirical non-interference: {'SECURE' if ni.secure else ni.witness}")

for h in (0, 50):
    outcome = run(program, {"a": 3, "b": 4, "h": h}, scheduler=RandomScheduler(1))
    print(f"h={h:3d}  ->  output {outcome.output}")
