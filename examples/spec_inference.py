#!/usr/bin/env python
"""Inferring resource specifications instead of writing them.

The paper's specifications (Fig. 4, Table 1's "Abstraction" column) are
hand-written.  This example rediscovers them automatically:

* *precondition inference* searches the lattice of "this projection of
  the argument must be low" conditions for the weakest one that makes the
  specification valid (Def. 3.1) — recovering Fig. 4 left's ``Low(key)``;
* *abstraction inference* tests a catalogue of standard abstractions and
  ranks the valid ones from finest to coarsest — recovering "key set" for
  the map, "multiset" for sorted lists, and showing that the identity is
  unrepairable for same-key puts (the Fig. 3 discussion).
"""

from repro.spec.inference import infer_abstraction, infer_preconditions
from repro.spec.library import (
    counter_increment_spec,
    integer_add_spec,
    list_append_multiset_spec,
    map_put_identity_spec,
    map_put_keyset_spec,
)

print("=== precondition inference (which argument parts must be low?) ===")
for spec in (map_put_keyset_spec(), integer_add_spec(), counter_increment_spec()):
    inference = infer_preconditions(spec)
    print(f"\n{spec.name}  ({spec.description})")
    if inference.found:
        for entry in inference.preconditions:
            print(f"  inferred  {entry}")
        for action in spec.actions:
            declared = " ∧ ".join(f"Low({name})" for name, _ in action.low_projections) or "nothing"
            print(f"  declared  {action.name}: {declared}")
    else:
        print(f"  no sufficient precondition exists ({inference.candidates_tried} candidates tried)")

print("\nsame-key map puts with the identity abstraction (Fig. 3's problem):")
inference = infer_preconditions(map_put_identity_spec())
print(f"  repairable by lowness alone: {inference.found} "
      f"({inference.candidates_tried} candidates tried)")

print("\n=== abstraction inference (finest public view that is safe) ===")
for spec in (map_put_keyset_spec(), list_append_multiset_spec(), integer_add_spec()):
    inference = infer_abstraction(spec)
    print(f"\n{spec.name}")
    print(f"  valid, finest first : {', '.join(inference.names())}")
    print(f"  invalid             : {', '.join(c.name for c in inference.invalid)}")
    if inference.finest is not None:
        print(f"  recommendation      : {inference.finest.name}")
