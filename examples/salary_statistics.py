#!/usr/bin/env python
"""Abstract commutativity on one data structure, four abstractions.

The same shared list, built by concurrent appends, supports four different
public views (Table 1 rows Mean-Salary / Email-Metadata / Patient-Statistic
/ Debt-Sum).  Appends never commute on the concrete list — the final order
depends on secret-dependent timing — but they commute under each of the
four abstractions, which is exactly what the validity checker certifies
and what the runtime outputs confirm.
"""

from repro.casestudies import case_by_name
from repro.lang import RandomScheduler, run
from repro.spec import check_validity
from repro.spec.library import (
    list_append_length_spec,
    list_append_mean_spec,
    list_append_multiset_spec,
    list_append_sequence_spec,
    list_append_sum_spec,
)

SPECS = {
    "mean (sum, count)": list_append_mean_spec(),
    "multiset": list_append_multiset_spec(),
    "length": list_append_length_spec(),
    "sum": list_append_sum_spec(),
    "concrete sequence": list_append_sequence_spec(),  # the one that fails
}

CASES = ["Mean-Salary", "Email-Metadata", "Patient-Statistic", "Debt-Sum"]


def main() -> None:
    print("== Which abstractions make concurrent appends commute? ==")
    for label, spec in SPECS.items():
        report = check_validity(spec)
        verdict = "commutes" if report.valid else "does NOT commute"
        print(f"  α = {label:22s} {verdict}")
        if not report.valid:
            print(f"      counterexample: {report.counterexamples[0]}")

    print("\n== The four Table-1 case studies built on these abstractions ==")
    for name in CASES:
        case = case_by_name(name)
        result = case.verify()
        print(f"  {name:20s} {'VERIFIED' if result.verified else 'REJECTED'}")

    print("\n== Mean-Salary at runtime: names are secret, the mean is stable ==")
    case = case_by_name("Mean-Salary")
    program = case.program()
    for names in ((1, 2, 3, 4), (44, 33, 22, 11)):
        inputs = {"n": 4, "salaries": (50, 60, 70, 80), "names": names}
        outputs = {run(program, dict(inputs), scheduler=RandomScheduler(s)).output for s in range(6)}
        print(f"  secret names={names}:  (sum, count) output = {outputs}")


if __name__ == "__main__":
    main()
