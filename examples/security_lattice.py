#!/usr/bin/env python
"""Multi-level security: verifying against an arbitrary finite lattice.

The paper verifies two labels (low/high) and notes (Sec. 2.1, footnote 1)
that arbitrary finite lattices reduce to one 2-level verification per
lattice element.  This example runs that reduction on a three-level
payroll program:

* ``n`` (head count)          — *public*
* ``bonuses``                 — *internal*
* ``perf`` (performance data) — *secret*, influences timing only

Workers add bonuses to a shared commutative counter; the head count goes
to the ``public_report`` channel and the bonus total to the
``internal_report`` channel.  A public observer must learn nothing beyond
the head count; an internal observer may additionally learn the total.
"""

from repro.casestudies.base import make_instances
from repro.lang import parse_program
from repro.security.lattice import diamond, linear, powerset, verify_lattice
from repro.spec.library import integer_add_spec
from repro.verifier import ResourceDecl

LATTICE = linear(["public", "internal", "secret"])

SOURCE = """
c := alloc(0)
share IntegerAdd
{
    i1 := 0
    while (i1 < n / 2) {
        b1 := at(bonuses, i1)
        d1 := at(perf, i1)
        k1 := 0
        while (k1 < d1) { k1 := k1 + 1 }          // secret-dependent timing
        atomic [Add(b1)] { v1 := [c]; [c] := v1 + b1 }
        i1 := i1 + 1
    }
} || {
    i2 := n / 2
    while (i2 < n) {
        b2 := at(bonuses, i2)
        d2 := at(perf, i2)
        k2 := 0
        while (k2 < d2) { k2 := k2 + 1 }
        atomic [Add(b2)] { v2 := [c]; [c] := v2 + b2 }
        i2 := i2 + 1
    }
}
unshare IntegerAdd
total := [c]
print(n, public_report)
print(total, internal_report)
"""

INPUT_LABELS = {"n": "public", "bonuses": "internal", "perf": "secret"}
CHANNEL_LABELS = {"public_report": "public", "internal_report": "internal"}


def instances_for(level):
    if level == "public":
        return make_instances(
            {"n": 4},
            [
                {"bonuses": (1, 2, 3, 4), "perf": (0, 1, 0, 2)},
                {"bonuses": (9, 9, 9, 9), "perf": (2, 0, 1, 0)},
            ],
        )
    return make_instances(
        {"n": 4, "bonuses": (1, 2, 3, 4)},
        [{"perf": (0, 1, 0, 2)}, {"perf": (2, 0, 1, 0)}],
    )


program = parse_program(SOURCE)
resources = (ResourceDecl("IntegerAdd", integer_add_spec(), "c"),)

print("=== three-level payroll, per-element verification ===")
result = verify_lattice(
    "payroll", program, resources, INPUT_LABELS, CHANNEL_LABELS, LATTICE,
    bounded_instances=instances_for,
)
print(result.summary())

# A leaky variant: the internal total printed on the PUBLIC channel.
leaky = parse_program(SOURCE.replace("print(total, internal_report)",
                                     "print(total, public_report)"))
leaky_result = verify_lattice(
    "payroll-leaky", leaky, resources, INPUT_LABELS, CHANNEL_LABELS, LATTICE,
    bounded_instances=instances_for,
)
print()
print(leaky_result.summary())
print(f"failing levels: {leaky_result.failing_levels()}")

# Other lattice shapes work the same way:
print("\n=== lattice zoo ===")
for lattice in (diamond(), powerset(["hr", "fin"])):
    print(f"{len(lattice.elements)} elements, "
          f"bottom {lattice.bottom!r}, top {lattice.top!r}")
