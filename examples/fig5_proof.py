#!/usr/bin/env python
"""The paper's Fig. 5 proof outline, machine-checked and printed.

Builds the complete CommCSL derivation for the map example (Fig. 3 /
Fig. 4 left) through the actual proof rules — Share wrapping a parallel
composition of two AtomicShr workers, with guard splitting and merging
via checked entailments — then renders it in the paper's proof-outline
style.  Every side condition was checked during construction; entailments
were discharged on concrete probe states (the role Z3 plays for
HyperViper)."""

from repro.logic.fig5 import figure5_outline, figure5_proof
from repro.logic.fig5_loop import worker_loop_contract
from repro.logic.outline import rules_used, validate_structure

proof = figure5_proof()
print("=== Fig. 5, machine-checked (two workers, loop-free core) ===")
print(f"conclusion: {proof.judgment}")
print(f"derivation size: {proof.size()} rule applications")
print(f"rules used: {rules_used(proof)}")
problems = validate_structure(proof)
print(f"structural re-check: {'OK' if not problems else problems}")

print("\n=== proof outline ===")
print(figure5_outline().render())

print("\n=== the looped worker (While1, relational invariant) ===")
contract = worker_loop_contract()
print(f"conclusion: {contract.judgment}")
print(f"derivation size: {contract.size()} rule applications")
print(f"rules used: {rules_used(contract)}")
print(f"structural re-check: {'OK' if not validate_structure(contract) else 'FAIL'}")

print("\n=== the WHOLE Fig. 3 program: Share around two looped workers ===")
from repro.logic.fig5_loop import figure3_full_proof

full = figure3_full_proof()
print(f"conclusion: {full.judgment}")
print(f"derivation size: {full.size()} rule applications")
print(f"rules used: {rules_used(full)}")
print(f"structural re-check: {'OK' if not validate_structure(full) else 'FAIL'}")
