"""Synchronous client for the verification daemon (:mod:`repro.server`).

A thin blocking wrapper over the JSON-line protocol: connect over the
daemon's unix socket (or localhost TCP), send one op per line, read
event objects until the terminal event for that op.  Batch verdicts are
*streamed* — :meth:`ServiceClient.stream_batch` yields each event as it
lands, and :meth:`ServiceClient.run_batch` collects them into a typed
:class:`~repro.api.BatchReport`-like outcome.

The client is deliberately dependency-free (stdlib ``socket`` only) so
it can be vendored into other tooling; every payload it builds or parses
goes through the typed wire surface of :mod:`repro.api`.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .api import BatchReport, RequestError, Verdict, VerificationRequest


class ServiceError(RuntimeError):
    """Protocol-level failure talking to the daemon."""


@dataclass
class BatchOutcome:
    """Everything one batch produced, in arrival order.

    ``verdicts`` maps request index → :class:`~repro.api.Verdict`;
    ``rejections``/``timeouts``/``errors`` map request index → reason.
    ``stats`` is the daemon's served stats snapshot from the ``done``
    event and ``elapsed`` the server-side batch wall-clock.
    """

    verdicts: Dict[int, Verdict] = field(default_factory=dict)
    rejections: Dict[int, str] = field(default_factory=dict)
    timeouts: Dict[int, str] = field(default_factory=dict)
    errors: Dict[int, str] = field(default_factory=dict)
    stats: Dict[str, Any] = field(default_factory=dict)
    elapsed: float = 0.0

    @property
    def complete(self) -> bool:
        """True when every request came back as a verdict."""
        return not (self.rejections or self.timeouts or self.errors)

    @property
    def ok(self) -> bool:
        return self.complete and all(v.ok for v in self.verdicts.values())

    def ordered_verdicts(self) -> Tuple[Verdict, ...]:
        return tuple(self.verdicts[i] for i in sorted(self.verdicts))

    def to_report(self) -> BatchReport:
        return BatchReport(
            verdicts=self.ordered_verdicts(), elapsed=self.elapsed, stats=self.stats
        )


class ServiceClient:
    """A blocking connection to one daemon.

    Use as a context manager::

        with ServiceClient(socket_path="/tmp/repro.sock") as client:
            outcome = client.run_batch([VerificationRequest(case="Figure 3")])
    """

    def __init__(
        self,
        socket_path: Optional[Any] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: Optional[float] = 600.0,
    ) -> None:
        if socket_path is None and host is None:
            raise ValueError("a unix socket path or a host/port is required")
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(str(socket_path))
        else:
            self._sock = socket.create_connection((host, int(port)), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # -- plumbing ---------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _send(self, obj: Dict[str, Any]) -> None:
        self._file.write(json.dumps(obj, sort_keys=True).encode("utf-8") + b"\n")
        self._file.flush()

    def _recv(self) -> Dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ServiceError("connection closed by the daemon")
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as error:
            raise ServiceError(f"undecodable server line {line!r}: {error}")
        if not isinstance(obj, dict):
            raise ServiceError(f"non-object server event: {obj!r}")
        return obj

    def _roundtrip(self, obj: Dict[str, Any], expect: str) -> Dict[str, Any]:
        self._send(obj)
        event = self._recv()
        if event.get("event") == "error":
            raise ServiceError(event.get("reason", "unspecified daemon error"))
        if event.get("event") != expect:
            raise ServiceError(f"expected {expect!r}, got {event!r}")
        return event

    # -- simple ops -------------------------------------------------------

    def ping(self) -> bool:
        self._roundtrip({"op": "ping"}, "pong")
        return True

    def stats(self) -> Dict[str, Any]:
        return self._roundtrip({"op": "stats"}, "stats")["stats"]

    def shutdown(self) -> None:
        """Ask the daemon to exit (it answers ``bye`` first)."""
        self._roundtrip({"op": "shutdown"}, "bye")

    def configure_tenant(
        self,
        tenant: str,
        namespace: Optional[str] = None,
        vc_budget: Optional[int] = None,
        max_models: Optional[int] = None,
        sorts: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        message: Dict[str, Any] = {"op": "tenant", "tenant": tenant}
        if namespace is not None:
            message["namespace"] = namespace
        if vc_budget is not None:
            message["vc_budget"] = vc_budget
        if max_models is not None:
            message["max_models"] = max_models
        if sorts is not None:
            message["sorts"] = sorts
        return self._roundtrip(message, "tenant")

    # -- batches ----------------------------------------------------------

    def stream_batch(
        self,
        requests: Sequence[VerificationRequest],
        tenant: str = "default",
        batch_id: Optional[str] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Send one batch and yield server events as they arrive, ending
        with (and including) the ``done`` event.  A top-level
        ``rejected`` (whole-batch) or ``error`` event also terminates
        the stream."""
        for request in requests:
            request.validate()
        message: Dict[str, Any] = {
            "op": "batch",
            "tenant": tenant,
            "requests": [request.to_wire() for request in requests],
        }
        if batch_id is not None:
            message["id"] = batch_id
        self._send(message)
        while True:
            event = self._recv()
            yield event
            kind = event.get("event")
            if kind == "done":
                return
            if kind in ("rejected", "error") and "index" not in event:
                return  # whole-batch refusal: no done event follows

    def run_batch(
        self,
        requests: Sequence[VerificationRequest],
        tenant: str = "default",
        batch_id: Optional[str] = None,
    ) -> BatchOutcome:
        """Send one batch and collect the streamed events."""
        outcome = BatchOutcome()
        for event in self.stream_batch(requests, tenant=tenant, batch_id=batch_id):
            kind = event.get("event")
            index = event.get("index")
            if kind == "verdict":
                outcome.verdicts[int(index)] = Verdict.from_wire(event["verdict"])
            elif kind == "rejected":
                if index is None:
                    raise ServiceError(event.get("reason", "batch rejected"))
                outcome.rejections[int(index)] = event.get("reason", "")
            elif kind == "timeout":
                outcome.timeouts[int(index)] = event.get("reason", "")
            elif kind == "error":
                if index is None:
                    raise ServiceError(event.get("reason", "batch failed"))
                outcome.errors[int(index)] = event.get("reason", "")
            elif kind == "done":
                outcome.elapsed = float(event.get("elapsed", 0.0))
                outcome.stats = dict(event.get("stats", {}))
        return outcome


def requests_for_cases(names: Sequence[str]) -> List[VerificationRequest]:
    """Convenience: one case request per name (validated eagerly)."""
    requests = [VerificationRequest(case=name) for name in names]
    for request in requests:
        request.validate()
    return requests


__all__ = [
    "BatchOutcome",
    "RequestError",
    "ServiceClient",
    "ServiceError",
    "requests_for_cases",
]
