"""Synchronous client for the verification daemon (:mod:`repro.server`).

A thin blocking wrapper over the JSON-line protocol: connect over the
daemon's unix socket (or localhost TCP), send one op per line, read
event objects until the terminal event for that op.  Batch verdicts are
*streamed* — :meth:`ServiceClient.stream_batch` yields each event as it
lands, and :meth:`ServiceClient.run_batch` collects them into a typed
:class:`~repro.api.BatchReport`-like outcome.

**Retries.**  Batch requests are idempotent — verdicts are deterministic
and cache-keyed — so :meth:`~ServiceClient.run_batch` transparently
retries the two recoverable failures with bounded, jittered exponential
backoff (:class:`RetryPolicy`):

* a ``retry_after`` event (the daemon shed the request under load): the
  request is replayed after at least the daemon's hinted delay;
* a dropped connection mid-stream: the client reconnects and replays
  **only the still-undecided requests** — verdicts that already arrived
  are kept, never re-solved.

Retries are capped (``max_retries``), so a dead daemon produces a
:class:`ServiceUnavailable` after a few attempts, never an infinite
loop.  Decided failures — ``rejected``, ``timeout``, ``worker_crash``,
``error`` — are answers, not transport problems, and are never retried
by the client (the daemon already applied its own crash-retry policy).

The client is deliberately dependency-free (stdlib ``socket`` only) so
it can be vendored into other tooling; every payload it builds or parses
goes through the typed wire surface of :mod:`repro.api`.
"""

from __future__ import annotations

import json
import random
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from . import api
from .api import BatchReport, RequestError, Verdict, VerificationRequest


class ServiceError(RuntimeError):
    """Protocol-level failure talking to the daemon."""


class ServiceUnavailable(ServiceError):
    """Transport-level failure: the daemon is unreachable or dropped the
    connection.  Distinguished from :class:`ServiceError` because it is
    the *retryable* class — batch requests are idempotent."""


@dataclass
class RetryPolicy:
    """Bounded, jittered exponential backoff for idempotent retries.

    ``delay(attempt)`` grows as ``base_delay * 2**attempt`` capped at
    ``max_delay``; a daemon-provided ``retry_after`` hint overrides the
    exponential base (the daemon knows its own queue).  Every delay is
    jittered into ``[0.5x, 1.0x]`` so a fleet of shed clients does not
    reconverge on the daemon in lockstep.  ``sleep`` and ``rng`` are
    injectable for deterministic tests."""

    max_retries: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    sleep: Callable[[float], None] = time.sleep
    rng: Callable[[], float] = random.random

    def delay(self, attempt: int, hint: Optional[float] = None) -> float:
        if hint is not None:
            base = max(0.0, float(hint))
        else:
            base = min(self.max_delay, self.base_delay * (2 ** attempt))
        return base * (0.5 + 0.5 * self.rng())


@dataclass
class BatchOutcome:
    """Everything one batch produced, in arrival order.

    ``verdicts`` maps request index → :class:`~repro.api.Verdict`;
    ``rejections``/``timeouts``/``crashes``/``errors`` map request
    index → reason; ``shed`` holds requests still undecided when client
    retries ran out (each was answered only with ``retry_after``).
    ``attempts`` maps index → how many worker executions the daemon
    spent on it (2 after a transparent crash retry); ``client_retries``
    counts this client's replay rounds.  ``stats`` is the daemon's
    served stats snapshot from the last ``done`` event and ``elapsed``
    the accumulated server-side batch wall-clock.
    """

    verdicts: Dict[int, Verdict] = field(default_factory=dict)
    rejections: Dict[int, str] = field(default_factory=dict)
    timeouts: Dict[int, str] = field(default_factory=dict)
    crashes: Dict[int, str] = field(default_factory=dict)
    errors: Dict[int, str] = field(default_factory=dict)
    shed: Dict[int, str] = field(default_factory=dict)
    attempts: Dict[int, int] = field(default_factory=dict)
    client_retries: int = 0
    stats: Dict[str, Any] = field(default_factory=dict)
    elapsed: float = 0.0

    @property
    def complete(self) -> bool:
        """True when every request came back as a verdict."""
        return not (
            self.rejections or self.timeouts or self.crashes or self.errors or self.shed
        )

    @property
    def ok(self) -> bool:
        return self.complete and all(v.ok for v in self.verdicts.values())

    def ordered_verdicts(self) -> Tuple[Verdict, ...]:
        return tuple(self.verdicts[i] for i in sorted(self.verdicts))

    def to_report(self) -> BatchReport:
        return BatchReport(
            verdicts=self.ordered_verdicts(), elapsed=self.elapsed, stats=self.stats
        )


class ServiceClient:
    """A blocking connection to one daemon.

    Use as a context manager::

        with ServiceClient(socket_path="/tmp/repro.sock") as client:
            outcome = client.run_batch([VerificationRequest(case="Figure 3")])
    """

    def __init__(
        self,
        socket_path: Optional[Any] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: Optional[float] = 600.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if socket_path is None and host is None:
            raise ValueError("a unix socket path or a host/port is required")
        self._socket_path = socket_path
        self._host = host
        self._port = port
        self._timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._connect()

    # -- plumbing ---------------------------------------------------------

    def _connect(self) -> None:
        try:
            if self._socket_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self._timeout)
                sock.connect(str(self._socket_path))
            else:
                sock = socket.create_connection(
                    (self._host, int(self._port)), timeout=self._timeout
                )
        except OSError as error:
            raise ServiceUnavailable(f"cannot reach the daemon: {error}") from error
        self._sock = sock
        self._file = sock.makefile("rwb")

    def _teardown(self) -> None:
        file, sock = self._file, self._sock
        self._file = None
        self._sock = None
        try:
            if file is not None:
                file.close()
        except OSError:
            pass
        try:
            if sock is not None:
                sock.close()
        except OSError:
            pass

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _send(self, obj: Dict[str, Any]) -> None:
        if self._file is None:
            self._connect()
        try:
            self._file.write(json.dumps(obj, sort_keys=True).encode("utf-8") + b"\n")
            self._file.flush()
        except (OSError, ValueError) as error:
            raise ServiceUnavailable(
                f"connection lost sending to the daemon: {error}"
            ) from error

    def _recv(self) -> Dict[str, Any]:
        if self._file is None:
            raise ServiceUnavailable("not connected")
        try:
            line = self._file.readline()
        except (OSError, ValueError) as error:
            raise ServiceUnavailable(
                f"connection lost reading from the daemon: {error}"
            ) from error
        if not line:
            raise ServiceUnavailable("connection closed by the daemon")
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as error:
            raise ServiceError(f"undecodable server line {line!r}: {error}")
        if not isinstance(obj, dict):
            raise ServiceError(f"non-object server event: {obj!r}")
        return obj

    def _roundtrip(self, obj: Dict[str, Any], expect: str) -> Dict[str, Any]:
        self._send(obj)
        event = self._recv()
        if event.get("event") == api.EVENT_ERROR:
            raise ServiceError(event.get("reason", "unspecified daemon error"))
        if event.get("event") != expect:
            raise ServiceError(f"expected {expect!r}, got {event!r}")
        return event

    # -- simple ops -------------------------------------------------------

    def ping(self) -> bool:
        self._roundtrip({"op": "ping"}, api.EVENT_PONG)
        return True

    def stats(self) -> Dict[str, Any]:
        return self._roundtrip({"op": "stats"}, api.EVENT_STATS)["stats"]

    def shutdown(self) -> None:
        """Ask the daemon to exit (it answers ``bye`` first)."""
        self._roundtrip({"op": "shutdown"}, api.EVENT_BYE)

    def configure_tenant(
        self,
        tenant: str,
        namespace: Optional[str] = None,
        vc_budget: Optional[int] = None,
        max_models: Optional[int] = None,
        sorts: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        message: Dict[str, Any] = {"op": "tenant", "tenant": tenant}
        if namespace is not None:
            message["namespace"] = namespace
        if vc_budget is not None:
            message["vc_budget"] = vc_budget
        if max_models is not None:
            message["max_models"] = max_models
        if sorts is not None:
            message["sorts"] = sorts
        return self._roundtrip(message, api.EVENT_TENANT)

    def lint(
        self,
        sources: Sequence[Tuple[str, str]] = (),
        cases: Sequence[str] = (),
        low: Sequence[str] = (),
        high: Sequence[str] = (),
    ) -> List["Diagnostic"]:
        """Lint ``(name, text)`` program sources and/or catalogue cases
        on the daemon, returning typed diagnostics.  Purely static — the
        daemon answers supervisor-side without touching a worker."""
        from .analysis.diagnostics import Diagnostic

        message: Dict[str, Any] = {
            "op": "lint",
            "sources": [{"name": name, "text": text} for name, text in sources],
            "cases": list(cases),
        }
        if low:
            message["low"] = list(low)
        if high:
            message["high"] = list(high)
        event = self._roundtrip(message, api.EVENT_LINT)
        return [Diagnostic.from_wire(obj) for obj in event.get("diagnostics", ())]

    # -- batches ----------------------------------------------------------

    def stream_batch(
        self,
        requests: Sequence[VerificationRequest],
        tenant: str = "default",
        batch_id: Optional[str] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Send one batch and yield server events as they arrive, ending
        with (and including) the ``done`` event.  A top-level
        ``rejected`` (whole-batch) or ``error`` event also terminates
        the stream.  No retries at this level — callers that want the
        replay policy use :meth:`run_batch`."""
        for request in requests:
            request.validate()
        message: Dict[str, Any] = {
            "op": "batch",
            "tenant": tenant,
            "requests": [request.to_wire() for request in requests],
        }
        if batch_id is not None:
            message["id"] = batch_id
        self._send(message)
        while True:
            event = self._recv()
            yield event
            kind = event.get("event")
            if kind == api.EVENT_DONE:
                return
            if kind in (api.EVENT_REJECTED, api.EVENT_ERROR) and "index" not in event:
                return  # whole-batch refusal: no done event follows

    def _run_attempt(
        self,
        pending: Dict[int, VerificationRequest],
        tenant: str,
        batch_id: Optional[str],
        outcome: BatchOutcome,
        shed_reasons: Dict[int, str],
    ) -> Tuple[Dict[int, VerificationRequest], Optional[float], bool]:
        """One wire round over ``pending``.  Returns the still-undecided
        requests, the daemon's strongest ``retry_after`` hint, and
        whether the round ended in a transport failure."""
        indices = sorted(pending)
        undecided = set(indices)
        hint: Optional[float] = None
        try:
            if self._file is None:
                self._connect()
            self._send(
                {
                    "op": "batch",
                    "tenant": tenant,
                    "requests": [pending[i].to_wire() for i in indices],
                    **({"id": batch_id} if batch_id is not None else {}),
                }
            )
            while True:
                event = self._recv()
                kind = event.get("event")
                raw_index = event.get("index")
                index = indices[int(raw_index)] if raw_index is not None else None
                if kind == api.EVENT_VERDICT:
                    outcome.verdicts[index] = Verdict.from_wire(event["verdict"])
                    outcome.attempts[index] = int(event.get("attempts", 1))
                    undecided.discard(index)
                elif kind == api.EVENT_REJECTED:
                    if index is None:
                        raise ServiceError(event.get("reason", "batch rejected"))
                    outcome.rejections[index] = event.get("reason", "")
                    undecided.discard(index)
                elif kind == api.EVENT_TIMEOUT:
                    outcome.timeouts[index] = event.get("reason", "")
                    undecided.discard(index)
                elif kind == api.EVENT_WORKER_CRASH:
                    outcome.crashes[index] = event.get("reason", "")
                    outcome.attempts[index] = int(event.get("attempts", 1))
                    undecided.discard(index)
                elif kind == api.EVENT_RETRY_AFTER:
                    shed_reasons[index] = event.get("reason", "shed under load")
                    advised = float(event.get("retry_after", 0.0) or 0.0)
                    hint = advised if hint is None else max(hint, advised)
                elif kind == api.EVENT_ERROR:
                    if index is None:
                        raise ServiceError(event.get("reason", "batch failed"))
                    outcome.errors[index] = event.get("reason", "")
                    undecided.discard(index)
                elif kind == api.EVENT_DONE:
                    outcome.elapsed += float(event.get("elapsed", 0.0))
                    outcome.stats = dict(event.get("stats", {}))
                    break
        except ServiceUnavailable:
            self._teardown()
            return {i: pending[i] for i in sorted(undecided)}, hint, True
        return {i: pending[i] for i in sorted(undecided)}, hint, False

    def run_batch(
        self,
        requests: Sequence[VerificationRequest],
        tenant: str = "default",
        batch_id: Optional[str] = None,
    ) -> BatchOutcome:
        """Send one batch, collect the streamed events, and transparently
        retry recoverable failures (load shed, dropped connection) with
        bounded backoff — replaying only the still-undecided requests."""
        for request in requests:
            request.validate()
        outcome = BatchOutcome()
        shed_reasons: Dict[int, str] = {}
        pending: Dict[int, VerificationRequest] = dict(enumerate(requests))
        attempt = 0
        while pending:
            pending, hint, transport_failed = self._run_attempt(
                pending, tenant, batch_id, outcome, shed_reasons
            )
            if not pending:
                break
            if attempt >= self.retry.max_retries:
                if transport_failed:
                    raise ServiceUnavailable(
                        f"{len(pending)} request(s) undecided after "
                        f"{attempt} retries; daemon unreachable"
                    )
                for index in pending:
                    outcome.shed[index] = shed_reasons.get(
                        index, "shed by admission control"
                    )
                break
            self.retry.sleep(self.retry.delay(attempt, hint))
            attempt += 1
            outcome.client_retries = attempt
        return outcome


def requests_for_cases(names: Sequence[str]) -> List[VerificationRequest]:
    """Convenience: one case request per name (validated eagerly)."""
    requests = [VerificationRequest(case=name) for name in names]
    for request in requests:
        request.validate()
    return requests


__all__ = [
    "BatchOutcome",
    "RequestError",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "requests_for_cases",
]
