"""Judgments and proof trees of CommCSL (Sec. 3.6).

A judgment is ``Γ⊥ ⊢ {P} c {Q}`` where ``Γ⊥`` is either ``⊥`` (no shared
resource, represented by ``None``) or a :class:`repro.spec.resource.\
ResourceContext`.  Proof trees record the rule used at every node; the
rule constructors in :mod:`repro.logic.rules` are the only way to build
them, and they check all side conditions, so an existing
:class:`ProofNode` *is* a checked derivation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..assertions.ast import Assertion
from ..lang.ast import Command
from ..spec.resource import ResourceContext


@dataclass(frozen=True)
class Judgment:
    """``Γ⊥ ⊢ {pre} command {post}``; ``context is None`` encodes ⊥."""

    context: Optional[ResourceContext]
    pre: Assertion
    command: Command
    post: Assertion

    def __str__(self) -> str:
        gamma = "⊥" if self.context is None else self.context.spec.name
        return f"{gamma} ⊢ {{{self.pre}}} {self.command} {{{self.post}}}"


@dataclass(frozen=True)
class ProofNode:
    """A node of a derivation: the rule name, the concluded judgment, and
    the premise derivations."""

    rule: str
    judgment: Judgment
    premises: Tuple["ProofNode", ...] = ()
    note: str = ""

    def size(self) -> int:
        """Number of rule applications in the derivation."""
        return 1 + sum(premise.size() for premise in self.premises)

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}[{self.rule}] {self.judgment}"]
        for premise in self.premises:
            lines.append(premise.pretty(indent + 1))
        return "\n".join(lines)


class ProofError(Exception):
    """A rule's side condition or shape requirement is violated."""
