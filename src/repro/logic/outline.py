"""Proof outlines in the style of Fig. 5.

The paper presents verification as *proof outlines*: program text
interleaved with assertions, where consecutive assertion lines are
entailment (⇒) steps and each command line is justified by a proof rule.
This module provides

* :class:`OutlineBuilder` — a forward-style builder for sequential proof
  fragments: it tracks the current assertion, composes steps with the Seq
  rule, and inserts Cons steps for ⇒ lines, so client code reads like the
  left-to-right of an outline;
* :func:`to_outline` — render any checked derivation
  (:class:`repro.logic.judgment.ProofNode`) as a Fig. 5-style outline.

Because the only way to obtain a :class:`ProofNode` is through the rule
constructors (which check every side condition), an outline produced here
is *checked by construction*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..assertions.ast import Assertion
from ..lang.ast import Command, Seq, Skip
from ..spec.resource import ResourceContext
from .judgment import Judgment, ProofError, ProofNode
from .rules import ProbeStates, cons_rule, seq_rule, skip_rule


@dataclass(frozen=True)
class OutlineLine:
    """One line of a rendered outline: an assertion, an entailment, or a
    command with the rule that justifies it."""

    kind: str  # 'assert' | 'entail' | 'command'
    text: str
    depth: int = 0

    def render(self) -> str:
        pad = "  " * self.depth
        if self.kind == "assert":
            return f"{pad}{{ {self.text} }}"
        if self.kind == "entail":
            return f"{pad}⇒ {{ {self.text} }}"
        return f"{pad}{self.text}"


@dataclass(frozen=True)
class ProofOutline:
    """A rendered proof outline plus the derivation it came from."""

    root: ProofNode
    lines: tuple[OutlineLine, ...]

    def render(self) -> str:
        return "\n".join(line.render() for line in self.lines)

    def __str__(self) -> str:
        return self.render()


class OutlineBuilder:
    """Builds a sequential derivation step by step, Fig. 5 style.

    >>> from repro.assertions.ast import Emp
    >>> builder = OutlineBuilder(None, Emp())
    >>> _ = builder  # steps are added with .step() / .entail(); see tests

    The builder maintains the invariant that ``self.proof`` (once any step
    has been added) is a derivation whose postcondition is the current
    assertion; ``close()`` returns it.
    """

    def __init__(self, context: Optional[ResourceContext], pre: Assertion) -> None:
        self._context = context
        self._current: Assertion = pre
        self._proof: Optional[ProofNode] = None

    @property
    def current(self) -> Assertion:
        """The assertion at the current program point."""
        return self._current

    def step(self, node: ProofNode) -> "OutlineBuilder":
        """Append a proved command whose precondition is the current
        assertion; the current assertion becomes its postcondition."""
        if node.judgment.context != self._context:
            raise ProofError(
                f"outline: step proved under {node.judgment.context}, outline "
                f"is under {self._context}"
            )
        if node.judgment.pre != self._current:
            raise ProofError(
                f"outline: step precondition {node.judgment.pre} does not "
                f"match the current assertion {self._current}"
            )
        self._proof = node if self._proof is None else seq_rule(self._proof, node)
        self._current = node.judgment.post
        return self

    def entail(
        self,
        new_assertion: Assertion,
        probes: ProbeStates = (),
        trusted: bool = False,
    ) -> "OutlineBuilder":
        """An ⇒ line: replace the current assertion by an entailed one.

        If no command has been proved yet, the entailment strengthens the
        eventual precondition; otherwise it weakens the latest
        postcondition (both via the Cons rule)."""
        if self._proof is None:
            # Record as a Cons around Skip so the entailment is checked and
            # the derivation starts from the original precondition.
            skip = skip_rule(self._context, new_assertion)
            self._proof = cons_rule(skip, self._current, new_assertion, probes, trusted)
        else:
            self._proof = cons_rule(
                self._proof, self._proof.judgment.pre, new_assertion, probes, trusted
            )
        self._current = new_assertion
        return self

    def close(self) -> ProofNode:
        """The finished derivation for the composed command."""
        if self._proof is None:
            return skip_rule(self._context, self._current)
        return self._proof


# ---------------------------------------------------------------------------
# Rendering derivations as outlines
# ---------------------------------------------------------------------------

_STRUCTURAL_RULES = {"Seq", "Cons", "Frame", "Exists"}


def to_outline(node: ProofNode) -> ProofOutline:
    """Render a derivation as a Fig. 5-style proof outline."""
    lines: list[OutlineLine] = []
    lines.append(OutlineLine("assert", str(node.judgment.pre)))
    _render(node, lines, depth=0)
    lines.append(OutlineLine("assert", str(node.judgment.post)))
    return ProofOutline(node, tuple(lines))


def _render(node: ProofNode, lines: list[OutlineLine], depth: int) -> None:
    if node.rule == "Seq":
        first, second = node.premises
        _render(first, lines, depth)
        lines.append(OutlineLine("assert", str(first.judgment.post), depth))
        _render(second, lines, depth)
        return
    if node.rule == "Cons":
        (premise,) = node.premises
        if node.judgment.pre != premise.judgment.pre:
            lines.append(OutlineLine("entail", str(premise.judgment.pre), depth))
        _render(premise, lines, depth)
        if node.judgment.post != premise.judgment.post:
            lines.append(OutlineLine("entail", str(node.judgment.post), depth))
        return
    if node.rule == "Frame":
        (premise,) = node.premises
        _render(premise, lines, depth)
        return
    if node.rule == "Exists":
        (premise,) = node.premises
        _render(premise, lines, depth)
        return
    if node.rule == "Par":
        left, right = node.premises
        lines.append(OutlineLine("command", "(", depth))
        lines.append(OutlineLine("assert", str(left.judgment.pre), depth + 1))
        _render(left, lines, depth + 1)
        lines.append(OutlineLine("assert", str(left.judgment.post), depth + 1))
        lines.append(OutlineLine("command", "||", depth))
        lines.append(OutlineLine("assert", str(right.judgment.pre), depth + 1))
        _render(right, lines, depth + 1)
        lines.append(OutlineLine("assert", str(right.judgment.post), depth + 1))
        lines.append(OutlineLine("command", ")", depth))
        return
    if node.rule == "Share":
        (premise,) = node.premises
        lines.append(OutlineLine("command", "// share", depth))
        lines.append(OutlineLine("assert", str(premise.judgment.pre), depth + 1))
        _render(premise, lines, depth + 1)
        lines.append(OutlineLine("assert", str(premise.judgment.post), depth + 1))
        lines.append(OutlineLine("command", "// unshare", depth))
        return
    if node.rule in ("AtomicShr", "AtomicUnq"):
        (premise,) = node.premises
        lines.append(OutlineLine("command", f"atomic {{  // {node.rule}", depth))
        lines.append(OutlineLine("assert", str(premise.judgment.pre), depth + 1))
        _render(premise, lines, depth + 1)
        lines.append(OutlineLine("assert", str(premise.judgment.post), depth + 1))
        lines.append(OutlineLine("command", "}", depth))
        return
    if node.rule in ("If1", "If2", "While1", "While2"):
        lines.append(OutlineLine("command", f"{node.judgment.command}  // {node.rule}", depth))
        return
    # Leaf rules: Skip, Assign, Read, Write, New
    lines.append(OutlineLine("command", f"{node.judgment.command}  // {node.rule}", depth))


def rules_used(node: ProofNode) -> dict[str, int]:
    """Histogram of rule applications in a derivation."""
    counts: dict[str, int] = {}

    def walk(current: ProofNode) -> None:
        counts[current.rule] = counts.get(current.rule, 0) + 1
        for premise in current.premises:
            walk(premise)

    walk(node)
    return counts


def validate_structure(node: ProofNode) -> list[str]:
    """Structural re-check of a derivation tree.

    The rule constructors check side conditions at build time; this
    re-validates the *shape* afterwards (premise/conclusion relationships
    per rule), guarding against hand-built or mutated trees.  Returns a
    list of problems (empty = structurally valid).
    """
    problems: list[str] = []

    def walk(current: ProofNode) -> None:
        judgment = current.judgment
        if current.rule == "Seq":
            if len(current.premises) != 2:
                problems.append(f"Seq node with {len(current.premises)} premises")
            else:
                first, second = current.premises
                if not isinstance(judgment.command, Seq):
                    problems.append(f"Seq node concluding non-Seq command {judgment.command}")
                if first.judgment.post != second.judgment.pre:
                    problems.append("Seq node with mismatched middle assertions")
                if judgment.pre != first.judgment.pre or judgment.post != second.judgment.post:
                    problems.append("Seq node's pre/post do not match its premises")
        elif current.rule == "Cons":
            if len(current.premises) != 1:
                problems.append(f"Cons node with {len(current.premises)} premises")
            elif current.premises[0].judgment.command != judgment.command:
                problems.append("Cons node changes the command")
        elif current.rule == "Skip":
            if not isinstance(judgment.command, Skip):
                problems.append(f"Skip node concluding {judgment.command}")
            if judgment.pre != judgment.post:
                problems.append("Skip node with pre ≠ post")
        elif current.rule == "Share":
            if judgment.context is not None:
                problems.append("Share conclusion must be under ⊥")
            if current.premises and current.premises[0].judgment.context is None:
                problems.append("Share premise must be under Γ")
        elif current.rule in ("AtomicShr", "AtomicUnq"):
            if judgment.context is None:
                problems.append(f"{current.rule} conclusion must be under Γ")
            if current.premises and current.premises[0].judgment.context is not None:
                problems.append(f"{current.rule} premise must be under ⊥")
        for premise in current.premises:
            walk(premise)

    walk(node)
    return problems
