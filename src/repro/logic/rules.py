"""The proof rules of CommCSL (Fig. 8 and Fig. 10).

Every rule is a constructor function that takes the premises (already
constructed :class:`ProofNode` derivations) plus the rule's parameters,
*checks all side conditions and shape requirements*, and returns the
concluding :class:`ProofNode`.  Building a node through these functions is
proof checking; an ill-formed application raises :class:`ProofError`.

Entailments (rule Cons) are discharged by the bounded assertion checker
over caller-supplied probe states — the role Z3 plays for HyperViper — or
recorded as explicitly-trusted steps.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Iterable, Optional, Sequence

from ..assertions.ast import (
    Assertion,
    BoolAssert,
    Conj,
    Emp,
    Exists,
    Low,
    PointsTo,
    PreShared,
    PreUnique,
    SepConj,
    SGuardAssert,
    UGuardAssert,
    assertion_fv,
    assertion_subst,
)
from ..assertions.classify import is_noguard, is_precise, is_unambiguous, is_unary
from ..assertions.semantics import satisfies
from ..heap.extheap import ExtendedHeap
from ..lang.ast import (
    Alloc,
    Assign,
    Atomic,
    BinOp,
    Call,
    Command,
    Expr,
    If,
    Lit,
    Load,
    Par,
    Seq,
    Skip,
    Store,
    UnOp,
    Var,
    While,
    command_fv,
    command_mod,
    expr_fv,
)
from ..spec.resource import ResourceContext
from ..spec.validity import check_validity
from .judgment import Judgment, ProofError, ProofNode

Context = Optional[ResourceContext]


def _context_fv(context: Context) -> frozenset[str]:
    """Free variables of Γ: the invariant's location variable."""
    if context is None:
        return frozenset()
    return frozenset({context.location_var})


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProofError(message)


# ---------------------------------------------------------------------------
# Structural / small-axiom rules (Fig. 10)
# ---------------------------------------------------------------------------


def skip_rule(context: Context, assertion: Assertion) -> ProofNode:
    """``Γ⊥ ⊢ {P} skip {P}``"""
    return ProofNode("Skip", Judgment(context, assertion, Skip(), assertion))


def assign_rule(context: Context, target: str, expr: Expr, post: Assertion) -> ProofNode:
    """``Γ⊥ ⊢ {P[e/x]} x:=e {P}``, side condition ``x ∉ fv(Γ)``."""
    _require(target not in _context_fv(context), f"Assign: {target} occurs free in Γ")
    pre = assertion_subst(post, target, expr)
    return ProofNode("Assign", Judgment(context, pre, Assign(target, expr), post))


def alloc_rule(context: Context, target: str, expr: Expr) -> ProofNode:
    """``Γ⊥ ⊢ {emp} x:=alloc(e) {x ↦1 e}``, ``x ∉ fv(e) ∪ fv(Γ)``."""
    _require(target not in expr_fv(expr), f"New: {target} occurs in the initializer")
    _require(target not in _context_fv(context), f"New: {target} occurs free in Γ")
    post = PointsTo(Var(target), expr, Fraction(1))
    return ProofNode("New", Judgment(context, Emp(), Alloc(target, expr), post))


def read_rule(
    context: Context,
    target: str,
    address: Expr,
    value: Expr,
    fraction: Fraction = Fraction(1),
) -> ProofNode:
    """``Γ⊥ ⊢ {e1 ↦r e2} x:=[e1] {e1 ↦r e2 ∗ x = e2}``,
    ``x ∉ fv(e1, e2) ∪ fv(Γ)``."""
    _require(target not in expr_fv(address) | expr_fv(value), f"Read: {target} occurs in e1/e2")
    _require(target not in _context_fv(context), f"Read: {target} occurs free in Γ")
    points = PointsTo(address, value, fraction)
    post = SepConj(points, BoolAssert(BinOp("==", Var(target), value)))
    return ProofNode("Read", Judgment(context, points, Load(target, address), post))


def write_rule(context: Context, address: Expr, old_value: Expr, new_value: Expr) -> ProofNode:
    """``Γ⊥ ⊢ {e1 ↦1 _} [e1]:=e2 {e1 ↦1 e2}``."""
    pre = PointsTo(address, old_value, Fraction(1))
    post = PointsTo(address, new_value, Fraction(1))
    return ProofNode("Write", Judgment(context, pre, Store(address, new_value), post))


def seq_rule(first: ProofNode, second: ProofNode) -> ProofNode:
    """``{P}c1{R}`` and ``{R}c2{Q}`` give ``{P}c1;c2{Q}``."""
    _require(first.judgment.context == second.judgment.context, "Seq: contexts differ")
    _require(first.judgment.post == second.judgment.pre, "Seq: middle assertions differ")
    judgment = Judgment(
        first.judgment.context,
        first.judgment.pre,
        Seq(first.judgment.command, second.judgment.command),
        second.judgment.post,
    )
    return ProofNode("Seq", judgment, (first, second))


def if_low_rule(condition: Expr, then_proof: ProofNode, else_proof: ProofNode) -> ProofNode:
    """Rule If1: branches proved under ``P ∧ b`` / ``P ∧ ¬b``; the
    conclusion's precondition is ``P ∧ Low(b)``."""
    _require(then_proof.judgment.context == else_proof.judgment.context, "If1: contexts differ")
    _require(then_proof.judgment.post == else_proof.judgment.post, "If1: postconditions differ")
    base = _strip_branch_condition(then_proof.judgment.pre, condition, negated=False, rule="If1")
    base_else = _strip_branch_condition(else_proof.judgment.pre, condition, negated=True, rule="If1")
    _require(base == base_else, "If1: branch preconditions have different bases")
    pre = Conj(base, Low(condition))
    command = If(condition, then_proof.judgment.command, else_proof.judgment.command)
    judgment = Judgment(then_proof.judgment.context, pre, command, then_proof.judgment.post)
    return ProofNode("If1", judgment, (then_proof, else_proof))


def if_high_rule(condition: Expr, then_proof: ProofNode, else_proof: ProofNode) -> ProofNode:
    """Rule If2: the condition may be high, but the postcondition must be
    *unary* — this is what blocks implicit flows through high branching."""
    _require(then_proof.judgment.context == else_proof.judgment.context, "If2: contexts differ")
    _require(then_proof.judgment.post == else_proof.judgment.post, "If2: postconditions differ")
    _require(
        is_unary(then_proof.judgment.post),
        "If2: postcondition must be unary when branching on possibly-high data",
    )
    base = _strip_branch_condition(then_proof.judgment.pre, condition, negated=False, rule="If2")
    base_else = _strip_branch_condition(else_proof.judgment.pre, condition, negated=True, rule="If2")
    _require(base == base_else, "If2: branch preconditions have different bases")
    command = If(condition, then_proof.judgment.command, else_proof.judgment.command)
    judgment = Judgment(then_proof.judgment.context, base, command, then_proof.judgment.post)
    return ProofNode("If2", judgment, (then_proof, else_proof))


def _strip_branch_condition(pre: Assertion, condition: Expr, negated: bool, rule: str) -> Assertion:
    """Premises of If/While rules have shape ``P ∧ b`` (or ``P ∧ ¬b``);
    recover P."""
    wanted: Expr = UnOp("!", condition) if negated else condition
    if isinstance(pre, Conj) and pre.right == BoolAssert(wanted):
        return pre.left
    raise ProofError(f"{rule}: premise precondition must end with '∧ {wanted}', got {pre}")


def while_low_rule(condition: Expr, body_proof: ProofNode) -> ProofNode:
    """Rule While1: relational invariant, condition low before and after
    every iteration: premise ``{P ∧ b} c {P ∧ Low(b)}`` concludes
    ``{P ∧ Low(b)} while (b) {c} {P ∧ ¬b}``."""
    base = _strip_branch_condition(body_proof.judgment.pre, condition, negated=False, rule="While1")
    wanted_post = Conj(base, Low(condition))
    _require(
        body_proof.judgment.post == wanted_post,
        f"While1: body postcondition must be {wanted_post}, got {body_proof.judgment.post}",
    )
    pre = Conj(base, Low(condition))
    post = Conj(base, BoolAssert(UnOp("!", condition)))
    command = While(condition, body_proof.judgment.command)
    judgment = Judgment(body_proof.judgment.context, pre, command, post)
    return ProofNode("While1", judgment, (body_proof,))


def while_high_rule(condition: Expr, body_proof: ProofNode) -> ProofNode:
    """Rule While2: possibly-high condition, invariant must be *unary*:
    premise ``{P ∧ b} c {P}`` concludes ``{P} while (b) {c} {P ∧ ¬b}``."""
    base = _strip_branch_condition(body_proof.judgment.pre, condition, negated=False, rule="While2")
    _require(body_proof.judgment.post == base, "While2: body must re-establish the invariant")
    _require(is_unary(base), "While2: invariant must be unary under a possibly-high condition")
    post = Conj(base, BoolAssert(UnOp("!", condition)))
    command = While(condition, body_proof.judgment.command)
    judgment = Judgment(body_proof.judgment.context, base, command, post)
    return ProofNode("While2", judgment, (body_proof,))


def par_rule(left: ProofNode, right: ProofNode) -> ProofNode:
    """Rule Par: disjoint footprints and no interference through variables:

    ``{P1}c1{Q1}``, ``{P2}c2{Q2}`` give ``{P1∗P2} c1||c2 {Q1∗Q2}`` when
    neither thread modifies the other's free variables, Γ's variables are
    untouched, and P1 or P2 is precise."""
    _require(left.judgment.context == right.judgment.context, "Par: contexts differ")
    context = left.judgment.context
    c1, c2 = left.judgment.command, right.judgment.command
    fv1 = assertion_fv(left.judgment.pre) | command_fv(c1) | assertion_fv(left.judgment.post)
    fv2 = assertion_fv(right.judgment.pre) | command_fv(c2) | assertion_fv(right.judgment.post)
    _require(not (fv1 & command_mod(c2)), f"Par: right thread modifies {sorted(fv1 & command_mod(c2))}")
    _require(not (fv2 & command_mod(c1)), f"Par: left thread modifies {sorted(fv2 & command_mod(c1))}")
    _require(
        not (_context_fv(context) & (command_mod(c1) | command_mod(c2))),
        "Par: a thread modifies a variable of Γ",
    )
    _require(
        is_precise(left.judgment.pre) or is_precise(right.judgment.pre),
        "Par: P1 or P2 must be precise",
    )
    judgment = Judgment(
        context,
        SepConj(left.judgment.pre, right.judgment.pre),
        Par(c1, c2),
        SepConj(left.judgment.post, right.judgment.post),
    )
    return ProofNode("Par", judgment, (left, right))


def frame_rule(proof: ProofNode, frame: Assertion) -> ProofNode:
    """Rule Frame: ``{P}c{Q}`` gives ``{P∗R}c{Q∗R}`` when ``fv(R) ∩ mod(c)
    = ∅`` and P or R is precise."""
    command = proof.judgment.command
    _require(
        not (assertion_fv(frame) & command_mod(command)),
        "Frame: the frame mentions a modified variable",
    )
    _require(
        is_precise(proof.judgment.pre) or is_precise(frame),
        "Frame: P or R must be precise",
    )
    judgment = Judgment(
        proof.judgment.context,
        SepConj(proof.judgment.pre, frame),
        command,
        SepConj(proof.judgment.post, frame),
    )
    return ProofNode("Frame", judgment, (proof,))


def exists_rule(proof: ProofNode, variable: str) -> ProofNode:
    """Rule Exists: ``{P}c{Q}`` gives ``{∃x.P}c{∃x.Q}`` when ``x ∉ fv(c)``,
    P is unambiguous in x, and ``x ∉ fv(Γ)``."""
    command = proof.judgment.command
    _require(variable not in command_fv(command), f"Exists: {variable} occurs in the command")
    _require(
        is_unambiguous(proof.judgment.pre, variable),
        f"Exists: precondition does not determine {variable} (Def. B.1)",
    )
    _require(variable not in _context_fv(proof.judgment.context), f"Exists: {variable} in fv(Γ)")
    judgment = Judgment(
        proof.judgment.context,
        Exists(variable, proof.judgment.pre),
        command,
        Exists(variable, proof.judgment.post),
    )
    return ProofNode("Exists", judgment, (proof,))


ProbeStates = Sequence[tuple[dict, ExtendedHeap, dict, ExtendedHeap]]


def entails(premise: Assertion, conclusion: Assertion, probes: ProbeStates) -> bool:
    """Bounded entailment: on every probe state-pair satisfying ``premise``,
    ``conclusion`` must hold.  (Our stand-in for the SMT entailment query.)"""
    for store1, heap1, store2, heap2 in probes:
        if satisfies(store1, heap1, store2, heap2, premise):
            if not satisfies(store1, heap1, store2, heap2, conclusion):
                return False
    return True


def cons_rule(
    proof: ProofNode,
    new_pre: Assertion,
    new_post: Assertion,
    probes: ProbeStates = (),
    trusted: bool = False,
) -> ProofNode:
    """Rule Cons: strengthen the precondition / weaken the postcondition.

    Entailments are checked on the probe states; pass ``trusted=True`` to
    record a user-asserted entailment (the node is marked)."""
    if not trusted:
        _require(
            entails(new_pre, proof.judgment.pre, probes),
            "Cons: new precondition does not entail the old one on the probes",
        )
        _require(
            entails(proof.judgment.post, new_post, probes),
            "Cons: old postcondition does not entail the new one on the probes",
        )
    judgment = Judgment(proof.judgment.context, new_pre, proof.judgment.command, new_post)
    return ProofNode("Cons", judgment, (proof,), note="trusted" if trusted else "")


# ---------------------------------------------------------------------------
# The CommCSL-specific rules (Fig. 8)
# ---------------------------------------------------------------------------


def _unique_empty(context: ResourceContext) -> Assertion:
    """``UniqueEmpty`` = ``uguard_{i0}([]) ∗ ... ∗ uguard_{in}([])``."""
    parts: list[Assertion] = [
        UGuardAssert(action.name, Lit(())) for action in context.spec.unique_actions
    ]
    return _sep_all(parts)


def _unique_pre(context: ResourceContext, witness_vars: Sequence[str]) -> Assertion:
    """``UniquePre`` = ``∃xs. uguard_i(xs) ∗ PRE_i(xs) ∗ ...`` — here with
    explicit witness variable names chosen by the caller."""
    uniques = context.spec.unique_actions
    if len(witness_vars) != len(uniques):
        raise ProofError("UniquePre: one witness variable per unique action required")
    parts: list[Assertion] = []
    for action, variable in zip(uniques, witness_vars):
        parts.append(SepConj(UGuardAssert(action.name, Var(variable)), PreUnique(action, Var(variable))))
    body = _sep_all(parts)
    for variable in reversed(witness_vars):
        body = Exists(variable, body)
    return body


def _sep_all(parts: Sequence[Assertion]) -> Assertion:
    if not parts:
        return Emp()
    result = parts[0]
    for part in parts[1:]:
        result = SepConj(result, part)
    return result


def invariant_assertion(context: ResourceContext, value: Expr) -> Assertion:
    """``I(v)``: the canonical points-to invariant ``loc ↦1 v`` connecting
    the heap cell to the pure resource value (Sec. 3.5)."""
    return PointsTo(Var(context.location_var), value, Fraction(1))


def share_rule(
    context: ResourceContext,
    premise: ProofNode,
    value_var: str = "x",
    result_var: str = "x_prime",
    frame_pre: Assertion = Emp(),
    frame_post: Assertion = Emp(),
    shared_args_var: str = "x_s",
    unique_witness_vars: Sequence[str] = (),
) -> ProofNode:
    """Rule Share (Fig. 8).

    Premise (checked by shape):
      ``Γ ⊢ {P ∗ sguard(1, ∅) ∗ UniqueEmpty} c
            {Q ∗ sguard(1, x_s) ∗ PRE_s(x_s) ∗ UniquePre}``
    Conclusion:
      ``⊥ ⊢ {I(x) ∗ Low(α(x)) ∗ P} c {∃x'. I(x') ∗ Low(α(x')) ∗ Q}``

    Side conditions: Γ valid (Def. 3.1, discharged by the validity
    checker); I unary and precise (true by construction of the canonical
    points-to invariant)."""
    spec = context.spec
    report = check_validity(spec)
    _require(report.valid, f"Share: resource specification {spec.name} is invalid: "
             + "; ".join(str(ce) for ce in report.counterexamples))
    _require(premise.judgment.context == context, "Share: premise must be proved under Γ")

    shared = spec.shared_action
    _require(shared is not None, "Share: formalization requires a shared action (merge if needed)")

    expected_pre = SepConj(
        SepConj(frame_pre, SGuardAssert(Fraction(1), Lit(_empty_multiset()))),
        _unique_empty(context),
    )
    _require(
        premise.judgment.pre == expected_pre,
        f"Share: premise precondition must be {expected_pre}, got {premise.judgment.pre}",
    )
    post_body = SepConj(
        SepConj(
            frame_post,
            SepConj(
                SGuardAssert(Fraction(1), Var(shared_args_var)),
                PreShared(shared, Var(shared_args_var)),
            ),
        ),
        _unique_pre(context, unique_witness_vars),
    )
    expected_post = Exists(shared_args_var, post_body)
    _require(
        premise.judgment.post == expected_post,
        f"Share: premise postcondition must be {expected_post}, got {premise.judgment.post}",
    )

    alpha_call = lambda value: Call(f"alpha_{spec.name}", (value,))  # noqa: E731
    _register_alpha(spec)
    pre = SepConj(
        SepConj(invariant_assertion(context, Var(value_var)), Low(alpha_call(Var(value_var)))),
        frame_pre,
    )
    post = Exists(
        result_var,
        SepConj(
            SepConj(
                invariant_assertion(context, Var(result_var)),
                Low(alpha_call(Var(result_var))),
            ),
            frame_post,
        ),
    )
    judgment = Judgment(None, pre, premise.judgment.command, post)
    return ProofNode("Share", judgment, (premise,))


def _register_alpha(spec) -> None:
    """Expose a spec's abstraction as a pure function ``alpha_<name>`` so it
    can appear inside assertion expressions."""
    from ..lang.values import PURE_FUNCTIONS

    PURE_FUNCTIONS.setdefault(f"alpha_{spec.name}", spec.abstraction)


def _empty_multiset():
    from ..heap.multiset import EMPTY_MULTISET

    return EMPTY_MULTISET


def atomic_shared_rule(
    context: ResourceContext,
    premise: ProofNode,
    fraction: Fraction,
    args_expr: Expr,
    new_arg: Expr,
    value_var: str = "x_v",
    frame_pre: Assertion = Emp(),
    frame_post: Assertion = Emp(),
) -> ProofNode:
    """Rule AtomicShr (Fig. 8).

    Premise: ``⊥ ⊢ {P ∗ I(x_v)} c {Q ∗ I(f_as(x_v, x_a))}``
    Conclusion: ``Γ ⊢ {P ∗ sguard(r, x_s)} atomic c
                      {Q ∗ sguard(r, x_s ∪# {x_a}#)}``

    Side conditions: ``x_v`` fresh, P and Q guard-free, variables
    unmodified by c, I unary and precise (canonical invariant)."""
    spec = context.spec
    shared = spec.shared_action
    _require(shared is not None, "AtomicShr: spec has no shared action")
    _require(premise.judgment.context is None, "AtomicShr: premise must be proved under ⊥")
    _require(is_noguard(frame_pre) and is_noguard(frame_post), "AtomicShr: P, Q must be guard-free")

    command = premise.judgment.command
    mods = command_mod(command)
    _require(value_var not in mods, f"AtomicShr: {value_var} modified by the body")
    _require(
        value_var not in assertion_fv(frame_pre) | assertion_fv(frame_post),
        f"AtomicShr: {value_var} free in P or Q",
    )

    expected_pre = SepConj(frame_pre, invariant_assertion(context, Var(value_var)))
    _require(
        premise.judgment.pre == expected_pre,
        f"AtomicShr: premise pre must be {expected_pre}, got {premise.judgment.pre}",
    )
    applied = Call(f"f_{spec.name}_{shared.name}", (Var(value_var), new_arg))
    _register_action(spec, shared)
    expected_post = SepConj(frame_post, invariant_assertion(context, applied))
    _require(
        premise.judgment.post == expected_post,
        f"AtomicShr: premise post must be {expected_post}, got {premise.judgment.post}",
    )

    pre = SepConj(frame_pre, SGuardAssert(fraction, args_expr))
    post = SepConj(
        frame_post,
        SGuardAssert(fraction, Call("msAdd", (args_expr, new_arg))),
    )
    judgment = Judgment(context, pre, Atomic(command, shared.name, new_arg), post)
    return ProofNode("AtomicShr", judgment, (premise,))


def atomic_unique_rule(
    context: ResourceContext,
    premise: ProofNode,
    action_name: str,
    args_expr: Expr,
    new_arg: Expr,
    value_var: str = "x_v",
    frame_pre: Assertion = Emp(),
    frame_post: Assertion = Emp(),
) -> ProofNode:
    """Rule AtomicUnq (Fig. 8) — like AtomicShr but the whole unsplittable
    unique guard is required and arguments are recorded in a sequence."""
    spec = context.spec
    action = spec.action(action_name)
    _require(action.is_unique, f"AtomicUnq: {action_name} is not a unique action")
    _require(premise.judgment.context is None, "AtomicUnq: premise must be proved under ⊥")
    _require(is_noguard(frame_pre) and is_noguard(frame_post), "AtomicUnq: P, Q must be guard-free")

    command = premise.judgment.command
    _require(value_var not in command_mod(command), f"AtomicUnq: {value_var} modified by the body")
    _require(
        value_var not in assertion_fv(frame_pre) | assertion_fv(frame_post),
        f"AtomicUnq: {value_var} free in P or Q",
    )

    expected_pre = SepConj(frame_pre, invariant_assertion(context, Var(value_var)))
    _require(
        premise.judgment.pre == expected_pre,
        f"AtomicUnq: premise pre must be {expected_pre}, got {premise.judgment.pre}",
    )
    applied = Call(f"f_{spec.name}_{action.name}", (Var(value_var), new_arg))
    _register_action(spec, action)
    expected_post = SepConj(frame_post, invariant_assertion(context, applied))
    _require(
        premise.judgment.post == expected_post,
        f"AtomicUnq: premise post must be {expected_post}, got {premise.judgment.post}",
    )

    pre = SepConj(frame_pre, UGuardAssert(action.name, args_expr))
    post = SepConj(
        frame_post,
        UGuardAssert(action.name, Call("append", (args_expr, new_arg))),
    )
    judgment = Judgment(context, pre, Atomic(command, action.name, new_arg), post)
    return ProofNode("AtomicUnq", judgment, (premise,))


def _register_action(spec, action) -> None:
    """Expose an action's transition function as a pure function
    ``f_<spec>_<action>`` for use inside assertion expressions."""
    from ..lang.values import PURE_FUNCTIONS

    PURE_FUNCTIONS.setdefault(f"f_{spec.name}_{action.name}", action.apply)
