"""The looped Fig. 5 worker and the full Fig. 3 derivation.

:mod:`repro.logic.fig5` derives the loop-free core of Fig. 5; this module
adds the figure's remaining ingredients:

* :func:`worker_loop_proof` — the *worker loop* with the relational loop
  invariant of Fig. 5 line 7,

  .. code-block:: text

      { ∃s'. guard_Put(s', ½) ∗ PRE_Put(s') }     (+ lowness of i, t, addrs)

  proved through the While1 rule over the real Fig. 3 loop body:

  .. code-block:: text

      i := f
      while (i < t) {
          adr := at(addrs, i)
          rsn := at(reasons, i)
          atomic [Put(pair(adr, rsn))] { m1 := [m]; [m] := put(m1, adr, rsn) }
          i := i + 1
      }

  The derivation opens the invariant's existential by proving the body
  with a free argument-multiset variable ``s_w``, closes it again with
  the Exists rule (sound because ``sguard(½, s_w)`` *determines* ``s_w``
  — Def. B.1), and uses Cons steps, discharged on probe states, for the
  Fig. 5 ⇒ lines.

* :func:`figure3_full_proof` — the **whole program** of Fig. 3/Fig. 5:
  the Share rule wrapped around the parallel composition of two looped
  workers (variables renamed apart, guard split on entry, fractions and
  PRE facts merged on exit).  This is the paper's figure end to end,
  machine-checked.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from ..assertions.ast import (
    Assertion,
    BoolAssert,
    Conj,
    Emp,
    Exists,
    Low,
    PointsTo,
    PreShared,
    SepConj,
    SGuardAssert,
)
from ..heap.extheap import ExtendedHeap
from ..heap.guards import SharedGuard
from ..heap.multiset import EMPTY_MULTISET, Multiset
from ..heap.permheap import PermissionHeap
from ..lang.ast import BinOp, Call, Lit, Var
from ..lang.values import PMap
from .fig5 import CONTEXT, PUT, SPEC
from .judgment import ProofNode
from .rules import (
    assign_rule,
    atomic_shared_rule,
    cons_rule,
    exists_rule,
    frame_rule,
    par_rule,
    read_rule,
    seq_rule,
    share_rule,
    while_low_rule,
    write_rule,
)

HALF = Fraction(1, 2)

#: Shared read-only inputs (both workers may read them; nobody writes).
T_VAR, ADDRS, REASONS = Var("t"), Var("addrs"), Var("reasons")


def _i(suffix: str) -> Var:
    return Var(f"i{suffix}")


def _condition(suffix: str) -> BinOp:
    return BinOp("<", _i(suffix), T_VAR)


def _arg(suffix: str) -> Call:
    return Call("pair", (Var(f"adr{suffix}"), Var(f"rsn{suffix}")))


#: Backward-compatible aliases for the single-worker derivation.
I_VAR = _i("")
CONDITION = _condition("")
ARG = _arg("")


def _guard(fraction: Fraction, args) -> SGuardAssert:
    return SGuardAssert(fraction, args)


def _pre(args) -> PreShared:
    return PreShared(PUT, args)


def _lows(suffix: str, entry: bool = False) -> Assertion:
    """Low(i) ∧ Low(t) ∧ Low(addrs) (with ``f`` instead of ``i`` at entry)."""
    index = Var(f"f{suffix}") if entry else _i(suffix)
    return Conj(Conj(Low(index), Low(T_VAR)), Low(ADDRS))


def loop_invariant(suffix: str = "") -> Assertion:
    """Fig. 5 line 7: ``∃s'. guard(s', ½) ∗ PRE(s')`` plus index lowness."""
    witness = f"s_p{suffix}"
    existential = Exists(witness, SepConj(_guard(HALF, Var(witness)), _pre(Var(witness))))
    return Conj(existential, _lows(suffix))


# ---------------------------------------------------------------------------
# Probe states (the solver's small scope)
# ---------------------------------------------------------------------------

_BASE_STORE = {"m": 1, "t": 2, "addrs": (1, 2), "reasons": (9, 8)}


def _guard_probe(
    fraction: Fraction,
    args1,
    args2,
    store1_extra: dict,
    store2_extra: dict | None = None,
) -> tuple:
    store1 = {**_BASE_STORE, **store1_extra}
    store2 = {**_BASE_STORE, **(store2_extra if store2_extra is not None else store1_extra)}
    gh1 = ExtendedHeap.guard_only(SharedGuard(fraction, Multiset(args1)))
    gh2 = ExtendedHeap.guard_only(SharedGuard(fraction, Multiset(args2)))
    return (store1, gh1, store2, gh2)


def _loop_probes(suffix: str) -> list:
    """Pairs of states along the loop: matching keys, differing values."""
    i, adr, rsn, s_w, f = (f"i{suffix}", f"adr{suffix}", f"rsn{suffix}", f"s_w{suffix}", f"f{suffix}")
    return [
        _guard_probe(HALF, [], [], {i: 0, f: 0}),
        _guard_probe(
            HALF,
            [(1, 9)],
            [(1, 7)],
            {i: 1, f: 0, adr: 2, rsn: 8, s_w: Multiset([(1, 9)])},
            {i: 1, f: 0, adr: 2, rsn: 6, s_w: Multiset([(1, 7)])},
        ),
        _guard_probe(
            HALF,
            [(1, 9), (2, 8)],
            [(1, 7), (2, 6)],
            {i: 1, f: 0, adr: 2, rsn: 8, s_w: Multiset([(1, 9)])},
            {i: 1, f: 0, adr: 2, rsn: 6, s_w: Multiset([(1, 7)])},
        ),
        _guard_probe(
            HALF,
            [(1, 9), (2, 8)],
            [(1, 7), (2, 6)],
            {i: 2, f: 0, adr: 2, rsn: 8, s_w: Multiset([(1, 9)])},
            {i: 2, f: 0, adr: 2, rsn: 6, s_w: Multiset([(1, 7)])},
        ),
    ]


_PROBE_MAPS: tuple[PMap, ...] = (PMap(), PMap({1: 9}), PMap({1: 7}))


def _heap_probe(value: PMap, extra: dict) -> tuple:
    store = {**_BASE_STORE, **extra}
    gh = ExtendedHeap(PermissionHeap.singleton(1, value))
    return (dict(store), gh, dict(store), gh)


# ---------------------------------------------------------------------------
# The worker derivation
# ---------------------------------------------------------------------------


def _atomic_step(suffix: str) -> ProofNode:
    """AtomicShr with a *variable* argument multiset ``s_w`` (mid-loop)."""
    mvar, adr, rsn = f"m1{suffix}", f"adr{suffix}", f"rsn{suffix}"
    put_call = Call("put", (Var(mvar), Var(adr), Var(rsn)))
    read = read_rule(None, mvar, Var("m"), Var("x_v"))
    write = write_rule(None, Var("m"), Var("x_v"), put_call)
    framed_write = frame_rule(write, BoolAssert(BinOp("==", Var(mvar), Var("x_v"))))
    body = seq_rule(read, framed_write)

    applied = Call(f"f_{SPEC.name}_Put", (Var("x_v"), _arg(suffix)))
    probes = [
        _heap_probe(value, {"x_v": value, mvar: value, adr: key, rsn: val})
        for value in _PROBE_MAPS
        for key, val in ((1, 9), (2, 8))
    ] + [
        _heap_probe(value.put(key, val), {"x_v": value, mvar: value, adr: key, rsn: val})
        for value in _PROBE_MAPS
        for key, val in ((1, 9), (2, 8))
    ]
    premise = cons_rule(
        body,
        SepConj(Emp(), PointsTo(Var("m"), Var("x_v"), Fraction(1))),
        SepConj(Emp(), PointsTo(Var("m"), applied, Fraction(1))),
        probes=probes,
    )
    return atomic_shared_rule(
        CONTEXT, premise, fraction=HALF, args_expr=Var(f"s_w{suffix}"), new_arg=_arg(suffix)
    )


def worker_loop_proof(suffix: str = "") -> ProofNode:
    """The looped worker derivation (While1 with the relational invariant).

    Concludes (under Γ, with ``lows`` = Low(i) ∧ Low(t) ∧ Low(addrs)):

    .. code-block:: text

        { (∃s'. guard(s', ½) ∗ PRE(s')) ∧ lows ∧ Low(i < t) }
        while (i < t) { adr := ...; rsn := ...; atomic [Put]; i := i + 1 }
        { (∃s'. guard(s', ½) ∗ PRE(s')) ∧ lows ∧ ¬(i < t) }
    """
    s_w = f"s_w{suffix}"
    i, adr, rsn = f"i{suffix}", f"adr{suffix}", f"rsn{suffix}"
    condition = _condition(suffix)
    atomic = _atomic_step(suffix)

    # Frame the pure loop context through the atomic step: PRE for the old
    # multiset, the index/bound/address lowness, and Low(adr) (needed to
    # re-establish PRE for the extended multiset afterwards).
    frame = Conj(Conj(_pre(Var(s_w)), _lows(suffix)), Low(Var(adr)))
    framed_atomic = frame_rule(atomic, frame)

    # i := i + 1 — proved with the target postcondition, precondition by
    # substitution (Low(i) becomes Low(i + 1)).
    post_body_free = framed_atomic.judgment.post
    increment = assign_rule(CONTEXT, i, BinOp("+", _i(suffix), Lit(1)), post_body_free)
    bridged = cons_rule(
        framed_atomic,
        framed_atomic.judgment.pre,
        increment.judgment.pre,
        probes=_loop_probes(suffix),
    )
    tail = seq_rule(bridged, increment)

    # The two leading assignments, proved backward by substitution.
    rsn_assign = assign_rule(CONTEXT, rsn, Call("at", (REASONS, _i(suffix))), tail.judgment.pre)
    adr_assign = assign_rule(
        CONTEXT, adr, Call("at", (ADDRS, _i(suffix))), rsn_assign.judgment.pre
    )
    body_free = seq_rule(adr_assign, seq_rule(rsn_assign, tail))

    # Close the existential over the free multiset variable (sound:
    # guard(½, s_w) determines s_w — Def. B.1 via the guard state).
    body_exists = exists_rule(body_free, s_w)

    # Reshape to the While1 premise {P ∧ b} c {P ∧ Low(b)}.
    invariant = loop_invariant(suffix)
    premise = cons_rule(
        body_exists,
        Conj(invariant, BoolAssert(condition)),
        Conj(invariant, Low(condition)),
        probes=_loop_probes(suffix),
    )
    return while_low_rule(condition, premise)


def worker_contract_pre(suffix: str = "") -> Assertion:
    """The worker's entry assertion: half guard, empty history, low inputs."""
    return Conj(SepConj(Emp(), _guard(HALF, Lit(EMPTY_MULTISET))), _lows(suffix, entry=True))


def worker_loop_contract(suffix: str = "") -> ProofNode:
    """``i := f`` followed by the loop, from an empty action history."""
    loop = worker_loop_proof(suffix)
    init = assign_rule(CONTEXT, f"i{suffix}", Var(f"f{suffix}"), loop.judgment.pre)
    entry = worker_contract_pre(suffix)
    probes = [
        _guard_probe(HALF, [], [], {f"i{suffix}": 0, f"f{suffix}": 0}),
        _guard_probe(HALF, [], [], {f"i{suffix}": 0, f"f{suffix}": 0, "t": 3}),
    ]
    bridged = cons_rule(init, entry, init.judgment.post, probes=probes)
    return seq_rule(bridged, loop)


# ---------------------------------------------------------------------------
# The full Fig. 3 program
# ---------------------------------------------------------------------------


def figure3_full_proof() -> ProofNode:
    """The whole Fig. 3 / Fig. 5 derivation with looped workers.

    Share wraps ``worker1 || worker2``, where each worker is the complete
    ``i := f; while (i < t) {...}`` derivation.  The guard is split on
    entry and merged on exit exactly as in Fig. 5; the conclusion (under
    ⊥) exposes ``Low(α(x'))`` for the final map value.
    """
    left = worker_loop_contract("1")
    right = worker_loop_contract("2")
    combined = par_rule(left, right)

    # The frame P of the Share rule: the workers' low inputs.
    frame_pre = Conj(
        Conj(Conj(Low(Var("f1")), Low(Var("f2"))), Low(T_VAR)), Low(ADDRS)
    )
    share_pre = SepConj(SepConj(frame_pre, _guard(Fraction(1), Lit(EMPTY_MULTISET))), Emp())
    recorded = _guard(Fraction(1), Var("x_s"))
    share_post = Exists(
        "x_s", SepConj(SepConj(Emp(), SepConj(recorded, _pre(Var("x_s")))), Emp())
    )

    entry_stores = {"f1": 0, "f2": 1, "i1": 0, "i2": 1}
    split_probe = _guard_probe(Fraction(1), [], [], entry_stores)
    merge_probes = [
        _guard_probe(
            Fraction(1),
            [(1, 9), (2, 8)],
            [(1, 7), (2, 6)],
            {**entry_stores, "i1": 2, "i2": 2},
        ),
        _guard_probe(
            Fraction(1),
            [(1, 9), (2, 8)],
            [(2, 6), (1, 7)],
            {**entry_stores, "i1": 2, "i2": 2},
        ),
    ]
    premise = cons_rule(
        combined, share_pre, share_post, probes=[split_probe] + merge_probes
    )
    return share_rule(CONTEXT, premise, frame_pre=frame_pre, frame_post=Emp())
