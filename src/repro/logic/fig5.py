"""The Fig. 5 proof, machine-checked.

Fig. 5 of the paper shows the proof outline for the map example (Fig. 3)
against the key-set resource specification (Fig. 4 left): the resource is
shared, the Put guard is split between two workers, each worker performs
Put atomically and maintains ``∃s'. guard_Put(s', ½) ∗ PRE_Put(s')``, the
fractions are recombined, and unsharing yields ``Low(dom(v))``.

This module *constructs that derivation through the actual proof rules*
(all side conditions checked; entailments discharged on concrete probe
states, the role Z3 plays for HyperViper).  The program proved is the
loop-free two-worker core of Fig. 3 — each worker performs one ``put`` of
a low address and a possibly-secret reason:

.. code-block:: text

    ( atomic [Put(pair(adr1, rsn1))] { m1 := [m]; [m] := put(m1, adr1, rsn1) }
    ||
      atomic [Put(pair(adr2, rsn2))] { m2 := [m]; [m] := put(m2, adr2, rsn2) } )

wrapped by the Share rule, concluding (Fig. 5, lines 5–16):

.. code-block:: text

    ⊥ ⊢ { I(x) ∗ Low(α(x)) ∗ (Low(adr1) ∧ Low(adr2)) }
        c
        { ∃x'. I(x') ∗ Low(α(x')) ∗ (Low(adr1) ∧ Low(adr2)) }

The derivation exercises every Fig. 5 ingredient: guard splitting (line
9), the AtomicShr rule per worker (lines 10–18 of the worker column),
PRE maintenance, guard recombination (line 14), and the Share rule's
retroactive PRE check.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from ..assertions.ast import (
    Assertion,
    BoolAssert,
    Conj,
    Emp,
    Exists,
    Low,
    PointsTo,
    PreShared,
    SepConj,
    SGuardAssert,
)
from ..heap.extheap import ExtendedHeap
from ..heap.guards import SharedGuard
from ..heap.multiset import EMPTY_MULTISET, Multiset
from ..heap.permheap import PermissionHeap
from ..lang.ast import BinOp, Call, Lit, Var
from ..lang.values import PMap, PURE_FUNCTIONS
from ..spec.library import map_put_keyset_spec
from ..spec.resource import ResourceContext
from .judgment import ProofNode
from .outline import ProofOutline, to_outline
from .rules import (
    atomic_shared_rule,
    cons_rule,
    frame_rule,
    par_rule,
    read_rule,
    seq_rule,
    share_rule,
    write_rule,
)

SPEC = map_put_keyset_spec()
CONTEXT = ResourceContext(SPEC, "m")
PUT = SPEC.action("Put")

# Register the action/abstraction as pure functions up front so they can
# appear inside assertion expressions and probe evaluation.
PURE_FUNCTIONS.setdefault(f"f_{SPEC.name}_Put", PUT.apply)
PURE_FUNCTIONS.setdefault(f"alpha_{SPEC.name}", SPEC.abstraction)

#: Map values used for probe states (the small-scope stand-in for Z3's
#: symbolic reasoning; see docs/ARCHITECTURE.md).
_PROBE_MAPS: tuple[PMap, ...] = (PMap(), PMap({1: 10}), PMap({1: 10, 2: 20}))
_PROBE_ARGS: tuple[tuple[int, int], ...] = ((1, 10), (2, 20))


def _heap_probe(value: PMap, store_extra: dict) -> tuple:
    """Probe pair with ``m ↦ value`` and the given store additions."""
    store = {"m": 1, **store_extra}
    gh = ExtendedHeap(PermissionHeap.singleton(1, value))
    return (dict(store), gh, dict(store), gh)


def _guard_probe(fraction: Fraction, args1: Sequence, args2: Sequence, store: dict) -> tuple:
    gh1 = ExtendedHeap.guard_only(SharedGuard(fraction, Multiset(args1)))
    gh2 = ExtendedHeap.guard_only(SharedGuard(fraction, Multiset(args2)))
    return (dict(store), gh1, dict(store), gh2)


def worker_proof(index: int) -> ProofNode:
    """The derivation for one worker's atomic Put (Fig. 5 right column).

    Concludes (under Γ):

    .. code-block:: text

        { Emp ∗ sguard(½, ∅#) }
        atomic [Put(pair(adr_i, rsn_i))] { m_i := [m]; [m] := put(m_i, adr_i, rsn_i) }
        { ∃s'. (sguard(½, s') ∗ PRE_Put(s')) }
    """
    adr, rsn, mvar = f"adr{index}", f"rsn{index}", f"m{index}"
    put_call = Call("put", (Var(mvar), Var(adr), Var(rsn)))
    arg = Call("pair", (Var(adr), Var(rsn)))

    # {m ↦ x_v} m_i := [m] {m ↦ x_v ∗ m_i == x_v}
    read = read_rule(None, mvar, Var("m"), Var("x_v"))
    # {m ↦ x_v} [m] := put(m_i, adr_i, rsn_i) {m ↦ put(m_i, adr_i, rsn_i)}
    write = write_rule(None, Var("m"), Var("x_v"), put_call)
    framed_write = frame_rule(write, BoolAssert(BinOp("==", Var(mvar), Var("x_v"))))
    body = seq_rule(read, framed_write)

    # Reshape into the AtomicShr premise {Emp ∗ I(x_v)} c {Emp ∗ I(f_Put(x_v, arg))}.
    applied = Call(f"f_{SPEC.name}_Put", (Var("x_v"), arg))
    pre_probes = [
        _heap_probe(value, {"x_v": value, mvar: value, adr: key, rsn: val})
        for value in _PROBE_MAPS
        for key, val in _PROBE_ARGS
    ]
    post_probes = [
        _heap_probe(value.put(key, val), {"x_v": value, mvar: value, adr: key, rsn: val})
        for value in _PROBE_MAPS
        for key, val in _PROBE_ARGS
    ]
    premise = cons_rule(
        body,
        SepConj(Emp(), PointsTo(Var("m"), Var("x_v"), Fraction(1))),
        SepConj(Emp(), PointsTo(Var("m"), applied, Fraction(1))),
        probes=pre_probes + post_probes,
    )
    atomic = atomic_shared_rule(
        CONTEXT,
        premise,
        fraction=Fraction(1, 2),
        args_expr=Lit(EMPTY_MULTISET),
        new_arg=arg,
    )

    # Weaken the postcondition into the worker's contract
    # (Fig. 5 worker line 3): ∃s'. sguard(½, s') ∗ PRE_Put(s').
    contract_post = Exists(
        "s_w", SepConj(SGuardAssert(Fraction(1, 2), Var("s_w")), PreShared(PUT, Var("s_w")))
    )
    # Probes: after the atomic, the guard holds one recorded argument whose
    # key agrees across executions but whose value may differ.
    post_entail_probes = [
        _guard_probe(
            Fraction(1, 2),
            [(1, 10)],
            [(1, 20)],
            {adr: 1, rsn: 10},
        ),
        _guard_probe(Fraction(1, 2), [(2, 20)], [(2, 20)], {adr: 2, rsn: 20}),
    ]
    return cons_rule(atomic, atomic.judgment.pre, contract_post, probes=post_entail_probes)


def figure5_proof() -> ProofNode:
    """The complete Fig. 5 derivation (two workers, share to unshare)."""
    left = worker_proof(1)
    right = worker_proof(2)
    combined = par_rule(left, right)

    # Reshape into the Share premise:
    #   pre:  (Emp ∗ sguard(1, ∅#)) ∗ UniqueEmpty        (UniqueEmpty = emp)
    #   post: ∃x_s. ((Emp ∗ (sguard(1, x_s) ∗ PRE(x_s))) ∗ emp)
    share_pre = SepConj(SepConj(Emp(), SGuardAssert(Fraction(1), Lit(EMPTY_MULTISET))), Emp())
    recorded = SGuardAssert(Fraction(1), Var("x_s"))
    share_post = Exists(
        "x_s", SepConj(SepConj(Emp(), SepConj(recorded, PreShared(PUT, Var("x_s")))), Emp())
    )
    # Split probe: the full empty guard splits into two empty halves.
    split_probe = _guard_probe(Fraction(1), [], [], {"adr1": 1, "adr2": 2})
    # Merge probes: two recorded arguments per execution; keys agree
    # pairwise across executions (possibly via a non-identity bijection).
    merge_probes = [
        _guard_probe(Fraction(1), [(1, 10), (2, 20)], [(1, 99), (2, 88)], {}),
        _guard_probe(Fraction(1), [(1, 10), (2, 20)], [(2, 88), (1, 99)], {}),
    ]
    premise = cons_rule(combined, share_pre, share_post, probes=[split_probe] + merge_probes)
    return share_rule(CONTEXT, premise)


def figure5_outline() -> ProofOutline:
    """The Fig. 5 proof rendered as a proof outline."""
    return to_outline(figure5_proof())
