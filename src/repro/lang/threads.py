"""The dynamic-thread machine: ``fork``/``join`` runtime (Sec. 5).

The paper formalizes structured parallel composition ``c1 || c2``;
HyperViper's implementation language instead creates threads dynamically
with ``fork`` and ``join`` (see the App. E example, which forks one worker
per input segment in a loop).  This module gives that language an
operational semantics as a *thread-pool machine* layered beside the
structured semantics of :mod:`repro.lang.semantics`:

* every thread has a **private store** (the forked procedure's parameters
  and locals) — all communication goes through the shared heap, as in the
  paper's data-race-free model;
* the heap, the public output trace, and the allocation counter are
  **shared** by all threads;
* ``fork p(args)`` spawns a thread whose store binds ``p``'s parameters to
  the evaluated arguments and stores a fresh token in the target variable;
* ``join p(t)`` is enabled only when the thread with token ``t`` has
  terminated (it then reaps the thread);
* ``atomic`` blocks run to completion in one indivisible step, exactly as
  in the structured semantics; ``fork``/``join`` inside atomic blocks is
  rejected (a fork is not a state transformation, so it has no place in an
  indivisible action).

The machine exposes the same scheduler interface as the structured
semantics, so the internal-timing-channel experiments can be replayed on
dynamically created threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterator, Optional, Sequence

from .ast import (
    Alloc,
    Assign,
    Atomic,
    Command,
    Fork,
    If,
    Join,
    Load,
    Par,
    Print,
    Seq,
    Share,
    Skip,
    Store,
    Unshare,
    While,
)
from .procedures import Procedure, ProcedureError, ThreadedProgram
from .semantics import DEFAULT_VALUE, Config, State, _run_atomic, _truthy, evaluate

MAIN_TID = 0


class ThreadError(Exception):
    """Raised on ill-formed thread operations (bad token, fork in atomic)."""


@dataclass(frozen=True)
class Thread:
    """One thread of the pool: token, remaining command, private store."""

    tid: int
    command: Command
    store: tuple  # sorted (name, value) pairs

    def is_finished(self) -> bool:
        return isinstance(self.command, Skip)

    def store_dict(self) -> dict:
        return dict(self.store)


@dataclass(frozen=True)
class TConfig:
    """A configuration of the thread-pool machine.

    ``threads`` always contains the main thread (tid 0) plus all live
    forked threads, in tid order.  ``heap``/``output``/``next_location``
    are the shared components; ``next_tid`` numbers forked threads.
    """

    threads: tuple  # tuple[Thread, ...]
    heap: tuple
    output: tuple = ()
    next_location: int = 1
    next_tid: int = 1

    @classmethod
    def make(
        cls,
        program: ThreadedProgram,
        inputs: Optional[dict] = None,
        heap: Optional[dict] = None,
    ) -> "TConfig":
        inputs = inputs or {}
        heap = heap or {}
        main = Thread(MAIN_TID, program.main, tuple(sorted(inputs.items())))
        return cls(
            threads=(main,),
            heap=tuple(sorted(heap.items())),
            next_location=max(heap, default=0) + 1,
        )

    def heap_dict(self) -> dict:
        return dict(self.heap)

    def thread(self, tid: int) -> Optional[Thread]:
        for thread in self.threads:
            if thread.tid == tid:
                return thread
        return None

    def finished_tids(self) -> frozenset[int]:
        return frozenset(thread.tid for thread in self.threads if thread.is_finished())

    def is_final(self) -> bool:
        return all(thread.is_finished() for thread in self.threads)


ABORT = "abort"


@dataclass(frozen=True)
class TStep:
    """One successor of a thread-pool configuration.

    ``choice`` is ``"<tid>"`` or ``"<tid>:<path>"`` when the moving thread
    contains structured parallelism; ``result`` is a :class:`TConfig` or
    the :data:`ABORT` marker.
    """

    choice: str
    result: Any  # TConfig | "abort"

    def aborted(self) -> bool:
        return self.result == ABORT


@dataclass(frozen=True)
class _Outcome:
    """Effect of one small step of a single thread."""

    choice: str
    command: Command
    store: tuple
    heap: tuple
    output: tuple
    next_location: int
    spawn: Optional[tuple] = None  # (procedure_name, arg_values, target_var)
    reap: Optional[int] = None  # tid consumed by a join
    aborted: bool = False


def tstep(config: TConfig, program: ThreadedProgram) -> list[TStep]:
    """All one-step successors of ``config`` (empty iff final or deadlocked)."""
    table = program.table()
    finished = config.finished_tids()
    steps: list[TStep] = []
    for thread in config.threads:
        if thread.is_finished():
            continue
        for outcome in _thread_step(
            thread.command,
            thread.store_dict(),
            config.heap_dict(),
            config.output,
            config.next_location,
            finished,
            str(thread.tid),
        ):
            if outcome.aborted:
                steps.append(TStep(outcome.choice, ABORT))
                continue
            steps.append(TStep(outcome.choice, _apply(config, thread, outcome, table)))
    return steps


def _apply(config: TConfig, thread: Thread, outcome: _Outcome, table: dict) -> TConfig:
    threads = list(config.threads)
    next_tid = config.next_tid
    index = threads.index(thread)
    store = dict(outcome.store)
    if outcome.spawn is not None:
        proc_name, arg_values, target = outcome.spawn
        proc = table.get(proc_name)
        if proc is None:
            raise ProcedureError(f"fork of undeclared procedure {proc_name!r}")
        if len(arg_values) != len(proc.params):
            raise ProcedureError(
                f"fork {proc_name}: expected {len(proc.params)} arguments, "
                f"got {len(arg_values)}"
            )
        child_store = tuple(sorted(zip(proc.params, arg_values)))
        threads.append(Thread(next_tid, proc.body, child_store))
        store[target] = next_tid
        next_tid += 1
    threads[index] = Thread(thread.tid, outcome.command, tuple(sorted(store.items())))
    if outcome.reap is not None:
        threads = [t for t in threads if t.tid != outcome.reap]
    return TConfig(
        threads=tuple(threads),
        heap=outcome.heap,
        output=outcome.output,
        next_location=outcome.next_location,
        next_tid=next_tid,
    )


def _contains_fork_join(cmd: Command) -> bool:
    if isinstance(cmd, (Fork, Join)):
        return True
    if isinstance(cmd, Seq):
        return _contains_fork_join(cmd.first) or _contains_fork_join(cmd.second)
    if isinstance(cmd, If):
        return _contains_fork_join(cmd.then_branch) or _contains_fork_join(cmd.else_branch)
    if isinstance(cmd, While):
        return _contains_fork_join(cmd.body)
    if isinstance(cmd, Par):
        return _contains_fork_join(cmd.left) or _contains_fork_join(cmd.right)
    if isinstance(cmd, Atomic):
        return _contains_fork_join(cmd.body)
    return False


def _thread_step(
    cmd: Command,
    store: dict,
    heap: dict,
    output: tuple,
    next_location: int,
    finished: frozenset[int],
    choice: str,
) -> Iterator[_Outcome]:
    """Small-step a single thread; mirrors Fig. 9 plus Fork/Join."""

    def done(
        command: Command,
        *,
        new_store: Optional[dict] = None,
        new_heap: Optional[dict] = None,
        new_output: Optional[tuple] = None,
        new_next: Optional[int] = None,
        spawn: Optional[tuple] = None,
        reap: Optional[int] = None,
        sub_choice: str = "",
    ) -> _Outcome:
        return _Outcome(
            choice=choice + sub_choice,
            command=command,
            store=tuple(sorted((new_store if new_store is not None else store).items())),
            heap=tuple(sorted((new_heap if new_heap is not None else heap).items())),
            output=new_output if new_output is not None else output,
            next_location=new_next if new_next is not None else next_location,
            spawn=spawn,
            reap=reap,
        )

    if isinstance(cmd, Skip):
        return
    if isinstance(cmd, Assign):
        new_store = dict(store)
        new_store[cmd.target] = evaluate(cmd.expr, store)
        yield done(Skip(), new_store=new_store)
        return
    if isinstance(cmd, Load):
        address = evaluate(cmd.address, store)
        if address not in heap:
            yield _Outcome(choice, cmd, (), (), (), 0, aborted=True)
            return
        new_store = dict(store)
        new_store[cmd.target] = heap[address]
        yield done(Skip(), new_store=new_store)
        return
    if isinstance(cmd, Store):
        address = evaluate(cmd.address, store)
        if address not in heap:
            yield _Outcome(choice, cmd, (), (), (), 0, aborted=True)
            return
        new_heap = dict(heap)
        new_heap[address] = evaluate(cmd.expr, store)
        yield done(Skip(), new_heap=new_heap)
        return
    if isinstance(cmd, Alloc):
        new_store = dict(store)
        new_heap = dict(heap)
        new_heap[next_location] = evaluate(cmd.expr, store)
        new_store[cmd.target] = next_location
        yield done(Skip(), new_store=new_store, new_heap=new_heap, new_next=next_location + 1)
        return
    if isinstance(cmd, Seq):
        if isinstance(cmd.first, Skip):
            yield done(cmd.second)
            return
        for outcome in _thread_step(cmd.first, store, heap, output, next_location, finished, choice):
            if outcome.aborted:
                yield outcome
            else:
                yield replace(outcome, command=Seq(outcome.command, cmd.second))
        return
    if isinstance(cmd, If):
        branch = cmd.then_branch if _truthy(evaluate(cmd.condition, store)) else cmd.else_branch
        yield done(branch)
        return
    if isinstance(cmd, While):
        yield done(If(cmd.condition, Seq(cmd.body, cmd), Skip()))
        return
    if isinstance(cmd, Par):
        left_done = isinstance(cmd.left, Skip)
        right_done = isinstance(cmd.right, Skip)
        if left_done and right_done:
            yield done(Skip())
            return
        if not left_done:
            for outcome in _thread_step(
                cmd.left, store, heap, output, next_location, finished, choice + ":L"
            ):
                if outcome.aborted:
                    yield outcome
                else:
                    yield replace(outcome, command=Par(outcome.command, cmd.right))
        if not right_done:
            for outcome in _thread_step(
                cmd.right, store, heap, output, next_location, finished, choice + ":R"
            ):
                if outcome.aborted:
                    yield outcome
                else:
                    yield replace(outcome, command=Par(cmd.left, outcome.command))
        return
    if isinstance(cmd, Atomic):
        if _contains_fork_join(cmd.body):
            raise ThreadError("fork/join inside an atomic block is not allowed")
        if cmd.when is not None:
            if not _truthy(evaluate(cmd.when, store, heap)):
                return  # blocked (App. D)
        state = State(
            store=tuple(sorted(store.items())),
            heap=tuple(sorted(heap.items())),
            output=output,
            next_location=next_location,
        )
        step_result = _run_atomic(cmd, state, choice)
        if step_result.result == "abort":
            yield _Outcome(choice, cmd, (), (), (), 0, aborted=True)
            return
        config: Config = step_result.result
        yield done(
            Skip(),
            new_store=config.state.store_dict(),
            new_heap=config.state.heap_dict(),
            new_output=config.state.output,
            new_next=config.state.next_location,
        )
        return
    if isinstance(cmd, (Share, Unshare)):
        yield done(Skip())
        return
    if isinstance(cmd, Print):
        from .ast import DEFAULT_CHANNEL

        value = evaluate(cmd.expr, store)
        entry = value if cmd.channel == DEFAULT_CHANNEL else (cmd.channel, value)
        yield done(Skip(), new_output=output + (entry,))
        return
    if isinstance(cmd, Fork):
        arg_values = tuple(evaluate(arg, store) for arg in cmd.args)
        yield done(Skip(), spawn=(cmd.procedure, arg_values, cmd.target))
        return
    if isinstance(cmd, Join):
        token = evaluate(cmd.token, store)
        if isinstance(token, bool) or not isinstance(token, int):
            raise ThreadError(f"join {cmd.procedure}: token value {token!r} is not a thread id")
        if token not in finished:
            return  # blocked until the target thread terminates
        yield done(Skip(), reap=token)
        return
    raise TypeError(f"not a command: {cmd!r}")


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


class ThreadAbortError(Exception):
    """The threaded program reached ``abort`` (memory fault)."""


class DeadlockError(Exception):
    """No thread can move but the program is not final (join cycle or all
    threads blocked on atomic guards)."""


@dataclass(frozen=True)
class ThreadedRunResult:
    """Outcome of a terminated threaded execution."""

    config: TConfig
    steps_taken: int
    schedule: tuple[str, ...]

    @property
    def main_store(self) -> dict:
        thread = self.config.thread(MAIN_TID)
        assert thread is not None
        return thread.store_dict()

    @property
    def heap(self) -> dict:
        return self.config.heap_dict()

    @property
    def output(self) -> tuple:
        return self.config.output


def run_threads(
    program: ThreadedProgram,
    inputs: Optional[dict] = None,
    heap: Optional[dict] = None,
    scheduler=None,
    max_steps: int = 1_000_000,
) -> ThreadedRunResult:
    """Run a threaded program to completion under a scheduler.

    The scheduler has the same interface as for the structured semantics:
    it receives the configuration and the enabled steps and returns an
    index.  ``None`` picks the first enabled step (deterministic).
    """
    config = TConfig.make(program, inputs, heap)
    schedule: list[str] = []
    for count in range(max_steps):
        if config.is_final():
            return ThreadedRunResult(config, count, tuple(schedule))
        steps = tstep(config, program)
        if not steps:
            raise DeadlockError(
                f"deadlock after {count} steps: no thread can move "
                f"(live threads: {[t.tid for t in config.threads if not t.is_finished()]})"
            )
        index = scheduler(config, steps) if scheduler is not None else 0
        chosen = steps[index]
        if chosen.aborted():
            raise ThreadAbortError(f"program aborted after {count} steps (thread choice {chosen.choice!r})")
        schedule.append(chosen.choice)
        config = chosen.result
    raise RuntimeError(f"threaded program did not terminate within {max_steps} steps")


def enumerate_threaded_executions(
    program: ThreadedProgram,
    inputs: Optional[dict] = None,
    heap: Optional[dict] = None,
    max_steps: int = 10_000,
    max_executions: Optional[int] = None,
) -> Iterator[Any]:
    """Depth-first enumeration of all terminating threaded executions.

    Yields final :class:`TConfig` values (one per interleaving), the
    string ``"abort"`` for aborting branches, or the string
    ``"deadlock"`` for stuck non-final branches.
    """
    yielded = 0
    initial = TConfig.make(program, inputs, heap)
    stack: list[tuple[TConfig, int]] = [(initial, 0)]
    while stack:
        config, depth = stack.pop()
        if depth > max_steps:
            raise RuntimeError("execution exceeded max_steps (possible divergence)")
        if config.is_final():
            yield config
            yielded += 1
            if max_executions is not None and yielded >= max_executions:
                return
            continue
        steps = tstep(config, program)
        if not steps:
            yield "deadlock"
            yielded += 1
            if max_executions is not None and yielded >= max_executions:
                return
            continue
        for successor in reversed(steps):
            if successor.aborted():
                yield ABORT
                yielded += 1
                if max_executions is not None and yielded >= max_executions:
                    return
            else:
                stack.append((successor.result, depth + 1))
