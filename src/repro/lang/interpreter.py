"""Execution driver: run a program under a scheduler to completion."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from .ast import Command
from .scheduler import Scheduler, left_first
from .semantics import ABORT, Config, State, step


class AbortError(Exception):
    """The program reached the ``abort`` configuration (memory fault)."""


@dataclass(frozen=True)
class RunResult:
    """Outcome of a terminated execution."""

    state: State
    steps_taken: int
    schedule: tuple[str, ...]

    @property
    def store(self) -> dict:
        return self.state.store_dict()

    @property
    def heap(self) -> dict:
        return self.state.heap_dict()

    @property
    def output(self) -> tuple:
        return self.state.output


def run(
    program: Command,
    inputs: Optional[dict[str, Any]] = None,
    heap: Optional[dict[int, Any]] = None,
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 1_000_000,
) -> RunResult:
    """Run ``program`` from the given inputs under ``scheduler``.

    Raises :class:`AbortError` on a memory fault and RuntimeError if the
    step budget is exhausted (likely divergence).
    """
    scheduler = scheduler or left_first
    config = Config(program, State.make(inputs, heap))
    schedule: list[str] = []
    for count in range(max_steps):
        if config.is_final():
            return RunResult(config.state, count, tuple(schedule))
        successors = step(config)
        if not successors:
            raise RuntimeError(
                f"deadlock after {count} steps: all threads blocked on atomic guards"
            )
        index = scheduler(config, successors)
        chosen = successors[index]
        if chosen.result == ABORT:
            raise AbortError(f"program aborted after {count} steps (choice {chosen.choice!r})")
        schedule.append(chosen.choice)
        config = chosen.result
    raise RuntimeError(f"program did not terminate within {max_steps} steps")
