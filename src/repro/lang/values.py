"""Pure mathematical values and operations.

The paper maps heap data structures to *pure values* via separation-logic
predicates (Sec. 2.4) and defines actions and abstraction functions over
those pure values.  This module provides the pure value universe shared by
the object language, the resource specifications, and the verifier:

* integers and booleans,
* pairs (2-tuples, built with :func:`pair`),
* sequences (tuples),
* sets (``frozenset``),
* multisets (:class:`repro.heap.Multiset`),
* finite maps (:class:`PMap`, an immutable dict).

All values are immutable and hashable, so they can live inside multisets,
guard states, and symbolic-solver models.

A registry of named pure functions (:data:`PURE_FUNCTIONS`) makes these
operations callable from the object language (``m := put(m, k, v)``) and
from specifications.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping

from ..heap.multiset import Multiset


class PMap:
    """An immutable finite map ``K ⇀ V`` (the pure value behind hash maps).

    >>> m = PMap().put("a", 1)
    >>> m.get("a")
    1
    >>> sorted(m.put("b", 2).keys())
    ['a', 'b']
    """

    __slots__ = ("_entries", "_hash")

    def __init__(self, entries: Mapping[Any, Any] | None = None) -> None:
        self._entries = dict(entries or {})
        self._hash: int | None = None

    def put(self, key: Any, value: Any) -> "PMap":
        entries = dict(self._entries)
        entries[key] = value
        return PMap(entries)

    def remove(self, key: Any) -> "PMap":
        entries = dict(self._entries)
        entries.pop(key, None)
        return PMap(entries)

    def get(self, key: Any, default: Any = 0) -> Any:
        """Lookup with a default (expressions are total, cf. Sec. 3.1)."""
        return self._entries.get(key, default)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def keys(self) -> frozenset:
        return frozenset(self._entries)

    def values(self) -> tuple:
        return tuple(self._entries[key] for key in sorted(self._entries, key=repr))

    def items(self) -> Iterator[tuple[Any, Any]]:
        return iter(self._entries.items())

    def __len__(self) -> int:
        return len(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PMap):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._entries.items()))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{key!r}: {value!r}" for key, value in sorted(self._entries.items(), key=repr))
        return f"PMap({{{inner}}})"


EMPTY_MAP = PMap()


def pair(first: Any, second: Any) -> tuple:
    """Construct a pair ``⟨first, second⟩``."""
    return (first, second)


def fst(value: tuple) -> Any:
    """First projection of a pair."""
    return value[0]


def snd(value: tuple) -> Any:
    """Second projection of a pair."""
    return value[1]


# -- sequences ----------------------------------------------------------------


def seq(*items: Any) -> tuple:
    """Construct a sequence literal."""
    return tuple(items)


def seq_append(sequence: tuple, item: Any) -> tuple:
    """``s ++ [x]``."""
    return tuple(sequence) + (item,)


def seq_concat(left: tuple, right: tuple) -> tuple:
    return tuple(left) + tuple(right)


def seq_len(sequence: tuple) -> int:
    return len(sequence)


def seq_get(sequence: tuple, index: int) -> Any:
    """Total indexing: out-of-range reads return 0 (expressions are total)."""
    if 0 <= index < len(sequence):
        return sequence[index]
    return 0


def seq_sorted(sequence: tuple) -> tuple:
    return tuple(sorted(sequence))


def seq_head(sequence: tuple) -> Any:
    return seq_get(sequence, 0)


def seq_tail(sequence: tuple) -> tuple:
    return tuple(sequence[1:])


def seq_sum(sequence: tuple) -> int:
    return sum(sequence)


def seq_to_multiset(sequence: Iterable[Any]) -> Multiset:
    """``ms(s)``: the multiset view of a sequence (App. D abstraction)."""
    return Multiset(sequence)


def seq_to_set(sequence: Iterable[Any]) -> frozenset:
    return frozenset(sequence)


def seq_mean_times_len(sequence: tuple) -> tuple:
    """The (sum, length) view used for mean abstractions over integers.

    The mean itself is sum/len, which is not integer-valued; exposing the
    pair (sum, len) is equivalent information-wise and keeps values exact.
    """
    return (sum(sequence), len(sequence))


# -- multisets ----------------------------------------------------------------


def ms(*items: Any) -> Multiset:
    return Multiset(items)


def ms_add(bag: Multiset, item: Any) -> Multiset:
    return bag.add(item)


def ms_union(left: Multiset, right: Multiset) -> Multiset:
    return left.union(right)


def ms_card(bag: Multiset) -> int:
    return len(bag)


# -- sets ---------------------------------------------------------------------


def set_add(values: frozenset, item: Any) -> frozenset:
    return values | {item}


def set_union(left: frozenset, right: frozenset) -> frozenset:
    return left | right


def set_card(values: frozenset) -> int:
    return len(values)


def set_to_sorted_seq(values: frozenset) -> tuple:
    return tuple(sorted(values))


def interval_set(low: int, high: int) -> frozenset:
    """``intervalSet(low, high)``: the set {low, ..., high-1}."""
    return frozenset(range(low, high))


# -- maps ---------------------------------------------------------------------


def map_put(mapping: PMap, key: Any, value: Any) -> PMap:
    return mapping.put(key, value)


def map_get(mapping: PMap, key: Any) -> Any:
    return mapping.get(key)


def map_contains(mapping: PMap, key: Any) -> bool:
    return key in mapping


def map_keys(mapping: PMap) -> frozenset:
    return mapping.keys()


def map_values(mapping: PMap) -> tuple:
    return mapping.values()


def map_remove(mapping: PMap, key: Any) -> PMap:
    return mapping.remove(key)


def map_add_to_value(mapping: PMap, key: Any, amount: Any) -> PMap:
    """Add ``amount`` to the value stored at ``key`` (default 0)."""
    return mapping.put(key, mapping.get(key, 0) + amount)


def map_put_if_greater(mapping: PMap, key: Any, value: Any) -> PMap:
    """Conditional put: keep the maximum (Most-Valuable-Purchase pattern)."""
    current = mapping.get(key, None)
    if current is None or value > current:
        return mapping.put(key, value)
    return mapping


# -- value-dependent sensitivity helpers (Sec. 3.4) ----------------------------


def public_values(sequence: Iterable[tuple]) -> tuple:
    """Sorted values of the (is_public, value) pairs whose flag is set.

    The client-side view of a value-dependently labelled data structure:
    entries flagged public may be released; the rest stay secret.
    """
    return tuple(sorted(value for flag, value in sequence if flag))


def secret_count(sequence: Iterable[tuple]) -> int:
    """How many entries of a value-dependently labelled sequence are
    secret (flag unset) — a count is low whenever the flags are."""
    return sum(1 for flag, _ in sequence if not flag)


# -- arithmetic helpers --------------------------------------------------------


def int_min(left: int, right: int) -> int:
    return min(left, right)


def int_max(left: int, right: int) -> int:
    return max(left, right)


PURE_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "pair": pair,
    "fst": fst,
    "snd": snd,
    "seq": seq,
    "append": seq_append,
    "concat": seq_concat,
    "len": seq_len,
    "at": seq_get,
    "sort": seq_sorted,
    "head": seq_head,
    "tail": seq_tail,
    "sum": seq_sum,
    "toMultiset": seq_to_multiset,
    "toSet": seq_to_set,
    "ms": ms,
    "msAdd": ms_add,
    "msUnion": ms_union,
    "msCard": ms_card,
    "setAdd": set_add,
    "setUnion": set_union,
    "setCard": set_card,
    "setToSeq": set_to_sorted_seq,
    "intervalSet": interval_set,
    "emptyMap": lambda: EMPTY_MAP,
    "put": map_put,
    "get": map_get,
    "containsKey": map_contains,
    "keys": map_keys,
    "mapValues": map_values,
    "removeKey": map_remove,
    "addToValue": map_add_to_value,
    "putIfGreater": map_put_if_greater,
    "publicValues": public_values,
    "secretCount": secret_count,
    "min": int_min,
    "max": int_max,
}
