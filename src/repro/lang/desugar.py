"""Static reduction of ``fork``/``join`` to structured ``||``.

The paper's logic is formalized for structured parallel composition; the
implementation language adds dynamic threads (Sec. 5).  HyperViper
verifies fork/join directly against per-procedure contracts; we instead
*desugar* well-structured fork/join programs into the paper's core
calculus and reuse the entire verification pipeline unchanged.  The
supported shape is the ubiquitous barrier pattern of the App. E example:

    prefix;
    t1 := fork p1(args1); ...; tn := fork pn(argsn);
    middle;                          # runs concurrently with the workers
    join p1(t1); ...; join pn(tn);
    suffix

possibly repeated in phases.  The desugared command is

    prefix; (body1 || ... || bodyn || middle); suffix

where each body is the procedure body with arguments substituted and
locals renamed apart (thread stores are private, so renaming is exactly
faithful).  The reduction checks the side conditions that make it sound:

* every ``join`` names a token variable bound by exactly one earlier,
  still-pending ``fork``;
* token variables are not otherwise read or written;
* fork argument expressions are not modified between the fork and its
  join (they are snapshots taken at fork time).

:func:`threaded_equivalent` packages the reduction for the verifier; the
runtime machine (:mod:`repro.lang.threads`) and this reduction are
cross-validated by enumerating all interleavings of both on small
programs (``tests/unit/test_threads.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from .ast import (
    Alloc,
    Assign,
    Atomic,
    Command,
    Expr,
    Fork,
    If,
    Join,
    Load,
    Par,
    Print,
    Seq,
    Share,
    Skip,
    Store,
    Unshare,
    Var,
    While,
    command_fv,
    command_mod,
    expr_fv,
    expr_subst,
    par_all,
    seq_all,
)
from .procedures import ProcedureError, ThreadedProgram


class DesugarError(Exception):
    """The program is outside the supported fork/join fragment."""


# ---------------------------------------------------------------------------
# Variable renaming (for making thread-local stores explicit)
# ---------------------------------------------------------------------------


def rename_expr(expr: Expr, mapping: Mapping[str, str]) -> Expr:
    result = expr
    for old, new in mapping.items():
        result = expr_subst(result, old, Var(new))
    return result


def rename_vars(cmd: Command, mapping: Mapping[str, str]) -> Command:
    """Rename variables (both reads and writes) according to ``mapping``."""

    def ren(name: str) -> str:
        return mapping.get(name, name)

    def rex(expr: Expr) -> Expr:
        return rename_expr(expr, mapping)

    if isinstance(cmd, Skip):
        return cmd
    if isinstance(cmd, Assign):
        return Assign(ren(cmd.target), rex(cmd.expr))
    if isinstance(cmd, Load):
        return Load(ren(cmd.target), rex(cmd.address))
    if isinstance(cmd, Store):
        return Store(rex(cmd.address), rex(cmd.expr))
    if isinstance(cmd, Alloc):
        return Alloc(ren(cmd.target), rex(cmd.expr))
    if isinstance(cmd, Seq):
        return Seq(rename_vars(cmd.first, mapping), rename_vars(cmd.second, mapping))
    if isinstance(cmd, If):
        return If(
            rex(cmd.condition),
            rename_vars(cmd.then_branch, mapping),
            rename_vars(cmd.else_branch, mapping),
        )
    if isinstance(cmd, While):
        return While(rex(cmd.condition), rename_vars(cmd.body, mapping))
    if isinstance(cmd, Par):
        return Par(rename_vars(cmd.left, mapping), rename_vars(cmd.right, mapping))
    if isinstance(cmd, Atomic):
        return Atomic(
            rename_vars(cmd.body, mapping),
            cmd.action,
            rex(cmd.argument) if cmd.argument is not None else None,
            rex(cmd.when) if cmd.when is not None else None,
        )
    if isinstance(cmd, (Share, Unshare)):
        return cmd
    if isinstance(cmd, Print):
        return Print(rex(cmd.expr), cmd.channel)
    if isinstance(cmd, Fork):
        return Fork(ren(cmd.target), cmd.procedure, tuple(rex(arg) for arg in cmd.args))
    if isinstance(cmd, Join):
        return Join(cmd.procedure, rex(cmd.token))
    raise TypeError(f"not a command: {cmd!r}")


# ---------------------------------------------------------------------------
# The reduction
# ---------------------------------------------------------------------------


def _linearize(cmd: Command) -> list[Command]:
    """Flatten the Seq spine of a command into a statement list."""
    if isinstance(cmd, Seq):
        return _linearize(cmd.first) + _linearize(cmd.second)
    if isinstance(cmd, Skip):
        return []
    return [cmd]


@dataclass
class _PendingFork:
    token: str
    procedure: str
    body: Command
    arg_fv: frozenset[str]


def forks_to_par(program: ThreadedProgram) -> Command:
    """Desugar the main command of ``program`` into structured ``||``.

    Raises :class:`DesugarError` if the program is outside the supported
    barrier-structured fragment (fork/join under conditionals or loops,
    re-used token variables, joins without matching forks, ...).
    """
    for proc in program.procedures:
        if _has_fork_join(proc.body):
            raise DesugarError(
                f"procedure {proc.name!r} itself forks; nested fork trees are "
                f"not in the supported fragment"
            )
    statements = _linearize(program.main)
    for statement in statements:
        if not isinstance(statement, (Fork, Join)) and _has_fork_join(statement):
            raise DesugarError(
                f"fork/join nested under control flow is not in the supported "
                f"fragment: {statement}"
            )

    output: list[Command] = []
    pending: list[_PendingFork] = []
    closed: list[_PendingFork] = []
    middle: list[Command] = []
    fork_counter = 0

    for statement in statements:
        if isinstance(statement, Fork):
            proc = program.procedure(statement.procedure)
            free = command_fv(proc.body)
            bound = set(proc.params) | set(command_mod(proc.body))
            if not free <= bound:
                raise DesugarError(
                    f"procedure {proc.name!r} reads undeclared variables "
                    f"{sorted(free - bound)} (thread stores are private; pass "
                    f"them as parameters)"
                )
            body = proc.instantiate(statement.args)
            locals_ = sorted(command_mod(body))
            mapping = {name: f"{name}__t{fork_counter}" for name in locals_}
            body = rename_vars(body, mapping)
            arg_fv: frozenset[str] = frozenset()
            for arg in statement.args:
                arg_fv |= expr_fv(arg)
            if any(p.token == statement.target for p in pending):
                raise DesugarError(
                    f"token variable {statement.target!r} reused while its "
                    f"thread is still pending"
                )
            pending.append(_PendingFork(statement.target, statement.procedure, body, arg_fv))
            fork_counter += 1
            continue
        if isinstance(statement, Join):
            if not isinstance(statement.token, Var):
                raise DesugarError(
                    f"join token must be a variable for static reduction, got "
                    f"{statement.token}"
                )
            index = next(
                (i for i, p in enumerate(pending) if p.token == statement.token.name),
                None,
            )
            if index is None:
                raise DesugarError(
                    f"join {statement.procedure}({statement.token}): no pending "
                    f"fork bound this token"
                )
            entry = pending[index]
            if entry.procedure != statement.procedure:
                raise DesugarError(
                    f"join names procedure {statement.procedure!r} but token "
                    f"{entry.token!r} was forked as {entry.procedure!r}"
                )
            # The join order within a barrier phase is irrelevant: we close
            # the phase when the last pending fork is joined.
            entry_done = pending.pop(index)
            closed.append(entry_done)
            if not pending:
                bodies = [entry.body for entry in closed]
                closed = []
                threads = list(bodies)
                if middle:
                    threads.append(seq_all(*middle))
                output.append(threads[0] if len(threads) == 1 else par_all(*threads))
                middle = []
            continue
        if pending:
            mods = command_mod(statement)
            for entry in pending + closed:
                if entry.token in mods:
                    raise DesugarError(
                        f"token variable {entry.token!r} is assigned while its "
                        f"thread is pending"
                    )
                if entry.arg_fv & mods:
                    raise DesugarError(
                        f"fork arguments of {entry.procedure!r} are modified "
                        f"between fork and join: {sorted(entry.arg_fv & mods)}"
                    )
            middle.append(statement)
        else:
            output.append(statement)

    if pending or closed:
        leftover = [p.procedure for p in pending + closed]
        raise DesugarError(f"forked threads never joined: {leftover}")
    if middle:
        raise DesugarError("internal error: middle statements without an open phase")
    return seq_all(*output)


def _has_fork_join(cmd: Command) -> bool:
    if isinstance(cmd, (Fork, Join)):
        return True
    if isinstance(cmd, Seq):
        return _has_fork_join(cmd.first) or _has_fork_join(cmd.second)
    if isinstance(cmd, If):
        return _has_fork_join(cmd.then_branch) or _has_fork_join(cmd.else_branch)
    if isinstance(cmd, While):
        return _has_fork_join(cmd.body)
    if isinstance(cmd, Par):
        return _has_fork_join(cmd.left) or _has_fork_join(cmd.right)
    if isinstance(cmd, Atomic):
        return _has_fork_join(cmd.body)
    return False


def threaded_equivalent(program: ThreadedProgram) -> Command:
    """Public entry point: the structured equivalent of a threaded program.

    A program without any fork/join is returned unchanged.
    """
    if not _has_fork_join(program.main):
        return program.main
    return forks_to_par(program)
