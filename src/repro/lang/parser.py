"""Parser for the object language's concrete syntax.

The concrete syntax mirrors the paper's notation (Fig. 6) with braces:

.. code-block:: text

    n := len(households)
    c := alloc(0)
    share CounterSpec
    {
        i := 0
        while (i < n / 2) { atomic [Add(at(households, i))] { t := [c]; [c] := t + at(households, i) } ; i := i + 1 }
    } || {
        j := n / 2
        while (j < n) { atomic [Add(at(households, j))] { t2 := [c]; [c] := t2 + at(households, j) } ; j := j + 1 }
    }
    unshare CounterSpec
    result := [c]
    print(result)

Statements are separated by newlines or optional ``;``.  ``||`` composes
*blocks* in parallel at statement level (``{...} || {...} || {...}``)
and is boolean disjunction inside expressions; boolean conjunction is
``&&``, negation ``!``.  ``atomic`` takes an optional action annotation
``[Action(argExpr)]``.  The inverse transformation lives in
:mod:`repro.lang.printer`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, TypeVar

from .ast import (
    Alloc,
    Assign,
    Atomic,
    BinOp,
    Call,
    Command,
    Expr,
    Fork,
    If,
    Join,
    Lit,
    Load,
    Par,
    Print,
    Seq,
    Share,
    Skip,
    SourcePos,
    Store,
    UnOp,
    Unshare,
    Var,
    While,
    seq_all,
)
from .procedures import Procedure, ThreadedProgram


class ParseError(Exception):
    """Raised on syntax errors, with line/column information."""


_NodeT = TypeVar("_NodeT")


@dataclass(frozen=True)
class Token:
    kind: str  # 'int' | 'string' | 'ident' | 'symbol' | 'eof'
    text: str
    line: int
    column: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t\r\n]+)
  | (?P<comment>//[^\n]*)
  | (?P<int>\d+)
  | (?P<string>"[^"\n]*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<symbol>:=|==|!=|<=|>=|&&|\|\||[-+*/%<>!\[\](){};,])
    """,
    re.VERBOSE,
)

KEYWORDS = frozenset(
    {
        "skip",
        "if",
        "else",
        "while",
        "atomic",
        "share",
        "unshare",
        "print",
        "alloc",
        "true",
        "false",
        "fork",
        "join",
        "procedure",
    }
)


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    line, line_start = 1, 0
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            column = position - line_start + 1
            raise ParseError(f"line {line}, col {column}: unexpected character {source[position]!r}")
        text = match.group()
        kind = match.lastgroup or "symbol"
        if kind not in ("ws", "comment"):
            tokens.append(Token(kind, text, line, position - line_start + 1))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = position + text.rfind("\n") + 1
        position = match.end()
    tokens.append(Token("eof", "", line, position - line_start + 1))
    return tokens


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._position + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._peek()
        if token.kind != "eof":
            self._position += 1
        return token

    def _check(self, text: str) -> bool:
        return self._peek().text == text and self._peek().kind in ("symbol", "ident")

    def _match(self, text: str) -> bool:
        if self._check(text):
            self._advance()
            return True
        return False

    def _expect(self, text: str) -> Token:
        token = self._peek()
        if not self._match(text):
            raise ParseError(f"line {token.line}, col {token.column}: expected {text!r}, found {token.text!r}")
        return token

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(f"line {token.line}, col {token.column}: {message} (found {token.text!r})")

    def _at(self, node: _NodeT, token: Token) -> _NodeT:
        """Stamp ``node`` with ``token``'s source position.

        ``pos`` is declared ``compare=False`` on every AST node, so the
        stamp never affects equality or hashing; nodes that already carry
        a position (stamped by an inner parse) are left untouched.
        """
        if getattr(node, "pos", None) is None:
            object.__setattr__(node, "pos", SourcePos(token.line, token.column))
        return node

    # -- statements ----------------------------------------------------------

    def parse_program(self) -> Command:
        body = self._parse_statements(stop={"eof"})
        if self._peek().kind != "eof":
            raise self._error("trailing input")
        return body

    def _parse_statements(self, stop: set[str]) -> Command:
        statements: list[Command] = []
        while True:
            token = self._peek()
            if token.kind == "eof" and "eof" in stop:
                break
            if token.text in stop and token.kind == "symbol":
                break
            statements.append(self._parse_statement())
            while self._match(";"):
                pass
        if not statements:
            return Skip()
        return seq_all(*statements)

    def _parse_block(self) -> Command:
        self._expect("{")
        body = self._parse_statements(stop={"}"})
        self._expect("}")
        return body

    def _parse_statement(self) -> Command:
        token = self._peek()
        return self._at(self._parse_statement_inner(), token)

    def _parse_statement_inner(self) -> Command:
        token = self._peek()
        if token.text == "{":
            return self._parse_parallel_or_block()
        if token.text == "skip":
            self._advance()
            return Skip()
        if token.text == "if":
            return self._parse_if()
        if token.text == "while":
            return self._parse_while()
        if token.text == "atomic":
            return self._parse_atomic()
        if token.text == "share":
            self._advance()
            name = self._expect_ident("resource name")
            return Share(name)
        if token.text == "unshare":
            self._advance()
            name = self._expect_ident("resource name")
            return Unshare(name)
        if token.text == "print":
            self._advance()
            self._expect("(")
            expr = self._parse_expr()
            if self._match(","):
                channel = self._expect_ident("channel name")
                self._expect(")")
                return Print(expr, channel)
            self._expect(")")
            return Print(expr)
        if token.text == "join":
            self._advance()
            procedure = self._expect_ident("procedure name")
            self._expect("(")
            token_expr = self._parse_expr()
            self._expect(")")
            return Join(procedure, token_expr)
        if token.text == "[":
            self._advance()
            address = self._parse_expr()
            self._expect("]")
            self._expect(":=")
            value = self._parse_expr()
            return Store(address, value)
        if token.kind == "ident" and token.text not in KEYWORDS:
            return self._parse_assignment()
        raise self._error("expected a statement")

    def _expect_ident(self, what: str) -> str:
        token = self._peek()
        if token.kind != "ident" or token.text in KEYWORDS:
            raise self._error(f"expected {what}")
        self._advance()
        return token.text

    def _parse_parallel_or_block(self) -> Command:
        branches = [self._parse_block()]
        while self._match("||"):
            branches.append(self._parse_block())
        if len(branches) == 1:
            return branches[0]
        result = branches[-1]
        for branch in reversed(branches[:-1]):
            result = Par(branch, result)
        return result

    def _parse_if(self) -> Command:
        self._expect("if")
        self._expect("(")
        condition = self._parse_expr()
        self._expect(")")
        then_branch = self._parse_block()
        else_branch: Command = Skip()
        if self._match("else"):
            else_branch = self._parse_block()
        return If(condition, then_branch, else_branch)

    def _parse_while(self) -> Command:
        self._expect("while")
        self._expect("(")
        condition = self._parse_expr()
        self._expect(")")
        body = self._parse_block()
        return While(condition, body)

    def _parse_atomic(self) -> Command:
        self._expect("atomic")
        action: Optional[str] = None
        argument: Optional[Expr] = None
        when: Optional[Expr] = None
        if self._match("["):
            action = self._expect_ident("action name")
            self._expect("(")
            if not self._check(")"):
                argument = self._parse_expr()
            self._expect(")")
            self._expect("]")
        if self._check("when"):
            self._advance()
            self._expect("(")
            when = self._parse_expr()
            self._expect(")")
        body = self._parse_block()
        if argument is None:
            argument = Lit(0)
        return Atomic(body, action, argument, when)

    def _parse_assignment(self) -> Command:
        target = self._expect_ident("variable")
        self._expect(":=")
        if self._match("["):
            address = self._parse_expr()
            self._expect("]")
            return Load(target, address)
        if self._check("alloc"):
            self._advance()
            self._expect("(")
            expr = self._parse_expr()
            self._expect(")")
            return Alloc(target, expr)
        if self._check("fork"):
            self._advance()
            procedure = self._expect_ident("procedure name")
            self._expect("(")
            args: list[Expr] = []
            if not self._check(")"):
                args.append(self._parse_expr())
                while self._match(","):
                    args.append(self._parse_expr())
            self._expect(")")
            return Fork(target, procedure, tuple(args))
        return Assign(target, self._parse_expr())

    # -- expressions -----------------------------------------------------------

    def _parse_expr(self) -> Expr:
        token = self._peek()
        return self._at(self._parse_or(), token)

    def _parse_or(self) -> Expr:
        # Expression-level disjunction.  Statement-level `{...} || {...}`
        # is parallel composition and never reaches the expression grammar
        # (blocks are parsed in _parse_parallel_or_block before any
        # expression parse starts), so there is no ambiguity.
        left = self._parse_and()
        while self._check("||"):
            self._advance()
            right = self._parse_and()
            left = BinOp("||", left, right)
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_comparison()
        while self._check("&&"):
            self._advance()
            right = self._parse_comparison()
            left = BinOp("&&", left, right)
        return left

    _COMPARISONS = ("==", "!=", "<=", ">=", "<", ">")

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        for op in self._COMPARISONS:
            if self._check(op):
                self._advance()
                right = self._parse_additive()
                return BinOp(op, left, right)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self._peek().text in ("+", "-") and self._peek().kind == "symbol":
            op = self._advance().text
            right = self._parse_multiplicative()
            left = BinOp(op, left, right)
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self._peek().text in ("*", "/", "%") and self._peek().kind == "symbol":
            op = self._advance().text
            right = self._parse_unary()
            left = BinOp(op, left, right)
        return left

    def _parse_unary(self) -> Expr:
        if self._match("-"):
            operand = self._parse_unary()
            # Fold negated integer literals so `-2` parses to Lit(-2);
            # otherwise a printed negative literal would re-parse to a
            # different (if equivalent) AST.
            if isinstance(operand, Lit) and isinstance(operand.value, int) and not isinstance(operand.value, bool):
                return Lit(-operand.value)
            return UnOp("-", operand)
        if self._match("!"):
            return UnOp("!", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._peek()
        return self._at(self._parse_primary_inner(), token)

    def _parse_primary_inner(self) -> Expr:
        token = self._peek()
        if token.kind == "int":
            self._advance()
            return Lit(int(token.text))
        if token.kind == "string":
            self._advance()
            return Lit(token.text[1:-1])
        if token.text == "true":
            self._advance()
            return Lit(True)
        if token.text == "false":
            self._advance()
            return Lit(False)
        if token.text == "(":
            self._advance()
            expr = self._parse_expr()
            self._expect(")")
            return expr
        if token.kind == "ident" and token.text not in KEYWORDS:
            self._advance()
            if self._match("("):
                args: list[Expr] = []
                if not self._check(")"):
                    args.append(self._parse_expr())
                    while self._match(","):
                        args.append(self._parse_expr())
                self._expect(")")
                return Call(token.text, tuple(args))
            return Var(token.text)
        raise self._error("expected an expression")


def parse_program(source: str) -> Command:
    """Parse a full program from source text."""
    return _Parser(tokenize(source)).parse_program()


def parse_threaded_program(source: str) -> ThreadedProgram:
    """Parse procedure declarations followed by the main command.

    .. code-block:: text

        procedure worker(lo, hi, c) {
            i := lo
            while (i < hi) { atomic [Add(1)] { t := [c]; [c] := t + 1 }; i := i + 1 }
        }
        c := alloc(0)
        t1 := fork worker(0, 5, c)
        t2 := fork worker(5, 10, c)
        join worker(t1)
        join worker(t2)
    """
    parser = _Parser(tokenize(source))
    procedures: list[Procedure] = []
    while parser._check("procedure"):
        parser._advance()
        name = parser._expect_ident("procedure name")
        parser._expect("(")
        params: list[str] = []
        if not parser._check(")"):
            params.append(parser._expect_ident("parameter"))
            while parser._match(","):
                params.append(parser._expect_ident("parameter"))
        parser._expect(")")
        body = parser._parse_block()
        procedures.append(Procedure(name, tuple(params), body))
    main = parser._parse_statements(stop={"eof"})
    if parser._peek().kind != "eof":
        raise parser._error("trailing input")
    return ThreadedProgram(main, tuple(procedures))


def parse_expr(source: str) -> Expr:
    """Parse a single expression from source text."""
    parser = _Parser(tokenize(source))
    expr = parser._parse_expr()
    if parser._peek().kind != "eof":
        raise parser._error("trailing input after expression")
    return expr
