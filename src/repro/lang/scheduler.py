"""Schedulers over the small-step semantics.

A scheduler is a policy for choosing among the successor steps returned by
:func:`repro.lang.semantics.step`.  Internal timing channels (Sec. 1) arise
precisely because this choice can correlate with secret-dependent timing;
the schedulers here let the test and benchmark harnesses explore that
space:

* :class:`RoundRobinScheduler` — the deterministic scheduler from the
  Fig. 1 discussion: threads take turns (modelled as alternating the
  chosen top-level branch of ``||`` when both can move);
* :class:`RandomScheduler` — seeded uniform choice, for probabilistic
  exploration;
* :class:`FixedScheduler` — replays a recorded choice sequence;
* :func:`enumerate_executions` — exhaustive interleaving enumeration with
  a bound, used by the soundness tester on small programs.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator, Optional, Sequence

from .semantics import ABORT, Config, Step, step

Scheduler = Callable[[Config, Sequence[Step]], int]


class RoundRobinScheduler:
    """Deterministic round-robin over the top-level thread labels.

    At every choice point the scheduler prefers the thread whose label
    comes next in a rotating order over the labels currently able to move.
    With two threads this alternates L, R, L, R, ... whenever both are
    enabled, matching the deterministic scheduler under which the Fig. 1
    program leaks whether ``h > 100``.
    """

    def __init__(self) -> None:
        self._turn = 0

    def __call__(self, config: Config, steps: Sequence[Step]) -> int:
        if len(steps) == 1:
            return 0
        labels = sorted({step_.choice for step_ in steps})
        wanted = labels[self._turn % len(labels)]
        self._turn += 1
        for index, step_ in enumerate(steps):
            if step_.choice == wanted:
                return index
        return 0


class RandomScheduler:
    """Uniformly random scheduling with a private seeded RNG."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def __call__(self, config: Config, steps: Sequence[Step]) -> int:
        return self._rng.randrange(len(steps))


class FixedScheduler:
    """Replay a fixed sequence of choice indices (pad with 0)."""

    def __init__(self, choices: Sequence[int]) -> None:
        self._choices = list(choices)
        self._position = 0

    def __call__(self, config: Config, steps: Sequence[Step]) -> int:
        if self._position < len(self._choices):
            index = self._choices[self._position] % len(steps)
        else:
            index = 0
        self._position += 1
        return index


def left_first(config: Config, steps: Sequence[Step]) -> int:
    """Always pick the first (leftmost) enabled step."""
    return 0


def enumerate_executions(
    initial: Config,
    max_steps: int = 10_000,
    max_executions: Optional[int] = None,
) -> Iterator[Config | str]:
    """Depth-first enumeration of all terminating executions.

    Yields each reachable final :class:`Config` (one per interleaving; the
    same final state may be yielded multiple times) or the string
    ``"abort"``.  Raises RuntimeError if an execution exceeds ``max_steps``.
    """
    yielded = 0
    stack: list[tuple[Config, int]] = [(initial, 0)]
    while stack:
        config, depth = stack.pop()
        if depth > max_steps:
            raise RuntimeError("execution exceeded max_steps (possible divergence)")
        if config.is_final():
            yield config
            yielded += 1
            if max_executions is not None and yielded >= max_executions:
                return
            continue
        successors = step(config)
        for successor in reversed(successors):
            if successor.aborted():
                yield ABORT
                yielded += 1
                if max_executions is not None and yielded >= max_executions:
                    return
            else:
                stack.append((successor.result, depth + 1))
