"""Procedures and threaded programs (the HyperViper front-end language).

HyperViper "supports a richer language than the one used in this paper; in
particular, instead of parallel composition commands, it allows dynamic
thread creation using fork and join commands" (Sec. 5).  This module
provides the declaration side of that richer language:

* :class:`Procedure` — a named, parameterized command (the body of a
  forkable worker, e.g. ``worker(households, f, t, m)`` of Fig. 3);
* :class:`ThreadedProgram` — a main command plus its procedure table.

The runtime for ``fork``/``join`` lives in :mod:`repro.lang.threads`; the
static reduction to the paper's structured ``||`` (used by the verifier)
lives in :mod:`repro.lang.desugar`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from .ast import (
    Alloc,
    Assign,
    Atomic,
    Command,
    Expr,
    Fork,
    If,
    Join,
    Load,
    Par,
    Print,
    Seq,
    Share,
    Skip,
    Store,
    Unshare,
    While,
    command_fv,
    expr_subst,
)


class ProcedureError(Exception):
    """Raised on ill-formed procedure declarations or calls."""


@dataclass(frozen=True)
class Procedure:
    """A named procedure ``p(x1, ..., xn) { body }``.

    The body may read its parameters and its own locals; it must not read
    variables of the enclosing scope (threads have private stores — all
    communication goes through the shared heap, as in the paper's model).
    """

    name: str
    params: Tuple[str, ...]
    body: Command

    def __post_init__(self) -> None:
        if len(set(self.params)) != len(self.params):
            raise ProcedureError(f"procedure {self.name}: duplicate parameter names")

    def instantiate(self, args: Tuple[Expr, ...]) -> Command:
        """The body with parameters substituted by argument *expressions*.

        Used by the static desugarer; the runtime machine instead binds
        evaluated values into a fresh store (call-by-value).
        """
        if len(args) != len(self.params):
            raise ProcedureError(
                f"procedure {self.name}: expected {len(self.params)} arguments, "
                f"got {len(args)}"
            )
        body = self.body
        for param, arg in zip(self.params, args):
            body = command_subst_expr(body, param, arg)
        return body


@dataclass(frozen=True)
class ThreadedProgram:
    """A main command plus the procedures it may fork."""

    main: Command
    procedures: Tuple[Procedure, ...] = ()

    def procedure(self, name: str) -> Procedure:
        for proc in self.procedures:
            if proc.name == name:
                return proc
        raise ProcedureError(f"no procedure named {name!r}")

    def table(self) -> Mapping[str, Procedure]:
        return {proc.name: proc for proc in self.procedures}


def command_subst_expr(cmd: Command, name: str, replacement: Expr) -> Command:
    """Substitute ``replacement`` for free *reads* of variable ``name``.

    Substitution stops below a binder: a command that assigns to ``name``
    makes later occurrences refer to the local value, so we only
    substitute up to (and within the right-hand sides of) the first
    assignment to ``name`` on each control path.  Procedure bodies in our
    case studies never shadow their parameters, which keeps this simple
    rule exact; a shadowing body raises :class:`ProcedureError` so the
    inexactness can never be silent.
    """
    if _assigns_to(cmd, name):
        raise ProcedureError(
            f"substitution into a command that assigns {name!r} (shadowing "
            f"parameters is not supported; rename the local)"
        )
    return _subst(cmd, name, replacement)


def _assigns_to(cmd: Command, name: str) -> bool:
    from .ast import command_mod

    return name in command_mod(cmd)


def _subst(cmd: Command, name: str, replacement: Expr) -> Command:
    sub = lambda e: expr_subst(e, name, replacement)  # noqa: E731
    if isinstance(cmd, Skip):
        return cmd
    if isinstance(cmd, Assign):
        return Assign(cmd.target, sub(cmd.expr))
    if isinstance(cmd, Load):
        return Load(cmd.target, sub(cmd.address))
    if isinstance(cmd, Store):
        return Store(sub(cmd.address), sub(cmd.expr))
    if isinstance(cmd, Alloc):
        return Alloc(cmd.target, sub(cmd.expr))
    if isinstance(cmd, Seq):
        return Seq(_subst(cmd.first, name, replacement), _subst(cmd.second, name, replacement))
    if isinstance(cmd, If):
        return If(
            sub(cmd.condition),
            _subst(cmd.then_branch, name, replacement),
            _subst(cmd.else_branch, name, replacement),
        )
    if isinstance(cmd, While):
        return While(sub(cmd.condition), _subst(cmd.body, name, replacement))
    if isinstance(cmd, Par):
        return Par(_subst(cmd.left, name, replacement), _subst(cmd.right, name, replacement))
    if isinstance(cmd, Atomic):
        return Atomic(
            _subst(cmd.body, name, replacement),
            cmd.action,
            sub(cmd.argument) if cmd.argument is not None else None,
            sub(cmd.when) if cmd.when is not None else None,
        )
    if isinstance(cmd, (Share, Unshare)):
        return cmd
    if isinstance(cmd, Print):
        return Print(sub(cmd.expr), cmd.channel)
    if isinstance(cmd, Fork):
        return Fork(cmd.target, cmd.procedure, tuple(sub(arg) for arg in cmd.args))
    if isinstance(cmd, Join):
        return Join(cmd.procedure, sub(cmd.token))
    raise TypeError(f"not a command: {cmd!r}")
