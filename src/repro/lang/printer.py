"""Pretty-printer: AST back to the concrete syntax of :mod:`repro.lang.parser`.

The printer is the inverse of the parser: for any command in *parser
normal form* (the image of :func:`~repro.lang.parser.parse_program`),

.. code-block:: python

    parse_program(print_program(cmd)) == cmd

Parser normal form means:

* ``Atomic`` blocks without an action annotation carry ``argument`` of
  ``None`` or ``Lit(0)`` (the parser's default);
* negated integer literals are folded (``Lit(-2)``, never
  ``UnOp("-", Lit(2))`` — the printer folds the latter on the fly);
* string literals contain no ``"`` or newline (the lexer has no escapes).

``Seq`` and ``Par`` of *any* association round-trip: left-nested
compositions are emitted as braced blocks, which the grammar re-parses to
the same shape.  ASTs that have no concrete syntax at all (literals other
than ``int``/``bool``/``str``, identifiers that collide with keywords,
calls to ``alloc``/``fork``) raise :class:`PrintError`.
"""

from __future__ import annotations

import re
from typing import List

from .ast import (
    Alloc,
    Assign,
    Atomic,
    BinOp,
    Call,
    Command,
    DEFAULT_CHANNEL,
    Expr,
    Fork,
    If,
    Join,
    Lit,
    Load,
    Par,
    Print,
    Seq,
    Share,
    Skip,
    Store,
    UnOp,
    Unshare,
    Var,
    While,
)
from .parser import KEYWORDS
from .procedures import Procedure, ThreadedProgram


class PrintError(Exception):
    """Raised for ASTs that have no concrete syntax."""


_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")

_BINOPS = frozenset({"+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&&", "||"})

_INDENT = "    "


def _ident(name: str, what: str) -> str:
    if not _IDENT_RE.match(name) or name in KEYWORDS:
        raise PrintError(f"{what} {name!r} is not a printable identifier")
    return name


def _is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def print_expr(expr: Expr) -> str:
    """Render an expression; nested operations are fully parenthesized."""
    if isinstance(expr, Lit):
        value = expr.value
        if isinstance(value, bool):
            return "true" if value else "false"
        if _is_int(value):
            return str(value)
        if isinstance(value, str):
            if '"' in value or "\n" in value:
                raise PrintError(f"string literal {value!r} is not lexable (no escapes)")
            return f'"{value}"'
        raise PrintError(f"literal {value!r} has no concrete syntax")
    if isinstance(expr, Var):
        return _ident(expr.name, "variable")
    if isinstance(expr, BinOp):
        if expr.op not in _BINOPS:
            raise PrintError(f"unknown binary operator {expr.op!r}")
        return f"({print_expr(expr.left)} {expr.op} {print_expr(expr.right)})"
    if isinstance(expr, UnOp):
        if expr.op not in ("-", "!"):
            raise PrintError(f"unknown unary operator {expr.op!r}")
        # The parser folds -<int literal> to a negative Lit, so emit the
        # folded form directly; printing "-2" would not re-parse to UnOp.
        if expr.op == "-" and isinstance(expr.operand, Lit) and _is_int(expr.operand.value):
            return print_expr(Lit(-expr.operand.value))
        return f"{expr.op}{print_expr(expr.operand)}"
    if isinstance(expr, Call):
        if expr.function in ("alloc", "fork"):
            raise PrintError(f"{expr.function} is a statement form, not a pure function")
        name = _ident(expr.function, "function")
        return f"{name}({', '.join(print_expr(arg) for arg in expr.args)})"
    raise PrintError(f"not an expression: {expr!r}")


def flatten_seq(cmd: Command) -> List[Command]:
    """The right spine of a sequential composition as a statement list."""
    statements: List[Command] = []
    while isinstance(cmd, Seq):
        statements.append(cmd.first)
        cmd = cmd.second
    statements.append(cmd)
    return statements


def flatten_par(cmd: Command) -> List[Command]:
    """The right spine of a parallel composition as a branch list."""
    branches: List[Command] = []
    while isinstance(cmd, Par):
        branches.append(cmd.left)
        cmd = cmd.right
    branches.append(cmd)
    return branches


def _block_lines(cmd: Command, indent: int) -> List[str]:
    """The statements of a block body, one indented line-group each."""
    lines: List[str] = []
    for statement in flatten_seq(cmd):
        lines.extend(_statement_lines(statement, indent))
    return lines


def _braced(header: str, body: Command, indent: int, footer: str = "}") -> List[str]:
    pad = _INDENT * indent
    return [pad + header, *_block_lines(body, indent + 1), pad + footer]


def _statement_lines(cmd: Command, indent: int) -> List[str]:
    pad = _INDENT * indent
    if isinstance(cmd, Skip):
        return [pad + "skip"]
    if isinstance(cmd, Assign):
        if isinstance(cmd.expr, Call) and cmd.expr.function in ("alloc", "fork"):
            raise PrintError(f"call to {cmd.expr.function!r} in assignment would mis-parse")
        return [pad + f"{_ident(cmd.target, 'variable')} := {print_expr(cmd.expr)}"]
    if isinstance(cmd, Load):
        return [pad + f"{_ident(cmd.target, 'variable')} := [{print_expr(cmd.address)}]"]
    if isinstance(cmd, Store):
        return [pad + f"[{print_expr(cmd.address)}] := {print_expr(cmd.expr)}"]
    if isinstance(cmd, Alloc):
        return [pad + f"{_ident(cmd.target, 'variable')} := alloc({print_expr(cmd.expr)})"]
    if isinstance(cmd, Seq):
        # A Seq in statement position is left-nested; a braced block
        # re-parses to exactly this sub-sequence.
        return _braced("{", cmd, indent)
    if isinstance(cmd, If):
        lines = _braced(f"if ({print_expr(cmd.condition)}) {{", cmd.then_branch, indent)
        if not isinstance(cmd.else_branch, Skip):
            lines[-1] = pad + "} else {"
            lines.extend(_block_lines(cmd.else_branch, indent + 1))
            lines.append(pad + "}")
        return lines
    if isinstance(cmd, While):
        return _braced(f"while ({print_expr(cmd.condition)}) {{", cmd.body, indent)
    if isinstance(cmd, Par):
        lines: List[str] = []
        branches = flatten_par(cmd)
        for position, branch in enumerate(branches):
            header = "{" if position == 0 else "} || {"
            lines.append(pad + header)
            lines.extend(_block_lines(branch, indent + 1))
        lines.append(pad + "}")
        return lines
    if isinstance(cmd, Atomic):
        header = "atomic"
        if cmd.action is not None:
            argument = cmd.argument if cmd.argument is not None else Lit(0)
            header += f" [{_ident(cmd.action, 'action')}({print_expr(argument)})]"
        elif cmd.argument is not None and cmd.argument != Lit(0):
            raise PrintError("atomic argument without an action has no concrete syntax")
        if cmd.when is not None:
            header += f" when ({print_expr(cmd.when)})"
        return _braced(header + " {", cmd.body, indent)
    if isinstance(cmd, Share):
        return [pad + f"share {_ident(cmd.resource, 'resource')}"]
    if isinstance(cmd, Unshare):
        return [pad + f"unshare {_ident(cmd.resource, 'resource')}"]
    if isinstance(cmd, Print):
        if cmd.channel == DEFAULT_CHANNEL:
            return [pad + f"print({print_expr(cmd.expr)})"]
        return [pad + f"print({print_expr(cmd.expr)}, {_ident(cmd.channel, 'channel')})"]
    if isinstance(cmd, Fork):
        args = ", ".join(print_expr(arg) for arg in cmd.args)
        return [
            pad
            + f"{_ident(cmd.target, 'variable')} := fork {_ident(cmd.procedure, 'procedure')}({args})"
        ]
    if isinstance(cmd, Join):
        return [pad + f"join {_ident(cmd.procedure, 'procedure')}({print_expr(cmd.token)})"]
    raise PrintError(f"not a command: {cmd!r}")


def print_command(cmd: Command, indent: int = 0) -> str:
    """Render a command as statement lines at the given indent level."""
    return "\n".join(_statement_lines(cmd, indent))


def print_program(cmd: Command) -> str:
    """Render a whole program (top-level statement sequence)."""
    return "\n".join(_block_lines(cmd, 0)) + "\n"


def print_threaded_program(program: ThreadedProgram) -> str:
    """Render procedure declarations followed by the main command."""
    chunks: List[str] = []
    for procedure in program.procedures:
        params = ", ".join(_ident(param, "parameter") for param in procedure.params)
        header = f"procedure {_ident(procedure.name, 'procedure')}({params}) {{"
        chunks.append("\n".join([header, *_block_lines(procedure.body, 1), "}"]))
    chunks.append("\n".join(_block_lines(program.main, 0)))
    return "\n".join(chunks) + "\n"


__all__ = [
    "PrintError",
    "flatten_par",
    "flatten_seq",
    "print_command",
    "print_expr",
    "print_program",
    "print_threaded_program",
]
