"""Abstract syntax for the object language (Fig. 6 of the paper).

Expressions are heap-free and total; commands are the paper's imperative
concurrent commands plus three verification-oriented extensions that are
runtime no-ops or simple effects:

* :class:`Share` / :class:`Unshare` — ghost commands marking where the
  shared resource is created and dissolved (runtime: skip);
* :class:`Atomic` optionally carries an *action annotation* naming which
  resource-specification action the block performs and the argument
  expression (runtime: the annotation is ignored, the body runs atomically);
* :class:`Print` — emits a low output (the implementation-level extension
  of the paper's limitation (4), Sec. 3.7).

All nodes are immutable dataclasses; ``fv`` and ``mod`` implement the
free-variable and modified-variable functions used by the proof rules.

Every node carries an optional :class:`SourcePos` in its ``pos`` field.
The parser stamps positions; programmatically-built ASTs leave them
``None``.  ``pos`` is excluded from equality, hashing, and ``repr`` so a
parsed node still compares equal to the same node built by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Optional, Tuple


@dataclass(frozen=True)
class SourcePos:
    """A (line, column) source location, 1-based, attached by the parser."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"line {self.line}, col {self.column}"


class Node:
    """Base class for all AST nodes."""

    __slots__ = ()


def node_pos(node: Node) -> Optional[SourcePos]:
    """Best-effort source position of ``node``.

    Returns the node's own position if the parser stamped one, otherwise
    the first position found on a descendant (pre-order), otherwise
    ``None`` (programmatically-built ASTs carry no positions).
    """
    own = getattr(node, "pos", None)
    if own is not None:
        return own
    for f in fields(node):  # type: ignore[arg-type]
        if f.name == "pos":
            continue
        value = getattr(node, f.name)
        children = value if isinstance(value, tuple) else (value,)
        for child in children:
            if isinstance(child, Node):
                found = node_pos(child)
                if found is not None:
                    return found
    return None


def _pos_field() -> Any:
    return field(default=None, compare=False, repr=False)


# =============================================================================
# Expressions
# =============================================================================


class Expr(Node):
    __slots__ = ()


@dataclass(frozen=True)
class Lit(Expr):
    """A literal value (integer, boolean, or any pure value)."""

    value: Any
    pos: Optional[SourcePos] = _pos_field()

    def __str__(self) -> str:
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return repr(self.value) if isinstance(self.value, str) else str(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """A program variable."""

    name: str
    pos: Optional[SourcePos] = _pos_field()

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation.  ``op`` is one of
    ``+ - * / % < <= > >= == != && ||``."""

    op: str
    left: Expr
    right: Expr
    pos: Optional[SourcePos] = _pos_field()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnOp(Expr):
    """A unary operation: ``-`` (negation) or ``!`` (logical not)."""

    op: str
    operand: Expr
    pos: Optional[SourcePos] = _pos_field()

    def __str__(self) -> str:
        return f"{self.op}{self.operand}"


@dataclass(frozen=True)
class Call(Expr):
    """Application of a registered pure function (Sec. 2.4 pure values)."""

    function: str
    args: Tuple[Expr, ...]
    pos: Optional[SourcePos] = _pos_field()

    def __str__(self) -> str:
        return f"{self.function}({', '.join(map(str, self.args))})"


def expr_fv(expr: Expr) -> frozenset[str]:
    """Free variables of an expression."""
    if isinstance(expr, Lit):
        return frozenset()
    if isinstance(expr, Var):
        return frozenset({expr.name})
    if isinstance(expr, BinOp):
        return expr_fv(expr.left) | expr_fv(expr.right)
    if isinstance(expr, UnOp):
        return expr_fv(expr.operand)
    if isinstance(expr, Call):
        result: frozenset[str] = frozenset()
        for arg in expr.args:
            result |= expr_fv(arg)
        return result
    raise TypeError(f"not an expression: {expr!r}")


def expr_subst(expr: Expr, name: str, replacement: Expr) -> Expr:
    """Capture-free substitution ``expr[replacement/name]``."""
    if isinstance(expr, Lit):
        return expr
    if isinstance(expr, Var):
        return replacement if expr.name == name else expr
    if isinstance(expr, BinOp):
        return BinOp(expr.op, expr_subst(expr.left, name, replacement), expr_subst(expr.right, name, replacement))
    if isinstance(expr, UnOp):
        return UnOp(expr.op, expr_subst(expr.operand, name, replacement))
    if isinstance(expr, Call):
        return Call(expr.function, tuple(expr_subst(arg, name, replacement) for arg in expr.args))
    raise TypeError(f"not an expression: {expr!r}")


# =============================================================================
# Commands
# =============================================================================


class Command(Node):
    __slots__ = ()


@dataclass(frozen=True)
class Skip(Command):
    pos: Optional[SourcePos] = _pos_field()

    def __str__(self) -> str:
        return "skip"


@dataclass(frozen=True)
class Assign(Command):
    """``x := e``"""

    target: str
    expr: Expr
    pos: Optional[SourcePos] = _pos_field()

    def __str__(self) -> str:
        return f"{self.target} := {self.expr}"


@dataclass(frozen=True)
class Load(Command):
    """``x := [e]`` — heap read."""

    target: str
    address: Expr
    pos: Optional[SourcePos] = _pos_field()

    def __str__(self) -> str:
        return f"{self.target} := [{self.address}]"


@dataclass(frozen=True)
class Store(Command):
    """``[e1] := e2`` — heap write."""

    address: Expr
    expr: Expr
    pos: Optional[SourcePos] = _pos_field()

    def __str__(self) -> str:
        return f"[{self.address}] := {self.expr}"


@dataclass(frozen=True)
class Alloc(Command):
    """``x := alloc(e)`` — allocate one heap cell initialized to ``e``."""

    target: str
    expr: Expr
    pos: Optional[SourcePos] = _pos_field()

    def __str__(self) -> str:
        return f"{self.target} := alloc({self.expr})"


@dataclass(frozen=True)
class Seq(Command):
    """``c1 ; c2``"""

    first: Command
    second: Command
    pos: Optional[SourcePos] = _pos_field()

    def __str__(self) -> str:
        return f"{self.first}; {self.second}"


@dataclass(frozen=True)
class If(Command):
    """``if (b) then {c1} else {c2}``"""

    condition: Expr
    then_branch: Command
    else_branch: Command
    pos: Optional[SourcePos] = _pos_field()

    def __str__(self) -> str:
        return f"if ({self.condition}) {{ {self.then_branch} }} else {{ {self.else_branch} }}"


@dataclass(frozen=True)
class While(Command):
    """``while (b) do {c}``"""

    condition: Expr
    body: Command
    pos: Optional[SourcePos] = _pos_field()

    def __str__(self) -> str:
        return f"while ({self.condition}) {{ {self.body} }}"


@dataclass(frozen=True)
class Par(Command):
    """``c1 || c2`` — parallel composition (nestable for >2 threads)."""

    left: Command
    right: Command
    pos: Optional[SourcePos] = _pos_field()

    def __str__(self) -> str:
        return f"({self.left} || {self.right})"


@dataclass(frozen=True)
class Atomic(Command):
    """``atomic c`` — execute ``c`` in one indivisible step with access to
    the shared resource.

    ``action`` / ``argument`` are the verifier annotation: the name of the
    resource-specification action this block performs and the expression
    for its argument (evaluated in the pre-state of the block).  They have
    no runtime effect.

    ``when`` is the App. D blocking guard (``atomic c when e``): the block
    can only step when the guard evaluates to true; otherwise the thread
    is blocked.  Inside the guard, ``deref(x)`` reads the heap cell whose
    address is held by ``x`` (guards are evaluated atomically with the
    block, so this read is race-free).
    """

    body: Command
    action: Optional[str] = None
    argument: Optional[Expr] = None
    when: Optional[Expr] = None
    pos: Optional[SourcePos] = _pos_field()

    def __str__(self) -> str:
        label = f" [{self.action}({self.argument})]" if self.action else ""
        guard = f" when ({self.when})" if self.when is not None else ""
        return f"atomic{label}{guard} {{ {self.body} }}"


@dataclass(frozen=True)
class Share(Command):
    """Ghost command: begin sharing the resource named ``resource``.

    ``value_var`` names the logical variable the invariant binds; at
    runtime the command is a no-op.
    """

    resource: str
    pos: Optional[SourcePos] = _pos_field()

    def __str__(self) -> str:
        return f"share {self.resource}"


@dataclass(frozen=True)
class Unshare(Command):
    """Ghost command: dissolve the shared resource (runtime no-op)."""

    resource: str
    pos: Optional[SourcePos] = _pos_field()

    def __str__(self) -> str:
        return f"unshare {self.resource}"


#: The default output channel of ``print``.
DEFAULT_CHANNEL = "out"


@dataclass(frozen=True)
class Print(Command):
    """``print(e)`` / ``print(e, channel)`` — append the value of ``e`` to
    an output trace.

    Channels implement the I/O-sensitivity extension of Sec. 3.7
    (limitation (4), lifted in the implementation): each channel carries a
    security label, and only channels observable at the attacker's level
    participate in the non-interference obligation.  Values printed on the
    default channel appear in the trace as plain values (the paper's
    single public output); other channels record ``(channel, value)``
    pairs.
    """

    expr: Expr
    channel: str = DEFAULT_CHANNEL
    pos: Optional[SourcePos] = _pos_field()

    def __str__(self) -> str:
        if self.channel == DEFAULT_CHANNEL:
            return f"print({self.expr})"
        return f"print({self.expr}, {self.channel})"


@dataclass(frozen=True)
class Fork(Command):
    """``t := fork p(e1, ..., en)`` — dynamic thread creation (Sec. 5).

    HyperViper supports dynamic threads via ``fork``/``join`` instead of
    the paper's structured ``||``; we support both.  ``fork`` spawns a new
    thread running the body of procedure ``procedure`` with its parameters
    bound to the argument values, and stores a fresh thread token in
    ``target``.  The spawned thread shares the heap with its parent but
    has a private store (the bound parameters), exactly like the threads
    of a parallel composition with renamed-apart variables.
    """

    target: str
    procedure: str
    args: Tuple[Expr, ...]
    pos: Optional[SourcePos] = _pos_field()

    def __str__(self) -> str:
        return f"{self.target} := fork {self.procedure}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class Join(Command):
    """``join p(e)`` — block until the thread whose token is the value of
    ``e`` (spawned by a ``fork`` of procedure ``p``) has terminated.

    Mirrors HyperViper's ``join[worker](t)``; the procedure name is part
    of the command so the verifier knows which postcondition to recover.
    """

    procedure: str
    token: Expr
    pos: Optional[SourcePos] = _pos_field()

    def __str__(self) -> str:
        return f"join {self.procedure}({self.token})"


# =============================================================================
# fv / mod
# =============================================================================


def command_fv(cmd: Command) -> frozenset[str]:
    """Free variables of a command (read or written)."""
    if isinstance(cmd, (Skip, Share, Unshare)):
        return frozenset()
    if isinstance(cmd, Assign):
        return frozenset({cmd.target}) | expr_fv(cmd.expr)
    if isinstance(cmd, Load):
        return frozenset({cmd.target}) | expr_fv(cmd.address)
    if isinstance(cmd, Store):
        return expr_fv(cmd.address) | expr_fv(cmd.expr)
    if isinstance(cmd, Alloc):
        return frozenset({cmd.target}) | expr_fv(cmd.expr)
    if isinstance(cmd, Seq):
        return command_fv(cmd.first) | command_fv(cmd.second)
    if isinstance(cmd, If):
        return expr_fv(cmd.condition) | command_fv(cmd.then_branch) | command_fv(cmd.else_branch)
    if isinstance(cmd, While):
        return expr_fv(cmd.condition) | command_fv(cmd.body)
    if isinstance(cmd, Par):
        return command_fv(cmd.left) | command_fv(cmd.right)
    if isinstance(cmd, Atomic):
        extra = expr_fv(cmd.argument) if cmd.argument is not None else frozenset()
        if cmd.when is not None:
            extra |= expr_fv(cmd.when)
        return command_fv(cmd.body) | extra
    if isinstance(cmd, Print):
        return expr_fv(cmd.expr)
    if isinstance(cmd, Fork):
        result: frozenset[str] = frozenset({cmd.target})
        for arg in cmd.args:
            result |= expr_fv(arg)
        return result
    if isinstance(cmd, Join):
        return expr_fv(cmd.token)
    raise TypeError(f"not a command: {cmd!r}")


def command_mod(cmd: Command) -> frozenset[str]:
    """Variables modified by a command (``mod(c)`` in the paper)."""
    if isinstance(cmd, (Skip, Store, Share, Unshare, Print, Join)):
        return frozenset()
    if isinstance(cmd, (Assign, Load, Alloc, Fork)):
        return frozenset({cmd.target})
    if isinstance(cmd, Seq):
        return command_mod(cmd.first) | command_mod(cmd.second)
    if isinstance(cmd, If):
        return command_mod(cmd.then_branch) | command_mod(cmd.else_branch)
    if isinstance(cmd, While):
        return command_mod(cmd.body)
    if isinstance(cmd, Par):
        return command_mod(cmd.left) | command_mod(cmd.right)
    if isinstance(cmd, Atomic):
        return command_mod(cmd.body)
    raise TypeError(f"not a command: {cmd!r}")


def seq_all(*commands: Command) -> Command:
    """Right-associated sequential composition of any number of commands."""
    if not commands:
        return Skip()
    result = commands[-1]
    for cmd in reversed(commands[:-1]):
        result = Seq(cmd, result)
    return result


def par_all(*commands: Command) -> Command:
    """Right-associated parallel composition of any number of commands."""
    if not commands:
        return Skip()
    result = commands[-1]
    for cmd in reversed(commands[:-1]):
        result = Par(cmd, result)
    return result
