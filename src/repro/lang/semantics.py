"""Small-step operational semantics (Fig. 9 / App. A.1).

Configurations are ``⟨c, (s, h)⟩`` or ``abort``.  The semantics is exactly
the paper's: heap reads/writes abort on unallocated locations, loops
unfold to conditionals, ``atomic c`` runs ``c`` to completion in a single
indivisible step, and ``c1 || c2`` steps nondeterministically in either
component.

:func:`step` returns *all* successor configurations, each tagged with the
scheduling choice that produced it, so schedulers (round-robin, random,
exhaustive) can be layered on top without touching the semantics.

Expression evaluation is deterministic and total (Sec. 3.1): reads of
uninitialized variables yield the default value 0, division by zero yields
0, so expressions never fail.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterator, Optional

from .ast import (
    DEFAULT_CHANNEL,
    Alloc,
    Assign,
    Atomic,
    Call,
    Command,
    Expr,
    If,
    Lit,
    Load,
    Par,
    Print,
    Seq,
    Share,
    Skip,
    Store,
    UnOp,
    Unshare,
    Var,
    While,
    BinOp,
)
from .values import PURE_FUNCTIONS

Store_ = dict  # program store: name -> value
Heap_ = dict  # program heap: location -> value

DEFAULT_VALUE = 0


class EvaluationError(Exception):
    """Raised on genuinely ill-formed expressions (unknown op/function)."""


def evaluate(expr: Expr, store: Store_, heap: Heap_ | None = None) -> Any:
    """Evaluate ``expr`` in ``store``; total and deterministic.

    ``heap`` is only supplied when evaluating the blocking guard of an
    ``atomic ... when (e)`` block (App. D), where ``deref(x)`` reads the
    heap cell addressed by ``x``; everywhere else expressions are
    heap-free per the language of Fig. 6.
    """
    if isinstance(expr, Lit):
        return expr.value
    if isinstance(expr, Var):
        return store.get(expr.name, DEFAULT_VALUE)
    if isinstance(expr, UnOp):
        value = evaluate(expr.operand, store, heap)
        if expr.op == "-":
            return -value
        if expr.op == "!":
            return not _truthy(value)
        raise EvaluationError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, BinOp):
        return _eval_binop(expr, store, heap)
    if isinstance(expr, Call):
        if expr.function == "deref":
            if heap is None:
                raise EvaluationError("deref is only available in atomic 'when' guards")
            address = evaluate(expr.args[0], store, heap)
            return heap.get(address, DEFAULT_VALUE)
        function = PURE_FUNCTIONS.get(expr.function)
        if function is None:
            raise EvaluationError(f"unknown pure function {expr.function!r}")
        return function(*(evaluate(arg, store, heap) for arg in expr.args))
    raise EvaluationError(f"not an expression: {expr!r}")


def _truthy(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value != 0
    raise EvaluationError(f"non-boolean condition value: {value!r}")


def _eval_binop(expr: BinOp, store: Store_, heap: Heap_ | None = None) -> Any:
    op = expr.op
    if op == "&&":
        return _truthy(evaluate(expr.left, store, heap)) and _truthy(evaluate(expr.right, store, heap))
    if op == "||":
        return _truthy(evaluate(expr.left, store, heap)) or _truthy(evaluate(expr.right, store, heap))
    left = evaluate(expr.left, store, heap)
    right = evaluate(expr.right, store, heap)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        # Total semantics: division by zero yields the default value.
        return left // right if right != 0 else DEFAULT_VALUE
    if op == "%":
        return left % right if right != 0 else DEFAULT_VALUE
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise EvaluationError(f"unknown binary operator {op!r}")


@dataclass(frozen=True)
class State:
    """A machine state: store, heap, output trace, allocation counter.

    ``output`` is the trace of values printed so far — the program's public
    output in the sense of Def. 2.1.  ``next_location`` implements
    deterministic fresh allocation (the semantics only requires
    ``l ∉ dom(h)``; we always pick the smallest fresh natural, which keeps
    executions reproducible without losing any behaviour relevant to
    non-interference of values).
    """

    store: tuple
    heap: tuple
    output: tuple = ()
    next_location: int = 1

    @classmethod
    def make(
        cls,
        store: Optional[dict] = None,
        heap: Optional[dict] = None,
        output: tuple = (),
    ) -> "State":
        store = store or {}
        heap = heap or {}
        next_location = max(heap, default=0) + 1
        return cls(
            store=tuple(sorted(store.items())),
            heap=tuple(sorted(heap.items())),
            output=tuple(output),
            next_location=next_location,
        )

    def store_dict(self) -> dict:
        return dict(self.store)

    def heap_dict(self) -> dict:
        return dict(self.heap)

    def with_store(self, store: dict) -> "State":
        return replace(self, store=tuple(sorted(store.items())))

    def with_heap(self, heap: dict) -> "State":
        return replace(self, heap=tuple(sorted(heap.items())))

    def read_var(self, name: str) -> Any:
        return self.store_dict().get(name, DEFAULT_VALUE)


@dataclass(frozen=True)
class Config:
    """A non-aborted configuration ``⟨c, (s, h)⟩``."""

    command: Command
    state: State

    def is_final(self) -> bool:
        return isinstance(self.command, Skip)


ABORT = "abort"


@dataclass(frozen=True)
class Step:
    """One successor of a configuration.

    ``choice`` identifies the scheduling decision: a string of 'L'/'R'
    characters descending through ``Par`` nodes to the thread that moved
    (empty for deterministic steps).  ``result`` is a :class:`Config` or
    the :data:`ABORT` marker.
    """

    choice: str
    result: Any  # Config | "abort"

    def aborted(self) -> bool:
        return self.result == ABORT


def step(config: Config) -> list[Step]:
    """All one-step successors of ``config`` (empty iff final)."""
    return list(_step(config.command, config.state, ""))


def _step(cmd: Command, state: State, choice: str) -> Iterator[Step]:
    if isinstance(cmd, Skip):
        return
    if isinstance(cmd, Assign):
        store = state.store_dict()
        store[cmd.target] = evaluate(cmd.expr, store)
        yield Step(choice, Config(Skip(), state.with_store(store)))
        return
    if isinstance(cmd, Load):
        store = state.store_dict()
        heap = state.heap_dict()
        address = evaluate(cmd.address, store)
        if address not in heap:
            yield Step(choice, ABORT)
            return
        store[cmd.target] = heap[address]
        yield Step(choice, Config(Skip(), state.with_store(store)))
        return
    if isinstance(cmd, Store):
        store = state.store_dict()
        heap = state.heap_dict()
        address = evaluate(cmd.address, store)
        if address not in heap:
            yield Step(choice, ABORT)
            return
        heap[address] = evaluate(cmd.expr, store)
        yield Step(choice, Config(Skip(), state.with_heap(heap)))
        return
    if isinstance(cmd, Alloc):
        store = state.store_dict()
        heap = state.heap_dict()
        location = state.next_location
        heap[location] = evaluate(cmd.expr, store)
        store[cmd.target] = location
        new_state = State(
            store=tuple(sorted(store.items())),
            heap=tuple(sorted(heap.items())),
            output=state.output,
            next_location=location + 1,
        )
        yield Step(choice, Config(Skip(), new_state))
        return
    if isinstance(cmd, Seq):
        if isinstance(cmd.first, Skip):
            yield Step(choice, Config(cmd.second, state))
            return
        for sub in _step(cmd.first, state, choice):
            if sub.aborted():
                yield sub
            else:
                yield Step(sub.choice, Config(Seq(sub.result.command, cmd.second), sub.result.state))
        return
    if isinstance(cmd, If):
        branch = cmd.then_branch if _truthy(evaluate(cmd.condition, state.store_dict())) else cmd.else_branch
        yield Step(choice, Config(branch, state))
        return
    if isinstance(cmd, While):
        unfolded = If(cmd.condition, Seq(cmd.body, cmd), Skip())
        yield Step(choice, Config(unfolded, state))
        return
    if isinstance(cmd, Par):
        left_done = isinstance(cmd.left, Skip)
        right_done = isinstance(cmd.right, Skip)
        if left_done and right_done:
            yield Step(choice, Config(Skip(), state))
            return
        if not left_done:
            for sub in _step(cmd.left, state, choice + "L"):
                if sub.aborted():
                    yield sub
                else:
                    yield Step(sub.choice, Config(Par(sub.result.command, cmd.right), sub.result.state))
        if not right_done:
            for sub in _step(cmd.right, state, choice + "R"):
                if sub.aborted():
                    yield sub
                else:
                    yield Step(sub.choice, Config(Par(cmd.left, sub.result.command), sub.result.state))
        return
    if isinstance(cmd, Atomic):
        if cmd.when is not None:
            guard = evaluate(cmd.when, state.store_dict(), state.heap_dict())
            if not _truthy(guard):
                return  # blocked: this thread cannot step (App. D semantics)
        yield _run_atomic(cmd, state, choice)
        return
    if isinstance(cmd, (Share, Unshare)):
        yield Step(choice, Config(Skip(), state))
        return
    if isinstance(cmd, Print):
        value = evaluate(cmd.expr, state.store_dict())
        entry = value if cmd.channel == DEFAULT_CHANNEL else (cmd.channel, value)
        yield Step(choice, Config(Skip(), replace(state, output=state.output + (entry,))))
        return
    raise TypeError(f"not a command: {cmd!r}")


_ATOMIC_FUEL = 1_000_000


def _run_atomic(cmd: Atomic, state: State, choice: str) -> Step:
    """Run an atomic body to completion in one indivisible step (rule Atom).

    The body of an atomic block is sequential in all our programs; if it
    contains parallelism we resolve it left-first, which is one of the
    behaviours admitted by the ``→*`` premise of the Atom rule.
    """
    config = Config(cmd.body, state)
    for _ in range(_ATOMIC_FUEL):
        if config.is_final():
            return Step(choice, Config(Skip(), config.state))
        successors = list(_step(config.command, config.state, ""))
        first = successors[0]
        if first.aborted():
            return Step(choice, ABORT)
        config = first.result
    raise RuntimeError("atomic block exceeded fuel (possible divergence)")
