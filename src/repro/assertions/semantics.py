"""Satisfaction of relational assertions (Fig. 7).

Satisfaction is over *pairs* of ``(store, ExtendedHeap)``.  We implement it
with a resource matcher in the style of Viper's inhale/exhale: matching an
assertion against a pair of states consumes its footprint and yields the
possible remainders.  ``P`` holds of a pair of states iff some match
consumes *exactly* the states' resources (Fig. 7 constrains footprints
exactly; pure assertions — booleans, ``Low`` — have empty footprints but,
per Fig. 7, leave guards and heap unconstrained only where the grammar
says so).

The matcher handles the *precise fragment* the paper itself restricts to
in its implementation (App. B.3): separating conjunctions of points-to
predicates with concrete fractions, guard assertions, pure assertions, and
existentials whose witnesses are drawn from the states.  Assertions
outside the fragment raise :class:`UnsupportedAssertion`.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Any, Iterable, Iterator, Optional

from ..heap.extheap import ExtendedHeap
from ..heap.guards import GuardFamily, SharedGuard, UniqueGuard
from ..heap.multiset import Multiset
from ..heap.permheap import PermissionHeap
from ..lang.ast import Expr
from ..lang.semantics import evaluate
from .ast import (
    Assertion,
    BoolAssert,
    Conj,
    Emp,
    Exists,
    Implies,
    Low,
    PointsTo,
    PreShared,
    PreUnique,
    SepConj,
    SGuardAssert,
    UGuardAssert,
)


class UnsupportedAssertion(Exception):
    """The assertion lies outside the checkable precise fragment."""


StatePair = tuple[dict, ExtendedHeap, dict, ExtendedHeap]


def satisfies(
    store1: dict,
    heap1: ExtendedHeap,
    store2: dict,
    heap2: ExtendedHeap,
    assertion: Assertion,
    witnesses: Optional[Iterable[Any]] = None,
) -> bool:
    """``(s1, gh1), (s2, gh2) ⊨ P`` per Fig. 7.

    ``witnesses`` supplies extra candidate values for existentials; values
    occurring in the states are always tried.
    """
    witness_pool = _witness_pool(store1, heap1, store2, heap2, witnesses)
    for rest1, rest2 in _match(assertion, store1, heap1, store2, heap2, witness_pool):
        if _exact(assertion, rest1) and _exact(assertion, rest2):
            return True
    return False


def _exact(assertion: Assertion, remainder: ExtendedHeap) -> bool:
    """Top-level satisfaction requires the assertion's footprint to be the
    whole state, except that pure constructs leave components unconstrained
    per Fig. 7.  We approximate Fig. 7 exactly for the fragment: the
    permission-heap remainder must be empty unless the assertion is pure
    (booleans/Low constrain no heap), and guard remainders must be ⊥ unless
    no guard assertion occurs (guard-free assertions do not constrain
    guards for pure/emp, but points-to requires them ⊥ via its exact
    footprint — we keep the liberal reading for pure parts)."""
    from .ast import contains_guard

    if _is_pure(assertion):
        return True
    if len(remainder.perm_heap) != 0:
        return False
    if contains_guard(assertion):
        return remainder.shared_guard is None and remainder.unique_guards.is_bottom()
    # Fig. 7: e1 ↦r e2 pins gh to exactly the singleton permission heap —
    # which has ⊥ guards.  emp only constrains dom(ph).
    if _contains_points_to(assertion):
        return remainder.shared_guard is None and remainder.unique_guards.is_bottom()
    return True


def _is_pure(assertion: Assertion) -> bool:
    if isinstance(assertion, (BoolAssert, Low, PreShared, PreUnique)):
        return True
    if isinstance(assertion, Implies):
        return _is_pure(assertion.body)
    if isinstance(assertion, (Conj, SepConj)):
        return _is_pure(assertion.left) and _is_pure(assertion.right)
    if isinstance(assertion, Exists):
        return _is_pure(assertion.body)
    return False


def _contains_points_to(assertion: Assertion) -> bool:
    if isinstance(assertion, PointsTo):
        return True
    if isinstance(assertion, (Conj, SepConj)):
        return _contains_points_to(assertion.left) or _contains_points_to(assertion.right)
    if isinstance(assertion, (Exists,)):
        return _contains_points_to(assertion.body)
    if isinstance(assertion, Implies):
        return _contains_points_to(assertion.body)
    return False


def _witness_pool(
    store1: dict,
    heap1: ExtendedHeap,
    store2: dict,
    heap2: ExtendedHeap,
    extra: Optional[Iterable[Any]],
) -> tuple:
    pool: list[Any] = [0, 1]
    for store in (store1, store2):
        pool.extend(store.values())
    for heap in (heap1, heap2):
        for _, _, value in heap.perm_heap.cells():
            pool.append(value)
        if heap.shared_guard is not None:
            pool.append(heap.shared_guard.args)
            pool.extend(heap.shared_guard.args.elements())
        for index in heap.unique_guards.indices():
            guard = heap.unique_guards.get(index)
            pool.append(guard.args)
            pool.extend(guard.args)
    if extra is not None:
        pool.extend(extra)
    seen = []
    for value in pool:
        if not any(value == other and type(value) == type(other) for other in seen):
            seen.append(value)
    return tuple(seen)


def _match(
    assertion: Assertion,
    store1: dict,
    heap1: ExtendedHeap,
    store2: dict,
    heap2: ExtendedHeap,
    witnesses: tuple,
) -> Iterator[tuple[ExtendedHeap, ExtendedHeap]]:
    """Yield remainder pairs after consuming the assertion's footprint."""
    if isinstance(assertion, Emp):
        # emp's footprint is the empty heap: consume nothing.  The top-level
        # exactness check (``_exact``) enforces dom(ph) = ∅ when emp is the
        # whole assertion.
        yield heap1, heap2
        return
    if isinstance(assertion, BoolAssert):
        if _truthy(evaluate(assertion.expr, store1)) and _truthy(evaluate(assertion.expr, store2)):
            yield heap1, heap2
        return
    if isinstance(assertion, Low):
        if evaluate(assertion.expr, store1) == evaluate(assertion.expr, store2):
            yield heap1, heap2
        return
    if isinstance(assertion, PreShared):
        from .pre import pre_shared

        args1 = _as_multiset(evaluate(assertion.args, store1))
        args2 = _as_multiset(evaluate(assertion.args, store2))
        if args1 is not None and args2 is not None and pre_shared(assertion.action, args1, args2):
            yield heap1, heap2
        return
    if isinstance(assertion, PreUnique):
        from .pre import pre_unique

        args1 = _as_sequence(evaluate(assertion.args, store1))
        args2 = _as_sequence(evaluate(assertion.args, store2))
        if args1 is not None and args2 is not None and pre_unique(assertion.action, args1, args2):
            yield heap1, heap2
        return
    if isinstance(assertion, Implies):
        value1 = _truthy(evaluate(assertion.condition, store1))
        value2 = _truthy(evaluate(assertion.condition, store2))
        if value1 != value2:
            return
        if not value1:
            yield heap1, heap2
            return
        yield from _match(assertion.body, store1, heap1, store2, heap2, witnesses)
        return
    if isinstance(assertion, PointsTo):
        yield from _match_points_to(assertion, store1, heap1, store2, heap2)
        return
    if isinstance(assertion, SGuardAssert):
        yield from _match_sguard(assertion, store1, heap1, store2, heap2)
        return
    if isinstance(assertion, UGuardAssert):
        yield from _match_uguard(assertion, store1, heap1, store2, heap2)
        return
    if isinstance(assertion, SepConj):
        for rest1, rest2 in _match(assertion.left, store1, heap1, store2, heap2, witnesses):
            yield from _match(assertion.right, store1, rest1, store2, rest2, witnesses)
        return
    if isinstance(assertion, Conj):
        # Both conjuncts must hold of the same states (Fig. 7).  A *pure*
        # conjunct (no spatial or guard atoms) constrains only the stores,
        # so it is footprint-transparent: check it as a state predicate
        # and let the other conjunct determine the remainder.  For two
        # spatial conjuncts, the footprints must coincide: remainders must
        # agree.
        left_pure = _is_pure(assertion.left)
        right_pure = _is_pure(assertion.right)
        if left_pure and not right_pure:
            if any(True for _ in _match(assertion.left, store1, heap1, store2, heap2, witnesses)):
                yield from _match(assertion.right, store1, heap1, store2, heap2, witnesses)
            return
        if right_pure and not left_pure:
            if any(True for _ in _match(assertion.right, store1, heap1, store2, heap2, witnesses)):
                yield from _match(assertion.left, store1, heap1, store2, heap2, witnesses)
            return
        left_remainders = list(_match(assertion.left, store1, heap1, store2, heap2, witnesses))
        right_remainders = list(_match(assertion.right, store1, heap1, store2, heap2, witnesses))
        for remainder in left_remainders:
            if remainder in right_remainders:
                yield remainder
        return
    if isinstance(assertion, Exists):
        # Witnesses may differ between the two executions (Sec. 3.4).
        for value1, value2 in itertools.product(witnesses, repeat=2):
            new_store1 = dict(store1)
            new_store1[assertion.variable] = value1
            new_store2 = dict(store2)
            new_store2[assertion.variable] = value2
            yield from _match(assertion.body, new_store1, heap1, new_store2, heap2, witnesses)
        return
    raise UnsupportedAssertion(f"cannot match {assertion!r}")


def _as_multiset(value: Any) -> Multiset | None:
    """Coerce a value to a multiset; None for ill-typed witnesses (the
    existential search tries every pool value, including wrong-typed ones)."""
    if isinstance(value, Multiset):
        return value
    if isinstance(value, (tuple, list, frozenset)):
        return Multiset(value)
    return None


def _as_sequence(value: Any) -> tuple | None:
    if isinstance(value, (tuple, list)):
        return tuple(value)
    return None


def _truthy(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value != 0
    raise UnsupportedAssertion(f"non-boolean assertion expression value: {value!r}")


def _match_points_to(
    assertion: PointsTo,
    store1: dict,
    heap1: ExtendedHeap,
    store2: dict,
    heap2: ExtendedHeap,
) -> Iterator[tuple[ExtendedHeap, ExtendedHeap]]:
    remainders = []
    for store, heap in ((store1, heap1), (store2, heap2)):
        address = evaluate(assertion.address, store)
        value = evaluate(assertion.value, store)
        perm = heap.perm_heap
        if perm.permission(address) < assertion.fraction:
            return
        if perm.value(address) != value:
            return
        remaining = perm.permission(address) - assertion.fraction
        if remaining == 0:
            new_perm = perm.remove(address)
        else:
            cells = {loc: (p, v) for loc, p, v in perm.cells()}
            cells[address] = (remaining, value)
            new_perm = PermissionHeap(cells)
        remainders.append(ExtendedHeap(new_perm, heap.shared_guard, heap.unique_guards))
    yield remainders[0], remainders[1]


def _match_sguard(
    assertion: SGuardAssert,
    store1: dict,
    heap1: ExtendedHeap,
    store2: dict,
    heap2: ExtendedHeap,
) -> Iterator[tuple[ExtendedHeap, ExtendedHeap]]:
    remainders = []
    for store, heap in ((store1, heap1), (store2, heap2)):
        guard = heap.shared_guard
        if guard is None:
            return
        try:
            wanted_args = _as_multiset(evaluate(assertion.args, store))
        except Exception:  # noqa: BLE001 — ill-typed instantiation: no match
            return
        if wanted_args is None:
            return
        if guard.fraction < assertion.fraction:
            return
        if not wanted_args.issubset(guard.args):
            return
        remaining_fraction = guard.fraction - assertion.fraction
        remaining_args = guard.args.difference(wanted_args)
        if remaining_fraction == 0:
            if remaining_args:
                return  # consumed the whole fraction: args must match exactly
            new_guard = None
        else:
            new_guard = SharedGuard(remaining_fraction, remaining_args)
        remainders.append(ExtendedHeap(heap.perm_heap, new_guard, heap.unique_guards))
    yield remainders[0], remainders[1]


def _match_uguard(
    assertion: UGuardAssert,
    store1: dict,
    heap1: ExtendedHeap,
    store2: dict,
    heap2: ExtendedHeap,
) -> Iterator[tuple[ExtendedHeap, ExtendedHeap]]:
    remainders = []
    for store, heap in ((store1, heap1), (store2, heap2)):
        guard = heap.unique_guards.get(assertion.index)
        if guard is None:
            return
        try:
            wanted = _as_sequence(evaluate(assertion.args, store))
        except Exception:  # noqa: BLE001 — ill-typed instantiation: no match
            return
        if wanted is None or wanted != guard.args:
            return
        members = {
            index: heap.unique_guards.get(index)
            for index in heap.unique_guards.indices()
            if index != assertion.index
        }
        remainders.append(ExtendedHeap(heap.perm_heap, heap.shared_guard, GuardFamily(members)))
    yield remainders[0], remainders[1]
