"""The relational assertion language (Sec. 3.4).

.. code-block:: text

    P, Q ::= emp | b | e ↦r e | P ∗ Q | P ∧ Q | ∃x. P
           | sguard(r, e) | uguard_i(e) | b ⇒ P | Low(e)

Assertions are *relational*: their satisfaction (defined in
:mod:`repro.assertions.semantics`) is over **pairs** of
``(store, extended heap)`` states, which is what lets ``Low(e)`` say that
``e`` evaluates equally in both executions.

Object-language expressions (:mod:`repro.lang.ast`) are reused as the
expression syntax inside assertions.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Hashable, Tuple

from ..lang.ast import Expr, expr_fv


class Assertion:
    """Base class of assertions."""

    __slots__ = ()

    def __mul__(self, other: "Assertion") -> "SepConj":
        """``P * Q`` builds a separating conjunction."""
        return SepConj(self, other)

    def __and__(self, other: "Assertion") -> "Conj":
        return Conj(self, other)


@dataclass(frozen=True)
class Emp(Assertion):
    """``emp`` — both permission heaps are empty."""

    def __str__(self) -> str:
        return "emp"


@dataclass(frozen=True)
class BoolAssert(Assertion):
    """A boolean expression, required to hold in *both* states."""

    expr: Expr

    def __str__(self) -> str:
        return str(self.expr)


@dataclass(frozen=True)
class PointsTo(Assertion):
    """``e1 ↦r e2`` — permission ``r`` to location ``e1`` holding ``e2``."""

    address: Expr
    value: Expr
    fraction: Fraction = Fraction(1)

    def __str__(self) -> str:
        suffix = "" if self.fraction == 1 else f"[{self.fraction}]"
        return f"{self.address} ↦{suffix} {self.value}"


@dataclass(frozen=True)
class SepConj(Assertion):
    """``P ∗ Q`` — the heaps split into disjoint parts satisfying P and Q."""

    left: Assertion
    right: Assertion

    def __str__(self) -> str:
        return f"({self.left} ∗ {self.right})"


@dataclass(frozen=True)
class Conj(Assertion):
    """``P ∧ Q`` — both hold of the same states."""

    left: Assertion
    right: Assertion

    def __str__(self) -> str:
        return f"({self.left} ∧ {self.right})"


@dataclass(frozen=True)
class Exists(Assertion):
    """``∃x. P`` — the witness may differ between the two states."""

    variable: str
    body: Assertion

    def __str__(self) -> str:
        return f"(∃{self.variable}. {self.body})"


@dataclass(frozen=True)
class SGuardAssert(Assertion):
    """``sguard(r, e)`` — fraction ``r`` of the shared guard, with argument
    multiset ``e``; empty permission heap, ⊥ unique guards."""

    fraction: Fraction
    args: Expr

    def __str__(self) -> str:
        return f"sguard({self.fraction}, {self.args})"


@dataclass(frozen=True)
class UGuardAssert(Assertion):
    """``uguard_i(e)`` — the unique guard for action ``index`` with argument
    sequence ``e``; empty permission heap, ⊥ shared guard."""

    index: Hashable
    args: Expr

    def __str__(self) -> str:
        return f"uguard_{self.index}({self.args})"


@dataclass(frozen=True)
class Implies(Assertion):
    """``b ⇒ P`` — requires ``b`` to be *low* and, if true, ``P``."""

    condition: Expr
    body: Assertion

    def __str__(self) -> str:
        return f"({self.condition} ⇒ {self.body})"


@dataclass(frozen=True)
class Low(Assertion):
    """``Low(e)`` — ``e`` evaluates to the same value in both states."""

    expr: Expr

    def __str__(self) -> str:
        return f"Low({self.expr})"


@dataclass(frozen=True)
class PreShared(Assertion):
    """``PRE_s(e)`` (Def. 3.2) — a precondition-respecting bijection exists
    between the multiset values of ``e`` in the two states.  ``action`` is
    the shared :class:`repro.spec.actions.Action` whose relational
    precondition is used.  Pure (empty footprint) and relational."""

    action: Any
    args: Expr

    def __str__(self) -> str:
        return f"PRE_{self.action.name}({self.args})"


@dataclass(frozen=True)
class PreUnique(Assertion):
    """``PRE_i(e)`` (Eq. (2)) — the sequence values of ``e`` in the two
    states have equal length and satisfy the unique action's relational
    precondition pointwise."""

    action: Any
    args: Expr

    def __str__(self) -> str:
        return f"PRE_{self.action.name}({self.args})"


# -- traversals ---------------------------------------------------------------


def assertion_fv(assertion: Assertion) -> frozenset[str]:
    """Free variables of an assertion."""
    if isinstance(assertion, Emp):
        return frozenset()
    if isinstance(assertion, BoolAssert):
        return expr_fv(assertion.expr)
    if isinstance(assertion, PointsTo):
        return expr_fv(assertion.address) | expr_fv(assertion.value)
    if isinstance(assertion, (SepConj, Conj)):
        return assertion_fv(assertion.left) | assertion_fv(assertion.right)
    if isinstance(assertion, Exists):
        return assertion_fv(assertion.body) - {assertion.variable}
    if isinstance(assertion, (SGuardAssert, UGuardAssert)):
        return expr_fv(assertion.args)
    if isinstance(assertion, Implies):
        return expr_fv(assertion.condition) | assertion_fv(assertion.body)
    if isinstance(assertion, Low):
        return expr_fv(assertion.expr)
    if isinstance(assertion, (PreShared, PreUnique)):
        return expr_fv(assertion.args)
    raise TypeError(f"not an assertion: {assertion!r}")


def contains_low(assertion: Assertion) -> bool:
    """True iff the assertion syntactically contains ``Low``, ``⇒``, or a
    ``PRE`` (the constructs that make assertions non-unary, Sec. 3.4)."""
    if isinstance(assertion, (Low, Implies, PreShared, PreUnique)):
        return True
    if isinstance(assertion, (SepConj, Conj)):
        return contains_low(assertion.left) or contains_low(assertion.right)
    if isinstance(assertion, Exists):
        return contains_low(assertion.body)
    return False


def assertion_subst(assertion: Assertion, name: str, replacement: Expr) -> Assertion:
    """Capture-avoiding substitution ``P[replacement/name]`` (used by the
    Assign rule's backwards precondition)."""
    from ..lang.ast import expr_subst

    if isinstance(assertion, Emp):
        return assertion
    if isinstance(assertion, BoolAssert):
        return BoolAssert(expr_subst(assertion.expr, name, replacement))
    if isinstance(assertion, PointsTo):
        return PointsTo(
            expr_subst(assertion.address, name, replacement),
            expr_subst(assertion.value, name, replacement),
            assertion.fraction,
        )
    if isinstance(assertion, SepConj):
        return SepConj(
            assertion_subst(assertion.left, name, replacement),
            assertion_subst(assertion.right, name, replacement),
        )
    if isinstance(assertion, Conj):
        return Conj(
            assertion_subst(assertion.left, name, replacement),
            assertion_subst(assertion.right, name, replacement),
        )
    if isinstance(assertion, Exists):
        if assertion.variable == name:
            return assertion
        if assertion.variable in expr_fv(replacement):
            raise ValueError(
                f"substitution would capture {assertion.variable!r}; rename the binder first"
            )
        return Exists(assertion.variable, assertion_subst(assertion.body, name, replacement))
    if isinstance(assertion, SGuardAssert):
        return SGuardAssert(assertion.fraction, expr_subst(assertion.args, name, replacement))
    if isinstance(assertion, UGuardAssert):
        return UGuardAssert(assertion.index, expr_subst(assertion.args, name, replacement))
    if isinstance(assertion, Implies):
        return Implies(
            expr_subst(assertion.condition, name, replacement),
            assertion_subst(assertion.body, name, replacement),
        )
    if isinstance(assertion, Low):
        return Low(expr_subst(assertion.expr, name, replacement))
    if isinstance(assertion, PreShared):
        return PreShared(assertion.action, expr_subst(assertion.args, name, replacement))
    if isinstance(assertion, PreUnique):
        return PreUnique(assertion.action, expr_subst(assertion.args, name, replacement))
    raise TypeError(f"not an assertion: {assertion!r}")


def contains_guard(assertion: Assertion) -> bool:
    """True iff the assertion mentions any guard (``¬noguard`` syntactically)."""
    if isinstance(assertion, (SGuardAssert, UGuardAssert)):
        return True
    if isinstance(assertion, (SepConj, Conj)):
        return contains_guard(assertion.left) or contains_guard(assertion.right)
    if isinstance(assertion, (Exists, Implies)):
        body = assertion.body
        return contains_guard(body)
    return False
