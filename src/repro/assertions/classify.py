"""Side-condition classifiers: unary, precise, noguard, unambiguous.

The proof rules of Fig. 8 / Fig. 10 impose side conditions on assertions:

* ``unary P`` — P does not relate the two states to each other.  The paper
  notes (Sec. 3.4) that any assertion without syntactic ``Low`` (and
  without ``b ⇒ P``, whose semantics forces ``b`` low) is unary; we use
  that sufficient syntactic criterion, plus a bounded semantic check for
  tests.
* ``precise P`` — at most one sub-heap of any heap satisfies P
  (O'Hearn et al. 2004).  We use a syntactic sufficient criterion matching
  the fragment the implementation restricts to (App. B.3): separating
  conjunctions of points-to predicates with closed addresses and guard
  assertions are precise; pure assertions are not.
* ``noguard P`` — P holds only of states with ⊥ guard states; syntactically,
  P contains no guard assertion and every points-to footprint forces ⊥
  guards.  We use: no guard assertions occur (App. B.4's practical check).
* ``unambiguous(P, x)`` — P pins the value of x (Def. B.1); sufficient
  criterion: x occurs as the value of a points-to with x-free address, or
  in an equality ``x == e`` with x-free e.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable

from ..heap.extheap import ExtendedHeap
from ..lang.ast import BinOp, Expr, Var, expr_fv
from .ast import (
    Assertion,
    BoolAssert,
    Conj,
    Emp,
    Exists,
    Implies,
    Low,
    PointsTo,
    SepConj,
    SGuardAssert,
    UGuardAssert,
    contains_guard,
    contains_low,
)
from .semantics import satisfies


def is_unary(assertion: Assertion) -> bool:
    """Syntactic sufficient criterion for unarity (Sec. 3.4)."""
    return not contains_low(assertion)


def is_noguard(assertion: Assertion) -> bool:
    """Syntactic ``noguard``: no guard assertion occurs (App. B.4)."""
    return not contains_guard(assertion)


def is_precise(assertion: Assertion) -> bool:
    """Syntactic sufficient criterion for precision.

    Points-to with a closed (variable-only-address) expression, guard
    assertions, and emp are precise; separating conjunctions of precise
    assertions are precise; conjunctions with one precise side are
    precise.  Pure assertions and existentials are not (in general).
    """
    if isinstance(assertion, (Emp, SGuardAssert, UGuardAssert)):
        return True
    if isinstance(assertion, PointsTo):
        return True
    if isinstance(assertion, SepConj):
        return is_precise(assertion.left) and is_precise(assertion.right)
    if isinstance(assertion, Conj):
        return is_precise(assertion.left) or is_precise(assertion.right)
    return False


def is_unambiguous(assertion: Assertion, variable: str) -> bool:
    """Sufficient criterion for Def. B.1: the assertion determines
    ``variable`` in any pair of states."""
    if isinstance(assertion, PointsTo):
        value = assertion.value
        if isinstance(value, Var) and value.name == variable:
            return variable not in expr_fv(assertion.address)
        return False
    if isinstance(assertion, BoolAssert):
        expr = assertion.expr
        if isinstance(expr, BinOp) and expr.op == "==":
            left, right = expr.left, expr.right
            if isinstance(left, Var) and left.name == variable:
                return variable not in expr_fv(right)
            if isinstance(right, Var) and right.name == variable:
                return variable not in expr_fv(left)
        return False
    if isinstance(assertion, SGuardAssert):
        # sguard(r, x): the shared guard state pins the multiset, so the
        # assertion determines x in any pair of states (Def. B.1).
        args = assertion.args
        return isinstance(args, Var) and args.name == variable
    if isinstance(assertion, UGuardAssert):
        args = assertion.args
        return isinstance(args, Var) and args.name == variable
    if isinstance(assertion, (SepConj, Conj)):
        return is_unambiguous(assertion.left, variable) or is_unambiguous(assertion.right, variable)
    if isinstance(assertion, Implies):
        return False
    return False


def check_unary_semantically(
    assertion: Assertion,
    states: Iterable[tuple[dict, ExtendedHeap]],
) -> bool:
    """Bounded semantic unarity check (the definition in Sec. 3.4): for all
    state pairs, if each state satisfies P *diagonally*, the pair satisfies
    P.  Used by tests to validate :func:`is_unary` on concrete fragments."""
    states = list(states)
    for (store1, heap1), (store2, heap2) in itertools.product(states, repeat=2):
        diag1 = satisfies(store1, heap1, store1, heap1, assertion)
        diag2 = satisfies(store2, heap2, store2, heap2, assertion)
        if diag1 and diag2:
            if not satisfies(store1, heap1, store2, heap2, assertion):
                return False
    return True
