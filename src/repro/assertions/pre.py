"""The ``PRE`` assertions (Def. 3.2 and Eq. (2)).

``PRE_s(m1, m2)`` for the shared action requires a *bijection* between the
two argument multisets such that every matched pair satisfies the action's
relational precondition.  Def. 3.2 defines this recursively; deciding it
is exactly a perfect-matching problem on the bipartite graph whose edges
are the precondition-satisfying pairs — we solve it with Hopcroft–Karp via
networkx (this is one of the places where our reproduction replaces an
SMT encoding with a polynomial combinatorial algorithm).

``PRE_i(s1, s2)`` for a unique action requires the two argument sequences
to have equal (low) length and to satisfy the precondition *pointwise*.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import networkx as nx

from ..heap.multiset import Multiset
from ..spec.actions import Action


def pre_shared(
    action: Action,
    args1: Multiset,
    args2: Multiset,
) -> bool:
    """``PRE_s``: does a precondition-respecting bijection exist?"""
    matching = find_bijection(action, args1, args2)
    return matching is not None


def find_bijection(
    action: Action,
    args1: Multiset,
    args2: Multiset,
) -> Optional[list[tuple[Any, Any]]]:
    """Return a witness bijection for ``PRE_s``, or None.

    Each side's multiset is expanded into occurrence-indexed nodes; an edge
    joins two occurrences iff ``pre_a`` accepts the pair.  A perfect
    matching is the bijection of Def. 3.2.
    """
    if len(args1) != len(args2):
        return None
    left_nodes = [("L", index, element) for index, element in enumerate(args1.elements())]
    right_nodes = [("R", index, element) for index, element in enumerate(args2.elements())]
    graph = nx.Graph()
    graph.add_nodes_from(left_nodes, bipartite=0)
    graph.add_nodes_from(right_nodes, bipartite=1)
    for left in left_nodes:
        for right in right_nodes:
            if action.precondition(left[2], right[2]):
                graph.add_edge(left, right)
    if not left_nodes:
        return []
    matching = nx.bipartite.maximum_matching(graph, top_nodes=left_nodes)
    pairs = [(left[2], matching[left][2]) for left in left_nodes if left in matching]
    if len(pairs) != len(left_nodes):
        return None
    return pairs


def pre_unique(
    action: Action,
    args1: Sequence[Any],
    args2: Sequence[Any],
) -> bool:
    """``PRE_i`` (Eq. (2)): low length, pointwise precondition."""
    if len(args1) != len(args2):
        return False
    return all(action.precondition(first, second) for first, second in zip(args1, args2))
