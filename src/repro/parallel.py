"""Process-pool fan-out for independent verification obligations.

The verifier discharges many obligations that do not depend on each
other — one spec-validity report per resource, one conformance VC per
atomic block, one candidate per inference step.  This module fans such
task lists out over a :mod:`concurrent.futures` process pool and, for
tasks that touch the SMT validity cache, merges each worker's
fingerprint-keyed cache *delta* back into the parent's store
(:meth:`repro.smt.cache.ValidityCache.merge`), so work done in a worker
warms every later query in the run — and, via ``--cache-dir``, every
later run.

Graceful degradation is the contract: specifications carry arbitrary
Python callables (abstractions, action bodies), and lambdas do not
pickle.  ``parallel_map`` therefore *probes* picklability first and
silently falls back to in-process sequential execution whenever the
tasks (or the pool itself — e.g. a sandbox without working semaphores)
cannot be shipped to workers.  Results are byte-identical either way;
only the wall-clock changes.  Callables must be module-level for the
pool path to engage (pickle ships functions by reference).
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple


def default_jobs() -> int:
    """A sensible worker count for ``--jobs 0`` (all cores)."""
    return max(1, os.cpu_count() or 1)


def _run_task(payload: Tuple[Callable[..., Any], tuple]) -> Tuple[Any, dict]:
    """Worker-side wrapper: run one task, return its result plus the
    validity-cache entries the task produced (the *delta*).

    The delta marker is reset first because a forked worker inherits the
    parent's dirty set and would otherwise re-ship entries the parent
    already has; persistence is enabled so fingerprint keys get computed
    and the delta actually accumulates.
    """
    from .smt.cache import get_default

    fn, args = payload
    cache = get_default()
    cache.reset_delta()
    cache.enable_persistence()
    result = fn(*args)
    return result, cache.export_delta()


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: int = 1,
    chunksize: int = 1,
    fallback_fn: Optional[Callable[[Any], Any]] = None,
) -> List[Any]:
    """``[fn(item) for item in items]``, fanned out over ``jobs`` worker
    processes when possible.

    Order is preserved.  With ``jobs <= 1``, a single item, unpicklable
    tasks, or a pool that fails to start, execution is sequential and
    in-process — running ``fallback_fn`` (default: ``fn``) so callers
    whose pool task relies on worker-process state (e.g. a per-worker
    solver session) can substitute an in-process equivalent.  On the
    pool path, each worker's validity-cache delta is merged back into
    the parent store before returning.
    """
    sequential = fallback_fn if fallback_fn is not None else fn
    if jobs <= 1 or len(items) <= 1:
        return [sequential(item) for item in items]
    payloads = [(fn, (item,)) for item in items]
    try:
        pickle.dumps(payloads)
    except Exception:  # noqa: BLE001 — lambdas/closures: stay in-process
        return [sequential(item) for item in items]
    try:
        import concurrent.futures

        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(jobs, len(items))
        ) as pool:
            outcomes = list(pool.map(_run_task, payloads, chunksize=chunksize))
    except Exception:  # noqa: BLE001 — broken pool/sandbox: fall back
        return [sequential(item) for item in items]

    from .smt.cache import get_default

    cache = get_default()
    for _result, delta in outcomes:
        if delta:
            cache.merge(delta)
    return [result for result, _delta in outcomes]


def first_in_order(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    accept: Callable[[Any], bool],
    jobs: int = 1,
    batch: Optional[int] = None,
) -> Tuple[Optional[int], Optional[Any], int]:
    """Find the first item (in sequence order) whose result satisfies
    ``accept``; returns ``(index, result, evaluated_count)`` or
    ``(None, None, evaluated_count)``.

    Sequentially this is a plain early-exit scan.  With ``jobs > 1``
    items are evaluated in parallel batches; the scan still stops at the
    first accepted *index*, so the winner is identical to the sequential
    one — only the number of evaluated candidates may overshoot by at
    most one batch.  Used by the inference searches, whose contract is
    "the weakest valid candidate in ranked order".
    """
    if jobs <= 1:
        evaluated = 0
        for index, item in enumerate(items):
            evaluated += 1
            result = fn(item)
            if accept(result):
                return index, result, evaluated
        return None, None, evaluated
    width = batch if batch is not None else max(jobs * 2, 4)
    evaluated = 0
    for start in range(0, len(items), width):
        chunk = list(items[start : start + width])
        results = parallel_map(fn, chunk, jobs=jobs)
        evaluated += len(chunk)
        for offset, result in enumerate(results):
            if accept(result):
                return start + offset, result, evaluated
    return None, None, evaluated
