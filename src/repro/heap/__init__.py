"""Extended heaps: fractional permission heaps and action guards (Sec. 3.3)."""

from .extheap import ExtendedHeap
from .guards import (
    GuardFamily,
    SharedGuard,
    UniqueGuard,
    add_shared_guards,
    add_unique_guards,
)
from .multiset import EMPTY_MULTISET, Multiset
from .permheap import FULL, HeapAdditionUndefined, PermissionHeap

__all__ = [
    "EMPTY_MULTISET",
    "ExtendedHeap",
    "FULL",
    "GuardFamily",
    "HeapAdditionUndefined",
    "Multiset",
    "PermissionHeap",
    "SharedGuard",
    "UniqueGuard",
    "add_shared_guards",
    "add_unique_guards",
]
