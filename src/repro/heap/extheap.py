"""Extended heaps ``gh = ⟨ph, gs, Gu⟩`` (Sec. 3.3).

An extended heap bundles a fractional permission heap with the guard
states for the shared action and the family of unique actions.  The logic
(assertions, proof rules, soundness tester) operates on extended heaps;
the operational semantics operates on the *normalization* ``norm(gh)``,
which strips permissions and guards.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Hashable

from .guards import GuardFamily, SharedGuard, UniqueGuard, add_shared_guards
from .multiset import Multiset
from .permheap import FULL, HeapAdditionUndefined, PermissionHeap


class ExtendedHeap:
    """An immutable extended heap ``⟨ph, gs, Gu⟩``.

    ``gs is None`` encodes the ⊥ shared guard state.
    """

    __slots__ = ("perm_heap", "shared_guard", "unique_guards")

    def __init__(
        self,
        perm_heap: PermissionHeap | None = None,
        shared_guard: SharedGuard | None = None,
        unique_guards: GuardFamily | None = None,
    ) -> None:
        self.perm_heap = perm_heap if perm_heap is not None else PermissionHeap.empty()
        self.shared_guard = shared_guard
        self.unique_guards = unique_guards if unique_guards is not None else GuardFamily.bottom()

    @classmethod
    def empty(cls) -> "ExtendedHeap":
        return cls()

    @classmethod
    def from_plain(cls, heap: dict[int, Any]) -> "ExtendedHeap":
        """Lift an ordinary heap to a fully-owned, guard-free extended heap.

        This produces a ``cgh`` in the paper's terminology (Corollary 4.4):
        guard states ⊥, full permission on every location.
        """
        cells = {location: (FULL, value) for location, value in heap.items()}
        return cls(PermissionHeap(cells))

    @classmethod
    def guard_only(
        cls,
        shared_guard: SharedGuard | None = None,
        unique_guards: GuardFamily | None = None,
    ) -> "ExtendedHeap":
        """An extended heap with an empty permission heap (pure guards)."""
        return cls(PermissionHeap.empty(), shared_guard, unique_guards)

    # -- predicates ---------------------------------------------------------

    def is_guard_free(self) -> bool:
        """True iff both guard components are ⊥ (``noguard`` states)."""
        return self.shared_guard is None and self.unique_guards.is_bottom()

    def is_complete(self) -> bool:
        """A ``cgh``: guard-free with full permission everywhere (Cor. 4.4)."""
        return self.is_guard_free() and self.perm_heap.has_full_permissions()

    def has_full_permissions(self) -> bool:
        """An ``fgh``: full permission everywhere, guards arbitrary."""
        return self.perm_heap.has_full_permissions()

    # -- algebra -----------------------------------------------------------

    def add(self, other: "ExtendedHeap") -> "ExtendedHeap":
        """Extended heap addition ``⊕``: componentwise, all must be defined."""
        return ExtendedHeap(
            self.perm_heap.add(other.perm_heap),
            add_shared_guards(self.shared_guard, other.shared_guard),
            self.unique_guards.add(other.unique_guards),
        )

    __add__ = add

    def compatible(self, other: "ExtendedHeap") -> bool:
        try:
            self.add(other)
        except HeapAdditionUndefined:
            return False
        return True

    def normalize(self) -> dict[int, Any]:
        """``norm(gh)``: the ordinary heap underlying this extended heap."""
        return self.perm_heap.normalize()

    # -- guard manipulation --------------------------------------------------

    def with_shared_guard(self, guard: SharedGuard | None) -> "ExtendedHeap":
        return ExtendedHeap(self.perm_heap, guard, self.unique_guards)

    def with_unique_guard(self, index: Hashable, guard: UniqueGuard) -> "ExtendedHeap":
        return ExtendedHeap(self.perm_heap, self.shared_guard, self.unique_guards.with_guard(index, guard))

    def record_shared(self, arg: Any) -> "ExtendedHeap":
        """Record one shared-action execution in the shared guard."""
        if self.shared_guard is None:
            raise HeapAdditionUndefined("no shared guard held")
        return self.with_shared_guard(self.shared_guard.record(arg))

    def record_unique(self, index: Hashable, arg: Any) -> "ExtendedHeap":
        """Record one unique-action execution in guard ``index``."""
        guard = self.unique_guards.get(index)
        if guard is None:
            raise HeapAdditionUndefined(f"unique guard {index!r} not held")
        return self.with_unique_guard(index, guard.record(arg))

    def shared_args(self) -> Multiset | None:
        return self.shared_guard.args if self.shared_guard is not None else None

    def shared_fraction(self) -> Fraction:
        return self.shared_guard.fraction if self.shared_guard is not None else Fraction(0)

    # -- equality -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExtendedHeap):
            return NotImplemented
        return (
            self.perm_heap == other.perm_heap
            and self.shared_guard == other.shared_guard
            and self.unique_guards == other.unique_guards
        )

    def __hash__(self) -> int:
        return hash((self.perm_heap, self.shared_guard, self.unique_guards))

    def __repr__(self) -> str:
        return (
            f"ExtendedHeap(ph={self.perm_heap!r}, gs={self.shared_guard!r}, "
            f"Gu={self.unique_guards!r})"
        )
