"""Guard states for shared and unique actions (Sec. 3.3, App. B.1).

A *guard* is the separation-logic resource that represents the right to
perform an action on the shared resource and records the arguments with
which the action has been performed so far:

* the **shared guard state** ``gs`` is either ``⊥`` (absent) or a pair
  ``⟨r, args⟩`` of a positive fraction ``r ≤ 1`` and a *multiset* of
  arguments.  Fractions can be split among threads; addition takes the
  multiset union of the argument multisets (Eq. (4));

* a **unique guard state** ``gu_i`` is either ``⊥`` or a *sequence* of
  arguments.  Unique guards cannot be split: the sum of two non-⊥ unique
  guard states is undefined (Eq. (3)).

Guard families index the unique guard states by action index ``i``;
addition is pointwise.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Hashable, Mapping

from .multiset import EMPTY_MULTISET, Multiset
from .permheap import FULL, HeapAdditionUndefined


class SharedGuard:
    """A non-⊥ shared guard state ``⟨r, args⟩``.

    ``⊥`` is represented by ``None`` at the use sites (ExtendedHeap).
    """

    __slots__ = ("fraction", "args")

    def __init__(self, fraction: Fraction, args: Multiset = EMPTY_MULTISET) -> None:
        fraction = Fraction(fraction)
        if not 0 < fraction <= FULL:
            raise ValueError(f"shared guard fraction out of (0, 1]: {fraction}")
        self.fraction = fraction
        self.args = args

    def is_complete(self) -> bool:
        """True iff this guard holds the full fraction (r = 1)."""
        return self.fraction == FULL

    def record(self, arg: Any) -> "SharedGuard":
        """Record one execution of the shared action with ``arg``."""
        return SharedGuard(self.fraction, self.args.add(arg))

    def split(self, pieces: int) -> list["SharedGuard"]:
        """Split into ``pieces`` equal fractions, each with an empty multiset
        except the first which keeps the recorded arguments."""
        if pieces < 1:
            raise ValueError("pieces must be >= 1")
        share = self.fraction / pieces
        parts = [SharedGuard(share, self.args)]
        parts.extend(SharedGuard(share) for _ in range(pieces - 1))
        return parts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SharedGuard):
            return NotImplemented
        return self.fraction == other.fraction and self.args == other.args

    def __hash__(self) -> int:
        return hash((self.fraction, self.args))

    def __repr__(self) -> str:
        return f"SharedGuard({self.fraction}, {self.args!r})"


def add_shared_guards(gs1: SharedGuard | None, gs2: SharedGuard | None) -> SharedGuard | None:
    """Shared guard addition ``gs ⊕ gs'`` per Eq. (4); None encodes ⊥."""
    if gs1 is None:
        return gs2
    if gs2 is None:
        return gs1
    total = gs1.fraction + gs2.fraction
    if total > FULL:
        raise HeapAdditionUndefined(f"shared guard fraction overflow: {gs1.fraction} + {gs2.fraction} > 1")
    return SharedGuard(total, gs1.args.union(gs2.args))


class UniqueGuard:
    """A non-⊥ unique guard state: the full sequence of recorded arguments."""

    __slots__ = ("args",)

    def __init__(self, args: tuple = ()) -> None:
        self.args = tuple(args)

    def record(self, arg: Any) -> "UniqueGuard":
        """Append one execution of the unique action (``s ++ [arg]``)."""
        return UniqueGuard(self.args + (arg,))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UniqueGuard):
            return NotImplemented
        return self.args == other.args

    def __hash__(self) -> int:
        return hash(self.args)

    def __repr__(self) -> str:
        return f"UniqueGuard({list(self.args)!r})"


def add_unique_guards(gu1: UniqueGuard | None, gu2: UniqueGuard | None) -> UniqueGuard | None:
    """Unique guard addition per Eq. (3): at most one side may be non-⊥."""
    if gu1 is None:
        return gu2
    if gu2 is None:
        return gu1
    raise HeapAdditionUndefined("two non-⊥ unique guard states cannot be added")


class GuardFamily:
    """A family of unique guard states ``Gu``, indexed by action index.

    Indices absent from the mapping are ``⊥``.  The paper writes ``⊥`` for
    the all-⊥ family and ``[i ↦ gu]`` for a singleton family.
    """

    __slots__ = ("_members",)

    def __init__(self, members: Mapping[Hashable, UniqueGuard] | None = None) -> None:
        self._members = dict(members or {})

    @classmethod
    def bottom(cls) -> "GuardFamily":
        return cls()

    @classmethod
    def singleton(cls, index: Hashable, guard: UniqueGuard) -> "GuardFamily":
        return cls({index: guard})

    def get(self, index: Hashable) -> UniqueGuard | None:
        return self._members.get(index)

    def indices(self) -> frozenset:
        return frozenset(self._members)

    def is_bottom(self) -> bool:
        return not self._members

    def with_guard(self, index: Hashable, guard: UniqueGuard) -> "GuardFamily":
        members = dict(self._members)
        members[index] = guard
        return GuardFamily(members)

    def add(self, other: "GuardFamily") -> "GuardFamily":
        """Pointwise addition; undefined if any index is non-⊥ on both sides."""
        members = dict(self._members)
        for index, guard in other._members.items():
            combined = add_unique_guards(members.get(index), guard)
            if combined is not None:
                members[index] = combined
        return GuardFamily(members)

    __add__ = add

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GuardFamily):
            return NotImplemented
        return self._members == other._members

    def __hash__(self) -> int:
        return hash(frozenset(self._members.items()))

    def __repr__(self) -> str:
        if not self._members:
            return "GuardFamily(⊥)"
        inner = ", ".join(f"{index!r}: {guard!r}" for index, guard in sorted(self._members.items(), key=repr))
        return f"GuardFamily({{{inner}}})"
