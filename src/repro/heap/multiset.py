"""Immutable multisets.

CommCSL tracks the arguments of shared actions in *multisets* (written
``s ∪# {x}#`` in the paper), because the order in which different threads
performed the shared action is scheduler-dependent and therefore unknown.
This module provides a small immutable, hashable multiset with the
operations the logic needs: union (``∪#``), difference (``\\#``),
cardinality, and inclusion.

Elements must be hashable.  Multiplicities are positive integers; an
element with multiplicity zero is simply absent.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping


class Multiset:
    """An immutable multiset over hashable elements.

    >>> m = Multiset([1, 1, 2])
    >>> m.count(1)
    2
    >>> (m + Multiset([1])).count(1)
    3
    >>> list((m - Multiset([1])).elements())
    [1, 2]
    """

    __slots__ = ("_counts", "_hash")

    def __init__(self, items: Iterable[Any] = ()) -> None:
        counts: dict[Any, int] = {}
        for item in items:
            counts[item] = counts.get(item, 0) + 1
        self._counts: dict[Any, int] = counts
        self._hash: int | None = None

    @classmethod
    def from_counts(cls, counts: Mapping[Any, int]) -> "Multiset":
        """Build a multiset from an element->multiplicity mapping.

        Raises ValueError on negative multiplicities; zero entries are
        dropped.
        """
        result = cls()
        cleaned = {}
        for element, count in counts.items():
            if count < 0:
                raise ValueError(f"negative multiplicity for {element!r}: {count}")
            if count > 0:
                cleaned[element] = count
        result._counts = cleaned
        return result

    # -- queries ----------------------------------------------------------

    def count(self, element: Any) -> int:
        """Multiplicity of ``element`` (0 if absent)."""
        return self._counts.get(element, 0)

    def __contains__(self, element: Any) -> bool:
        return element in self._counts

    def __len__(self) -> int:
        """Total cardinality, counting multiplicities."""
        return sum(self._counts.values())

    def __bool__(self) -> bool:
        return bool(self._counts)

    def support(self) -> frozenset:
        """The set of distinct elements."""
        return frozenset(self._counts)

    def elements(self) -> Iterator[Any]:
        """Iterate over elements, each repeated by its multiplicity.

        Iteration order is deterministic (insertion order of the
        underlying dict), which keeps tests and searches reproducible.
        """
        for element, count in self._counts.items():
            for _ in range(count):
                yield element

    def __iter__(self) -> Iterator[Any]:
        return self.elements()

    def items(self) -> Iterator[tuple[Any, int]]:
        """Iterate over (element, multiplicity) pairs."""
        return iter(self._counts.items())

    # -- algebra -----------------------------------------------------------

    def union(self, other: "Multiset") -> "Multiset":
        """Multiset union ``∪#`` (multiplicities add)."""
        counts = dict(self._counts)
        for element, count in other._counts.items():
            counts[element] = counts.get(element, 0) + count
        return Multiset.from_counts(counts)

    __add__ = union

    def difference(self, other: "Multiset") -> "Multiset":
        """Multiset difference ``\\#`` (multiplicities subtract, floor 0)."""
        counts = {}
        for element, count in self._counts.items():
            remaining = count - other.count(element)
            if remaining > 0:
                counts[element] = remaining
        return Multiset.from_counts(counts)

    __sub__ = difference

    def add(self, element: Any, count: int = 1) -> "Multiset":
        """Return a new multiset with ``count`` extra copies of ``element``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        counts = dict(self._counts)
        counts[element] = counts.get(element, 0) + count
        return Multiset.from_counts(counts)

    def remove(self, element: Any, count: int = 1) -> "Multiset":
        """Return a new multiset with ``count`` copies of ``element`` removed.

        Raises KeyError if fewer than ``count`` copies are present.
        """
        have = self.count(element)
        if have < count:
            raise KeyError(f"cannot remove {count} x {element!r}; only {have} present")
        counts = dict(self._counts)
        if have == count:
            del counts[element]
        else:
            counts[element] = have - count
        return Multiset.from_counts(counts)

    def issubset(self, other: "Multiset") -> bool:
        """True iff every multiplicity here is <= the one in ``other``."""
        return all(count <= other.count(element) for element, count in self._counts.items())

    # -- equality / hashing -------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._counts.items()))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(
            repr(element) if count == 1 else f"{element!r} x{count}"
            for element, count in sorted(self._counts.items(), key=repr)
        )
        return f"Multiset({{{inner}}})"


EMPTY_MULTISET = Multiset()
