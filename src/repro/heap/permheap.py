"""Fractional permission heaps (Sec. 3.3 / App. B.1 of the paper).

A permission heap ``ph`` is a partial map from locations (natural numbers)
to pairs ``⟨r, v⟩`` of a positive rational permission amount ``r ≤ 1`` and a
value ``v``.  Holding a fraction ``0 < r < 1`` of a location permits
reading it; only a full permission (``r = 1``) permits writing.

Addition ``ph ⊕ ph'`` (Eq. (5)/(6) in the paper) adds permission amounts
of common locations — defined only when the values agree and the sum does
not exceed 1 — and keeps disjoint locations unchanged.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Iterator, Mapping

FULL = Fraction(1)


class HeapAdditionUndefined(Exception):
    """Raised when ``⊕`` is applied to incompatible heaps/guards."""


class PermissionHeap:
    """An immutable fractional permission heap.

    >>> h = PermissionHeap({1: (Fraction(1, 2), 7)})
    >>> (h + h).permission(1)
    Fraction(1, 1)
    """

    __slots__ = ("_cells",)

    def __init__(self, cells: Mapping[int, tuple[Fraction, Any]] | None = None) -> None:
        normalized: dict[int, tuple[Fraction, Any]] = {}
        for location, (perm, value) in (cells or {}).items():
            perm = Fraction(perm)
            if not 0 < perm <= FULL:
                raise ValueError(f"permission at {location} out of (0, 1]: {perm}")
            normalized[location] = (perm, value)
        self._cells = normalized

    @classmethod
    def empty(cls) -> "PermissionHeap":
        return cls()

    @classmethod
    def singleton(cls, location: int, value: Any, perm: Fraction = FULL) -> "PermissionHeap":
        return cls({location: (Fraction(perm), value)})

    # -- queries ----------------------------------------------------------

    def domain(self) -> frozenset[int]:
        return frozenset(self._cells)

    def __contains__(self, location: int) -> bool:
        return location in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def permission(self, location: int) -> Fraction:
        """Permission amount held at ``location`` (0 if absent)."""
        cell = self._cells.get(location)
        return cell[0] if cell else Fraction(0)

    def value(self, location: int) -> Any:
        """Value stored at ``location``; KeyError if absent."""
        return self._cells[location][1]

    def cells(self) -> Iterator[tuple[int, Fraction, Any]]:
        for location, (perm, value) in self._cells.items():
            yield location, perm, value

    def has_full_permissions(self) -> bool:
        """True iff every location in the domain is held with permission 1."""
        return all(perm == FULL for perm, _ in self._cells.values())

    # -- algebra -----------------------------------------------------------

    def add(self, other: "PermissionHeap") -> "PermissionHeap":
        """Heap addition ``⊕``; raises HeapAdditionUndefined if incompatible."""
        cells = dict(self._cells)
        for location, (perm, value) in other._cells.items():
            if location not in cells:
                cells[location] = (perm, value)
                continue
            own_perm, own_value = cells[location]
            if own_value != value:
                raise HeapAdditionUndefined(
                    f"conflicting values at {location}: {own_value!r} vs {value!r}"
                )
            total = own_perm + perm
            if total > FULL:
                raise HeapAdditionUndefined(
                    f"permission overflow at {location}: {own_perm} + {perm} > 1"
                )
            cells[location] = (total, value)
        return PermissionHeap(cells)

    __add__ = add

    def compatible(self, other: "PermissionHeap") -> bool:
        """True iff ``self ⊕ other`` is defined."""
        try:
            self.add(other)
        except HeapAdditionUndefined:
            return False
        return True

    def update(self, location: int, value: Any) -> "PermissionHeap":
        """Write ``value`` at ``location``; requires full permission."""
        if self.permission(location) != FULL:
            raise PermissionError(f"write to {location} without full permission")
        cells = dict(self._cells)
        cells[location] = (FULL, value)
        return PermissionHeap(cells)

    def allocate(self, location: int, value: Any) -> "PermissionHeap":
        """Add a fresh, fully-owned location."""
        if location in self._cells:
            raise ValueError(f"location {location} already allocated")
        cells = dict(self._cells)
        cells[location] = (FULL, value)
        return PermissionHeap(cells)

    def remove(self, location: int) -> "PermissionHeap":
        """Drop a location entirely from the heap."""
        cells = dict(self._cells)
        del cells[location]
        return PermissionHeap(cells)

    def normalize(self) -> dict[int, Any]:
        """Strip permissions: the ordinary heap of Sec. 3.3 (``norm``)."""
        return {location: value for location, (_, value) in self._cells.items()}

    # -- equality -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PermissionHeap):
            return NotImplemented
        return self._cells == other._cells

    def __hash__(self) -> int:
        return hash(frozenset(self._cells.items()))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{location}: ({perm}, {value!r})" for location, (perm, value) in sorted(self._cells.items())
        )
        return f"PermissionHeap({{{inner}}})"
