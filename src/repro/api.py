"""The stable public surface of the reproduction — ``repro.api``.

Everything a caller needs to drive verification programmatically goes
through this module: the CLI subcommands, the verification daemon
(:mod:`repro.server`), its client (:mod:`repro.client`) and the parallel
workers all route through the same typed request/verdict types, so the
wire schema, the in-process API and the command line cannot drift apart.

The three layers:

* **Requests** — :class:`VerificationRequest` names one unit of work: a
  case study by name, a raw program + resource declarations (resources
  reference the spec catalogue of :mod:`repro.spec.library` by name, so
  requests stay JSON-serializable), or a raw SMT validity query over the
  wire term codec (:func:`term_to_wire` / :func:`term_from_wire`).
  ``to_wire()``/``from_wire()`` round-trip every request through plain
  JSON types — the daemon's JSON-line framing is exactly this mapping.
* **Verdicts** — :class:`Verdict` is the typed result of one request and
  :class:`BatchReport` of a batch; ``Verdict.observable()`` is the
  canonical comparison surface the differential harness pins against
  fresh in-process :func:`repro.verifier.frontend.verify` runs.
* **Execution** — :func:`execute` / :func:`verify_batch` run requests in
  process (optionally on a caller-owned warm
  :class:`~repro.smt.session.SolverSession`), and :func:`open_cache`
  scopes an *explicit* persistent-cache handle: the cache is constructed
  and passed through this facade rather than reached through the
  deprecated ``repro.smt.cache.GLOBAL`` singleton.

The engine entry points (``repro.verifier.frontend.verify``,
``verify_threaded``, ``CaseStudy.verify``) remain supported — this
module wraps them rather than replacing them — but new integrations
should not reach around the facade: only the surface here is covered by
the wire-compatibility tests.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Sequence, Tuple

from .analysis.diagnostics import Diagnostic
from .smt.cache import ValidityCache, using_cache
from .smt.session import SolverSession
from .smt.sorts import BOOL, INT, Sort
from .smt.terms import App, Const, SymVar, Term

#: File name used inside a ``--cache-dir`` (shared with the CLI).
CACHE_FILENAME = "validity_cache.json"

# -- Wire events of the service protocol (repro.server ↔ repro.client) ------
#: Per-request terminal events inside a batch stream.  ``verdict`` and
#: ``worker_crash`` carry an ``attempts`` counter (how many worker
#: executions the request consumed — 2 after one transparent crash
#: retry); ``retry_after`` carries the suggested delay in seconds and
#: marks a *shed* request the client may safely resubmit (batch
#: requests are idempotent: verdicts are deterministic and cache-keyed).
EVENT_VERDICT = "verdict"
EVENT_REJECTED = "rejected"
EVENT_TIMEOUT = "timeout"
EVENT_RETRY_AFTER = "retry_after"
EVENT_WORKER_CRASH = "worker_crash"
EVENT_ERROR = "error"
#: Stream/connection-level events.
EVENT_ACCEPTED = "accepted"
EVENT_DONE = "done"
EVENT_PONG = "pong"
EVENT_STATS = "stats"
EVENT_TENANT = "tenant"
EVENT_BYE = "bye"
#: Response to a ``lint`` op: structured diagnostics, no verification.
EVENT_LINT = "lint"

#: Every event kind the daemon can emit — the client treats anything
#: outside this set as a protocol error.
WIRE_EVENTS = frozenset(
    {
        EVENT_VERDICT,
        EVENT_REJECTED,
        EVENT_TIMEOUT,
        EVENT_RETRY_AFTER,
        EVENT_WORKER_CRASH,
        EVENT_ERROR,
        EVENT_ACCEPTED,
        EVENT_DONE,
        EVENT_PONG,
        EVENT_STATS,
        EVENT_TENANT,
        EVENT_BYE,
        EVENT_LINT,
    }
)

#: The per-request events that *decide* a request: once one of these
#: arrives for an index, the daemon will not send another event for it
#: in this stream.  (``retry_after`` is deliberately excluded — a shed
#: request is undecided and is what the client's retry loop replays.)
DECIDED_EVENTS = frozenset(
    {EVENT_VERDICT, EVENT_REJECTED, EVENT_TIMEOUT, EVENT_WORKER_CRASH, EVENT_ERROR}
)


class RequestError(ValueError):
    """A malformed or unsatisfiable verification request."""


# ---------------------------------------------------------------------------
# Wire codec for SMT terms (the raw-validity request surface)
# ---------------------------------------------------------------------------

_WIRE_SORTS: Dict[str, Sort] = {"int": INT, "bool": BOOL}
_SORT_NAMES = {id(INT): "int", id(BOOL): "bool"}


def sort_from_wire(name: str) -> Sort:
    """Resolve a wire sort name (``"int"``/``"bool"``) to a sort."""
    try:
        return _WIRE_SORTS[name]
    except KeyError:
        raise RequestError(f"unknown wire sort {name!r} (expected one of {sorted(_WIRE_SORTS)})")


def term_to_wire(term: Term) -> Any:
    """A JSON-safe encoding of a ground int/bool term.

    Applications become ``["app", op, [args...]]``, variables
    ``["var", name, sort]`` and constants ``["const", value]``.  Terms
    whose constants are not JSON scalars, or whose variables carry sorts
    outside the int/bool wire fragment, are rejected — the daemon's raw
    validity surface covers exactly the fragment its clients can name.
    """
    if isinstance(term, App):
        return ["app", term.op, [term_to_wire(arg) for arg in term.args]]
    if isinstance(term, SymVar):
        sort_name = _SORT_NAMES.get(id(term.sort))
        if sort_name is None:
            sort_name = {"Int": "int", "Bool": "bool"}.get(str(term.sort))
        if sort_name is None:
            raise RequestError(f"variable {term.name!r} has non-wire sort {term.sort}")
        return ["var", term.name, sort_name]
    if isinstance(term, Const):
        if not isinstance(term.value, (bool, int, str, type(None))):
            raise RequestError(f"constant {term.value!r} is not wire-serializable")
        return ["const", term.value]
    raise RequestError(f"cannot serialize term node {term!r}")


def term_from_wire(obj: Any) -> Term:
    """Rebuild a term from :func:`term_to_wire` output (hash-consed, so
    structurally equal wire terms decode to the identical object)."""
    if not isinstance(obj, (list, tuple)) or not obj:
        raise RequestError(f"malformed wire term {obj!r}")
    kind = obj[0]
    if kind == "app" and len(obj) == 3:
        op, args = obj[1], obj[2]
        if not isinstance(op, str) or not isinstance(args, (list, tuple)):
            raise RequestError(f"malformed wire application {obj!r}")
        return App(op, tuple(term_from_wire(arg) for arg in args))
    if kind == "var" and len(obj) == 3:
        name, sort_name = obj[1], obj[2]
        if not isinstance(name, str):
            raise RequestError(f"malformed wire variable {obj!r}")
        return SymVar(name, sort_from_wire(sort_name))
    if kind == "const" and len(obj) == 2:
        return Const(obj[1])
    raise RequestError(f"malformed wire term {obj!r}")


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------


def _spec_registry() -> Dict[str, Any]:
    from .spec.library import INVALID_SPECS, VALID_SPECS

    registry: Dict[str, Any] = {}
    registry.update(VALID_SPECS)
    registry.update(INVALID_SPECS)
    return registry


@dataclass(frozen=True)
class ResourceRequest:
    """One resource declaration of a raw-program request.

    ``spec`` names an entry of the specification catalogue
    (:data:`repro.spec.library.VALID_SPECS` /
    :data:`~repro.spec.library.INVALID_SPECS`); the callables live in
    the catalogue, so the request itself stays JSON-serializable.
    """

    name: str
    spec: str
    location_var: str
    low_views: Tuple[str, ...] = ()

    def build(self) -> "ResourceDecl":
        from .verifier.declarations import ResourceDecl

        registry = _spec_registry()
        factory = registry.get(self.spec)
        if factory is None:
            raise RequestError(
                f"resource {self.name!r}: unknown spec {self.spec!r} "
                f"(catalogue: {sorted(registry)})"
            )
        return ResourceDecl(
            name=self.name,
            spec=factory(),
            location_var=self.location_var,
            low_views=tuple(self.low_views),
        )

    def to_wire(self) -> dict:
        return {
            "name": self.name,
            "spec": self.spec,
            "location_var": self.location_var,
            "low_views": list(self.low_views),
        }

    @classmethod
    def from_wire(cls, obj: Mapping[str, Any]) -> "ResourceRequest":
        try:
            return cls(
                name=str(obj["name"]),
                spec=str(obj["spec"]),
                location_var=str(obj["location_var"]),
                low_views=tuple(str(v) for v in obj.get("low_views", ())),
            )
        except (KeyError, TypeError) as error:
            raise RequestError(f"malformed resource request {obj!r}: {error}")


#: Instance groups: ((low-inputs, (high-variant, ...)), ...) — the
#: JSON-able shape of :func:`repro.casestudies.base.make_instance_groups`.
InstanceGroups = Tuple[Tuple[dict, Tuple[dict, ...]], ...]


@dataclass(frozen=True)
class VerificationRequest:
    """One verification obligation, in one of three shapes.

    * ``case`` — a case study by name (the corpus of
      :mod:`repro.casestudies`); everything else is taken from the
      catalogue entry.
    * ``program`` — raw program source plus :class:`ResourceRequest`
      declarations and input labellings; ``instances`` optionally
      supplies bounded instance groups for retroactive obligations.
    * ``formula`` — a raw SMT validity query (wire-encoded term), with
      optional per-variable ``sorts`` overrides (wire sort names); the
      daemon additionally folds the tenant's sort overrides under these.
    """

    case: Optional[str] = None
    program: Optional[str] = None
    formula: Optional[Any] = None
    name: Optional[str] = None
    resources: Tuple[ResourceRequest, ...] = ()
    low_inputs: frozenset = frozenset()
    high_inputs: frozenset = frozenset()
    instances: Optional[InstanceGroups] = None
    sorts: Optional[Tuple[Tuple[str, str], ...]] = None
    conformance_mode: str = "auto"
    exhaustive: bool = False
    #: Run the static pre-verification fast path (repro.analysis); on by
    #: default.  The prepass only ever accepts, so this flag trades
    #: wall-clock time, never verdicts.
    static_prepass: bool = True

    @property
    def kind(self) -> str:
        if self.case is not None:
            return "case"
        if self.program is not None:
            return "program"
        if self.formula is not None:
            return "formula"
        return "empty"

    def label(self) -> str:
        """The display name verdicts are reported under."""
        if self.case is not None:
            return self.case
        if self.name:
            return self.name
        return self.kind

    def validate(self) -> None:
        populated = [
            f for f in ("case", "program", "formula") if getattr(self, f) is not None
        ]
        if len(populated) != 1:
            raise RequestError(
                f"a request must set exactly one of case/program/formula, got {populated or 'none'}"
            )
        if self.conformance_mode not in ("auto", "symbolic", "sampling"):
            raise RequestError(f"unknown conformance_mode {self.conformance_mode!r}")
        if self.formula is not None and self.sorts is not None:
            for _var, sort_name in self.sorts:
                sort_from_wire(sort_name)

    # -- construction of the engine inputs --------------------------------

    def build_program_spec(self) -> Tuple["ProgramSpec", Optional[Any]]:
        """The (program spec, bounded-instance generator) pair this
        request verifies; raises :class:`RequestError` on bad input."""
        self.validate()
        if self.case is not None:
            from .casestudies import case_by_name

            try:
                case = case_by_name(self.case)
            except KeyError as error:
                raise RequestError(str(error))
            return case.program_spec(), case.instances
        if self.program is None:
            raise RequestError(f"request {self.label()!r} carries no program")
        from .casestudies.base import make_instance_groups
        from .lang.parser import ParseError, parse_program
        from .verifier.declarations import ProgramSpec

        try:
            program = parse_program(self.program)
        except ParseError as error:
            raise RequestError(f"program does not parse: {error}")
        except Exception as error:  # noqa: BLE001 — parser errors vary
            raise RequestError(f"program does not parse: {error}")
        spec = ProgramSpec(
            name=self.name or "program",
            program=program,
            resources=tuple(resource.build() for resource in self.resources),
            low_inputs=frozenset(self.low_inputs),
            high_inputs=frozenset(self.high_inputs),
        )
        generator = None
        if self.instances is not None:
            generator = make_instance_groups(
                [(dict(low), tuple(dict(v) for v in variants)) for low, variants in self.instances]
            )
        return spec, generator

    def build_sorts(self) -> Optional[Dict[str, Sort]]:
        if self.sorts is None:
            return None
        return {var: sort_from_wire(name) for var, name in self.sorts}

    # -- wire -------------------------------------------------------------

    def to_wire(self) -> dict:
        obj: Dict[str, Any] = {}
        if self.case is not None:
            obj["case"] = self.case
        if self.program is not None:
            obj["program"] = self.program
        if self.formula is not None:
            obj["formula"] = self.formula
        if self.name is not None:
            obj["name"] = self.name
        if self.resources:
            obj["resources"] = [resource.to_wire() for resource in self.resources]
        if self.low_inputs:
            obj["low_inputs"] = sorted(self.low_inputs)
        if self.high_inputs:
            obj["high_inputs"] = sorted(self.high_inputs)
        if self.instances is not None:
            obj["instances"] = [
                [dict(low), [dict(v) for v in variants]] for low, variants in self.instances
            ]
        if self.sorts is not None:
            obj["sorts"] = {var: name for var, name in self.sorts}
        if self.conformance_mode != "auto":
            obj["conformance_mode"] = self.conformance_mode
        if self.exhaustive:
            obj["exhaustive"] = True
        if not self.static_prepass:
            obj["static_prepass"] = False
        return obj

    @classmethod
    def from_wire(cls, obj: Mapping[str, Any]) -> "VerificationRequest":
        if not isinstance(obj, Mapping):
            raise RequestError(f"a request must be a JSON object, got {obj!r}")
        instances = obj.get("instances")
        if instances is not None:
            try:
                instances = tuple(
                    (dict(low), tuple(dict(v) for v in variants))
                    for low, variants in instances
                )
            except (TypeError, ValueError) as error:
                raise RequestError(f"malformed instances: {error}")
        sorts = obj.get("sorts")
        if sorts is not None:
            if not isinstance(sorts, Mapping):
                raise RequestError(f"malformed sorts {sorts!r}")
            sorts = tuple(sorted((str(k), str(v)) for k, v in sorts.items()))
        request = cls(
            case=obj.get("case"),
            program=obj.get("program"),
            formula=obj.get("formula"),
            name=obj.get("name"),
            resources=tuple(
                ResourceRequest.from_wire(r) for r in obj.get("resources", ())
            ),
            low_inputs=frozenset(obj.get("low_inputs", ())),
            high_inputs=frozenset(obj.get("high_inputs", ())),
            instances=instances,
            sorts=sorts,
            conformance_mode=obj.get("conformance_mode", "auto"),
            exhaustive=bool(obj.get("exhaustive", False)),
            static_prepass=bool(obj.get("static_prepass", True)),
        )
        request.validate()
        return request


def estimate_vc_count(request: VerificationRequest) -> int:
    """A cheap upper-bound estimate of the solver obligations one
    request will discharge — the admission-control currency.

    Counts one obligation per declared resource (Def. 3.1 validity) plus
    one per ``atomic`` block of the program (conformance); a raw formula
    is one obligation.  Purely syntactic: no analysis runs, so admission
    control can reject before any expensive work starts.
    """
    request.validate()
    if request.formula is not None:
        return 1
    spec, _instances = request.build_program_spec()
    from .lang.ast import Atomic, Node

    atomics = 0
    stack = [spec.program]
    seen: set = set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, Atomic):
            atomics += 1
        for value in vars(node).values():
            if isinstance(value, Node):
                stack.append(value)
            elif isinstance(value, (tuple, list)):
                stack.extend(v for v in value if isinstance(v, Node))
    return len(spec.resources) + atomics


# ---------------------------------------------------------------------------
# Verdicts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Verdict:
    """The typed outcome of one request.

    For case/program requests this mirrors the observable surface of a
    :class:`~repro.verifier.frontend.VerificationResult`; for formula
    requests ``solver_verdict``/``model`` carry the SMT answer and
    ``verified`` means PROVED.  ``expected`` is the catalogue's expected
    outcome when known (case requests), so clients can flag unexpected
    verdicts without holding the corpus themselves.
    """

    name: str
    verified: bool
    errors: Tuple[str, ...] = ()
    expected: Optional[bool] = None
    elapsed: float = 0.0
    symbolic_conformance: Tuple[Tuple[str, str], ...] = ()
    #: (resource name, valid, checks performed) per declared resource.
    validity: Tuple[Tuple[str, bool, int], ...] = ()
    #: Human-readable sampling conformance reports (stage 3 fallback).
    conformance: Tuple[str, ...] = ()
    #: Human-readable retroactive obligations (stage 4).
    obligations: Tuple[str, ...] = ()
    solver_verdict: Optional[str] = None
    model: Optional[dict] = None
    from_cache: bool = False
    #: ``"secure"`` when the static prepass decided the request (stages
    #: 3–4 skipped), ``"unknown"`` when it ran undecided, ``None`` when
    #: off or inapplicable.  Deliberately *not* part of ``observable()``:
    #: the fast path changes how a verdict is reached, never the verdict.
    prepass: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the verdict matches expectation (or none is known
        and the program verified)."""
        if self.expected is None:
            return self.verified
        return self.verified == self.expected

    def observable(self) -> tuple:
        """The canonical comparison surface for differential tests —
        everything except timings and cache provenance."""
        return (
            self.name,
            self.verified,
            self.errors,
            tuple(sorted(self.symbolic_conformance)),
            tuple(sorted(self.validity)),
            self.solver_verdict,
        )

    def to_wire(self) -> dict:
        obj: Dict[str, Any] = {
            "name": self.name,
            "verified": self.verified,
            "errors": list(self.errors),
            "elapsed": self.elapsed,
        }
        if self.expected is not None:
            obj["expected"] = self.expected
        if self.symbolic_conformance:
            obj["symbolic_conformance"] = [list(pair) for pair in self.symbolic_conformance]
        if self.validity:
            obj["validity"] = {
                name: [valid, checks] for name, valid, checks in self.validity
            }
        if self.conformance:
            obj["conformance"] = list(self.conformance)
        if self.obligations:
            obj["obligations"] = list(self.obligations)
        if self.solver_verdict is not None:
            obj["solver_verdict"] = self.solver_verdict
        if self.model is not None:
            obj["model"] = dict(self.model)
        if self.from_cache:
            obj["from_cache"] = True
        if self.prepass is not None:
            obj["prepass"] = self.prepass
        return obj

    @classmethod
    def from_wire(cls, obj: Mapping[str, Any]) -> "Verdict":
        try:
            return cls(
                name=str(obj["name"]),
                verified=bool(obj["verified"]),
                errors=tuple(str(e) for e in obj.get("errors", ())),
                expected=obj.get("expected"),
                elapsed=float(obj.get("elapsed", 0.0)),
                symbolic_conformance=tuple(
                    (str(a), str(b)) for a, b in obj.get("symbolic_conformance", ())
                ),
                validity=tuple(
                    sorted(
                        (str(k), bool(v[0]), int(v[1]))
                        for k, v in obj.get("validity", {}).items()
                    )
                ),
                conformance=tuple(str(c) for c in obj.get("conformance", ())),
                obligations=tuple(str(o) for o in obj.get("obligations", ())),
                solver_verdict=obj.get("solver_verdict"),
                model=dict(obj["model"]) if obj.get("model") is not None else None,
                from_cache=bool(obj.get("from_cache", False)),
                prepass=obj.get("prepass"),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise RequestError(f"malformed verdict {obj!r}: {error}")


@dataclass(frozen=True)
class BatchReport:
    """The outcome of a batch: per-request verdicts plus served stats."""

    verdicts: Tuple[Verdict, ...]
    elapsed: float = 0.0
    stats: Mapping[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(verdict.ok for verdict in self.verdicts)

    def to_wire(self) -> dict:
        return {
            "verdicts": [verdict.to_wire() for verdict in self.verdicts],
            "elapsed": self.elapsed,
            "stats": dict(self.stats),
        }

    @classmethod
    def from_wire(cls, obj: Mapping[str, Any]) -> "BatchReport":
        return cls(
            verdicts=tuple(Verdict.from_wire(v) for v in obj.get("verdicts", ())),
            elapsed=float(obj.get("elapsed", 0.0)),
            stats=dict(obj.get("stats", {})),
        )


def verdict_from_result(
    result: "VerificationResult",
    expected: Optional[bool] = None,
    elapsed: float = 0.0,
) -> Verdict:
    """Wrap an engine :class:`~repro.verifier.frontend.VerificationResult`."""
    return Verdict(
        name=result.name,
        verified=result.verified,
        errors=tuple(result.errors),
        expected=expected,
        elapsed=elapsed,
        symbolic_conformance=tuple(result.symbolic_conformance),
        validity=tuple(
            sorted(
                (name, report.valid, report.checks_performed)
                for name, report in result.validity_reports.items()
            )
        ),
        conformance=tuple(str(report) for report in result.conformance_reports),
        obligations=tuple(str(obligation) for obligation in result.obligations),
        prepass=None if result.prepass is None else result.prepass.verdict,
    )


# ---------------------------------------------------------------------------
# Static pre-verification (typed wire form)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StaticVerdict:
    """The wire form of a static pre-verification outcome.

    ``secure`` is a sound acceptance (the daemon may admit the request
    past VC-budget control: it will never touch the solver); ``unknown``
    carries the bail-out reasons and any diagnostics the analyses found.
    """

    name: str
    verdict: str  # 'secure' | 'unknown'
    reasons: Tuple[str, ...] = ()
    diagnostics: Tuple["Diagnostic", ...] = ()

    @property
    def secure(self) -> bool:
        return self.verdict == "secure"

    def to_wire(self) -> dict:
        obj: Dict[str, Any] = {"name": self.name, "verdict": self.verdict}
        if self.reasons:
            obj["reasons"] = list(self.reasons)
        if self.diagnostics:
            obj["diagnostics"] = [diagnostic.to_wire() for diagnostic in self.diagnostics]
        return obj

    @classmethod
    def from_wire(cls, obj: Mapping[str, Any]) -> "StaticVerdict":
        try:
            return cls(
                name=str(obj["name"]),
                verdict=str(obj["verdict"]),
                reasons=tuple(str(r) for r in obj.get("reasons", ())),
                diagnostics=tuple(
                    Diagnostic.from_wire(d) for d in obj.get("diagnostics", ())
                ),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise RequestError(f"malformed static verdict {obj!r}: {error}")


def static_verdict(request: VerificationRequest) -> StaticVerdict:
    """Run the static prepass for one request without verifying it.

    Formula requests are always ``unknown`` (they carry no program);
    malformed requests raise :class:`RequestError` like :func:`execute`.
    """
    request.validate()
    if request.formula is not None:
        return StaticVerdict(
            name=request.label(),
            verdict="unknown",
            reasons=("raw validity queries have no program to analyze",),
        )
    from .analysis.prepass import run_prepass

    spec, _instances = request.build_program_spec()
    report = run_prepass(spec)
    return StaticVerdict(
        name=request.label(),
        verdict=report.verdict,
        reasons=report.reasons,
        diagnostics=report.diagnostics,
    )


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def execute(
    request: VerificationRequest,
    *,
    session: Optional[SolverSession] = None,
    jobs: int = 1,
    sorts: Optional[Mapping[str, Sort]] = None,
    cache: Optional[ValidityCache] = None,
) -> Verdict:
    """Run one request in-process and return its typed verdict.

    ``session`` reuses a caller-owned warm solver session (the daemon's
    per-tenant pooled session); ``sorts`` folds extra per-variable sort
    overrides *under* the request's own (formula requests only — the
    daemon passes the tenant's overrides here); ``cache`` scopes an
    explicit validity-cache handle for the duration of the call.
    """
    request.validate()
    start = time.perf_counter()

    def _run() -> Verdict:
        if request.formula is not None:
            from .smt.solver import Verdict as SolverVerdict, check_validity

            formula = term_from_wire(request.formula)
            merged: Optional[Dict[str, Sort]] = None
            if sorts or request.sorts:
                merged = dict(sorts or {})
                merged.update(request.build_sorts() or {})
            result = check_validity(
                formula,
                sorts=merged,
                exhaustive=request.exhaustive,
                session=session,
            )
            return Verdict(
                name=request.label(),
                verified=result.verdict is SolverVerdict.PROVED,
                elapsed=time.perf_counter() - start,
                solver_verdict=result.verdict.value,
                model=dict(result.model) if result.model is not None else None,
                from_cache=result.from_cache,
            )
        from .verifier.frontend import verify

        spec, instances = request.build_program_spec()
        expected = None
        if request.case is not None:
            from .casestudies import case_by_name

            expected = case_by_name(request.case).expected_verified
        result = verify(
            spec,
            bounded_instances=instances,
            exhaustive_discharge=request.exhaustive,
            conformance_mode=request.conformance_mode,
            jobs=jobs,
            session=session,
            static_prepass=request.static_prepass,
        )
        return verdict_from_result(
            result, expected=expected, elapsed=time.perf_counter() - start
        )

    if cache is not None:
        with using_cache(cache):
            return _run()
    return _run()


def verify_batch(
    requests: Sequence[VerificationRequest],
    *,
    session: Optional[SolverSession] = None,
    jobs: int = 1,
    cache: Optional[ValidityCache] = None,
) -> BatchReport:
    """Run a batch of requests on one shared session, in order.

    All compatible obligations of the batch land on the same
    incremental sub-sessions (one per fragment), so later requests reuse
    earlier requests' learned clauses and Tseitin definitions — the
    in-process equivalent of what the daemon does per tenant.
    """
    start = time.perf_counter()
    shared = session if session is not None else SolverSession()
    verdicts = tuple(
        execute(request, session=shared, jobs=jobs, cache=cache)
        for request in requests
    )
    elapsed = time.perf_counter() - start
    return BatchReport(
        verdicts=verdicts,
        elapsed=elapsed,
        stats={"session": shared.stats()},
    )


# ---------------------------------------------------------------------------
# Explicit cache handles
# ---------------------------------------------------------------------------


@dataclass
class CacheHandle:
    """An explicit validity-cache handle: the cache object plus where
    (if anywhere) it persists.  Constructed by :func:`open_cache`."""

    cache: ValidityCache
    path: Optional[Path] = None

    def stats(self) -> Dict[str, int]:
        return self.cache.stats()

    def save(self) -> int:
        """Flush to disk now (also done automatically on context exit)."""
        if self.path is None:
            return 0
        return self.cache.save(self.path)


@contextmanager
def open_cache(
    cache_dir: Optional[Any] = None,
    namespace: str = "",
    cache: Optional[ValidityCache] = None,
) -> Iterator[CacheHandle]:
    """Construct (or wrap) a validity cache, install it as the scoped
    default, and persist it on exit.

    This is the replacement for reaching into the
    ``repro.smt.cache.GLOBAL`` singleton: the handle is explicit, the
    installation is scoped (the previous default is restored on exit),
    and tenancy is a constructor argument rather than hidden state::

        with open_cache(".vcache", namespace="tenant-a") as handle:
            report = verify_batch(requests)
        print(handle.stats())

    ``cache_dir`` of ``None`` keeps the cache purely in-memory (no
    persistence activation); passing an existing ``cache`` reuses it
    instead of constructing a fresh one.
    """
    handle_cache = cache if cache is not None else ValidityCache()
    if namespace:
        handle_cache.set_namespace(namespace)
    path: Optional[Path] = None
    if cache_dir is not None:
        directory = Path(cache_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / CACHE_FILENAME
        handle_cache.load(path)
    handle = CacheHandle(cache=handle_cache, path=path)
    with using_cache(handle_cache):
        yield handle
    if path is not None:
        handle_cache.save(path)


__all__ = [
    "BatchReport",
    "CacheHandle",
    "CACHE_FILENAME",
    "DECIDED_EVENTS",
    "Diagnostic",
    "EVENT_ACCEPTED",
    "EVENT_BYE",
    "EVENT_DONE",
    "EVENT_ERROR",
    "EVENT_LINT",
    "EVENT_PONG",
    "EVENT_REJECTED",
    "EVENT_RETRY_AFTER",
    "EVENT_STATS",
    "EVENT_TENANT",
    "EVENT_TIMEOUT",
    "EVENT_VERDICT",
    "EVENT_WORKER_CRASH",
    "WIRE_EVENTS",
    "InstanceGroups",
    "RequestError",
    "ResourceRequest",
    "StaticVerdict",
    "Verdict",
    "VerificationRequest",
    "estimate_vc_count",
    "execute",
    "open_cache",
    "sort_from_wire",
    "static_verdict",
    "term_from_wire",
    "term_to_wire",
    "verdict_from_result",
    "verify_batch",
]
