"""Cross-call validity cache, with an optional persistent on-disk layer.

:mod:`repro.verifier.vcgen` and :mod:`repro.spec.inference` re-discharge
many *syntactically identical* verification conditions — the same atomic
block is checked under every proof outline, the same commutativity
obligation under every candidate abstraction.  With hash-consed terms a
formula is one canonical object, so a validity query can be cached under
the key

    (interned formula, scope, sorts fingerprint, exhaustive, use_sat)

with O(1) hashing.  ``Scope`` is a frozen dataclass and sort objects are
frozen dataclasses too, so the key is deeply hashable whenever the
query's sort domains are; queries with unhashable domain values simply
bypass the cache (``make_key`` returns None).

Only decisive verdicts (PROVED / REFUTED / BOUNDED) are stored:
UNKNOWN means the evaluator lacked an operation, and operations may be
registered later (:data:`repro.smt.terms.OPERATIONS` grows as resource
actions are declared), which would make a cached UNKNOWN stale.

**Persistence.**  The in-memory key above is identity-based (it holds
interned term objects), so it cannot outlive the process.  The
persistent layer instead keys entries by a *stable fingerprint*
(:func:`term_fingerprint`): a blake2 digest computed structurally over
the hash-consed DAG, independent of intern-table insertion order, of
Python hash randomization, and of the process that produced it.  The
layer is opt-in (:meth:`ValidityCache.enable_persistence`, or implied by
:meth:`~ValidityCache.load`); once active, decisive results whose models
survive a JSON round-trip are mirrored into it, ``load``/``save`` move
it to disk (merge-on-save, so concurrent runs union their entries), and
``export_delta``/``merge`` ship a worker process's new entries back to
the parent store after parallel VC discharge.  Persistent-layer hits are
counted separately from in-memory hits (``persistent_hits``), and
:meth:`~ValidityCache.clear` — which :func:`repro.smt.intern.
clear_all_caches` invokes — drops only the in-memory layer, never the
persistent mirror or the on-disk store.

**Multi-tenancy.**  A cache can be *namespaced*
(:meth:`ValidityCache.set_namespace`, or scoped with
:meth:`~ValidityCache.namespaced`): while a namespace is active, both
the in-memory key and the fingerprint key are qualified by it, so two
tenants sharing one cache (the verification daemon's situation) never
serve each other's entries — and an empty namespace (the default)
leaves every key byte-identical to the pre-namespace format, so
existing on-disk stores stay valid.

Hit/miss counters are surfaced on every :class:`repro.smt.solver.Result`
via its ``cache_hits``/``cache_misses`` fields.  The process-default
cache is reachable via :func:`get_default` and replaceable via
:func:`set_default` / the :func:`using_cache` context manager — the
handle-passing surface of :mod:`repro.api`.  The historical module
attribute ``GLOBAL`` still resolves to the seed instance, but its use
is deprecated (access emits a :class:`DeprecationWarning`).
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import logging
import os
import warnings
from typing import Any, Dict, Hashable, Iterator, Mapping, Optional, Tuple

from .intern import register_cache
from .sorts import Scope, Sort
from .terms import App, Const, SymVar, Term

#: Private miss sentinel — ``None`` is a storable value, not a miss marker.
_MISSING = object()

_LOG = logging.getLogger(__name__)


def _read_store(path: Any) -> Optional[Dict[str, dict]]:
    """Read an on-disk store's well-formed entries; ``None`` when the
    file is absent or unusable.  A truncated or corrupt shard — e.g.
    left by a worker killed mid-save on a pre-atomic store — is logged
    and treated as cold, never raised: a cache must only ever cost a
    re-solve, not a crash.  The catch is deliberately broad:
    ``json.JSONDecodeError`` covers torn JSON, ``UnicodeDecodeError``
    (both are ``ValueError`` s) covers binary garbage, ``OSError``
    covers permissions/IO."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        return None
    except (ValueError, OSError) as error:
        _LOG.warning(
            "validity cache shard %s is unreadable (%s: %s); starting cold",
            path,
            type(error).__name__,
            error,
        )
        return None
    entries = data.get("entries") if isinstance(data, dict) else None
    if not isinstance(entries, dict):
        _LOG.warning(
            "validity cache shard %s has no well-formed entries; starting cold",
            path,
        )
        return None
    return {
        key: entry
        for key, entry in entries.items()
        if isinstance(key, str) and isinstance(entry, dict)
    }


def make_key(
    formula: Term,
    scope: Scope,
    sorts: Optional[Mapping[str, Sort]],
    exhaustive: bool,
    use_sat: bool,
) -> Optional[Hashable]:
    """A hashable cache key for a validity query, or None if the query
    involves unhashable data (in which case caching is skipped)."""
    try:
        fingerprint: Tuple = (
            formula,
            scope,
            tuple(sorted((sorts or {}).items())),
            exhaustive,
            use_sat,
        )
        hash(fingerprint)
    except TypeError:
        return None
    return fingerprint


# ---------------------------------------------------------------------------
# Stable fingerprints
# ---------------------------------------------------------------------------


def _digest(*parts: str) -> str:
    blake = hashlib.blake2b(digest_size=16)
    for part in parts:
        blake.update(part.encode("utf-8", "backslashreplace"))
        blake.update(b"\x1f")
    return blake.hexdigest()


def _canon(value: Any) -> str:
    """A deterministic textual encoding of auxiliary payloads (constant
    values, sorts, scopes).  Container order is canonicalized; dataclass
    instances encode by class name + field values, so two processes (or
    two intern tables) produce identical encodings for structurally
    equal data."""
    if value is None:
        return "n"
    if isinstance(value, (bool, int, float)):
        # Python's ``==`` conflates True/1/1.0 — and so do term equality
        # and the in-memory cache key (a documented seed behaviour).
        # The fingerprint must be a function of the ``==``-class, or the
        # equality-keyed memo would serve one class member's digest for
        # another: encode every number by its canonical numeric value.
        if isinstance(value, float) and (value != value or value.is_integer() is False):
            return f"g{value!r}"  # non-integral or NaN: repr is canonical
        return f"i{int(value)}"
    if isinstance(value, str):
        return f"s{value!r}"
    if isinstance(value, Term):
        return f"T{term_fingerprint(value)}"
    if isinstance(value, (tuple, list)):
        return "t(" + ",".join(_canon(item) for item in value) + ")"
    if isinstance(value, (set, frozenset)):
        return "S{" + ",".join(sorted(_canon(item) for item in value)) + "}"
    if isinstance(value, Mapping) or (
        hasattr(value, "items") and callable(getattr(value, "items"))
    ):
        entries = sorted(
            f"{_canon(k)}:{_canon(v)}" for k, v in value.items()
        )
        return "M{" + ",".join(entries) + "}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{f.name}={_canon(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
            if f.compare
        )
        return f"D{type(value).__qualname__}({fields})"
    return f"r{type(value).__qualname__}:{value!r}"


#: Equality-keyed fingerprint memo.  Registered for global clearing; a
#: clear is harmless because fingerprints are purely structural.
_FINGERPRINT_MEMO: Dict[Term, str] = register_cache({})


def term_fingerprint(term: Term) -> str:
    """A stable hex fingerprint of the term's structure.

    Computed bottom-up over the hash-consed DAG (iteratively, so deeply
    nested ``ite`` towers do not hit the recursion limit) and memoized
    per node.  The digest depends only on structure — node kinds,
    operator names, variable names/sorts and canonicalized constant
    payloads — never on intern-table insertion order or object identity,
    so structurally equal terms built in different orders, in different
    processes, or across a table clear fingerprint identically.
    """
    memo = _FINGERPRINT_MEMO
    try:
        cached = memo.get(term, _MISSING)
    except TypeError:
        cached = _MISSING
    if cached is not _MISSING:
        return cached

    local: Dict[int, str] = {}
    stack = [(term, False)]
    while stack:
        node, ready = stack.pop()
        key = id(node)
        if not ready:
            if key in local:
                continue
            try:
                cached = memo.get(node, _MISSING)
            except TypeError:
                cached = _MISSING
            if cached is not _MISSING:
                local[key] = cached
                continue
            if isinstance(node, App):
                stack.append((node, True))
                for arg in node.args:
                    stack.append((arg, False))
                continue
        if isinstance(node, App):
            digest = _digest("A", node.op, *(local[id(arg)] for arg in node.args))
        elif isinstance(node, SymVar):
            digest = _digest("V", node.name, _canon(node.sort))
        elif isinstance(node, Const):
            digest = _digest("C", _canon(node.value))
        else:
            digest = _digest("X", repr(node))
        local[key] = digest
        try:
            memo[node] = digest
        except TypeError:
            pass  # unhashable payload: computed but not memoized
    return local[id(term)]


def persistent_key(
    formula: Term,
    scope: Scope,
    sorts: Optional[Mapping[str, Sort]],
    exhaustive: bool,
    use_sat: bool,
) -> Optional[str]:
    """The process-independent key of a validity query for the on-disk
    store, or None when the query's payloads defeat canonicalization."""
    try:
        sorted_sorts = sorted((sorts or {}).items(), key=lambda kv: kv[0])
        return _digest(
            "K",
            term_fingerprint(formula),
            _canon(scope),
            _canon(tuple(sorted_sorts)),
            f"e{bool(exhaustive)}",
            f"u{bool(use_sat)}",
        )
    except Exception:  # noqa: BLE001 — exotic payloads simply skip the disk layer
        return None


# ---------------------------------------------------------------------------
# Result (de)serialization for the persistent layer
# ---------------------------------------------------------------------------

_JSON_MODEL_TYPES = (bool, int, str, type(None))


def encode_result(result: Any) -> Optional[dict]:
    """A JSON-safe encoding of a decisive Result, or None if the result
    is not persistable (UNKNOWN, or a model that would not survive a
    JSON round-trip byte-identically)."""
    from .solver import Result, Verdict

    if not isinstance(result, Result) or result.verdict is Verdict.UNKNOWN:
        return None
    model = result.model
    if model is not None:
        model = dict(model)
        for name, value in model.items():
            if not isinstance(name, str) or not isinstance(value, _JSON_MODEL_TYPES):
                return None
    return {
        "verdict": result.verdict.value,
        "model": model,
        "checked": result.checked_assignments,
    }


def decode_result(entry: Mapping[str, Any]) -> Optional[Any]:
    """Rebuild a Result from :func:`encode_result` output (None if the
    entry is malformed — e.g. hand-edited or from a future version)."""
    from .solver import Result, Verdict

    try:
        verdict = Verdict(entry["verdict"])
    except (KeyError, ValueError, TypeError):
        return None
    model = entry.get("model")
    if model is not None and not isinstance(model, dict):
        return None
    try:
        checked = int(entry.get("checked", 0))
    except (TypeError, ValueError):
        return None
    return Result(verdict, model=model, checked_assignments=checked)


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------


class ValidityCache:
    """A keyed store of validity results with hit/miss counters and an
    optional fingerprint-keyed persistent layer."""

    __slots__ = (
        "hits",
        "misses",
        "persistent_hits",
        "_store",
        "_persistent",
        "_dirty",
        "_active",
        "_namespace",
    )

    def __init__(self, namespace: str = "") -> None:
        self.hits = 0
        self.misses = 0
        self.persistent_hits = 0
        self._store: Dict[Hashable, Any] = {}
        self._persistent: Dict[str, dict] = {}
        self._dirty: set = set()
        self._active = False
        self._namespace = namespace

    # -- namespacing ------------------------------------------------------

    @property
    def namespace(self) -> str:
        return self._namespace

    def set_namespace(self, namespace: str) -> None:
        """Qualify every subsequent lookup/store with ``namespace``.

        The empty namespace (the default) leaves keys in their
        historical un-prefixed form, so pre-tenancy on-disk stores and
        in-memory entries keep resolving.  Entries written under one
        namespace are invisible under any other — the tenancy isolation
        contract of the verification daemon.
        """
        self._namespace = namespace

    @contextlib.contextmanager
    def namespaced(self, namespace: str) -> Iterator["ValidityCache"]:
        """Scope a namespace: restore the previous one on exit."""
        previous = self._namespace
        self._namespace = namespace
        try:
            yield self
        finally:
            self._namespace = previous

    def _qualify(self, key: Hashable) -> Hashable:
        """The in-memory key as stored (namespace-qualified if set)."""
        if not self._namespace:
            return key
        return ("\x00ns", self._namespace, key)

    def _qualify_persistent(self, persistent_key: str) -> str:
        """The fingerprint key as stored; the prefix uses ``|``, which
        never occurs in a hex digest."""
        if not self._namespace:
            return persistent_key
        return f"{self._namespace}|{persistent_key}"

    # -- in-memory layer --------------------------------------------------

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Stored result for ``key``, or ``default``.  A private sentinel
        decides membership, so a stored falsy result (e.g. a REFUTED
        :class:`~repro.smt.solver.Result`, whose ``__bool__`` is False)
        still counts as a hit and stays cacheable."""
        found = self._store.get(self._qualify(key), _MISSING)
        if found is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        return found

    def put(
        self, key: Hashable, value: Any, persistent_key: Optional[str] = None
    ) -> None:
        """Store a result; when the persistent layer is active and a
        fingerprint key is supplied, mirror a JSON-safe encoding into it
        (and into the dirty delta shipped by :meth:`export_delta`)."""
        self._store[self._qualify(key)] = value
        if persistent_key is not None and self._active:
            encoded = encode_result(value)
            if encoded is not None:
                qualified = self._qualify_persistent(persistent_key)
                self._persistent[qualified] = encoded
                self._dirty.add(qualified)

    # -- persistent layer -------------------------------------------------

    @property
    def persistence_enabled(self) -> bool:
        return self._active

    def enable_persistence(self) -> None:
        """Start mirroring decisive results under fingerprint keys (off
        by default: fingerprinting costs a DAG walk per new query)."""
        self._active = True

    def forget_persistent(self) -> None:
        """Drop the in-memory persistent mirror and deactivate the layer.
        The on-disk store is untouched (only :meth:`save` writes it)."""
        self._persistent.clear()
        self._dirty.clear()
        self._active = False

    def get_persistent(self, persistent_key: str) -> Optional[Any]:
        """Decode the persistent-layer entry for a fingerprint key, or
        None.  Hits are counted in ``persistent_hits``, separate from
        the in-memory ``hits``."""
        entry = self._persistent.get(self._qualify_persistent(persistent_key))
        if entry is None:
            return None
        result = decode_result(entry)
        if result is None:
            return None
        self.persistent_hits += 1
        return result

    def merge(self, entries: Mapping[str, dict]) -> int:
        """Merge encoded entries (a worker's :meth:`export_delta`, or a
        loaded file) into the persistent layer; returns how many were
        new.  Merging does *not* activate the layer: the entries are
        kept (and saved by a later :meth:`save`), but lookups only
        consult them once the caller opts in via :meth:`load` /
        :meth:`enable_persistence` — a pool run without ``--cache-dir``
        must not silently start fingerprinting every query."""
        added = 0
        for key, entry in entries.items():
            if not isinstance(key, str) or not isinstance(entry, dict):
                continue
            if key not in self._persistent:
                added += 1
            self._persistent[key] = dict(entry)
            self._dirty.add(key)
        return added

    def export_delta(self) -> Dict[str, dict]:
        """The encoded entries added/changed since the last
        :meth:`reset_delta`/:meth:`save` — what a pool worker ships back
        to the parent process."""
        persistent = self._persistent
        return {
            key: dict(persistent[key]) for key in self._dirty if key in persistent
        }

    def reset_delta(self) -> None:
        self._dirty.clear()

    def snapshot_persistent(self) -> Dict[str, dict]:
        """A copy of the whole persistent layer (encoded entries, with
        their namespace qualifiers baked in) — what the daemon hands a
        freshly spawned worker so it starts warm."""
        return {key: dict(entry) for key, entry in self._persistent.items()}

    def load(self, path: Any) -> int:
        """Load an on-disk store into the persistent layer (activating
        it).  Entries already in memory win; a missing, truncated or
        corrupt file just activates an empty layer — logged and cold,
        never an exception.  Returns the number of entries loaded."""
        self._active = True
        entries = _read_store(path)
        if entries is None:
            return 0
        loaded = 0
        persistent = self._persistent
        for key, entry in entries.items():
            if key not in persistent:
                persistent[key] = entry
                loaded += 1
        return loaded

    def save(self, path: Any) -> int:
        """Write the persistent layer to disk, merged with whatever is
        already there (union; in-memory entries win), atomically via a
        sibling temp file.  Returns the number of entries written."""
        existing = _read_store(path) or {}
        combined = {**existing, **self._persistent}
        payload = {"version": 1, "entries": combined}
        path = os.fspath(path)
        temp_path = f"{path}.tmp.{os.getpid()}"
        try:
            with open(temp_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=0, sort_keys=True)
                handle.write("\n")
            os.replace(temp_path, path)
        except BaseException:
            # Never leave a stale temp sibling behind (e.g. disk full,
            # or a signal between write and replace).
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self._dirty.clear()
        return len(combined)

    # -- bookkeeping ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> Dict[str, int]:
        """Counters; persistent-layer hits are reported separately from
        in-memory hits (every persistent hit was first an in-memory
        miss)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "persistent_hits": self.persistent_hits,
            "size": len(self._store),
            "persistent_size": len(self._persistent),
        }

    def clear(self) -> None:
        """Drop the in-memory layer and reset counters.  The persistent
        mirror and the on-disk store survive: ``clear`` is invoked by
        :func:`repro.smt.intern.clear_all_caches`, whose contract is to
        drop *recomputable* state, and persistent entries are keyed by
        structural fingerprints that remain valid across clears."""
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self.persistent_hits = 0


# ---------------------------------------------------------------------------
# The process default
# ---------------------------------------------------------------------------

#: The seed process-wide cache.  Internal: public code obtains a handle
#: via :func:`get_default` (or constructs its own ``ValidityCache`` and
#: installs it with :func:`using_cache` through ``repro.api``).
_SEED_CACHE: ValidityCache = register_cache(ValidityCache())

#: The currently installed default (what ``check_validity`` consults).
_default_cache: ValidityCache = _SEED_CACHE


def get_default() -> ValidityCache:
    """The validity cache ``check_validity`` uses when no explicit handle
    is passed.  Initially the process-wide seed instance; replaceable
    with :func:`set_default` / :func:`using_cache`."""
    return _default_cache


def set_default(cache: ValidityCache) -> ValidityCache:
    """Install ``cache`` as the process default; returns the previous
    default so callers can restore it."""
    global _default_cache
    previous = _default_cache
    _default_cache = cache
    return previous


@contextlib.contextmanager
def using_cache(cache: ValidityCache) -> Iterator[ValidityCache]:
    """Scope an explicit cache handle: every ``check_validity`` call in
    the ``with`` block (that does not pass its own handle) uses
    ``cache``; the previous default is restored on exit.  This is the
    context-manager face of the explicit-handle API surfaced by
    :func:`repro.api.open_cache`."""
    previous = set_default(cache)
    try:
        yield cache
    finally:
        set_default(previous)


def __getattr__(name: str) -> Any:
    """``GLOBAL`` is deprecated: it survives as an alias of the seed
    instance so historical imports keep working, but new code should
    take a handle from :func:`get_default` or pass one explicitly."""
    if name == "GLOBAL":
        warnings.warn(
            "repro.smt.cache.GLOBAL is deprecated; use "
            "repro.smt.cache.get_default() or pass an explicit "
            "ValidityCache handle via repro.api.open_cache()",
            DeprecationWarning,
            stacklevel=2,
        )
        return _SEED_CACHE
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
