"""Cross-call validity cache.

:mod:`repro.verifier.vcgen` and :mod:`repro.spec.inference` re-discharge
many *syntactically identical* verification conditions — the same atomic
block is checked under every proof outline, the same commutativity
obligation under every candidate abstraction.  With hash-consed terms a
formula is one canonical object, so a validity query can be cached under
the key

    (interned formula, scope, sorts fingerprint, exhaustive, use_sat)

with O(1) hashing.  ``Scope`` is a frozen dataclass and sort objects are
frozen dataclasses too, so the key is deeply hashable whenever the
query's sort domains are; queries with unhashable domain values simply
bypass the cache (``make_key`` returns None).

Only decisive verdicts (PROVED / REFUTED / BOUNDED) are stored:
UNKNOWN means the evaluator lacked an operation, and operations may be
registered later (:data:`repro.smt.terms.OPERATIONS` grows as resource
actions are declared), which would make a cached UNKNOWN stale.

Hit/miss counters are surfaced on every :class:`repro.smt.solver.Result`
via its ``cache_hits``/``cache_misses`` fields; the cache itself is
exported as :data:`GLOBAL`.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Mapping, Optional, Tuple

from .intern import register_cache
from .sorts import Scope, Sort
from .terms import Term

#: Private miss sentinel — ``None`` is a storable value, not a miss marker.
_MISSING = object()


def make_key(
    formula: Term,
    scope: Scope,
    sorts: Optional[Mapping[str, Sort]],
    exhaustive: bool,
    use_sat: bool,
) -> Optional[Hashable]:
    """A hashable cache key for a validity query, or None if the query
    involves unhashable data (in which case caching is skipped)."""
    try:
        fingerprint: Tuple = (
            formula,
            scope,
            tuple(sorted((sorts or {}).items())),
            exhaustive,
            use_sat,
        )
        hash(fingerprint)
    except TypeError:
        return None
    return fingerprint


class ValidityCache:
    """A keyed store of validity results with hit/miss counters."""

    __slots__ = ("hits", "misses", "_store")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self._store: Dict[Hashable, Any] = {}

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Stored result for ``key``, or ``default``.  A private sentinel
        decides membership, so a stored falsy result (e.g. a REFUTED
        :class:`~repro.smt.solver.Result`, whose ``__bool__`` is False)
        still counts as a hit and stays cacheable."""
        found = self._store.get(key, _MISSING)
        if found is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        return found

    def put(self, key: Hashable, value: Any) -> None:
        self._store[key] = value

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "size": len(self._store)}

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0


#: The process-wide validity cache used by ``check_validity``.
GLOBAL: ValidityCache = register_cache(ValidityCache())
