"""CDCL SAT solving with two watched literals, and a DPLL(T) loop with
incremental theory propagation for equality logic.

PR 2 replaced the seed's recursive clause-copying DPLL with an iterative
trail + two-watched-literal search, but kept *chronological*
backtracking (flip the last decision) and a *lazy* DPLL(T) loop that
only consulted congruence closure on full boolean models.  This module
upgrades both halves to the modern architecture:

* **Conflict-driven clause learning** — every implied literal records
  its reason clause; a conflict is analyzed back to the first unique
  implication point (first UIP), the learned clause is added to the
  database, and the search *backjumps* non-chronologically to the
  second-highest decision level in the clause;
* **VSIDS decision ordering** — variables touched by conflict analysis
  have their activity bumped (with exponential decay via a growing
  increment); decisions pop a lazy max-heap instead of the previous
  O(n) first-occurrence scan;
* **Phase saving** — each variable remembers the polarity it last held,
  so restarts and backjumps re-explore the same part of the space;
* **Luby restarts** — the search restarts to the root after a
  Luby-sequence-scheduled number of conflicts, keeping the learned
  clauses;
* **Theory propagation** — an attached theory propagator is consulted
  at every propagation fixpoint: entailed theory atoms are enqueued with
  theory reason clauses (participating in conflict analysis like any
  other implication) and theory conflicts are raised mid-search instead
  of waiting for a full boolean model.  The attachment point accepts a
  single propagator (:class:`repro.smt.euf.EqualityPropagator`,
  :class:`repro.smt.arith.DifferenceLogicPropagator`) or a composed
  :class:`repro.smt.arith.PropagatorStack` sharing one trail — the
  protocol is ``reset`` / ``assert_literal`` / ``backjump`` / ``check``
  (plus ``atom_vars`` for eager variable registration and ``rescan``
  for growing session tables).

The clause database is incremental (:meth:`WatchedSolver.add_clause`
between :meth:`WatchedSolver.solve` calls), found models are *shrunk*
to a satisfying partial assignment over the input clauses (so DPLL(T)
blocking clauses never mention don't-care atoms), and ``solve`` accepts
MiniSat-style assumption literals so sessions can activate and retire
queries against one shared clause database.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import Dict, Iterable, List, Optional, Tuple

from .arith import (
    DifferenceLogicPropagator,
    PropagatorStack,
    is_difference_atom,
    is_offset_equality_atom,
    mixed_consistent,
)
from .cnf import CNF, AtomTable, Clause, cnf_of
from .euf import EqualityPropagator, congruence_closure_consistent, is_equality_atom
from .terms import App, Term

Assignment = Dict[int, bool]

#: Conflicts before the first restart; later restarts scale by Luby.
_RESTART_BASE = 100
#: VSIDS: the bump increment grows by 1/0.95 per conflict (equivalent to
#: decaying every variable's activity by 0.95).
_ACTIVITY_GROWTH = 1.0 / 0.95
_ACTIVITY_RESCALE = 1e100


#: Reason markers: -1 is a decision/assumption/root fact; -2 marks a
#: theory propagation whose explanation lives in ``_theory_reasons``.
_NO_REASON = -1
_THEORY_REASON = -2


def _luby(index: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,…(0-based)."""
    size, exponent = 1, 0
    while size < index + 1:
        exponent += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) >> 1
        exponent -= 1
        index %= size
    return 1 << exponent


class WatchedSolver:
    """CDCL over an incrementally extensible clause database.

    The clause database, watch lists, learned clauses, variable
    activities and saved phases persist across :meth:`solve` calls; each
    call restarts the search from decision level zero, which is exactly
    what the lazy-SMT blocking loop needs (the database only grows).

    ``attach_theory`` plugs in a DPLL(T) propagator consulted at every
    propagation fixpoint (see :class:`repro.smt.euf.EqualityPropagator`
    for the protocol: ``reset`` / ``assert_literal`` / ``backjump`` /
    ``check``).
    """

    __slots__ = (
        # persistent clause database
        "_clauses", "_learned", "_watches", "_units", "_unit_set", "_unsat",
        # persistent heuristic state
        "_nvars", "_activity", "_phase", "_var_inc", "_theory",
        # per-solve search state
        "_assign", "_level", "_reason", "_trail", "_trail_lim",
        "_head", "_theory_head", "_heap", "_pinned", "_theory_reasons",
        # counters (exposed for tests and benchmarks)
        "conflicts", "restarts", "learned_clauses", "retired_clauses",
    )

    def __init__(self, clauses: Iterable[Clause] = ()) -> None:
        self._clauses: List[Optional[List[int]]] = []
        self._learned: List[bool] = []
        self._watches: Dict[int, List[int]] = {}
        self._units: List[int] = []
        self._unit_set: set[int] = set()
        self._unsat = False
        self._nvars = 0
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [True]
        self._var_inc = 1.0
        self._theory = None
        self._assign: List[int] = []
        self._level: List[int] = []
        self._reason: List[int] = []
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._head = 0
        self._theory_head = 0
        self._heap: Optional[List[Tuple[float, int]]] = None
        self._pinned: List[int] = []
        self._theory_reasons: Dict[int, List[int]] = {}
        self.conflicts = 0
        self.restarts = 0
        self.learned_clauses = 0
        self.retired_clauses = 0
        for clause in clauses:
            self.add_clause(clause)

    def attach_theory(self, propagator) -> None:
        """Attach a theory propagator consulted at every fixpoint.

        ``propagator`` may be a single theory
        (:class:`repro.smt.euf.EqualityPropagator`,
        :class:`repro.smt.arith.DifferenceLogicPropagator`) or a
        :class:`repro.smt.arith.PropagatorStack` composing several over
        the shared trail.  The propagator's atom variables are
        registered eagerly: an atom can drop out of every clause (e.g.
        it only occurred in a dropped tautology) yet still be
        propagated by the theory.
        """
        self._theory = propagator
        atom_vars = list(propagator.atom_vars())
        if atom_vars:
            self._note_vars(atom_vars)

    def _note_vars(self, literals: Iterable[int]) -> None:
        top = max(map(abs, literals))
        if top > self._nvars:
            grow = top - self._nvars
            self._activity.extend([0.0] * grow)
            self._phase.extend([True] * grow)
            self._nvars = top

    def add_clause(self, clause: Iterable[int]) -> None:
        """Add a clause; duplicates are collapsed, tautologies dropped.

        Unit clauses are deduplicated (re-adding a known fact is a
        no-op) and a unit contradicting an existing root-level fact
        marks the database unsatisfiable immediately.
        """
        literals = list(clause)
        seen = set(literals)
        if len(seen) != len(literals):
            deduped: List[int] = []
            emitted: set[int] = set()
            for literal in literals:
                if literal not in emitted:
                    emitted.add(literal)
                    deduped.append(literal)
            literals = deduped
        for literal in literals:
            if -literal in seen:
                return  # tautological clause: always satisfied
        if not literals:
            self._unsat = True
            return
        self._note_vars(literals)
        if len(literals) == 1:
            literal = literals[0]
            unit_set = self._unit_set
            if -literal in unit_set:
                self._unsat = True  # root-level conflict, caught at add time
                return
            if literal not in unit_set:
                unit_set.add(literal)
                self._units.append(literal)
            return
        index = len(self._clauses)
        self._clauses.append(literals)
        self._learned.append(False)
        watches = self._watches
        watches.setdefault(literals[0], []).append(index)
        watches.setdefault(literals[1], []).append(index)

    # -- incremental sessions --------------------------------------------

    def clause_mark(self) -> int:
        """A position in the clause database; pass to :meth:`retire` to
        restrict its scan to clauses added at or after the mark."""
        return len(self._clauses)

    def live_clauses(self) -> List[List[int]]:
        """The non-retired clauses (input and learned), for inspection."""
        return [clause for clause in self._clauses if clause is not None]

    def retire(self, variable: int, since: int = 0) -> int:
        """Permanently drop every clause mentioning ``variable``.

        This is the MiniSat-style retirement of an *activation* variable:
        a VC's clauses are guarded by ``¬a`` (with ``a`` asserted as an
        assumption while the VC is live), and since no clause ever
        contains the positive literal ``a``, resolution can never cancel
        ``¬a`` — so every clause mentioning the variable (the guarded
        originals plus any clause learned from them) is exactly the set
        of clauses whose truth depends on the retired query, and dropping
        them is sound.  ``since`` should be the :meth:`clause_mark` taken
        just before the guarded clauses were added, which keeps the scan
        proportional to the clauses of the retired query.

        Root-level unit facts on the variable (e.g. a learned ``¬a``
        recording that the query was unsatisfiable) are dropped too, so
        the database keeps no trace of the retired session.  Returns the
        number of clauses removed.
        """
        clauses = self._clauses
        watches = self._watches
        removed = 0
        for index in range(since, len(clauses)):
            clause = clauses[index]
            if clause is None:
                continue
            if variable not in clause and -variable not in clause:
                continue
            # The two watched literals are maintained in positions 0/1.
            for watched in clause[:2]:
                watchers = watches.get(watched)
                if watchers is not None:
                    try:
                        watchers.remove(index)
                    except ValueError:
                        pass
            clauses[index] = None
            removed += 1
        for literal in (variable, -variable):
            if literal in self._unit_set:
                self._unit_set.discard(literal)
                self._units.remove(literal)
        self.retired_clauses += removed
        return removed

    # -- search ----------------------------------------------------------

    def solve(self, assumptions: Iterable[int] = ()) -> Optional[Assignment]:
        """A satisfying (partial) assignment, or None if unsatisfiable.

        ``assumptions`` are asserted as pseudo-decisions at the bottom
        of the decision stack (MiniSat-style), so clauses learned under
        them remain valid for later calls without them; they are always
        included in a returned model.
        """
        if self._unsat:
            return None
        assumptions = list(assumptions)
        if assumptions:
            self._note_vars(assumptions)
        nvars = self._nvars
        assign = self._assign = [0] * (nvars + 1)
        self._level = [0] * (nvars + 1)
        self._reason = [-1] * (nvars + 1)
        trail = self._trail = []
        trail_lim = self._trail_lim = []
        self._head = 0
        self._theory_head = 0
        self._heap = None
        self._pinned = assumptions
        self._theory_reasons = {}
        theory = self._theory
        if theory is not None:
            theory.reset()

        for literal in self._units:
            variable = literal if literal > 0 else -literal
            value = 1 if literal > 0 else -1
            current = assign[variable]
            if current == 0:
                assign[variable] = value
                trail.append(literal)
            elif current != value:
                self._unsat = True
                return None

        restart_count = 0
        conflicts_since_restart = 0
        restart_limit = _RESTART_BASE * _luby(0)
        level = self._level

        while True:
            conflict = self._propagate()
            if conflict is None and theory is not None:
                conflict = self._theory_sync()
                if conflict is None and self._head < len(trail):
                    continue  # theory enqueued literals: propagate them
            if conflict is not None:
                self.conflicts += 1
                if not trail_lim:
                    self._unsat = True
                    return None
                # Theory conflicts can live entirely below the current
                # decision level; fall back to where they bite.
                top = 0
                for literal in conflict:
                    variable = literal if literal > 0 else -literal
                    if level[variable] > top:
                        top = level[variable]
                if top == 0:
                    self._unsat = True
                    return None
                if top < len(trail_lim):
                    self._cancel_until(top)
                learned, back_level = self._analyze(conflict)
                self._cancel_until(back_level)
                self._assert_learned(learned)
                self._var_inc *= _ACTIVITY_GROWTH
                conflicts_since_restart += 1
                if conflicts_since_restart >= restart_limit:
                    conflicts_since_restart = 0
                    restart_count += 1
                    self.restarts += 1
                    restart_limit = _RESTART_BASE * _luby(restart_count)
                    if trail_lim:
                        self._cancel_until(0)
                continue
            # -- all propagated: assert assumptions, then decide ----------
            while len(trail_lim) < len(assumptions):
                literal = assumptions[len(trail_lim)]
                variable = literal if literal > 0 else -literal
                value = assign[variable]
                if value == 0:
                    trail_lim.append(len(trail))
                    self._enqueue(literal, -1)
                    break
                if (value > 0) != (literal > 0):
                    return None  # assumption falsified by the database
                trail_lim.append(len(trail))  # already true: dummy level
            else:
                variable = self._pick_branch()
                if variable == 0:
                    return self._shrink()
                trail_lim.append(len(trail))
                self._enqueue(
                    variable if self._phase[variable] else -variable, -1
                )

    def _enqueue(self, literal: int, reason_index: int) -> None:
        variable = literal if literal > 0 else -literal
        self._assign[variable] = 1 if literal > 0 else -1
        self._level[variable] = len(self._trail_lim)
        self._reason[variable] = reason_index
        self._trail.append(literal)

    def _propagate(self) -> Optional[List[int]]:
        """Unit propagation to fixpoint; the falsified clause on conflict."""
        clauses = self._clauses
        watches = self._watches
        assign = self._assign
        level = self._level
        reason = self._reason
        trail = self._trail
        head = self._head
        current_level = len(self._trail_lim)
        while head < len(trail):
            false_literal = -trail[head]
            head += 1
            watchers = watches.get(false_literal)
            if not watchers:
                continue
            i = 0
            while i < len(watchers):
                clause_index = watchers[i]
                clause = clauses[clause_index]
                if clause[0] == false_literal:
                    clause[0], clause[1] = clause[1], clause[0]
                other = clause[0]
                other_value = assign[other if other > 0 else -other]
                if other_value != 0 and (other_value > 0) == (other > 0):
                    i += 1  # satisfied by the other watch
                    continue
                for j in range(2, len(clause)):
                    candidate = clause[j]
                    value = assign[candidate if candidate > 0 else -candidate]
                    if value == 0 or (value > 0) == (candidate > 0):
                        clause[1], clause[j] = clause[j], clause[1]
                        watches.setdefault(candidate, []).append(clause_index)
                        watchers[i] = watchers[-1]
                        watchers.pop()
                        break
                else:
                    if other_value == 0:
                        variable = other if other > 0 else -other
                        assign[variable] = 1 if other > 0 else -1
                        level[variable] = current_level
                        reason[variable] = clause_index
                        trail.append(other)
                        i += 1
                    else:
                        self._head = head
                        return clause  # conflict
        self._head = head
        return None

    def _theory_sync(self) -> Optional[List[int]]:
        """Feed new trail literals to the theory and act on its verdict.

        Returns a conflict clause (every literal false), or None after
        enqueueing any theory-entailed literals.  Explanations are kept
        *lazily* — the reason literal list is stashed per variable and
        only consulted if conflict analysis actually resolves on the
        propagated literal — so theory propagation never grows the
        clause database or the watch lists.
        """
        theory = self._theory
        trail = self._trail
        head = self._theory_head
        while head < len(trail):
            theory.assert_literal(trail[head])
            head += 1
        self._theory_head = head
        status, payload = theory.check(self._assign)
        if status == "conflict":
            return payload
        assign = self._assign
        for literal, premises in payload:
            variable = literal if literal > 0 else -literal
            value = assign[variable]
            if value != 0:
                if (value > 0) == (literal > 0):
                    continue  # already true: nothing to do
                clause = [literal]
                clause.extend(-premise for premise in premises)
                return clause  # entailed literal already false
            reason_literals = [literal]
            reason_literals.extend(-premise for premise in premises)
            self._theory_reasons[variable] = reason_literals
            if len(reason_literals) == 1 and literal not in self._unit_set:
                # Premise-free entailment (e.g. an x ≠ x atom): also a
                # root-level fact for future solve calls.
                self._unit_set.add(literal)
                self._units.append(literal)
            self._enqueue(literal, _THEORY_REASON)
        return None

    def _analyze(self, conflict: List[int]) -> Tuple[List[int], int]:
        """First-UIP conflict analysis.

        Resolves the conflict clause backwards along the trail until a
        single literal of the current decision level remains; returns
        the learned clause (asserting literal first, a literal of the
        backjump level second) and the backjump level.
        """
        clauses = self._clauses
        level = self._level
        reason = self._reason
        trail = self._trail
        activity = self._activity
        increment = self._var_inc
        current = len(self._trail_lim)
        seen = bytearray(self._nvars + 1)
        learned: List[int] = [0]
        counter = 0
        resolved = 0  # the literal whose reason we are resolving with
        index = len(trail)
        rescale = False
        literals = conflict
        while True:
            for literal in literals:
                if literal == resolved:
                    continue
                variable = literal if literal > 0 else -literal
                if not seen[variable] and level[variable] > 0:
                    seen[variable] = 1
                    activity[variable] += increment
                    if activity[variable] > _ACTIVITY_RESCALE:
                        rescale = True
                    if level[variable] >= current:
                        counter += 1
                    else:
                        learned.append(literal)
            while True:
                index -= 1
                resolved = trail[index]
                variable = resolved if resolved > 0 else -resolved
                if seen[variable]:
                    break
            seen[variable] = 0
            counter -= 1
            if counter == 0:
                break
            reason_index = reason[variable]
            literals = (
                self._theory_reasons[variable]
                if reason_index == _THEORY_REASON
                else clauses[reason_index]
            )
        learned[0] = -resolved
        if rescale:
            self._rescale_activity()
        if len(learned) == 1:
            return learned, 0
        best = 1
        best_level = level[abs(learned[1])]
        for i in range(2, len(learned)):
            at = level[abs(learned[i])]
            if at > best_level:
                best, best_level = i, at
        learned[1], learned[best] = learned[best], learned[1]
        return learned, best_level

    def _assert_learned(self, learned: List[int]) -> None:
        """Install a learned clause and assert its UIP literal."""
        self.learned_clauses += 1
        literal = learned[0]
        if len(learned) == 1:
            # Backjumped to the root: the UIP is a new global fact.
            if literal not in self._unit_set:
                self._unit_set.add(literal)
                self._units.append(literal)
            self._enqueue(literal, -1)
            return
        index = len(self._clauses)
        self._clauses.append(learned)
        self._learned.append(True)
        watches = self._watches
        watches.setdefault(learned[0], []).append(index)
        watches.setdefault(learned[1], []).append(index)
        self._enqueue(literal, index)

    def _cancel_until(self, target: int) -> None:
        """Undo all assignments above decision level ``target``."""
        trail_lim = self._trail_lim
        if len(trail_lim) <= target:
            return
        base = trail_lim[target]
        trail = self._trail
        assign = self._assign
        reason = self._reason
        phase = self._phase
        activity = self._activity
        heap = self._heap
        for literal in trail[base:]:
            variable = literal if literal > 0 else -literal
            phase[variable] = literal > 0  # phase saving
            assign[variable] = 0
            reason[variable] = -1
            if heap is not None:
                heappush(heap, (-activity[variable], variable))
        del trail[base:]
        del trail_lim[target:]
        self._head = base
        if self._theory is not None and self._theory_head > base:
            self._theory.backjump(base)
            self._theory_head = base

    def _pick_branch(self) -> int:
        """Unassigned variable of maximal activity (0 when none left)."""
        heap = self._heap
        assign = self._assign
        if heap is None:
            activity = self._activity
            heap = self._heap = [
                (-activity[variable], variable)
                for variable in range(1, self._nvars + 1)
                if assign[variable] == 0
            ]
            heapify(heap)
        while heap:
            _, variable = heappop(heap)
            if assign[variable] == 0:
                return variable
        return 0

    def _rescale_activity(self) -> None:
        scale = 1.0 / _ACTIVITY_RESCALE
        self._activity = [value * scale for value in self._activity]
        self._var_inc *= scale
        if self._heap is not None:
            assign = self._assign
            activity = self._activity
            heap = [
                (-activity[variable], variable)
                for variable in range(1, self._nvars + 1)
                if assign[variable] == 0
            ]
            heapify(heap)
            self._heap = heap

    def _shrink(self) -> Assignment:
        """Reduce a total model to a satisfying partial assignment.

        For every *input* clause the true literal assigned earliest on
        the trail is kept (deterministic); everything else is dropped,
        except assumption and unit-clause literals.  Learned clauses are
        skipped — they are implied, so any extension of a partial model
        satisfying the input clauses satisfies them too — which keeps
        DPLL(T) blocking clauses from mentioning don't-care atoms.
        """
        assign = self._assign
        position = {
            (literal if literal > 0 else -literal): rank
            for rank, literal in enumerate(self._trail)
        }
        needed: set[int] = {
            literal if literal > 0 else -literal for literal in self._pinned
        }
        needed.update(
            literal if literal > 0 else -literal for literal in self._units
        )
        learned_flags = self._learned
        for clause_index, clause in enumerate(self._clauses):
            if clause is None or learned_flags[clause_index]:
                continue  # retired clauses impose nothing
            best: Optional[int] = None
            best_rank = -1
            satisfied_by_needed = False
            for literal in clause:
                variable = literal if literal > 0 else -literal
                value = assign[variable]
                if value == 0 or (value > 0) != (literal > 0):
                    continue
                if variable in needed:
                    satisfied_by_needed = True
                    break
                rank = position.get(variable, 0)
                if best is None or rank < best_rank:
                    best, best_rank = variable, rank
            if not satisfied_by_needed and best is not None:
                needed.add(best)
        return {
            variable: assign[variable] > 0
            for variable in needed
            if assign[variable] != 0
        }


def dpll(clauses: CNF, assignment: Optional[Assignment] = None) -> Optional[Assignment]:
    """Satisfying assignment for a CNF, or None if unsatisfiable."""
    solver = WatchedSolver(clauses)
    assumptions = [
        variable if value else -variable
        for variable, value in (assignment or {}).items()
    ]
    return solver.solve(assumptions)


def sat(term: Term) -> Optional[Assignment]:
    """Propositional satisfiability of a boolean term (atoms opaque)."""
    clauses, _table = cnf_of(term)
    return dpll(clauses)


def propositionally_valid(term: Term) -> bool:
    """True iff the term is a propositional tautology (valid for *every*
    theory interpretation of its atoms) — a sound fast path for the
    bounded solver."""
    negated = App("not", (term,))
    return sat(negated) is None


# ---------------------------------------------------------------------------
# DPLL(T) for equality and difference logic
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TheoryResult:
    """Outcome of the DPLL(T) search."""

    satisfiable: bool
    boolean_model: Optional[Assignment] = None
    equalities: Tuple[Tuple[Term, Term], ...] = ()
    disequalities: Tuple[Tuple[Term, Term], ...] = ()
    models_blocked: int = 0
    #: Atoms enqueued by theory propagation (0 when the lazy loop ran).
    theory_propagations: int = 0
    #: Order atoms with their asserted value (mixed-fragment models only).
    orders: Tuple[Tuple[Term, bool], ...] = ()


def _theory_literals(
    model: Assignment, table: AtomTable, orders: bool = False
) -> Optional[tuple]:
    """Split a boolean model into asserted theory literals.

    Without ``orders`` (the seed-compatible contract kept for
    :mod:`repro.smt.reference`): ``(equalities, disequalities)``, or
    None if the model asserts a non-equality atom.  With ``orders``,
    difference-logic order atoms are classified too — the result is
    ``(equalities, disequalities, order_assignments)`` with the latter
    pairing each order atom with its asserted value, and None now means
    an atom outside *both* fragments."""
    equalities: list = []
    disequalities: list = []
    order_atoms: list = []
    for index, value in model.items():
        term = table.term_of(index)
        if term is None:
            continue  # Tseitin definition variable
        if is_equality_atom(term):
            assert isinstance(term, App)
            left, right = term.args
            positive = value if term.op == "==" else not value
            if positive:
                equalities.append((left, right))
            else:
                disequalities.append((left, right))
            continue
        if orders and is_difference_atom(term):
            order_atoms.append((term, value))
            continue
        return None
    if orders:
        return equalities, disequalities, order_atoms
    return equalities, disequalities


def _fragment_propagator(table: AtomTable, allow_orders: bool):
    """The theory propagator (or stack) for a formula's atom table, plus
    whether the mixed equality/order DPLL(T) loop applies.

    Returns ``(propagator, mixed)``: ``(None, False)`` when some atom
    falls outside both fragments (the caller keeps the lazy
    model-blocking loop and bails to enumeration), a bare
    :class:`~repro.smt.euf.EqualityPropagator` for the pure equality
    fragment, and a :class:`~repro.smt.arith.PropagatorStack` when order
    atoms participate."""
    atoms = table.atoms()
    if not atoms:
        return None, False
    needs_difference = False
    for atom in atoms.values():
        if is_equality_atom(atom):
            # An equality with an integer offset (x == y + 1) carries
            # difference content congruence closure cannot see.
            if allow_orders and is_offset_equality_atom(atom):
                needs_difference = True
            continue
        if allow_orders and is_difference_atom(atom):
            needs_difference = True
            continue
        return None, False
    if not needs_difference:
        return EqualityPropagator(table), False
    stack = PropagatorStack(
        EqualityPropagator(table), DifferenceLogicPropagator(table)
    )
    return stack, True


def dpllt_equality(
    term: Term, max_models: int = 10_000, allow_orders: bool = True
) -> Optional[TheoryResult]:
    """DPLL(T) for formulas whose atoms are ``==``/``!=`` between ground
    terms and/or integer difference-logic comparisons (boolean structure
    arbitrary).

    For formulas entirely inside those fragments the matching theory
    propagators are attached to the CDCL search — an
    :class:`~repro.smt.euf.EqualityPropagator` alone for pure equality,
    composed with a :class:`~repro.smt.arith.DifferenceLogicPropagator`
    in a :class:`~repro.smt.arith.PropagatorStack` when order atoms
    occur.  Theory reasoning runs incrementally along the boolean trail:
    entailed atoms are enqueued at every fixpoint and theory conflicts
    become learned clauses mid-search, with explanations that respect
    the solver's MiniSat-style assumption levels (clauses learned while
    a session's activation literal is assumed mention its negation, so
    they survive for later queries).  The model-blocking loop below then
    serves only as a safety net: ``models_blocked`` stays 0 on the pure
    equality and pure difference fragments, and blocks only the rare
    mixed models whose inconsistency needs the cross-theory equality
    exchange of :func:`~repro.smt.arith.mixed_consistent`.

    Formulas with an atom outside both fragments keep the PR 2
    behaviour: lazy model blocking, bailing out (``None``) on the first
    model that asserts such an atom so the caller falls back to the
    bounded enumerator.  ``allow_orders=False`` restricts the search to
    the equality fragment (used when a caller's sort overrides make
    integer order reasoning unsound for the formula at hand).
    """
    clauses, table = cnf_of(term)
    solver = WatchedSolver(clauses)
    propagator, mixed = _fragment_propagator(table, allow_orders)
    if propagator is not None:
        solver.attach_theory(propagator)
    blocked = 0
    propagated = 0
    for _ in range(max_models):
        model = solver.solve()
        propagated = propagator.propagations if propagator is not None else 0
        if model is None:
            return TheoryResult(
                False, models_blocked=blocked, theory_propagations=propagated
            )
        split = _theory_literals(model, table, orders=mixed)
        if split is None:
            return None  # outside the fragment
        if mixed:
            equalities, disequalities, order_atoms = split
            consistent = mixed_consistent(equalities, disequalities, order_atoms)
        else:
            equalities, disequalities = split
            order_atoms = []
            consistent = congruence_closure_consistent(equalities, disequalities)
        if consistent:
            return TheoryResult(
                True,
                boolean_model=model,
                equalities=tuple(equalities),
                disequalities=tuple(disequalities),
                models_blocked=blocked,
                theory_propagations=propagated,
                orders=tuple(order_atoms),
            )
        # Block this boolean model (only its theory-atom part).
        conflict = tuple(
            -index if value else index
            for index, value in sorted(model.items())
            if table.term_of(index) is not None
        )
        if not conflict:
            return TheoryResult(
                False, models_blocked=blocked, theory_propagations=propagated
            )
        solver.add_clause(conflict)
        blocked += 1
    return None  # model budget exhausted: undecided


def euf_valid(
    term: Term, max_models: int = 10_000, allow_orders: bool = True
) -> Optional[bool]:
    """Validity in the equality + difference-logic fragments: True/False,
    or None if undecided / outside both fragments."""
    result = dpllt_equality(
        App("not", (term,)), max_models=max_models, allow_orders=allow_orders
    )
    if result is None:
        return None
    return not result.satisfiable
