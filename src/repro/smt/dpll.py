"""CDCL SAT solving over a flat clause arena, and a DPLL(T) loop with
incremental theory propagation for equality and difference logic.

PR 2 replaced the seed's recursive clause-copying DPLL with an iterative
trail + two-watched-literal search; PR 3 upgraded it to full CDCL
(first-UIP learning, VSIDS, phase saving, Luby restarts, MiniSat
assumptions, theory propagation).  This revision restructures the solver
around **flat integer arrays** so the hot loop is allocation-free and
mypyc/Cython/PyPy-friendly, and adds the deferred **learned-clause
database management**:

* **Packed clause arena** — every clause lives in one shared ``int``
  list.  A clause is addressed by the offset of its first literal
  (its *ref*); three header words precede the literals::

      arena[ref - 3]   size   (number of literals; the walk stride)
      arena[ref - 2]   state  (-1 dead/tombstoned, 0 live input,
                               k > 0 live learned with LBD k)
      arena[ref - 1]   stamp  (conflict counter at last involvement,
                               the recency half of the reduceDB score)

  Literals are stored *encoded*: variable ``v`` positive is ``2v``,
  negative is ``2v + 1`` (negation is ``^ 1``, the variable is
  ``>> 1``).  The assignment array is **literal-indexed** — a single
  ``assign[lit]`` read answers "is this literal true/false/unassigned"
  with no sign tests — and the watch lists are a flat list-of-lists
  indexed by encoded literal.  The DIMACS-style signed-int surface
  (``add_clause``, ``solve`` models, ``retire``) is unchanged.
* **Learned-clause DB management** — every learned clause records its
  LBD (number of distinct decision levels) at learn time; when the live
  learned count outgrows an adaptive bound, :meth:`reduce_db` drops the
  worst half by ``(LBD, recency)`` while protecting reason clauses of
  trail literals, glue clauses (LBD ≤ 2), binaries, and clauses
  mentioning a live assumption variable.  Retirement tombstones clauses
  in place; a compaction pass rewrites the arena (remapping watch lists
  and trail reasons) whenever tombstones dominate, so long sessions
  never creep.
* **Recursive conflict-clause minimization** — learned clauses are
  shrunk by the Sörensson–Biere self-subsumption test before
  installation: a literal is dropped when its reason antecedents are
  (recursively) confined to literals already in the clause.

Everything PR 3 established is preserved: first-UIP learning with VSIDS
and phase saving, Luby restarts, MiniSat-style assumption levels,
:meth:`WatchedSolver.retire` tombstoning of activation-guarded and
learned clauses, and the ``reset`` / ``assert_literal`` / ``backjump`` /
``check`` theory-propagator protocol
(:class:`repro.smt.euf.EqualityPropagator`,
:class:`repro.smt.arith.DifferenceLogicPropagator`, composed by
:class:`repro.smt.arith.PropagatorStack`) — propagators now read the
literal-indexed assignment array (``assign[2 * var]``) but still mirror
the trail as signed ints.  ``solve`` accepts MiniSat-style assumption
literals so sessions can activate and retire queries against one shared
clause database, and found models are *shrunk* to a satisfying partial
assignment over the input clauses (so DPLL(T) blocking clauses never
mention don't-care atoms).

The restart / reduceDB / minimization features can be toggled
independently at construction — the solver conformance suite
(``tests/property/test_solver_conformance.py``) runs the differential
contract against :mod:`repro.smt.reference` over every combination.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import Dict, Iterable, List, Optional, Tuple

from .arith import (
    DifferenceLogicPropagator,
    PropagatorStack,
    is_difference_atom,
    is_offset_equality_atom,
    mixed_consistent,
)
from .cnf import CNF, AtomTable, Clause, TseitinConverter, cnf_of
from .euf import EqualityPropagator, congruence_closure_consistent, is_equality_atom
from .terms import App, Term

Assignment = Dict[int, bool]

#: Conflicts before the first restart; later restarts scale by Luby.
_RESTART_BASE = 100
#: VSIDS: the bump increment grows by 1/0.95 per conflict (equivalent to
#: decaying every variable's activity by 0.95).
_ACTIVITY_GROWTH = 1.0 / 0.95
_ACTIVITY_RESCALE = 1e100

#: Reason markers: -1 is a decision/assumption/root fact; -2 marks a
#: theory propagation whose explanation lives in ``_theory_reasons``.
_NO_REASON = -1
_THEORY_REASON = -2

#: Arena layout: three header words precede each clause's literals.
_HDR = 3
#: Clause-state header values (arena[ref - 2]).
_STATE_DEAD = -1
_STATE_INPUT = 0  # any value > 0 is "learned, with that LBD"

#: Clause marks encode (compaction epoch, arena offset) in one int so
#: session code can hold a mark across a solve that compacts the arena.
_MARK_EPOCH = 1 << 48

#: reduceDB defaults: the live-learned bound starts at
#: ``max(floor, live_inputs // 3)`` and grows geometrically per pass.
_REDUCE_FLOOR = 300
_REDUCE_GROWTH = 1.3
#: Compact the arena when tombstones exceed this fraction of it.
_COMPACT_FRACTION = 0.4


def _luby(index: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,…(0-based)."""
    size, exponent = 1, 0
    while size < index + 1:
        exponent += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) >> 1
        exponent -= 1
        index %= size
    return 1 << exponent


def _encode(literal: int) -> int:
    """Signed DIMACS literal -> encoded literal (2v / 2v+1)."""
    return (literal << 1) if literal > 0 else ((-literal) << 1) | 1


def _decode(encoded: int) -> int:
    """Encoded literal -> signed DIMACS literal."""
    return -(encoded >> 1) if encoded & 1 else (encoded >> 1)


class WatchedSolver:
    """CDCL over an incrementally extensible flat-arena clause database.

    The clause arena, watch lists, learned clauses, variable activities
    and saved phases persist across :meth:`solve` calls; each call
    restarts the search from decision level zero, which is exactly what
    the lazy-SMT blocking loop needs (the database only grows, modulo
    :meth:`retire` and reduceDB).  Search arrays (assignment, level,
    reason, trail) are persistent too and cleared by trail-walking, so a
    ``solve`` call allocates nothing proportional to the variable count.

    ``attach_theory`` plugs in a DPLL(T) propagator consulted at every
    propagation fixpoint (see :class:`repro.smt.euf.EqualityPropagator`
    for the protocol: ``reset`` / ``assert_literal`` / ``backjump`` /
    ``check``).

    Keyword toggles (all default-on) gate the search features the
    conformance suite sweeps: ``restarts`` (Luby restarts),
    ``reduce_db`` (learned-clause garbage collection), ``minimize``
    (recursive conflict-clause minimization).  ``reduce_floor`` tunes
    how many live learned clauses are tolerated before the first
    reduction — property tests set it very low to force reductions on
    small instances.
    """

    __slots__ = (
        # flat clause database
        "_arena", "_watches", "_units", "_unit_set", "_unsat",
        "_ninput_live", "_nlearned_live", "_dead_words", "_epoch",
        # persistent heuristic state
        "_nvars", "_activity", "_phase", "_var_inc", "_theory",
        # persistent (trail-cleared) search state
        "_assign", "_level", "_reason", "_trail", "_trail_lim",
        "_head", "_theory_head", "_heap", "_pinned", "_pinned_vars",
        "_theory_reasons", "_seen",
        # configuration
        "_restarts_on", "_reduce_on", "_minimize_on",
        "_max_learnts", "_reduce_floor",
        # counters (exposed for tests and benchmarks)
        "conflicts", "restarts", "learned_clauses", "retired_clauses",
        "reduced_clauses", "reductions", "compactions", "minimized_literals",
    )

    def __init__(
        self,
        clauses: Iterable[Clause] = (),
        *,
        restarts: bool = True,
        reduce_db: bool = True,
        minimize: bool = True,
        reduce_floor: int = _REDUCE_FLOOR,
    ) -> None:
        self._arena: List[int] = []
        self._watches: List[List[int]] = [[], []]  # indexed by encoded literal
        self._units: List[int] = []  # signed root-level facts
        self._unit_set: set[int] = set()
        self._unsat = False
        self._ninput_live = 0
        self._nlearned_live = 0
        self._dead_words = 0
        self._epoch = 0
        self._nvars = 0
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [True]
        self._var_inc = 1.0
        self._theory = None
        self._assign: List[int] = [0, 0]  # literal-indexed: ±1 / 0
        self._level: List[int] = [0]
        self._reason: List[int] = [_NO_REASON]
        self._trail: List[int] = []  # encoded literals
        self._trail_lim: List[int] = []
        self._head = 0
        self._theory_head = 0
        self._heap: Optional[List[Tuple[float, int]]] = None
        self._pinned: List[int] = []  # encoded assumption literals
        self._pinned_vars: set[int] = set()
        self._theory_reasons: Dict[int, List[int]] = {}  # var -> encoded clause
        self._seen = bytearray(1)
        self._restarts_on = restarts
        self._reduce_on = reduce_db
        self._minimize_on = minimize
        self._reduce_floor = max(1, reduce_floor)
        self._max_learnts = self._reduce_floor
        self.conflicts = 0
        self.restarts = 0
        self.learned_clauses = 0
        self.retired_clauses = 0
        self.reduced_clauses = 0
        self.reductions = 0
        self.compactions = 0
        self.minimized_literals = 0
        for clause in clauses:
            self.add_clause(clause)

    def attach_theory(self, propagator) -> None:
        """Attach a theory propagator consulted at every fixpoint.

        ``propagator`` may be a single theory
        (:class:`repro.smt.euf.EqualityPropagator`,
        :class:`repro.smt.arith.DifferenceLogicPropagator`) or a
        :class:`repro.smt.arith.PropagatorStack` composing several over
        the shared trail.  The propagator's atom variables are
        registered eagerly: an atom can drop out of every clause (e.g.
        it only occurred in a dropped tautology) yet still be
        propagated by the theory.
        """
        self._theory = propagator
        top = 0
        for variable in propagator.atom_vars():
            if variable > top:
                top = variable
        if top > self._nvars:
            self._grow_to(top)

    def _grow_to(self, top: int) -> None:
        """Extend every variable-indexed array up to variable ``top``."""
        grow = top - self._nvars
        if grow <= 0:
            return
        self._activity.extend([0.0] * grow)
        self._phase.extend([True] * grow)
        self._assign.extend([0] * (2 * grow))
        self._level.extend([0] * grow)
        self._reason.extend([_NO_REASON] * grow)
        self._seen.extend(bytes(grow))
        watches = self._watches
        for _ in range(2 * grow):
            watches.append([])
        self._nvars = top

    def add_clause(self, clause: Iterable[int]) -> None:
        """Add an input clause of signed literals; duplicates are
        collapsed, tautologies dropped.

        Unit clauses are deduplicated (re-adding a known fact is a
        no-op) and a unit contradicting an existing root-level fact
        marks the database unsatisfiable immediately.
        """
        literals = list(clause)
        if len(literals) > 1:
            seen = set(literals)
            if len(seen) != len(literals):
                deduped: List[int] = []
                emitted: set[int] = set()
                for literal in literals:
                    if literal not in emitted:
                        emitted.add(literal)
                        deduped.append(literal)
                literals = deduped
            for literal in literals:
                if -literal in seen:
                    return  # tautological clause: always satisfied
        if not literals:
            self._unsat = True
            return
        top = 0
        for literal in literals:
            variable = literal if literal > 0 else -literal
            if variable > top:
                top = variable
        if top > self._nvars:
            self._grow_to(top)
        if len(literals) == 1:
            literal = literals[0]
            unit_set = self._unit_set
            if -literal in unit_set:
                self._unsat = True  # root-level conflict, caught at add time
                return
            if literal not in unit_set:
                unit_set.add(literal)
                self._units.append(literal)
            return
        arena = self._arena
        arena.append(len(literals))
        arena.append(_STATE_INPUT)
        arena.append(0)
        ref = len(arena)
        for literal in literals:
            arena.append(
                (literal << 1) if literal > 0 else ((-literal) << 1) | 1
            )
        self._watches[arena[ref]].append(ref)
        self._watches[arena[ref + 1]].append(ref)
        self._ninput_live += 1

    # -- incremental sessions --------------------------------------------

    def clause_mark(self) -> int:
        """A position in the clause database; pass to :meth:`retire` to
        restrict its scan to clauses added at or after the mark.

        The mark is opaque: it folds the arena offset together with the
        compaction epoch, so a mark taken before a reduceDB/compaction
        pass degrades to a full scan instead of landing mid-clause.
        """
        return self._epoch * _MARK_EPOCH + len(self._arena)

    def _clause_refs(self, start: int = 0) -> Iterable[int]:
        """Walk the arena yielding every clause ref from ``start`` on
        (live and dead; callers filter on the state word)."""
        arena = self._arena
        end = len(arena)
        ref = start + _HDR
        while ref <= end:
            yield ref
            ref += arena[ref - _HDR] + _HDR

    def live_clauses(self) -> List[List[int]]:
        """The non-retired clauses (input and learned) as signed-literal
        lists, for inspection."""
        arena = self._arena
        out: List[List[int]] = []
        for ref in self._clause_refs():
            if arena[ref - 2] != _STATE_DEAD:
                out.append(
                    [_decode(arena[i]) for i in range(ref, ref + arena[ref - _HDR])]
                )
        return out

    def live_learned_clauses(self) -> List[List[int]]:
        """The live *learned* clauses as signed-literal lists."""
        arena = self._arena
        out: List[List[int]] = []
        for ref in self._clause_refs():
            if arena[ref - 2] > 0:
                out.append(
                    [_decode(arena[i]) for i in range(ref, ref + arena[ref - _HDR])]
                )
        return out

    def clause_db_stats(self) -> Dict[str, int]:
        """Arena-level counters for benchmarks, tests and session stats."""
        return {
            "arena_words": len(self._arena),
            "dead_words": self._dead_words,
            "live_input": self._ninput_live,
            "live_learned": self._nlearned_live,
            "max_learnts": self._max_learnts,
            "epoch": self._epoch,
            "reductions": self.reductions,
            "compactions": self.compactions,
            "reduced_clauses": self.reduced_clauses,
            "minimized_literals": self.minimized_literals,
        }

    def retire(self, variable: int, since: int = 0) -> int:
        """Permanently drop every clause mentioning ``variable``.

        This is the MiniSat-style retirement of an *activation* variable:
        a VC's clauses are guarded by ``¬a`` (with ``a`` asserted as an
        assumption while the VC is live), and since no clause ever
        contains the positive literal ``a``, resolution can never cancel
        ``¬a`` — so every clause mentioning the variable (the guarded
        originals plus any clause learned from them) is exactly the set
        of clauses whose truth depends on the retired query, and dropping
        them is sound.  ``since`` should be the :meth:`clause_mark` taken
        just before the guarded clauses were added, which keeps the scan
        proportional to the clauses of the retired query (a mark that
        predates a compaction falls back to a full scan).

        Root-level unit facts on the variable (e.g. a learned ``¬a``
        recording that the query was unsatisfiable) are dropped too, so
        the database keeps no trace of the retired session.  Returns the
        number of clauses removed.
        """
        epoch, start = divmod(since, _MARK_EPOCH)
        if epoch != self._epoch:
            start = 0  # the arena moved underneath the mark: scan fully
        arena = self._arena
        watches = self._watches
        positive = variable << 1
        negative = positive | 1
        removed = 0
        for ref in self._clause_refs(start):
            state = arena[ref - 2]
            if state == _STATE_DEAD:
                continue
            size = arena[ref - _HDR]
            hit = False
            for i in range(ref, ref + size):
                if arena[i] | 1 == negative:
                    hit = True
                    break
            if not hit:
                continue
            for watched in (arena[ref], arena[ref + 1]):
                watchers = watches[watched]
                try:
                    watchers.remove(ref)
                except ValueError:
                    pass
            arena[ref - 2] = _STATE_DEAD
            self._dead_words += size + _HDR
            if state > 0:
                self._nlearned_live -= 1
            else:
                self._ninput_live -= 1
            removed += 1
        for literal in (variable, -variable):
            if literal in self._unit_set:
                self._unit_set.discard(literal)
                self._units.remove(literal)
        self.retired_clauses += removed
        arena_len = len(self._arena)
        if (
            arena_len > 256
            and self._dead_words > arena_len * _COMPACT_FRACTION
        ):
            self._compact()
        return removed

    # -- clause DB management --------------------------------------------

    def reduce_db(self) -> int:
        """Drop the worst half of the removable learned clauses.

        The score is glucose-flavoured: clauses are ranked by
        ``(LBD, staleness)`` — higher LBD and older last-involvement
        first.  Never removed: reason clauses of current trail literals
        (*locked*), glue clauses (LBD ≤ 2), binary clauses, and clauses
        mentioning a live assumption (activation) variable — so an
        activated query never loses lemmas about its own guard mid-solve
        and :meth:`retire` still finds them.  The arena is compacted
        afterwards.  Returns the number of clauses dropped.
        """
        arena = self._arena
        assign = self._assign
        reason = self._reason
        pinned_vars = self._pinned_vars
        candidates: List[Tuple[int, int, int]] = []  # (lbd, -stamp, ref)
        for ref in self._clause_refs():
            lbd = arena[ref - 2]
            if lbd <= 0:
                continue  # input or dead
            if lbd <= 2:
                continue  # glue: keep unconditionally
            size = arena[ref - _HDR]
            if size <= 2:
                continue  # binaries propagate for free
            first = arena[ref]
            if assign[first] > 0 and reason[first >> 1] == ref:
                continue  # locked: the reason of a trail literal
            if pinned_vars:
                guarded = False
                for i in range(ref, ref + size):
                    if (arena[i] >> 1) in pinned_vars:
                        guarded = True
                        break
                if guarded:
                    continue
            candidates.append((lbd, -arena[ref - 1], ref))
        if not candidates:
            self._max_learnts = int(self._max_learnts * _REDUCE_GROWTH) + 1
            return 0
        candidates.sort()
        watches = self._watches
        removed = 0
        # Drop the worse half (the tail of the ascending (lbd, age) sort).
        for lbd, _age, ref in candidates[len(candidates) // 2:]:
            for watched in (arena[ref], arena[ref + 1]):
                try:
                    watches[watched].remove(ref)
                except ValueError:
                    pass
            arena[ref - 2] = _STATE_DEAD
            self._dead_words += arena[ref - _HDR] + _HDR
            removed += 1
        self._nlearned_live -= removed
        self.reduced_clauses += removed
        self.reductions += 1
        self._max_learnts = int(self._max_learnts * _REDUCE_GROWTH) + 1
        self._compact()
        return removed

    def _compact(self) -> None:
        """Rewrite the arena without its tombstones.

        Live clauses keep their relative order; watch lists are rebuilt
        and the reason refs of current trail literals remapped.  The
        compaction epoch is bumped so outstanding clause marks degrade
        to full scans rather than dangling.
        """
        arena = self._arena
        fresh: List[int] = []
        mapping: Dict[int, int] = {}
        for ref in self._clause_refs():
            size = arena[ref - _HDR]
            if arena[ref - 2] == _STATE_DEAD:
                continue
            fresh.append(size)
            fresh.append(arena[ref - 2])
            fresh.append(arena[ref - 1])
            new_ref = len(fresh)
            mapping[ref] = new_ref
            fresh.extend(arena[ref:ref + size])
        self._arena = arena = fresh
        watches = self._watches
        for watcher_list in watches:
            if watcher_list:
                del watcher_list[:]
        for ref in mapping.values():
            watches[arena[ref]].append(ref)
            watches[arena[ref + 1]].append(ref)
        reason = self._reason
        for literal in self._trail:
            variable = literal >> 1
            old = reason[variable]
            if old >= 0:
                reason[variable] = mapping.get(old, _NO_REASON)
        self._dead_words = 0
        self._epoch += 1
        self.compactions += 1

    def db_check(self) -> bool:
        """Structural invariant check of the arena and watch lists (for
        the test suite; raises AssertionError on violation).

        * every live clause has ≥ 2 literals and is watched on exactly
          its first two;
        * every watch-list entry refs a live clause whose corresponding
          watched literal equals the list's literal;
        * every trail literal's clause reason is live and contains it;
        * the literal-indexed assignment is polarity-consistent.
        """
        arena = self._arena
        watches = self._watches
        expected: Dict[Tuple[int, int], int] = {}
        for ref in self._clause_refs():
            size = arena[ref - _HDR]
            state = arena[ref - 2]
            assert size >= 2, f"clause at {ref} has size {size}"
            if state == _STATE_DEAD:
                continue
            for watched in (arena[ref], arena[ref + 1]):
                key = (watched, ref)
                expected[key] = expected.get(key, 0) + 1
        seen: Dict[Tuple[int, int], int] = {}
        for literal, watcher_list in enumerate(watches):
            for ref in watcher_list:
                assert arena[ref - 2] != _STATE_DEAD, (
                    f"watch list {literal} refs dead clause {ref}"
                )
                assert literal in (arena[ref], arena[ref + 1]), (
                    f"clause {ref} watched on {literal} but its watches are "
                    f"{arena[ref]}, {arena[ref + 1]}"
                )
                key = (literal, ref)
                seen[key] = seen.get(key, 0) + 1
        assert seen == expected, (
            f"watch lists out of sync: extra={set(seen) - set(expected)} "
            f"missing={set(expected) - set(seen)}"
        )
        assign = self._assign
        reason = self._reason
        for literal in self._trail:
            assert assign[literal] > 0, f"trail literal {literal} not true"
            ref = reason[literal >> 1]
            if ref >= 0:
                assert arena[ref - 2] != _STATE_DEAD, (
                    f"reason {ref} of trail literal {literal} is dead"
                )
                size = arena[ref - _HDR]
                assert literal in arena[ref:ref + size], (
                    f"reason {ref} does not contain its trail literal"
                )
        for variable in range(1, self._nvars + 1):
            positive = variable << 1
            assert assign[positive] == -assign[positive | 1], (
                f"assignment of variable {variable} is polarity-inconsistent"
            )
        return True

    # -- search ----------------------------------------------------------

    def solve(self, assumptions: Iterable[int] = ()) -> Optional[Assignment]:
        """A satisfying (partial) assignment, or None if unsatisfiable.

        ``assumptions`` are asserted as pseudo-decisions at the bottom
        of the decision stack (MiniSat-style), so clauses learned under
        them remain valid for later calls without them; they are always
        included in a returned model.
        """
        if self._unsat:
            return None
        self._retract()
        assumptions = [_encode(literal) for literal in assumptions]
        if assumptions:
            top = max(literal >> 1 for literal in assumptions)
            if top > self._nvars:
                self._grow_to(top)
        assign = self._assign
        trail = self._trail
        trail_lim = self._trail_lim
        self._pinned = assumptions
        self._pinned_vars = {literal >> 1 for literal in assumptions}
        self._theory_reasons = {}
        theory = self._theory
        if theory is not None:
            theory.reset()
        if self._reduce_on:
            floor = max(self._reduce_floor, self._ninput_live // 3)
            if self._max_learnts < floor:
                self._max_learnts = floor

        level = self._level
        reason = self._reason
        for literal in self._units:
            encoded = _encode(literal)
            value = assign[encoded]
            if value == 0:
                assign[encoded] = 1
                assign[encoded ^ 1] = -1
                level[encoded >> 1] = 0
                reason[encoded >> 1] = _NO_REASON
                trail.append(encoded)
            elif value < 0:
                self._unsat = True
                return None

        restart_count = 0
        conflicts_since_restart = 0
        restart_limit = _RESTART_BASE * _luby(0)
        restarts_on = self._restarts_on
        reduce_on = self._reduce_on

        try:
            while True:
                conflict = self._propagate()
                if conflict is None and theory is not None:
                    conflict = self._theory_sync()
                    if conflict is None and self._head < len(trail):
                        continue  # theory enqueued literals: propagate them
                if conflict is not None:
                    self.conflicts += 1
                    if not trail_lim:
                        self._unsat = True
                        return None
                    literals = (
                        self._clause_literals(conflict)
                        if isinstance(conflict, int)
                        else conflict
                    )
                    # Theory conflicts can live entirely below the current
                    # decision level; fall back to where they bite.
                    top = 0
                    for literal in literals:
                        at = level[literal >> 1]
                        if at > top:
                            top = at
                    if top == 0:
                        self._unsat = True
                        return None
                    if top < len(trail_lim):
                        self._cancel_until(top)
                    learned, back_level, lbd = self._analyze(literals)
                    self._cancel_until(back_level)
                    self._assert_learned(learned, lbd)
                    self._var_inc *= _ACTIVITY_GROWTH
                    if (
                        reduce_on
                        and self._nlearned_live - len(trail_lim)
                        > self._max_learnts
                    ):
                        self.reduce_db()
                    conflicts_since_restart += 1
                    if restarts_on and conflicts_since_restart >= restart_limit:
                        conflicts_since_restart = 0
                        restart_count += 1
                        self.restarts += 1
                        restart_limit = _RESTART_BASE * _luby(restart_count)
                        if trail_lim:
                            self._cancel_until(0)
                    continue
                # -- all propagated: assert assumptions, then decide ------
                while len(trail_lim) < len(assumptions):
                    literal = assumptions[len(trail_lim)]
                    value = assign[literal]
                    if value == 0:
                        trail_lim.append(len(trail))
                        self._enqueue(literal, _NO_REASON)
                        break
                    if value < 0:
                        return None  # assumption falsified by the database
                    trail_lim.append(len(trail))  # already true: dummy level
                else:
                    variable = self._pick_branch()
                    if variable == 0:
                        return self._shrink()
                    trail_lim.append(len(trail))
                    encoded = variable << 1
                    if not self._phase[variable]:
                        encoded |= 1
                    self._enqueue(encoded, _NO_REASON)
        finally:
            # Leave no assignment behind: the next solve (or retire, or
            # compaction) starts from a clean, all-unassigned state.
            self._retract()

    def _retract(self) -> None:
        """Unassign the entire trail (phases saved), emptying the search
        state without touching any O(nvars) array."""
        assign = self._assign
        phase = self._phase
        reason = self._reason
        for literal in self._trail:
            variable = literal >> 1
            phase[variable] = not literal & 1
            assign[literal] = 0
            assign[literal ^ 1] = 0
            reason[variable] = _NO_REASON
        del self._trail[:]
        del self._trail_lim[:]
        self._head = 0
        self._theory_head = 0
        self._heap = None

    def _clause_literals(self, ref: int) -> List[int]:
        arena = self._arena
        return arena[ref:ref + arena[ref - _HDR]]

    def _enqueue(self, literal: int, reason_ref: int) -> None:
        variable = literal >> 1
        assign = self._assign
        assign[literal] = 1
        assign[literal ^ 1] = -1
        self._level[variable] = len(self._trail_lim)
        self._reason[variable] = reason_ref
        self._trail.append(literal)

    def _propagate(self) -> Optional[int]:
        """Unit propagation to fixpoint; the falsified clause's ref on
        conflict."""
        arena = self._arena
        watches = self._watches
        assign = self._assign
        level = self._level
        reason = self._reason
        trail = self._trail
        head = self._head
        current_level = len(self._trail_lim)
        while head < len(trail):
            false_literal = trail[head] ^ 1
            head += 1
            watchers = watches[false_literal]
            if not watchers:
                continue
            i = 0
            while i < len(watchers):
                ref = watchers[i]
                first = arena[ref]
                if first == false_literal:
                    first = arena[ref + 1]
                    arena[ref] = first
                    arena[ref + 1] = false_literal
                if assign[first] > 0:
                    i += 1  # satisfied by the other watch
                    continue
                end = ref + arena[ref - _HDR]
                for j in range(ref + 2, end):
                    candidate = arena[j]
                    if assign[candidate] >= 0:
                        arena[ref + 1] = candidate
                        arena[j] = false_literal
                        watches[candidate].append(ref)
                        watchers[i] = watchers[-1]
                        watchers.pop()
                        break
                else:
                    if assign[first] == 0:
                        assign[first] = 1
                        assign[first ^ 1] = -1
                        variable = first >> 1
                        level[variable] = current_level
                        reason[variable] = ref
                        trail.append(first)
                        i += 1
                    else:
                        self._head = head
                        return ref  # conflict
        self._head = head
        return None

    def _theory_sync(self) -> Optional[List[int]]:
        """Feed new trail literals to the theory and act on its verdict.

        Returns a conflict clause as an encoded-literal list (every
        literal false), or None after enqueueing any theory-entailed
        literals.  Explanations are kept *lazily* — the reason literal
        list is stashed per variable and only consulted if conflict
        analysis actually resolves on the propagated literal — so theory
        propagation never grows the clause arena or the watch lists.
        """
        theory = self._theory
        trail = self._trail
        head = self._theory_head
        while head < len(trail):
            theory.assert_literal(_decode(trail[head]))
            head += 1
        self._theory_head = head
        status, payload = theory.check(self._assign)
        if status == "conflict":
            return [_encode(literal) for literal in payload]
        assign = self._assign
        for literal, premises in payload:
            encoded = _encode(literal)
            value = assign[encoded]
            if value != 0:
                if value > 0:
                    continue  # already true: nothing to do
                clause = [encoded]
                clause.extend(_encode(-premise) for premise in premises)
                return clause  # entailed literal already false
            reason_literals = [encoded]
            reason_literals.extend(_encode(-premise) for premise in premises)
            self._theory_reasons[encoded >> 1] = reason_literals
            if len(reason_literals) == 1 and literal not in self._unit_set:
                # Premise-free entailment (e.g. an x ≠ x atom): also a
                # root-level fact for future solve calls.
                self._unit_set.add(literal)
                self._units.append(literal)
            self._enqueue(encoded, _THEORY_REASON)
        return None

    def _analyze(self, conflict: List[int]) -> Tuple[List[int], int, int]:
        """First-UIP conflict analysis with recursive minimization.

        Resolves the conflict clause backwards along the trail until a
        single literal of the current decision level remains; returns
        the learned clause as encoded literals (asserting literal first,
        a literal of the backjump level second), the backjump level, and
        the clause's LBD.
        """
        arena = self._arena
        level = self._level
        reason = self._reason
        trail = self._trail
        activity = self._activity
        theory_reasons = self._theory_reasons
        increment = self._var_inc
        current = len(self._trail_lim)
        seen = self._seen
        to_clear: List[int] = []
        learned: List[int] = [0]
        counter = 0
        resolved = -1  # the literal whose reason we are resolving with
        index = len(trail)
        rescale = False
        conflicts_stamp = self.conflicts
        literals = conflict
        while True:
            for literal in literals:
                if literal == resolved:
                    continue
                variable = literal >> 1
                if not seen[variable] and level[variable] > 0:
                    seen[variable] = 1
                    to_clear.append(variable)
                    activity[variable] += increment
                    if activity[variable] > _ACTIVITY_RESCALE:
                        rescale = True
                    if level[variable] >= current:
                        counter += 1
                    else:
                        learned.append(literal)
            while True:
                index -= 1
                resolved = trail[index]
                variable = resolved >> 1
                if seen[variable]:
                    break
            seen[variable] = 0
            counter -= 1
            if counter == 0:
                break
            reason_ref = reason[variable]
            if reason_ref == _THEORY_REASON:
                literals = theory_reasons[variable]
            else:
                size = arena[reason_ref - _HDR]
                literals = arena[reason_ref:reason_ref + size]
                if arena[reason_ref - 2] > 0:
                    arena[reason_ref - 1] = conflicts_stamp  # recently used
        learned[0] = resolved ^ 1
        if rescale:
            self._rescale_activity()
        if len(learned) > 2 and self._minimize_on:
            learned = self._minimize(learned, to_clear)
        for variable in to_clear:
            seen[variable] = 0
        if len(learned) == 1:
            return learned, 0, 1
        best = 1
        best_level = level[learned[1] >> 1]
        for i in range(2, len(learned)):
            at = level[learned[i] >> 1]
            if at > best_level:
                best, best_level = i, at
        learned[1], learned[best] = learned[best], learned[1]
        levels = {level[literal >> 1] for literal in learned}
        return learned, best_level, max(1, len(levels))

    def _minimize(self, learned: List[int], to_clear: List[int]) -> List[int]:
        """Sörensson–Biere recursive self-subsumption minimization.

        A non-asserting literal is redundant when every antecedent of
        its reason is either already in the clause (``seen``) or itself
        recursively redundant; the decision-level signature mask prunes
        branches that could never close.  Works uniformly over arena
        reasons and lazily-stashed theory reasons.
        """
        level = self._level
        abstract = 0
        for literal in learned[1:]:
            abstract |= 1 << (level[literal >> 1] & 63)
        kept = [learned[0]]
        removed = 0
        for literal in learned[1:]:
            if self._reason[literal >> 1] == _NO_REASON or not self._redundant(
                literal, abstract, to_clear
            ):
                kept.append(literal)
            else:
                removed += 1
        self.minimized_literals += removed
        return kept

    def _redundant(self, literal: int, abstract: int, to_clear: List[int]) -> bool:
        arena = self._arena
        seen = self._seen
        level = self._level
        reason = self._reason
        theory_reasons = self._theory_reasons
        stack = [literal]
        marked_from = len(to_clear)
        while stack:
            current = stack.pop()
            reason_ref = reason[current >> 1]
            if reason_ref == _THEORY_REASON:
                literals = theory_reasons[current >> 1]
            else:
                size = arena[reason_ref - _HDR]
                literals = arena[reason_ref:reason_ref + size]
            for antecedent in literals:
                variable = antecedent >> 1
                if antecedent == current or seen[variable]:
                    continue
                at = level[variable]
                if at == 0:
                    continue
                if (
                    reason[variable] == _NO_REASON
                    or not (1 << (at & 63)) & abstract
                ):
                    # A decision (or a level absent from the clause) on
                    # the path: the literal is not redundant.  Unmark
                    # everything this check marked — a stale ``seen``
                    # flag would let a later check (or a later conflict
                    # analysis) treat an unexplored literal as confined.
                    tail = to_clear[marked_from:]
                    del to_clear[marked_from:]
                    for cleared in tail:
                        seen[cleared] = 0
                    return False
                seen[variable] = 1
                to_clear.append(variable)
                stack.append(antecedent)
        return True

    def _assert_learned(self, learned: List[int], lbd: int) -> None:
        """Install a learned clause (encoded literals) and assert its
        UIP literal."""
        self.learned_clauses += 1
        literal = learned[0]
        if len(learned) == 1:
            # Backjumped to the root: the UIP is a new global fact.
            signed = _decode(literal)
            if signed not in self._unit_set:
                self._unit_set.add(signed)
                self._units.append(signed)
            self._enqueue(literal, _NO_REASON)
            return
        arena = self._arena
        arena.append(len(learned))
        arena.append(max(1, lbd))
        arena.append(self.conflicts)
        ref = len(arena)
        arena.extend(learned)
        self._watches[learned[0]].append(ref)
        self._watches[learned[1]].append(ref)
        self._nlearned_live += 1
        self._enqueue(literal, ref)

    def _cancel_until(self, target: int) -> None:
        """Undo all assignments above decision level ``target``."""
        trail_lim = self._trail_lim
        if len(trail_lim) <= target:
            return
        base = trail_lim[target]
        trail = self._trail
        assign = self._assign
        reason = self._reason
        phase = self._phase
        activity = self._activity
        heap = self._heap
        for literal in trail[base:]:
            variable = literal >> 1
            phase[variable] = not literal & 1  # phase saving
            assign[literal] = 0
            assign[literal ^ 1] = 0
            reason[variable] = _NO_REASON
            if heap is not None:
                heappush(heap, (-activity[variable], variable))
        del trail[base:]
        del trail_lim[target:]
        self._head = base
        if self._theory is not None and self._theory_head > base:
            self._theory.backjump(base)
            self._theory_head = base

    def _pick_branch(self) -> int:
        """Unassigned variable of maximal activity (0 when none left)."""
        heap = self._heap
        assign = self._assign
        if heap is None:
            activity = self._activity
            heap = self._heap = [
                (-activity[variable], variable)
                for variable in range(1, self._nvars + 1)
                if assign[variable << 1] == 0
            ]
            heapify(heap)
        while heap:
            _, variable = heappop(heap)
            if assign[variable << 1] == 0:
                return variable
        return 0

    def _rescale_activity(self) -> None:
        scale = 1.0 / _ACTIVITY_RESCALE
        self._activity = [value * scale for value in self._activity]
        self._var_inc *= scale
        if self._heap is not None:
            assign = self._assign
            activity = self._activity
            heap = [
                (-activity[variable], variable)
                for variable in range(1, self._nvars + 1)
                if assign[variable << 1] == 0
            ]
            heapify(heap)
            self._heap = heap

    def _shrink(self) -> Assignment:
        """Reduce a total model to a satisfying partial assignment.

        For every *input* clause the true literal assigned earliest on
        the trail is kept (deterministic); everything else is dropped,
        except assumption and unit-clause literals.  Learned clauses are
        skipped — they are implied, so any extension of a partial model
        satisfying the input clauses satisfies them too — which keeps
        DPLL(T) blocking clauses from mentioning don't-care atoms.
        """
        arena = self._arena
        assign = self._assign
        position = {
            literal >> 1: rank for rank, literal in enumerate(self._trail)
        }
        needed: set[int] = {literal >> 1 for literal in self._pinned}
        needed.update(
            literal if literal > 0 else -literal for literal in self._units
        )
        for ref in self._clause_refs():
            if arena[ref - 2] != _STATE_INPUT:
                continue  # retired clauses impose nothing; learned implied
            best = 0
            best_rank = -1
            satisfied_by_needed = False
            for i in range(ref, ref + arena[ref - _HDR]):
                literal = arena[i]
                if assign[literal] <= 0:
                    continue
                variable = literal >> 1
                if variable in needed:
                    satisfied_by_needed = True
                    break
                rank = position.get(variable, 0)
                if best == 0 or rank < best_rank:
                    best, best_rank = variable, rank
            if not satisfied_by_needed and best != 0:
                needed.add(best)
        return {
            variable: assign[variable << 1] > 0
            for variable in needed
            if assign[variable << 1] != 0
        }


def dpll(clauses: CNF, assignment: Optional[Assignment] = None) -> Optional[Assignment]:
    """Satisfying assignment for a CNF, or None if unsatisfiable."""
    solver = WatchedSolver(clauses)
    assumptions = [
        variable if value else -variable
        for variable, value in (assignment or {}).items()
    ]
    return solver.solve(assumptions)


def _solver_of(term: Term) -> Tuple[WatchedSolver, AtomTable]:
    """A fresh solver with the term's CNF emitted straight into its
    clause arena (no intermediate clause list), plus the atom table."""
    converter = TseitinConverter()
    solver = WatchedSolver()
    root = converter.convert_into(term, solver.add_clause)
    solver.add_clause((root,))
    return solver, converter.table


def sat(term: Term) -> Optional[Assignment]:
    """Propositional satisfiability of a boolean term (atoms opaque)."""
    solver, _table = _solver_of(term)
    return solver.solve()


def propositionally_valid(term: Term) -> bool:
    """True iff the term is a propositional tautology (valid for *every*
    theory interpretation of its atoms) — a sound fast path for the
    bounded solver."""
    negated = App("not", (term,))
    return sat(negated) is None


# ---------------------------------------------------------------------------
# DPLL(T) for equality and difference logic
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TheoryResult:
    """Outcome of the DPLL(T) search."""

    satisfiable: bool
    boolean_model: Optional[Assignment] = None
    equalities: Tuple[Tuple[Term, Term], ...] = ()
    disequalities: Tuple[Tuple[Term, Term], ...] = ()
    models_blocked: int = 0
    #: Atoms enqueued by theory propagation (0 when the lazy loop ran).
    theory_propagations: int = 0
    #: Order atoms with their asserted value (mixed-fragment models only).
    orders: Tuple[Tuple[Term, bool], ...] = ()


def _theory_literals(
    model: Assignment, table: AtomTable, orders: bool = False
) -> Optional[tuple]:
    """Split a boolean model into asserted theory literals.

    Without ``orders`` (the seed-compatible contract kept for
    :mod:`repro.smt.reference`): ``(equalities, disequalities)``, or
    None if the model asserts a non-equality atom.  With ``orders``,
    difference-logic order atoms are classified too — the result is
    ``(equalities, disequalities, order_assignments)`` with the latter
    pairing each order atom with its asserted value, and None now means
    an atom outside *both* fragments."""
    equalities: list = []
    disequalities: list = []
    order_atoms: list = []
    for index, value in model.items():
        term = table.term_of(index)
        if term is None:
            continue  # Tseitin definition variable
        if is_equality_atom(term):
            assert isinstance(term, App)
            left, right = term.args
            positive = value if term.op == "==" else not value
            if positive:
                equalities.append((left, right))
            else:
                disequalities.append((left, right))
            continue
        if orders and is_difference_atom(term):
            order_atoms.append((term, value))
            continue
        return None
    if orders:
        return equalities, disequalities, order_atoms
    return equalities, disequalities


def _fragment_propagator(table: AtomTable, allow_orders: bool):
    """The theory propagator (or stack) for a formula's atom table, plus
    whether the mixed equality/order DPLL(T) loop applies.

    Returns ``(propagator, mixed)``: ``(None, False)`` when some atom
    falls outside both fragments (the caller keeps the lazy
    model-blocking loop and bails to enumeration), a bare
    :class:`~repro.smt.euf.EqualityPropagator` for the pure equality
    fragment, and a :class:`~repro.smt.arith.PropagatorStack` when order
    atoms participate."""
    atoms = table.atoms()
    if not atoms:
        return None, False
    needs_difference = False
    for atom in atoms.values():
        if is_equality_atom(atom):
            # An equality with an integer offset (x == y + 1) carries
            # difference content congruence closure cannot see.
            if allow_orders and is_offset_equality_atom(atom):
                needs_difference = True
            continue
        if allow_orders and is_difference_atom(atom):
            needs_difference = True
            continue
        return None, False
    if not needs_difference:
        return EqualityPropagator(table), False
    stack = PropagatorStack(
        EqualityPropagator(table), DifferenceLogicPropagator(table)
    )
    return stack, True


def dpllt_equality(
    term: Term, max_models: int = 10_000, allow_orders: bool = True
) -> Optional[TheoryResult]:
    """DPLL(T) for formulas whose atoms are ``==``/``!=`` between ground
    terms and/or integer difference-logic comparisons (boolean structure
    arbitrary).

    For formulas entirely inside those fragments the matching theory
    propagators are attached to the CDCL search — an
    :class:`~repro.smt.euf.EqualityPropagator` alone for pure equality,
    composed with a :class:`~repro.smt.arith.DifferenceLogicPropagator`
    in a :class:`~repro.smt.arith.PropagatorStack` when order atoms
    occur.  Theory reasoning runs incrementally along the boolean trail:
    entailed atoms are enqueued at every fixpoint and theory conflicts
    become learned clauses mid-search, with explanations that respect
    the solver's MiniSat-style assumption levels (clauses learned while
    a session's activation literal is assumed mention its negation, so
    they survive for later queries).  The model-blocking loop below then
    serves only as a safety net: ``models_blocked`` stays 0 on the pure
    equality and pure difference fragments, and blocks only the rare
    mixed models whose inconsistency needs the cross-theory equality
    exchange of :func:`~repro.smt.arith.mixed_consistent`.

    Formulas with an atom outside both fragments keep the PR 2
    behaviour: lazy model blocking, bailing out (``None``) on the first
    model that asserts such an atom so the caller falls back to the
    bounded enumerator.  ``allow_orders=False`` restricts the search to
    the equality fragment (used when a caller's sort overrides make
    integer order reasoning unsound for the formula at hand).
    """
    solver, table = _solver_of(term)
    propagator, mixed = _fragment_propagator(table, allow_orders)
    if propagator is not None:
        solver.attach_theory(propagator)
    blocked = 0
    propagated = 0
    for _ in range(max_models):
        model = solver.solve()
        propagated = propagator.propagations if propagator is not None else 0
        if model is None:
            return TheoryResult(
                False, models_blocked=blocked, theory_propagations=propagated
            )
        split = _theory_literals(model, table, orders=mixed)
        if split is None:
            return None  # outside the fragment
        if mixed:
            equalities, disequalities, order_atoms = split
            consistent = mixed_consistent(equalities, disequalities, order_atoms)
        else:
            equalities, disequalities = split
            order_atoms = []
            consistent = congruence_closure_consistent(equalities, disequalities)
        if consistent:
            return TheoryResult(
                True,
                boolean_model=model,
                equalities=tuple(equalities),
                disequalities=tuple(disequalities),
                models_blocked=blocked,
                theory_propagations=propagated,
                orders=tuple(order_atoms),
            )
        # Block this boolean model (only its theory-atom part).
        conflict = tuple(
            -index if value else index
            for index, value in sorted(model.items())
            if table.term_of(index) is not None
        )
        if not conflict:
            return TheoryResult(
                False, models_blocked=blocked, theory_propagations=propagated
            )
        solver.add_clause(conflict)
        blocked += 1
    return None  # model budget exhausted: undecided


def euf_valid(
    term: Term, max_models: int = 10_000, allow_orders: bool = True
) -> Optional[bool]:
    """Validity in the equality + difference-logic fragments: True/False,
    or None if undecided / outside both fragments."""
    result = dpllt_equality(
        App("not", (term,)), max_models=max_models, allow_orders=allow_orders
    )
    if result is None:
        return None
    return not result.satisfiable
