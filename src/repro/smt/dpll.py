"""DPLL SAT solving and a lazy DPLL(T) loop for equality logic.

The classic Davis–Putnam–Logemann–Loveland procedure over the CNF
produced by :mod:`repro.smt.cnf`:

* unit propagation,
* pure-literal elimination,
* branching on the most frequently occurring variable.

On top of it, :func:`dpllt_equality` implements the lazy SMT loop used by
modern solvers (and by Z3 for HyperViper's verification conditions): DPLL
enumerates boolean models of the skeleton; each model's theory literals
(equalities and disequalities between ground terms) are checked for
consistency with congruence closure (:mod:`repro.smt.euf`); inconsistent
models are blocked with a conflict clause and the search resumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .cnf import CNF, AtomTable, Clause, cnf_of
from .euf import congruence_closure_consistent, is_equality_atom
from .terms import App, Term

Assignment = Dict[int, bool]


def _propagate(clauses: List[Clause], assignment: Assignment) -> Optional[List[Clause]]:
    """Unit propagation to fixpoint; None on conflict."""
    changed = True
    clauses = list(clauses)
    while changed:
        changed = False
        next_clauses: List[Clause] = []
        for clause in clauses:
            unassigned: List[int] = []
            satisfied = False
            for literal in clause:
                value = assignment.get(abs(literal))
                if value is None:
                    unassigned.append(literal)
                elif (literal > 0) == value:
                    satisfied = True
                    break
            if satisfied:
                continue
            if not unassigned:
                return None  # conflict
            if len(unassigned) == 1:
                literal = unassigned[0]
                assignment[abs(literal)] = literal > 0
                changed = True
            else:
                next_clauses.append(tuple(unassigned))
        clauses = next_clauses
    return clauses


def _pure_literals(clauses: List[Clause], assignment: Assignment) -> None:
    polarity: Dict[int, set] = {}
    for clause in clauses:
        for literal in clause:
            polarity.setdefault(abs(literal), set()).add(literal > 0)
    for variable, signs in polarity.items():
        if variable not in assignment and len(signs) == 1:
            assignment[variable] = signs.pop()


def _choose(clauses: List[Clause], assignment: Assignment) -> Optional[int]:
    counts: Dict[int, int] = {}
    for clause in clauses:
        for literal in clause:
            variable = abs(literal)
            if variable not in assignment:
                counts[variable] = counts.get(variable, 0) + 1
    if not counts:
        return None
    return max(counts, key=lambda variable: (counts[variable], -variable))


def dpll(clauses: CNF, assignment: Optional[Assignment] = None) -> Optional[Assignment]:
    """Satisfying assignment for a CNF, or None if unsatisfiable."""
    assignment = dict(assignment or {})
    simplified = _propagate(list(clauses), assignment)
    if simplified is None:
        return None
    _pure_literals(simplified, assignment)
    simplified = _propagate(simplified, assignment)
    if simplified is None:
        return None
    if not simplified:
        return assignment
    variable = _choose(simplified, assignment)
    if variable is None:
        return assignment
    for value in (True, False):
        trial = dict(assignment)
        trial[variable] = value
        result = dpll(simplified, trial)
        if result is not None:
            return result
    return None


def sat(term: Term) -> Optional[Assignment]:
    """Propositional satisfiability of a boolean term (atoms opaque)."""
    clauses, _table = cnf_of(term)
    return dpll(clauses)


def propositionally_valid(term: Term) -> bool:
    """True iff the term is a propositional tautology (valid for *every*
    theory interpretation of its atoms) — a sound fast path for the
    bounded solver."""
    negated = App("not", (term,))
    return sat(negated) is None


# ---------------------------------------------------------------------------
# Lazy DPLL(T) for equality logic
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TheoryResult:
    """Outcome of the DPLL(T) search."""

    satisfiable: bool
    boolean_model: Optional[Assignment] = None
    equalities: Tuple[Tuple[Term, Term], ...] = ()
    disequalities: Tuple[Tuple[Term, Term], ...] = ()
    models_blocked: int = 0


def _theory_literals(
    model: Assignment, table: AtomTable
) -> Optional[tuple[list, list]]:
    """Split a boolean model into asserted equalities / disequalities.

    Returns None if the model asserts a non-equality atom (outside the
    EUF fragment)."""
    equalities: list = []
    disequalities: list = []
    for index, value in model.items():
        term = table.term_of(index)
        if term is None:
            continue  # Tseitin definition variable
        if not is_equality_atom(term):
            return None
        assert isinstance(term, App)
        left, right = term.args
        positive = value if term.op == "==" else not value
        if positive:
            equalities.append((left, right))
        else:
            disequalities.append((left, right))
    return equalities, disequalities


def dpllt_equality(term: Term, max_models: int = 10_000) -> Optional[TheoryResult]:
    """Lazy DPLL(T) for formulas whose atoms are ``==``/``!=`` between
    ground terms (boolean structure arbitrary).

    Returns a :class:`TheoryResult`, or ``None`` if the formula contains
    atoms outside the equality fragment (caller should fall back to the
    bounded enumerator).
    """
    clauses, table = cnf_of(term)
    blocked = 0
    working = list(clauses)
    for _ in range(max_models):
        model = dpll(working)
        if model is None:
            return TheoryResult(False, models_blocked=blocked)
        split = _theory_literals(model, table)
        if split is None:
            return None  # outside the fragment
        equalities, disequalities = split
        if congruence_closure_consistent(equalities, disequalities):
            return TheoryResult(
                True,
                boolean_model=model,
                equalities=tuple(equalities),
                disequalities=tuple(disequalities),
                models_blocked=blocked,
            )
        # Block this boolean model (only its theory-atom part).
        conflict = tuple(
            -index if value else index
            for index, value in sorted(model.items())
            if table.term_of(index) is not None
        )
        if not conflict:
            return TheoryResult(False, models_blocked=blocked)
        working.append(conflict)
        blocked += 1
    return None  # model budget exhausted: undecided


def euf_valid(term: Term, max_models: int = 10_000) -> Optional[bool]:
    """Validity in the EUF fragment: True/False, or None if undecided /
    outside the fragment."""
    result = dpllt_equality(App("not", (term,)), max_models=max_models)
    if result is None:
        return None
    return not result.satisfiable
